"""Tests for the analysis/experiment harness."""

import math

import pytest

from repro.analysis.experiments import (
    experiment_apex,
    experiment_cells_and_gates,
    experiment_clique_sum,
    experiment_constructions,
    experiment_genus_vortex_treewidth,
    experiment_mincut,
    experiment_minor_free_quality,
    experiment_mst_rounds,
    experiment_planar_quality,
    experiment_robustness,
    experiment_treewidth_quality,
)
from repro.analysis.quality import (
    QualityRow,
    fit_growth_exponent,
    format_table,
    quality_sweep,
    summarize_rows,
)
from repro.graphs.planar import grid_graph
from repro.shortcuts.parts import tree_fragment_parts
from repro.shortcuts.search import default_constructors
from repro.structure.spanning import bfs_spanning_tree


def test_fit_growth_exponent_recovers_known_power_laws():
    xs = [2, 4, 8, 16, 32]
    assert fit_growth_exponent(xs, [x**2 for x in xs]) == pytest.approx(2.0, abs=0.01)
    assert fit_growth_exponent(xs, [5 * x for x in xs]) == pytest.approx(1.0, abs=0.01)
    assert math.isnan(fit_growth_exponent([1], [1]))


def test_quality_sweep_and_summary_and_table():
    instances = []
    for side in (4, 6):
        graph = grid_graph(side, side)
        tree = bfs_spanning_tree(graph)
        parts = tree_fragment_parts(graph, tree, num_parts=4, seed=side)
        instances.append((f"grid-{side}", graph, parts))
    rows = quality_sweep(instances, default_constructors())
    assert len(rows) == 2 * len(default_constructors())
    assert all(isinstance(row, QualityRow) for row in rows)
    summary = summarize_rows(rows)
    assert set(summary.keys()) == set(default_constructors().keys())
    table = format_table(rows)
    assert "grid-4" in table and "quality" in table


def test_experiment_planar_quality_shape():
    result = experiment_planar_quality(sides=(5, 8))
    assert result["experiment"] == "E1-planar-quality"
    assert len(result["rows"]) == 2
    # Quality should grow roughly linearly (not quadratically) in the diameter.
    assert result["quality_vs_diameter_exponent"] < 2.0


def test_experiment_treewidth_quality_shape():
    result = experiment_treewidth_quality(widths=(2, 3), n=40)
    assert {row["k"] for row in result["rows"]} == {2, 3}


def test_experiment_clique_sum_folding_reduces_or_matches_depth_cost():
    result = experiment_clique_sum(num_bags=6, bag_side=4)
    assert result["decomposition_depth"] == 5
    assert result["folded"]["quality"] > 0
    assert result["unfolded"]["quality"] > 0


def test_experiment_apex_wheel_beats_naive():
    result = experiment_apex(cycle_size=40, grid_side=7)
    wheel = result["wheel"]
    assert wheel["apex_quality"] < wheel["naive_quality"]
    assert wheel["diameter_with_apex"] == 2
    assert result["grid_plus_apex"]["cell_assignment_max_skipped"] <= 2


def test_experiment_minor_free_quality_within_target():
    result = experiment_minor_free_quality(bag_counts=(3, 4), bag_size=16)
    for row in result["rows"]:
        assert row["quality"] <= 6 * row["target_quality"] + 30


def test_experiment_mst_rounds_shape():
    result = experiment_mst_rounds(grid_side=7, lower_bound_paths=5, lower_bound_length=6)
    planar = result["planar_plus_apex"]
    assert planar["weight_matches_reference"]
    assert planar["accelerated_rounds"] > 0
    assert planar["naive_rounds"] > 0


def test_experiment_mincut_ratio_within_epsilon():
    result = experiment_mincut(grid_side=6, epsilon=1.0)
    assert result["approximation_ratio"] <= 1.0 + 1.0 + 1e-9


def test_experiment_robustness_apex_construction_still_works():
    result = experiment_robustness(grid_side=7, extra_edges=3)
    assert result["apex_quality"]["quality"] > 0


def test_experiment_genus_vortex_treewidth_within_target():
    result = experiment_genus_vortex_treewidth(sides=(5, 6))
    for row in result["rows"]:
        assert row["measured_width"] <= 4 * row["target_width"]


def test_experiment_cells_and_gates_beta_and_s_reported():
    result = experiment_cells_and_gates(grid_side=8)
    assert result["beta"] >= 0
    assert result["max_skipped"] <= 2
    assert result["gate_s_trivial"] > 0


def test_experiment_constructions_reports_figure1_ingredients():
    result = experiment_constructions()
    assert result["almost_embeddable"]["apices"] == 1
    assert result["clique_sum"]["bags"] == 2
