"""Differential tests for the seeded fault-injection layer.

The fault layer's contract (docs/simulator.md, "Fault model") extends the
three-mode equality contract: for a fixed :class:`FaultSchedule` (model +
seed), the full-scan :class:`ReferenceSimulator`, the active-set
:class:`CongestSimulator` and the vectorized :class:`RuntimeSimulator`
must produce **identical** :class:`SimulationResult`\\ s -- rounds,
messages, words, outputs and per-round telemetry including the fault
columns (dropped/delayed/duplicated/crashed).  The suite pins this across
every registered scenario family and every built-in fault model, plus the
layer's edge contracts: null models reproduce fail-free runs byte-for-byte,
crashed roots degrade to a documented partial output instead of hanging,
``max_rounds`` truncation raises :class:`RoundLimitError` carrying partial
telemetry, and a pooled faulty sweep is byte-identical to the serial one.
"""

from __future__ import annotations

import json

import pytest

from repro.congest import (
    BUILT_IN_FAULT_KINDS,
    CongestSimulator,
    FaultModel,
    FaultSchedule,
    ReferenceSimulator,
    RuntimeSimulator,
    broadcast_value,
    convergecast_aggregate,
    distributed_bfs_tree,
    flood_max_id,
    parse_fault_spec,
    robust_bfs_tree,
)
from repro.congest.node import NodeProgram
from repro.core import view_of
from repro.errors import RoundLimitError, SimulationError
from repro.graphs.planar import grid_graph
from repro.scenarios import run_matrix, scenario_matrix
from repro.scenarios.engine import build_instance
from repro.scenarios.registry import family, family_names

ALL_SIMULATORS = [CongestSimulator, ReferenceSimulator, RuntimeSimulator]

# One model per built-in kind at a rate high enough to actually fire on
# tiny instances, plus a combined adversarial model mixing everything.
ADVERSARIAL = FaultModel(
    drop=0.1, delay=0.05, max_delay=3, duplicate=0.05, crash=0.05, crash_window=6, shuffle=True
)
ALL_MODELS = [FaultModel.preset(kind, rate=0.1) for kind in BUILT_IN_FAULT_KINDS]
ALL_MODELS.append(ADVERSARIAL)
MODEL_IDS = list(BUILT_IN_FAULT_KINDS) + ["adversarial"]


def _tiny_instance(name):
    return build_instance(name, family(name).tiny_params, seed=3)


def _values_for(graph, seed=0):
    return {
        node: (index * 31 + seed) % 97
        for index, node in enumerate(sorted(graph.nodes(), key=repr))
    }


# ------------------------------------------- three-mode equality under faults


@pytest.mark.parametrize("model", ALL_MODELS, ids=MODEL_IDS)
@pytest.mark.parametrize("family_name", family_names())
def test_robust_bfs_three_mode_equality_on_every_family(family_name, model):
    instance = _tiny_instance(family_name)
    view = instance.view
    root = min(instance.graph.nodes(), key=repr)
    schedule = FaultSchedule(model, seed=11)
    outcomes = [
        robust_bfs_tree(view, root, schedule, simulator_cls=simulator_cls)
        for simulator_cls in ALL_SIMULATORS
    ]
    trees, results, repaired = zip(*outcomes)
    # rounds, messages, words, outputs AND fault telemetry all equal.
    assert results[0] == results[1] == results[2]
    assert repaired[0] == repaired[1] == repaired[2]
    assert trees[0].parent == trees[1].parent == trees[2].parent
    # The repaired tree spans every node regardless of the faults.
    assert set(trees[0].parent) == set(instance.graph.nodes())


@pytest.mark.parametrize("model", ALL_MODELS, ids=MODEL_IDS)
def test_broadcast_three_mode_equality(model):
    instance = _tiny_instance("planar")
    view = instance.view
    source = min(instance.graph.nodes(), key=repr)
    results = [
        broadcast_value(
            view, source, ("mst", 99.5), simulator_cls=cls,
            fault_schedule=FaultSchedule(model, seed=5),
        )
        for cls in ALL_SIMULATORS
    ]
    assert results[0] == results[1] == results[2]
    # Every surviving node that produced an output learned the value.
    assert set(results[0].outputs.values()) <= {("mst", 99.5)}


@pytest.mark.parametrize("model", ALL_MODELS, ids=MODEL_IDS)
def test_flood_max_three_mode_equality(model):
    instance = _tiny_instance("treewidth")
    view = instance.view
    outcomes = [
        flood_max_id(view, simulator_cls=cls, fault_schedule=FaultSchedule(model, seed=2))
        for cls in ALL_SIMULATORS
    ]
    assert outcomes[0] == outcomes[1] == outcomes[2]


@pytest.mark.parametrize("model", ALL_MODELS, ids=MODEL_IDS)
def test_convergecast_three_mode_equality(model):
    instance = _tiny_instance("planar")
    view = instance.view
    values = _values_for(instance.graph)
    outcomes = [
        convergecast_aggregate(
            view, instance.tree, values, combine=min, simulator_cls=cls,
            fault_schedule=FaultSchedule(model, seed=13),
        )
        for cls in ALL_SIMULATORS
    ]
    assert outcomes[0] == outcomes[1] == outcomes[2]


def test_label_mode_matches_core_mode_under_faults():
    """One schedule drives label- and core-mode runs identically."""
    graph = grid_graph(4, 4)
    schedule = FaultSchedule(ADVERSARIAL, seed=21)
    _, label_result = distributed_bfs_tree(graph, 0, fault_schedule=schedule)
    _, core_result = distributed_bfs_tree(view_of(graph), 0, fault_schedule=schedule)
    assert label_result.telemetry == core_result.telemetry
    assert (label_result.rounds, label_result.messages, label_result.words) == (
        core_result.rounds, core_result.messages, core_result.words
    )


# --------------------------------------------------- null-model equivalence


@pytest.mark.parametrize("simulator_cls", ALL_SIMULATORS)
def test_null_model_reproduces_fail_free_run_bit_for_bit(simulator_cls):
    instance = _tiny_instance("clique_sum")
    view = instance.view
    root = min(instance.graph.nodes(), key=repr)
    plain_tree, plain = distributed_bfs_tree(view, root, simulator_cls=simulator_cls)
    null_tree, nulled = distributed_bfs_tree(
        view, root, simulator_cls=simulator_cls, fault_schedule=FaultModel()
    )
    assert nulled == plain
    assert null_tree.parent == plain_tree.parent
    # ... including the default-0 fault columns in the telemetry rows.
    assert all(row.dropped == row.delayed == row.duplicated == row.crashed == 0
               for row in nulled.telemetry)


def test_robust_bfs_with_null_schedule_reports_zero_repairs():
    instance = _tiny_instance("planar")
    root = min(instance.graph.nodes(), key=repr)
    tree, _, repaired = robust_bfs_tree(instance.view, root, FaultModel(drop=0.0))
    assert repaired == 0
    assert set(tree.parent) == set(instance.graph.nodes())


# -------------------------------------------------------- crash degradation


@pytest.mark.parametrize("simulator_cls", ALL_SIMULATORS)
def test_crashed_root_degrades_to_partial_outputs(simulator_cls):
    """A root crash cannot hang the run; survivors still terminate."""
    view = view_of(grid_graph(5, 5))
    root = 0
    model = FaultModel(crash_at=((view.index_of(root), 1),))
    tree, result, _repaired = robust_bfs_tree(
        view, root, FaultSchedule(model, seed=0), simulator_cls=simulator_cls
    )
    assert result.crashed_nodes == 1
    assert root not in result.outputs  # crashed nodes produce no output
    # The graft repair still hands back a full spanning tree of the network
    # (robust_bfs_tree validates it against the graph before returning).
    assert set(tree.parent) == set(view.nodes)


def test_crashed_nodes_never_appear_in_outputs():
    view = view_of(grid_graph(4, 4))
    model = FaultModel(crash=0.3, crash_window=4)
    schedule = FaultSchedule(model, seed=3)
    _, result = flood_max_id(view, fault_schedule=schedule)
    crashed = {node for node in range(len(view.nodes))
               if schedule.crash_round(node) is not None}
    assert result.crashed_nodes == len(crashed)
    assert all(view.index_of(label) not in crashed for label in result.outputs)


# ------------------------------------------------------ accounting identity


@pytest.mark.parametrize("model", ALL_MODELS, ids=MODEL_IDS)
def test_totals_match_telemetry_columns(model):
    instance = _tiny_instance("apex")
    root = min(instance.graph.nodes(), key=repr)
    _, result, _ = robust_bfs_tree(instance.view, root, FaultSchedule(model, seed=7))
    assert result.messages == sum(row.messages for row in result.telemetry)
    assert result.words == sum(row.words for row in result.telemetry)
    assert result.dropped == sum(row.dropped for row in result.telemetry)
    assert result.delayed == sum(row.delayed for row in result.telemetry)
    assert result.duplicated == sum(row.duplicated for row in result.telemetry)
    assert result.crashed_nodes == sum(row.crashed for row in result.telemetry)
    # delivered = sent - dropped + duplicated, and nothing is negative.
    assert result.messages - result.dropped + result.duplicated >= 0
    assert all(
        row.dropped >= 0 and row.delayed >= 0 and row.duplicated >= 0 and row.crashed >= 0
        for row in result.telemetry
    )


# ------------------------------------------------------------ RoundLimitError


class _ChattyProgram(NodeProgram):
    """A program that never quiesces (for truncation tests)."""

    def on_start(self):
        return {neighbour: ("ping",) for neighbour in self.context.neighbours}

    def on_round(self, round_number, inbox):
        return {neighbour: ("ping",) for neighbour in self.context.neighbours}


@pytest.mark.parametrize("simulator_cls", [CongestSimulator, ReferenceSimulator])
def test_round_limit_error_carries_partial_telemetry(simulator_cls):
    view = view_of(grid_graph(2, 2))
    simulator = simulator_cls(view, _ChattyProgram)
    with pytest.raises(RoundLimitError, match="did not converge") as excinfo:
        simulator.run(max_rounds=12)
    partial = excinfo.value.partial
    assert partial is not None
    assert partial.rounds > 0
    assert partial.messages > 0
    assert len(partial.telemetry) >= 12


def test_round_limit_error_is_a_simulation_error():
    assert issubclass(RoundLimitError, SimulationError)


@pytest.mark.parametrize("simulator_cls", [CongestSimulator, ReferenceSimulator])
def test_round_limit_error_under_faults(simulator_cls):
    view = view_of(grid_graph(2, 2))
    simulator = simulator_cls(
        view, _ChattyProgram, fault_schedule=FaultSchedule(FaultModel(drop=0.2), seed=1)
    )
    with pytest.raises(RoundLimitError, match="did not converge") as excinfo:
        simulator.run(max_rounds=12)
    partial = excinfo.value.partial
    assert partial is not None
    assert partial.dropped > 0


# ------------------------------------------------------------ pooled sweeps


def test_faulty_run_matrix_is_pool_safe():
    """``jobs=2`` with a fault spec is byte-identical to the serial sweep."""
    scenarios = scenario_matrix(
        families=["planar", "treewidth"],
        constructors=["steiner"],
        algorithm_name="mst",
        size="tiny",
        seed=1,
    )

    def normalised(records):
        for record in records:
            record["result"].pop("sim_seconds", None)  # wall-clock only
        return json.dumps(records, sort_keys=True, default=str)

    spec = "drop=0.08,crash=0.02:6"
    serial = run_matrix(scenarios, faults=spec, fault_seed=9)
    pooled = run_matrix(scenarios, faults=spec, fault_seed=9, jobs=2)
    assert normalised(serial) == normalised(pooled)
    assert all("faults" in record["result"] for record in serial)


def test_null_fault_spec_leaves_matrix_records_unchanged():
    scenarios = scenario_matrix(
        families=["planar"], constructors=["steiner"], algorithm_name="mst", size="tiny"
    )

    def normalised(records):
        for record in records:
            record["result"].pop("sim_seconds", None)
        return json.dumps(records, sort_keys=True, default=str)

    assert normalised(run_matrix(scenarios)) == normalised(
        run_matrix(scenarios, faults="drop=0", fault_seed=4)
    )


# -------------------------------------------------------------- spec parsing


def test_parse_fault_spec_round_trip():
    model = parse_fault_spec("drop=0.05,delay=0.02:3,dup=0.01,crash=0.05:10,shuffle")
    assert model.drop == 0.05
    assert model.delay == 0.02 and model.max_delay == 3
    assert model.duplicate == 0.01
    assert model.crash == 0.05 and model.crash_window == 10
    assert model.shuffle


def test_parse_fault_spec_rejects_junk():
    with pytest.raises(ValueError):
        parse_fault_spec("drop=2")
    with pytest.raises(ValueError):
        parse_fault_spec("frobnicate=0.1")


def test_fault_model_validation():
    with pytest.raises(ValueError):
        FaultModel(drop=-0.1)
    with pytest.raises(ValueError):
        FaultModel(delay=0.1, max_delay=0)
    assert FaultModel().is_null
    assert not FaultModel(shuffle=True).is_null


def test_schedule_is_deterministic_and_seed_sensitive():
    model = FaultModel(drop=0.5)
    a = FaultSchedule(model, seed=1)
    b = FaultSchedule(model, seed=1)
    c = FaultSchedule(model, seed=2)
    fates_a = [a.fate(r, s, t) for r in range(1, 20) for s in range(4) for t in range(4)]
    fates_b = [b.fate(r, s, t) for r in range(1, 20) for s in range(4) for t in range(4)]
    fates_c = [c.fate(r, s, t) for r in range(1, 20) for s in range(4) for t in range(4)]
    assert fates_a == fates_b
    assert fates_a != fates_c
