"""Tests for the exception hierarchy and the top-level public API surface."""

import repro
from repro.errors import (
    ConvergenceError,
    InvalidDecompositionError,
    InvalidGraphError,
    InvalidPartitionError,
    InvalidShortcutError,
    ReproError,
    SimulationError,
)


def test_all_exceptions_derive_from_repro_error():
    for exc in (
        InvalidGraphError,
        InvalidPartitionError,
        InvalidDecompositionError,
        InvalidShortcutError,
        SimulationError,
        ConvergenceError,
    ):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)


def test_public_api_exports_exist_and_are_callable_or_classes():
    for name in repro.__all__:
        attribute = getattr(repro, name)
        assert attribute is not None, name


def test_version_is_exposed():
    assert repro.__version__ == "1.0.0"


def test_quickstart_snippet_from_readme_works():
    sample = repro.sample_lk_graph(num_bags=3, k=3, bag_size=16, seed=1)
    tree = repro.bfs_spanning_tree(sample.graph)
    parts = repro.tree_fragment_parts(sample.graph, tree, num_parts=4, seed=2)
    shortcut = repro.minor_free_shortcut(sample, tree, parts)
    measure = shortcut.measure()
    assert measure.quality > 0
    repro.assign_random_weights(sample.graph, seed=3)
    result = repro.boruvka_mst(sample.graph)
    assert abs(result.weight - repro.reference_mst_weight(sample.graph)) < 1e-6
