"""End-to-end integration tests exercising the whole pipeline.

Each test mirrors one "story" of the paper: generate a graph from an
excluded-minor family with its structure witness, build shortcuts through
the family-specific pipeline, run a distributed optimisation algorithm on
top, and check both correctness and the qualitative round-count claims.
"""

import networkx as nx
import pytest

from repro.algorithms.mincut import approximate_min_cut
from repro.algorithms.mst import boruvka_mst, reference_mst_weight
from repro.algorithms.mst_baselines import no_shortcut_builder
from repro.congest.aggregation import partwise_aggregate
from repro.graphs.minor_free import sample_lk_graph
from repro.graphs.weights import assign_adversarial_weights, assign_random_weights
from repro.shortcuts.minor_free import minor_free_shortcut
from repro.shortcuts.parts import boruvka_parts, path_parts
from repro.structure.spanning import bfs_spanning_tree, graph_diameter


def test_full_pipeline_on_lk_sample(lk_sample):
    """Sample L_k graph -> witness shortcuts -> aggregation -> distributed MST."""
    graph = lk_sample.graph
    assign_random_weights(graph, seed=1, integer=True)
    tree = bfs_spanning_tree(graph)

    # Shortcut construction through the Theorem 6 pipeline on Boruvka fragments.
    parts = boruvka_parts(graph, phases=2, seed=2)
    shortcut = minor_free_shortcut(lk_sample, tree, parts)
    shortcut.validate()
    measure = shortcut.measure()
    assert measure.quality > 0

    # The aggregation primitive returns correct per-part minima over it.
    values = {v: (v * 31) % 97 for v in graph.nodes()}
    aggregation = partwise_aggregate(shortcut, values, combine=min)
    assert aggregation.values == [min(values[v] for v in part) for part in parts]

    # The distributed MST using the witness-driven builder is correct.
    def builder(g, t, fragment_parts):
        return minor_free_shortcut(lk_sample, t, fragment_parts)

    result = boruvka_mst(graph, shortcut_builder=builder, tree=tree, validate_shortcuts=True)
    assert abs(result.weight - reference_mst_weight(graph)) < 1e-6


def test_adversarial_weights_show_the_shortcut_advantage(lk_sample):
    """With adversarial weights the fragments become long and skinny; shortcuts win."""
    graph = lk_sample.graph.copy()
    assign_adversarial_weights(graph, seed=3)
    tree = bfs_spanning_tree(graph)

    def builder(g, t, fragment_parts):
        return minor_free_shortcut(lk_sample, t, fragment_parts)

    accelerated = boruvka_mst(graph, shortcut_builder=builder, tree=tree)
    naive = boruvka_mst(graph, shortcut_builder=no_shortcut_builder, tree=tree)
    assert abs(accelerated.weight - naive.weight) < 1e-6
    # The shortcut-driven run should never be substantially slower, and on the
    # long-fragment phases it is typically faster.
    assert accelerated.rounds <= naive.rounds * 1.5 + 10


def test_min_cut_on_lk_sample_is_accurate(lk_sample):
    graph = lk_sample.graph.copy()
    assign_random_weights(graph, low=1, high=8, seed=4, integer=True)
    result = approximate_min_cut(graph, epsilon=1.0, max_trees=8)
    assert result.approximation_ratio <= 2.0 + 1e-9
    assert result.rounds > 0


def test_quality_versus_rounds_correlation(lk_sample):
    """Phases with better (smaller) quality should not need more aggregation rounds
    than phases with much worse quality -- the qualitative content of Theorem 1."""
    graph = lk_sample.graph.copy()
    assign_random_weights(graph, seed=5, integer=True)
    tree = bfs_spanning_tree(graph)
    result = boruvka_mst(graph, tree=tree)
    assert len(result.phase_qualities) == result.phases
    assert all(quality >= 0 for quality in result.phase_qualities)
    assert graph_diameter(graph) <= result.rounds  # rounds include Theta(D) syncs
