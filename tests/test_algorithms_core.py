"""Differential tests for the array-native algorithm layer (PR: algorithms).

Three layers:

* **differential** -- the array-native fast paths of
  :func:`repro.algorithms.boruvka_mst` and
  :func:`repro.algorithms.approximate_min_cut` must reproduce the preserved
  seed implementations *exactly* (MST edges/weight/rounds/phases/qualities;
  cut value/side/edges/rounds) across every registered graph family, for
  both engine-capable and witness-closure shortcut builders;
* **substrate** -- the index-native :meth:`PartSet.from_member_lists`
  construction and the indexed aggregation entry point agree with their
  label twins;
* **satellites** -- the ROADMAP open items fixed alongside: the
  ``graph_diameter`` approximate-regime tie-break (pinned above the
  400-node exact threshold), the unified simulator exception contract, and
  the view-cache lifecycle.
"""

from __future__ import annotations

import gc
import weakref

import networkx as nx
import pytest

from repro.algorithms.mincut import approximate_min_cut
from repro.algorithms.mst import boruvka_mst, oblivious_builder
from repro.congest.aggregation import partwise_aggregate, partwise_aggregate_indexed
from repro.congest.node import NodeProgram
from repro.congest.simulator import CongestSimulator
from repro.core import PartSet, networkx_reference_paths, view_of
from repro.errors import InvalidGraphError
from repro.graphs.planar import cycle_graph, grid_graph, random_delaunay_triangulation
from repro.scenarios import build_instance, family_names
from repro.scenarios.registry import constructor as scenario_constructor
from repro.shortcuts.baseline import steiner_shortcut
from repro.structure.spanning import bfs_spanning_tree, graph_diameter

_INSTANCES: dict = {}


def _family_instance(name):
    if name not in _INSTANCES:
        _INSTANCES[name] = build_instance(name, seed=3)
    return _INSTANCES[name]


def _assert_mst_equal(fast, reference):
    assert fast.edges == reference.edges
    assert fast.weight == reference.weight
    assert fast.rounds == reference.rounds
    assert fast.phases == reference.phases
    assert fast.phase_rounds == reference.phase_rounds
    assert fast.phase_qualities == reference.phase_qualities


def _assert_mincut_equal(fast, reference):
    assert fast.value == reference.value
    assert fast.side == reference.side
    assert fast.cut_edges == reference.cut_edges
    assert fast.rounds == reference.rounds
    assert fast.num_trees == reference.num_trees
    assert fast.tree_rounds == reference.tree_rounds
    assert fast.exact_value == reference.exact_value
    assert fast.approximation_ratio == reference.approximation_ratio


# --------------------------------------------------------------- differential


@pytest.mark.parametrize("family_name", family_names())
def test_boruvka_fast_path_matches_reference(family_name):
    """Array-native Boruvka == preserved seed loop on every family."""
    instance = _family_instance(family_name)
    weighted = instance.weighted_graph(3)
    tree = instance.tree
    fast = boruvka_mst(weighted, tree=tree)
    with networkx_reference_paths():
        reference = boruvka_mst(weighted, tree=tree)
    _assert_mst_equal(fast, reference)


@pytest.mark.parametrize("family_name", family_names())
def test_mincut_fast_path_matches_reference(family_name):
    """Array-native tree packing + respecting cuts == preserved seed sweep."""
    instance = _family_instance(family_name)
    weighted = instance.weighted_graph(3, low=1, high=10)
    tree = instance.tree
    fast = approximate_min_cut(weighted, epsilon=1.0, tree=tree)
    with networkx_reference_paths():
        reference = approximate_min_cut(weighted, epsilon=1.0, tree=tree)
    _assert_mincut_equal(fast, reference)


def test_boruvka_engine_bypass_matches_builder_closure():
    """The registry's engine-capable oblivious builder == calling it as a closure."""
    instance = _family_instance("planar")
    weighted = instance.weighted_graph(5)
    tree = instance.tree
    builder = scenario_constructor("oblivious").builder_for(instance)
    assert builder.uses_engine  # the flag the fast loop dispatches on
    via_marker = boruvka_mst(weighted, shortcut_builder=builder, tree=tree)

    def unmarked(graph, t, parts):
        return builder(graph, t, parts)

    via_closure = boruvka_mst(weighted, shortcut_builder=unmarked, tree=tree)
    _assert_mst_equal(via_marker, via_closure)


def test_boruvka_fast_path_with_witness_builder_matches_reference():
    """A non-engine (label-space) builder exercises the label_parts hand-off."""
    instance = _family_instance("apex")
    weighted = instance.weighted_graph(7)
    tree = instance.tree
    builder = scenario_constructor("apex").builder_for(instance)
    assert not getattr(builder, "uses_engine", False)
    fast = boruvka_mst(weighted, shortcut_builder=builder, tree=tree)
    with networkx_reference_paths():
        reference = boruvka_mst(weighted, shortcut_builder=builder, tree=tree)
    _assert_mst_equal(fast, reference)


def test_boruvka_reads_weights_assigned_after_viewing():
    """Weight reassignment between runs over one viewed graph is honoured."""
    from repro.graphs.weights import assign_random_weights

    graph = grid_graph(5, 5)
    view_of(graph)  # freeze the topology into the CSR cache first
    assign_random_weights(graph, seed=11, integer=True)
    first = boruvka_mst(graph)
    assign_random_weights(graph, seed=12, integer=True)
    second = boruvka_mst(graph)
    with networkx_reference_paths():
        reference = boruvka_mst(graph)
    _assert_mst_equal(second, reference)
    assert first.weight != second.weight  # the reassignment was visible


def test_mincut_compute_exact_false_skips_the_oracle():
    instance = _family_instance("planar")
    weighted = instance.weighted_graph(3, low=1, high=10)
    tree = instance.tree
    full = approximate_min_cut(weighted, epsilon=1.0, tree=tree)
    bare = approximate_min_cut(weighted, epsilon=1.0, tree=tree, compute_exact=False)
    assert bare.value == full.value
    assert bare.side == full.side
    assert bare.rounds == full.rounds
    assert bare.exact_value != bare.exact_value  # nan
    assert bare.approximation_ratio != bare.approximation_ratio  # nan


# ----------------------------------------------------------------- substrate


def test_part_set_from_member_lists_is_lazy_and_equal():
    graph = grid_graph(4, 4)
    view = view_of(graph)
    member_lists = [[5, 1, 3], [0, 2], [15]]
    part_set = PartSet.from_member_lists(view, member_lists)
    assert part_set._parts is None, "labels must not materialise eagerly"
    assert part_set.num_parts == 3
    assert part_set.members_of(0) == [1, 3, 5]
    assert part_set.owner_array()[15] == 2
    labels = part_set.label_parts()
    assert labels == [
        frozenset(view.nodes[m] for m in members) for members in member_lists
    ]
    assert part_set.parts is labels  # cached


def test_partwise_aggregate_indexed_matches_label_entry_point():
    graph = grid_graph(5, 5)
    view = view_of(graph)
    tree = bfs_spanning_tree(view)
    parts = [frozenset(list(graph.nodes())[:7]), frozenset(list(graph.nodes())[12:20])]
    parts = [part for part in parts if nx.is_connected(graph.subgraph(part))]
    shortcut = steiner_shortcut(graph, tree, parts)
    label_values = {node: (hash(node) % 97) for node in graph.nodes()}
    indexed_values = [label_values[view.nodes[index]] for index in range(len(view))]
    by_label = partwise_aggregate(shortcut, label_values, combine=min)
    by_index = partwise_aggregate_indexed(shortcut, indexed_values, combine=min)
    assert by_label.values == by_index.values
    assert by_label.rounds == by_index.rounds
    assert by_label.messages == by_index.messages
    assert by_label.per_part_rounds == by_index.per_part_rounds
    with networkx_reference_paths():
        reference = partwise_aggregate_indexed(shortcut, indexed_values, combine=min)
    assert reference.values == by_index.values
    assert reference.rounds == by_index.rounds


# ---------------------------------------------------------------- satellites


@pytest.mark.parametrize(
    "make_graph",
    [
        lambda: cycle_graph(501),  # odd cycle: two farthest vertices tie
        lambda: grid_graph(21, 21),  # 441 nodes: above the exact threshold
        lambda: random_delaunay_triangulation(430, seed=9),
    ],
    ids=["odd-cycle", "grid-21", "delaunay-430"],
)
def test_graph_diameter_tie_break_agrees_above_exact_threshold(make_graph):
    """ROADMAP open item: the approximate regime's far-vertex tie-breaks align."""
    graph = make_graph()
    assert graph.number_of_nodes() > 400
    assert graph_diameter(graph) == graph_diameter(view_of(graph))


def test_graph_diameter_agrees_in_exact_regime_too():
    graph = grid_graph(7, 9)
    assert graph_diameter(graph) == graph_diameter(view_of(graph)) == 14


@pytest.mark.parametrize("core_mode", [False, True], ids=["label", "core"])
def test_simulator_raises_invalid_graph_error_in_both_modes(core_mode):
    """ROADMAP open item: one exception type for empty/disconnected networks."""
    disconnected = nx.Graph()
    disconnected.add_nodes_from([0, 1])
    empty = nx.Graph()
    for network in (empty, disconnected):
        target = view_of(network) if core_mode else network
        with pytest.raises(InvalidGraphError):
            CongestSimulator(target, NodeProgram)


def test_view_cache_releases_dropped_graphs():
    """ROADMAP open item: a viewed graph must be collectable once dropped."""
    graph = grid_graph(3, 3)
    view = view_of(graph)
    assert view_of(graph) is view, "memoised per graph object"
    graph_ref = weakref.ref(graph)
    view_ref = weakref.ref(view)
    del graph, view
    gc.collect()
    assert graph_ref() is None, "the graph<->view cycle must be collectable"
    assert view_ref() is None
