"""Tier-1 scale smoke: the big-n native path stays exercised and nx-free.

A ~10^5-node grid (316 x 316) is built straight into CSR form, spanned,
shortcut, run through the engine MST and the vectorized-runtime BFS --
and the ``nx.Graph`` adapter's materialisation counter must not move.
This keeps the million-node pipeline of ``benchmarks/bench_s7_scale.py``
covered by the plain test suite without its wall-clock/RSS budgets.

The MST leg stays affordable at this size by weighting the grid along a
serpentine Hamiltonian path (strictly increasing path weights, uniformly
heavy chords): every node's lightest incident edge is then its path edge
toward the start, so the min-edge graph of Boruvka's first phase is the
whole path and the algorithm converges in a single phase -- the engine
still builds a phase shortcut over ~10^5 singleton fragments and runs the
convergecast machinery, but the simulated message volume stays O(n)
instead of O(n log n).  The expected MST (the path itself, total weight
n(n-1)/2) is also checked against the scipy oracle.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.mst import boruvka_mst, native_mst_weight
from repro.congest.primitives import distributed_bfs_tree
from repro.congest.runtime import RuntimeSimulator
from repro.core import CoreGraph, GraphView, nx_materializations
from repro.graphs.native import native_grid, string_argsort
from repro.structure.spanning import bfs_spanning_tree

SIDE = 316  # 316^2 = 99 856 nodes


def _serpentine_weights(view: GraphView, side: int) -> GraphView:
    """Reweight a ``side x side`` native grid along a serpentine path."""
    core = view.core
    labels = np.asarray(view.nodes, dtype=np.int64)
    indptr, indices = core.indptr, core.indices
    u_lab = np.repeat(labels, np.diff(indptr))
    v_lab = labels[indices]
    # Invert the generator's labelling (label = srank(r)*side + srank(c)):
    # string_argsort maps a string rank back to the coordinate.
    unrank = string_argsort(side)

    def positions(lab: np.ndarray) -> np.ndarray:
        r, c = unrank[lab // side], unrank[lab % side]
        return r * side + np.where(r % 2 == 0, c, side - 1 - c)

    p_u, p_v = positions(u_lab), positions(v_lab)
    on_path = np.abs(p_u - p_v) == 1
    weights = np.where(on_path, np.minimum(p_u, p_v) + 1.0, 1e7)
    weighted = CoreGraph.from_csr(
        indptr, indices, weights, sort_neighbours=core.sorted_adjacency
    )
    return GraphView.from_core(weighted, nodes=view.nodes, has_weights=True)


def test_scale_smoke_engine_mst_and_runtime_bfs_stay_nx_free():
    before = nx_materializations()
    n = SIDE * SIDE

    view = native_grid(SIDE, SIDE)
    assert view.core.num_nodes == n
    assert view.core.num_edges == 2 * SIDE * (SIDE - 1)

    tree = bfs_spanning_tree(view)
    assert tree.height == 2 * (SIDE - 1)

    weighted = _serpentine_weights(view, SIDE)
    mst = boruvka_mst(weighted, tree=tree)
    # The MST is the serpentine path: weights 1 .. n-1 (exact in float64).
    assert mst.weight == n * (n - 1) / 2
    assert mst.weight == native_mst_weight(weighted)
    assert mst.phases == 1
    assert mst.rounds > 0

    root = view.nodes[0]
    bfs_tree, stats = distributed_bfs_tree(view, root, simulator_cls=RuntimeSimulator)
    assert bfs_tree.height == 2 * (SIDE - 1)
    assert stats.rounds >= 2 * (SIDE - 1)

    # The whole pipeline never materialised an nx.Graph.
    assert nx_materializations() == before
