"""Smoke tests that every example script runs end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_at_least_three_scripts():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_runs_cleanly(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip()  # every example prints its findings
