"""Tests for the part-wise convenience wrappers (Boruvka building blocks)."""

import networkx as nx

from repro.algorithms.partwise import (
    minimum_outgoing_edges,
    partwise_component_ids,
    partwise_maximum,
    partwise_minimum,
    partwise_sum,
)
from repro.graphs.planar import grid_graph
from repro.graphs.weights import WEIGHT, assign_random_weights
from repro.shortcuts.congestion_capped import oblivious_shortcut
from repro.shortcuts.parts import tree_fragment_parts
from repro.structure.spanning import bfs_spanning_tree


def _instance():
    graph = grid_graph(5, 5)
    assign_random_weights(graph, seed=11, integer=True)
    tree = bfs_spanning_tree(graph)
    parts = tree_fragment_parts(graph, tree, num_parts=5, seed=12)
    shortcut = oblivious_shortcut(graph, tree, parts)
    return graph, parts, shortcut


def test_partwise_min_max_sum_match_central_results():
    graph, parts, shortcut = _instance()
    values = {v: (v * 17) % 29 for v in graph.nodes()}
    assert partwise_minimum(shortcut, values).values == [
        min(values[v] for v in part) for part in parts
    ]
    assert partwise_maximum(shortcut, values).values == [
        max(values[v] for v in part) for part in parts
    ]
    assert partwise_sum(shortcut, values).values == [
        sum(values[v] for v in part) for part in parts
    ]


def test_partwise_component_ids_are_consistent_within_parts():
    graph, parts, shortcut = _instance()
    mapping, rounds = partwise_component_ids(shortcut)
    assert rounds >= 0
    for part in parts:
        ids = {mapping[v] for v in part}
        assert len(ids) == 1
        assert next(iter(ids)) == min(part, key=repr)


def test_minimum_outgoing_edges_are_lightest_crossing_edges():
    graph, parts, shortcut = _instance()
    edges, rounds = minimum_outgoing_edges(graph, shortcut)
    assert rounds >= 1
    part_of = {}
    for index, part in enumerate(parts):
        for v in part:
            part_of[v] = index
    for index, edge in enumerate(edges):
        crossing = [
            (graph[u][v][WEIGHT], (u, v))
            for u, v in graph.edges()
            if (part_of.get(u) == index) != (part_of.get(v) == index)
        ]
        if not crossing:
            assert edge is None
            continue
        assert edge is not None
        best_weight = min(w for w, _ in crossing)
        u, v = edge
        assert graph[u][v][WEIGHT] == best_weight


def test_minimum_outgoing_edge_none_when_single_part():
    graph = grid_graph(3, 3)
    assign_random_weights(graph, seed=1)
    tree = bfs_spanning_tree(graph)
    parts = [frozenset(graph.nodes())]
    shortcut = oblivious_shortcut(graph, tree, parts)
    edges, _rounds = minimum_outgoing_edges(graph, shortcut)
    assert edges == [None]
