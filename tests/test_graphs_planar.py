"""Tests for the planar graph generators."""

import networkx as nx
import pytest

from repro.errors import InvalidGraphError
from repro.graphs.planar import (
    boundary_cycle,
    cycle_graph,
    cylinder_graph,
    embedding_faces,
    grid_graph,
    is_planar,
    planar_embedding,
    random_delaunay_triangulation,
    random_outerplanar_graph,
    random_series_parallel_graph,
    star_graph,
    wheel_graph,
)


def test_grid_graph_size_and_diameter():
    graph = grid_graph(4, 6)
    assert graph.number_of_nodes() == 24
    assert nx.diameter(graph) == 4 + 6 - 2
    assert is_planar(graph)


def test_grid_graph_rejects_degenerate_dimensions():
    with pytest.raises(InvalidGraphError):
        grid_graph(0, 5)


def test_cycle_and_star_and_wheel():
    assert cycle_graph(10).number_of_edges() == 10
    assert star_graph(5).number_of_nodes() == 6
    wheel = wheel_graph(12)
    assert wheel.number_of_nodes() == 13
    hub = max(wheel.nodes(), key=lambda v: wheel.degree(v))
    assert wheel.degree(hub) == 12
    assert nx.diameter(wheel) == 2
    with pytest.raises(InvalidGraphError):
        cycle_graph(2)


def test_cylinder_is_planar_and_regular_enough():
    graph = cylinder_graph(3, 8)
    assert graph.number_of_nodes() == 24
    assert is_planar(graph)
    assert nx.is_connected(graph)


def test_delaunay_triangulation_is_planar_and_connected():
    graph = random_delaunay_triangulation(60, seed=1)
    assert graph.number_of_nodes() == 60
    assert is_planar(graph)
    assert nx.is_connected(graph)


def test_delaunay_is_deterministic_for_fixed_seed():
    a = random_delaunay_triangulation(40, seed=9)
    b = random_delaunay_triangulation(40, seed=9)
    assert set(a.edges()) == set(b.edges())


def test_outerplanar_graph_is_planar_and_has_hamiltonian_boundary():
    graph = random_outerplanar_graph(15, seed=2)
    assert is_planar(graph)
    for i in range(15):
        assert graph.has_edge(i, (i + 1) % 15)


def test_series_parallel_graph_is_planar_and_connected():
    graph = random_series_parallel_graph(30, seed=3)
    assert graph.number_of_nodes() == 30
    assert is_planar(graph)
    assert nx.is_connected(graph)


def test_planar_embedding_rejects_nonplanar():
    with pytest.raises(InvalidGraphError):
        planar_embedding(nx.complete_graph(5))


def test_embedding_faces_satisfy_euler_formula():
    graph = grid_graph(4, 4)
    embedding = planar_embedding(graph)
    faces = embedding_faces(embedding)
    n, m, f = graph.number_of_nodes(), graph.number_of_edges(), len(faces)
    assert n - m + f == 2


def test_boundary_cycle_is_a_cycle_in_the_grid():
    rows, cols = 5, 7
    graph = grid_graph(rows, cols)
    cycle = boundary_cycle(rows, cols, graph)
    assert len(cycle) == 2 * (rows + cols) - 4
    for a, b in zip(cycle, list(cycle[1:]) + [cycle[0]]):
        assert graph.has_edge(a, b)
