"""Golden-record regression tests for the experiment layer.

Every experiment that the benchmarks print (and that EXPERIMENTS.md quotes)
is pinned here on small fixed-seed instances: the records are computed
fresh and compared field by field against ``tests/golden/records.json``.
This is what stops ports of the experiment layer -- like the move onto the
scenario engine -- from silently drifting: any change to MST round counts,
min-cut approximation ratios or self-reported shortcut qualities fails the
suite until the golden file is deliberately regenerated with::

    PYTHONPATH=src python tests/test_golden_records.py --write

(and the diff reviewed like any other behavioural change).
"""

from __future__ import annotations

import json
import math
import pathlib
import sys

import pytest

from repro.analysis.experiments import (
    experiment_apex,
    experiment_cells_and_gates,
    experiment_clique_sum,
    experiment_genus_vortex_treewidth,
    experiment_mincut,
    experiment_minor_free_quality,
    experiment_mst_rounds,
    experiment_planar_quality,
    experiment_scenario_matrix,
    experiment_treewidth_quality,
)

GOLDEN_PATH = pathlib.Path(__file__).resolve().parent / "golden" / "records.json"

# Small fixed-seed instances: a few seconds total, fully deterministic.
EXPERIMENTS = {
    "planar_quality": lambda: experiment_planar_quality(sides=(6, 10)),
    "treewidth_quality": lambda: experiment_treewidth_quality(widths=(2, 3), n=40, seed=7),
    "clique_sum": lambda: experiment_clique_sum(num_bags=4, bag_side=4, k=3, seed=11),
    "apex": lambda: experiment_apex(cycle_size=32, grid_side=7, seed=13),
    "minor_free_quality": lambda: experiment_minor_free_quality(
        bag_counts=(3, 4), k=3, bag_size=15, seed=17
    ),
    "mst_rounds": lambda: experiment_mst_rounds(
        grid_side=6, lower_bound_paths=4, lower_bound_length=4, seed=19
    ),
    "mincut": lambda: experiment_mincut(grid_side=6, epsilon=1.0, seed=23),
    "genus_vortex_treewidth": lambda: experiment_genus_vortex_treewidth(
        sides=(5,), genus=1, depth=2, vortices=1, seed=31
    ),
    "cells_gates": lambda: experiment_cells_and_gates(grid_side=7, seed=37),
    "scenario_matrix": lambda: experiment_scenario_matrix(size="tiny", algorithm="quality"),
}


def _normalise(record: dict) -> dict:
    """JSON round-trip: tuples become lists, keys become strings."""
    return json.loads(json.dumps(record, default=str))


def _assert_same(expected, actual, path: str = "") -> None:
    """Recursive equality with relative tolerance for floats."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected dict, got {type(actual)}"
        assert sorted(expected) == sorted(actual), (
            f"{path}: keys differ: {sorted(expected)} != {sorted(actual)}"
        )
        for key in expected:
            _assert_same(expected[key], actual[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{path}: expected list, got {type(actual)}"
        assert len(expected) == len(actual), f"{path}: length {len(expected)} != {len(actual)}"
        for index, (e, a) in enumerate(zip(expected, actual)):
            _assert_same(e, a, f"{path}[{index}]")
    elif isinstance(expected, float) or isinstance(actual, float):
        assert math.isclose(float(expected), float(actual), rel_tol=1e-9, abs_tol=1e-9), (
            f"{path}: {expected} != {actual}"
        )
    else:
        assert expected == actual, f"{path}: {expected!r} != {actual!r}"


def _load_golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"golden file missing: {GOLDEN_PATH}; regenerate with "
        "`PYTHONPATH=src python tests/test_golden_records.py --write`"
    )
    with GOLDEN_PATH.open(encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_matches_golden_record(name):
    golden = _load_golden()
    assert name in golden, f"no golden record for {name}; regenerate the golden file"
    _assert_same(golden[name], _normalise(EXPERIMENTS[name]()), path=name)


def test_golden_file_has_no_stale_entries():
    assert sorted(_load_golden()) == sorted(EXPERIMENTS)


def _write_golden() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    records = {name: _normalise(build()) for name, build in sorted(EXPERIMENTS.items())}
    with GOLDEN_PATH.open("w", encoding="utf-8") as handle:
        json.dump(records, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(records)} golden records to {GOLDEN_PATH}")


if __name__ == "__main__":
    if "--write" in sys.argv:
        _write_golden()
    else:
        print(__doc__)
