"""Round-trip and differential tests for the CSR kernel (``repro.core``).

Three layers:

* **round trip** -- for every registered graph family, the
  :class:`GraphView` conversion preserves labels, edges and effective edge
  weights, the index bijection is consistent, and witnesses survive (they
  live on the instance, untouched by the view);
* **differential** -- the CoreGraph fast paths (BFS spanning trees, graph
  diameter, shortcut quality measurement, heavy-light chains, core-mode
  simulator) must reproduce the ``networkx`` reference implementations
  *exactly* on every family;
* **end to end** -- a full tiny scenario matrix run inside
  ``networkx_reference_paths()`` (every dual-path function forced down its
  pre-CoreGraph branch) is record-for-record identical to the default
  CSR-backed run.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest.primitives import broadcast_value, distributed_bfs_tree, flood_max_id
from repro.core import CoreGraph, GraphView, networkx_reference_paths, view_of
from repro.errors import InvalidGraphError
from repro.graphs.planar import grid_graph
from repro.graphs.weights import WEIGHT, assign_random_weights
from repro.scenarios import (
    InstanceCache,
    applicable_constructors,
    build_instance,
    constructor,
    family_names,
    run_matrix,
    scenario_matrix,
)
from repro.structure.heavy_light import heavy_light_chains
from repro.structure.spanning import bfs_spanning_tree, graph_diameter


# ----------------------------------------------------------------- CoreGraph


def test_core_graph_csr_invariants():
    core = CoreGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3, 2.5)])
    assert core.num_nodes == 4 and core.num_edges == 4
    assert list(core.indptr) == [0, 2, 4, 6, 8]
    assert core.neighbors(0) == [1, 3]
    assert core.edge_weight(0, 3) == 2.5 and core.edge_weight(0, 1) == 1.0
    assert core.has_edge(2, 3) and not core.has_edge(0, 2)
    assert not core.has_edge(0, "elsewhere")
    assert core.is_connected()
    assert core.exact_diameter() == 2  # the 4-cycle


def test_core_graph_rejects_self_loops_and_range():
    with pytest.raises(InvalidGraphError):
        CoreGraph(3, [(1, 1)])
    with pytest.raises(InvalidGraphError):
        CoreGraph(3, [(0, 7)])


def test_core_graph_bfs_and_connectivity():
    core = CoreGraph(5, [(0, 1), (1, 2), (3, 4)])
    parents, order = core.bfs_parents(0)
    assert parents[0] == -1 and parents[2] == 1 and parents[3] == -2
    assert order == [0, 1, 2]
    assert not core.is_connected()
    with pytest.raises(InvalidGraphError):
        core.eccentricity(0)


# ---------------------------------------------------------------- round trip


_INSTANCES = {}


def _family_instance(name):
    if name not in _INSTANCES:
        _INSTANCES[name] = build_instance(name, seed=3)
    return _INSTANCES[name]


@pytest.mark.parametrize("family_name", family_names())
def test_graphview_round_trip_per_family(family_name):
    instance = _family_instance(family_name)
    graph = instance.graph
    witness_before = instance.witness
    view = instance.view
    assert view is view_of(graph), "instance view must be the shared memoised one"

    # The bijection is total and consistent.
    assert len(view) == graph.number_of_nodes()
    for index in range(len(view)):
        assert view.index_of(view.node_of(index)) == index
    for node in graph.nodes():
        assert view.node_of(view.index_of(node)) == node
        assert node in view

    # Round trip preserves labels, edges and effective weights.
    rebuilt = view.to_networkx()
    assert set(rebuilt.nodes()) == set(graph.nodes())
    assert {frozenset(edge) for edge in rebuilt.edges()} == {
        frozenset(edge) for edge in graph.edges()
    }
    for u, v, data in graph.edges(data=True):
        assert rebuilt[u][v].get(WEIGHT, 1.0) == data.get(WEIGHT, 1.0)

    # The witness rides on the instance, untouched by the conversion.
    assert instance.witness is witness_before


def test_graphview_round_trip_preserves_weights():
    graph = grid_graph(5, 5)
    assign_random_weights(graph, seed=11, integer=True)
    view = GraphView(graph)
    rebuilt = view.to_networkx()
    for u, v, data in graph.edges(data=True):
        assert rebuilt[u][v][WEIGHT] == data[WEIGHT]


def test_graphview_rejects_self_loops():
    graph = nx.Graph([(0, 1), (1, 1)])
    with pytest.raises(InvalidGraphError):
        GraphView(graph)


def test_view_of_is_memoised_per_graph_object():
    a, b = grid_graph(3, 3), grid_graph(3, 3)
    assert view_of(a) is view_of(a)
    assert view_of(a) is not view_of(b)
    assert view_of(view_of(a)) is view_of(a)


# --------------------------------------------------------------- differential


@pytest.mark.parametrize("family_name", family_names())
def test_core_bfs_tree_matches_networkx(family_name):
    instance = _family_instance(family_name)
    nx_tree = bfs_spanning_tree(instance.graph)
    core_tree = bfs_spanning_tree(instance.view)
    assert core_tree.root == nx_tree.root
    assert core_tree.parent == nx_tree.parent
    assert core_tree.depth == nx_tree.depth


@pytest.mark.parametrize("family_name", family_names())
def test_core_diameter_matches_networkx(family_name):
    instance = _family_instance(family_name)
    assert graph_diameter(instance.view) == graph_diameter(instance.graph)


@pytest.mark.parametrize("family_name", family_names())
def test_quality_measurement_matches_reference(family_name):
    """measure() (flat arrays) == measure_reference() (per-part nx graphs)."""
    instance = _family_instance(family_name)
    parts = instance.parts("tree_fragments", num_parts=6, seed=3)
    for name in applicable_constructors(instance):
        shortcut = constructor(name).build(instance, instance.tree, parts)
        assert shortcut.measure() == shortcut.measure_reference(), name


def _reference_heavy_light_chains(tree, root):
    """The pre-CoreGraph dict-of-dict implementation, kept here as the oracle."""
    if tree.number_of_nodes() == 0:
        return []
    parent = {root: None}
    order = []
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        for neighbour in tree.neighbors(node):
            if neighbour not in parent:
                parent[neighbour] = node
                stack.append(neighbour)
    size = {node: 1 for node in parent}
    for node in reversed(order):
        if parent[node] is not None:
            size[parent[node]] += size[node]
    heavy_child = {}
    for node in parent:
        children = [c for c in tree.neighbors(node) if parent.get(c) == node]
        heavy_child[node] = max(children, key=lambda c: (size[c], repr(c))) if children else None
    chains = []
    chain_of = set()
    for node in order:
        if node in chain_of:
            continue
        chain = [node]
        chain_of.add(node)
        current = node
        while heavy_child[current] is not None:
            current = heavy_child[current]
            chain.append(current)
            chain_of.add(current)
        chains.append(chain)
    return chains


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_heavy_light_chains_match_reference(seed):
    import random

    rng = random.Random(seed)
    tree = nx.random_labeled_tree(40, seed=rng.randint(0, 10_000))
    root = min(tree.nodes())
    assert heavy_light_chains(tree, root) == _reference_heavy_light_chains(tree, root)


def test_core_mode_primitives_match_label_mode():
    graph = grid_graph(7, 7)
    assign_random_weights(graph, seed=5, integer=True)
    view = view_of(graph)

    nx_tree, nx_stats = distributed_bfs_tree(graph, 0)
    core_tree, core_stats = distributed_bfs_tree(view, 0)
    assert core_tree.parent == nx_tree.parent
    assert (core_stats.rounds, core_stats.messages, core_stats.words) == (
        nx_stats.rounds,
        nx_stats.messages,
        nx_stats.words,
    )
    assert core_stats.telemetry == nx_stats.telemetry
    assert core_stats.outputs.keys() == nx_stats.outputs.keys()  # label-keyed

    assert flood_max_id(view)[0] == flood_max_id(graph)[0]

    nx_bc = broadcast_value(graph, 0, ("v", 7))
    core_bc = broadcast_value(view, 0, ("v", 7))
    assert core_bc == nx_bc  # outputs carry the value, so full equality holds


# --------------------------------------------------------------- end to end


def test_tiny_matrix_identical_with_and_without_core_paths():
    cache = InstanceCache()
    scenarios = scenario_matrix(size="tiny", cache=cache)
    fast = run_matrix(scenarios, cache=cache)
    with networkx_reference_paths():
        reference = run_matrix(scenarios)
    assert fast == reference


def test_mst_scenario_identical_with_and_without_core_paths():
    from repro.scenarios import Scenario, run_scenario

    scenario = Scenario(
        name="planar/steiner/mst",
        family="planar",
        constructor="steiner",
        algorithm="mst",
        params={"side": 6},
        seed=2,
    )
    fast = run_scenario(scenario).as_dict()
    with networkx_reference_paths():
        reference = run_scenario(scenario).as_dict()
    for key in ("mst_rounds", "mst_phases", "mst_weight", "sim_rounds", "sim_messages", "sim_words"):
        assert fast["result"][key] == reference["result"][key], key
