"""Differential wall: every CSR-native generator equals its ``nx`` twin.

The dual-path contract of :mod:`repro.graphs.native` (the same pattern as
:func:`repro.core.networkx_reference_paths`): for every family in
``NATIVE_GENERATORS`` and every registered parameter case, the native
generator's canonical node ordering, CSR structure arrays, and hashed edge
weights are *exactly* equal -- not isomorphic, not approximately equal --
to the preserved ``nx`` generator's output converted through
:class:`~repro.core.GraphView`.  The lazy adapter must round-trip back to
the twin graph, and the equality must hold inside the reference-paths
context too, so either path can serve as the oracle for the other.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core import networkx_reference_paths, nx_materializations, view_of
from repro.graphs.native import NATIVE_GENERATORS, with_hashed_weights
from repro.graphs.weights import WEIGHT, assign_hashed_weights

CASES = [
    pytest.param(family, dict(kwargs), id=f"{family}-{i}")
    for family, (_, _, cases) in sorted(NATIVE_GENERATORS.items())
    for i, kwargs in enumerate(cases)
]

WEIGHT_SEEDS = (0, 13)


def _pair(family: str, kwargs: dict):
    native_fn, twin_fn, _ = NATIVE_GENERATORS[family]
    return native_fn(**kwargs), twin_fn(**kwargs)


def _assert_same_structure(native, twin_view) -> None:
    assert native.nodes == twin_view.nodes
    np.testing.assert_array_equal(native.core.indptr, twin_view.core.indptr)
    np.testing.assert_array_equal(native.core.indices, twin_view.core.indices)


@pytest.mark.parametrize("family, kwargs", CASES)
def test_structure_equals_nx_twin(family, kwargs):
    native, twin = _pair(family, kwargs)
    twin_view = view_of(twin)
    _assert_same_structure(native, twin_view)
    # Index order is the package-wide canonical (repr) node order.
    assert native.nodes == sorted(native.nodes, key=repr)
    assert native.core.num_nodes == twin.number_of_nodes()
    assert native.core.num_edges == twin.number_of_edges()


@pytest.mark.parametrize("family, kwargs", CASES)
def test_edge_set_equals_nx_twin_in_label_space(family, kwargs):
    native, twin = _pair(family, kwargs)
    nodes = native.nodes
    indptr, indices = native.core.indptr, native.core.indices
    native_edges = set()
    for u in range(native.core.num_nodes):
        for v in indices[indptr[u] : indptr[u + 1]].tolist():
            if u < v:
                native_edges.add((min(nodes[u], nodes[v]), max(nodes[u], nodes[v])))
    twin_edges = {(min(u, v), max(u, v)) for u, v in twin.edges()}
    assert native_edges == twin_edges


@pytest.mark.parametrize("family, kwargs", CASES)
@pytest.mark.parametrize("seed", WEIGHT_SEEDS)
@pytest.mark.parametrize("integer", (False, True))
def test_weights_equal_nx_twin(family, kwargs, seed, integer):
    native_fn, twin_fn, _ = NATIVE_GENERATORS[family]
    native = native_fn(**kwargs, weight_seed=seed, integer=integer)
    twin = twin_fn(**kwargs)
    assign_hashed_weights(twin, seed, integer=integer)
    twin_view = view_of(twin)
    _assert_same_structure(native, twin_view)
    assert native.has_weights and twin_view.has_weights
    # Bitwise equality: the hashed scheme draws the identical float for a
    # label pair on both paths, so no tolerance is needed or allowed.
    np.testing.assert_array_equal(native.core.weights, twin_view.core.weights)


@pytest.mark.parametrize("family, kwargs", CASES)
def test_with_hashed_weights_equals_generator_weights(family, kwargs):
    native_fn, _, _ = NATIVE_GENERATORS[family]
    seed = 7
    rewired = with_hashed_weights(native_fn(**kwargs), seed, integer=True)
    direct = native_fn(**kwargs, weight_seed=seed, integer=True)
    _assert_same_structure(rewired, direct)
    np.testing.assert_array_equal(rewired.core.weights, direct.core.weights)


@pytest.mark.parametrize("family, kwargs", CASES)
def test_lazy_adapter_round_trips_to_twin(family, kwargs):
    native_fn, twin_fn, _ = NATIVE_GENERATORS[family]
    native = native_fn(**kwargs, weight_seed=3, integer=True)
    before = nx_materializations()
    adapter = native.graph
    # Exactly one materialisation, memoised on repeat access.
    assert nx_materializations() == before + 1
    assert native.graph is adapter
    assert nx_materializations() == before + 1
    twin = twin_fn(**kwargs)
    assign_hashed_weights(twin, 3, integer=True)
    assert sorted(adapter.nodes(), key=repr) == sorted(twin.nodes(), key=repr)
    assert {
        (min(u, v), max(u, v)): data[WEIGHT]
        for u, v, data in adapter.edges(data=True)
    } == {
        (min(u, v), max(u, v)): data[WEIGHT] for u, v, data in twin.edges(data=True)
    }
    # The adapter is wired back to its view: converting it is a no-op.
    assert view_of(adapter) is native


@pytest.mark.parametrize("family, kwargs", CASES)
def test_equality_holds_under_reference_paths(family, kwargs):
    with networkx_reference_paths():
        native, twin = _pair(family, kwargs)
        _assert_same_structure(native, view_of(twin))


def test_unweighted_views_report_no_weights():
    native_fn, twin_fn, cases = NATIVE_GENERATORS["grid"]
    native = native_fn(**cases[0])
    assert not native.has_weights
    assert not view_of(twin_fn(**cases[0])).has_weights
