"""Tests for tree decompositions, heavy-light chains and decomposition folding."""

import networkx as nx
import pytest

from repro.errors import InvalidDecompositionError
from repro.graphs.apex_vortex import build_almost_embeddable
from repro.graphs.clique_sum import clique_sum_compose
from repro.graphs.planar import grid_graph
from repro.graphs.treewidth import random_ktree
from repro.structure.heavy_light import (
    fold_decomposition_tree,
    heavy_light_chains,
    identity_folding,
)
from repro.structure.spanning import bfs_spanning_tree
from repro.structure.tree_decomposition import (
    genus_vortex_decomposition,
    greedy_tree_decomposition,
    treewidth_upper_bound,
    validate_tree_decomposition,
)


# --------------------------------------------------------- tree decompositions


def test_greedy_decomposition_is_valid_for_grid():
    graph = grid_graph(5, 5)
    decomposition = greedy_tree_decomposition(graph)
    decomposition.validate(graph)
    # Treewidth of an n x n grid is n; the heuristic may overshoot slightly.
    assert decomposition.width >= 4
    assert decomposition.width <= 10


def test_greedy_decomposition_exact_on_ktrees():
    witness = random_ktree(25, 3, seed=1)
    assert treewidth_upper_bound(witness.graph) == 3


def test_validate_tree_decomposition_catches_missing_edge():
    graph = nx.path_graph(4)
    bad = nx.Graph()
    bad.add_node(frozenset({0, 1}))
    bad.add_node(frozenset({2, 3}))
    bad.add_edge(frozenset({0, 1}), frozenset({2, 3}))
    with pytest.raises(InvalidDecompositionError):
        validate_tree_decomposition(graph, bad)  # edge (1, 2) is uncovered


def test_single_vertex_decomposition():
    graph = nx.Graph()
    graph.add_node(0)
    decomposition = greedy_tree_decomposition(graph)
    assert decomposition.width == 0


def test_genus_vortex_decomposition_covers_vortex_nodes():
    witness = build_almost_embeddable(q=0, g=0, k=2, l=1, base_rows=6, base_cols=6, seed=2)
    decomposition = genus_vortex_decomposition(witness)
    decomposition.validate(witness.non_apex_graph())
    vortex_nodes = witness.vortex_nodes()
    assert vortex_nodes
    for node in vortex_nodes:
        assert any(node in bag for bag in decomposition.tree.nodes())


def test_genus_vortex_decomposition_width_scales_with_diameter():
    small = build_almost_embeddable(q=0, g=0, k=1, l=1, base_rows=5, base_cols=5, seed=3)
    decomposition = genus_vortex_decomposition(small)
    graph = small.non_apex_graph()
    diameter = nx.diameter(graph)
    # Lemma 3: width = O((g+1) k l D); with g=0, k<=2, l=1 allow a generous constant.
    assert decomposition.width <= 6 * max(1, diameter)


# --------------------------------------------------------- heavy-light + folding


def test_heavy_light_chains_partition_the_tree():
    graph = grid_graph(4, 6)
    tree = bfs_spanning_tree(graph)
    chains = heavy_light_chains(tree.as_graph(), tree.root)
    seen = set()
    for chain in chains:
        assert not (set(chain) & seen)
        seen |= set(chain)
    assert seen == set(graph.nodes())


def test_heavy_light_chains_root_to_leaf_crossings_are_logarithmic():
    # A path: a single chain.  A star: one chain per leaf (but every
    # root-to-leaf path crosses only 2 chains).
    path = nx.path_graph(32)
    assert len(heavy_light_chains(path, 0)) == 1
    star = nx.star_graph(16)
    chains = heavy_light_chains(star, 0)
    assert all(len(chain) <= 2 for chain in chains)


def test_fold_decomposition_tree_reduces_depth_of_paths():
    components = [grid_graph(3, 3) for _ in range(16)]
    decomposition = clique_sum_compose(components, k=2, seed=4, tree_shape="path")
    assert decomposition.depth(root=0) == 15
    folded = fold_decomposition_tree(decomposition, root_bag=0)
    folded.validate()
    assert folded.depth() <= 6  # ~ log2(16) groups of a single chain
    # Folding preserves the bag set as a partition.
    all_bags = sorted(bag for bags in folded.groups.values() for bag in bags)
    assert all_bags == sorted(decomposition.bags.keys())


def test_identity_folding_preserves_depth():
    components = [grid_graph(3, 3) for _ in range(6)]
    decomposition = clique_sum_compose(components, k=2, seed=5, tree_shape="path")
    identity = identity_folding(decomposition, root_bag=0)
    identity.validate()
    assert identity.depth() == decomposition.depth(root=0)


def test_folded_group_vertices_union_member_bags():
    components = [grid_graph(3, 3) for _ in range(5)]
    decomposition = clique_sum_compose(components, k=2, seed=6, tree_shape="random")
    folded = fold_decomposition_tree(decomposition)
    for group in folded.tree.nodes():
        expected = set()
        for bag_index in folded.member_bags(group):
            expected |= decomposition.bags[bag_index].nodes
        assert folded.group_vertices(group) == frozenset(expected)
