"""Tests for genus, treewidth, apex/vortex, clique-sum and L_k generators."""

import networkx as nx
import pytest

from repro.errors import InvalidDecompositionError, InvalidGraphError
from repro.graphs.apex_vortex import add_apices, add_vortex, build_almost_embeddable
from repro.graphs.clique_sum import (
    clique_sum_compose,
    decomposition_from_tree_decomposition,
)
from repro.graphs.genus import genus_grid, genus_upper_bound_from_euler, toroidal_grid
from repro.graphs.lower_bound import lower_bound_graph
from repro.graphs.minor_free import perturbed_planar_graph, planar_plus_apex, sample_lk_graph
from repro.graphs.planar import boundary_cycle, grid_graph, is_planar
from repro.graphs.treewidth import random_caterpillar_tree, random_ktree, random_partial_ktree
from repro.graphs.weights import (
    assign_adversarial_weights,
    assign_random_weights,
    assign_unit_weights,
    total_weight,
)
from repro.structure.tree_decomposition import validate_tree_decomposition


# ---------------------------------------------------------------- genus


def test_toroidal_grid_is_nonplanar_and_4_regular():
    torus = toroidal_grid(5, 6)
    assert torus.genus == 1
    assert not is_planar(torus.graph)
    assert all(degree == 4 for _, degree in torus.graph.degree())


def test_genus_grid_adds_the_requested_number_of_handles():
    result = genus_grid(8, 8, genus=3, seed=1)
    assert result.genus == 3
    assert len(result.handles) == 3
    base_edges = grid_graph(8, 8).number_of_edges()
    assert result.graph.number_of_edges() == base_edges + 3


def test_genus_grid_rejects_impossible_requests():
    with pytest.raises(InvalidGraphError):
        genus_grid(3, 3, genus=100, seed=0)


def test_euler_genus_bound_is_zero_for_planar():
    assert genus_upper_bound_from_euler(grid_graph(5, 5)) == 0
    assert genus_upper_bound_from_euler(nx.complete_graph(7)) >= 1


# ---------------------------------------------------------------- treewidth


def test_random_ktree_has_valid_decomposition_of_width_k():
    witness = random_ktree(25, 3, seed=2)
    assert witness.width == 3
    validate_tree_decomposition(witness.graph, witness.decomposition)
    assert max(len(bag) for bag in witness.decomposition.nodes()) == 4


def test_random_partial_ktree_is_connected_subgraph_of_ktree():
    witness = random_partial_ktree(30, 2, keep_probability=0.5, seed=3)
    assert nx.is_connected(witness.graph)
    validate_tree_decomposition(witness.graph, witness.decomposition)


def test_random_caterpillar_tree_is_a_tree():
    tree = random_caterpillar_tree(20, seed=4)
    assert nx.is_tree(tree)
    assert tree.number_of_nodes() == 20


# ---------------------------------------------------------------- apex / vortex


def test_add_apices_connects_and_labels_new_vertices():
    base = grid_graph(4, 4)
    graph, apices = add_apices(base, 2, attach_probability=0.5, seed=5)
    assert len(apices) == 2
    assert graph.number_of_nodes() == 18
    for apex in apices:
        assert graph.degree(apex) >= 1
    # Apices are interconnected by default (Definition 5 (iii)).
    assert graph.has_edge(apices[0], apices[1])


def test_add_vortex_respects_depth_and_arc_adjacency():
    rows = cols = 5
    graph = grid_graph(rows, cols)
    cycle = boundary_cycle(rows, cols)
    augmented, witness = add_vortex(graph, cycle, depth=2, seed=6)
    witness.validate(augmented)
    assert witness.internal_nodes
    # Internal nodes only touch their own arcs.
    for node in witness.internal_nodes:
        arc = set(witness.arcs[node])
        for neighbour in augmented.neighbors(node):
            assert neighbour in arc or neighbour in witness.internal_nodes


def test_add_vortex_rejects_non_cycles():
    graph = grid_graph(4, 4)
    with pytest.raises(InvalidGraphError):
        add_vortex(graph, [0, 5, 10], depth=2)  # not a cycle in the grid


def test_build_almost_embeddable_records_parameters():
    witness = build_almost_embeddable(q=2, g=1, k=2, l=1, base_rows=6, base_cols=6, seed=7)
    q, g, k, l = witness.parameters
    assert q == 2 and g == 1 and l == 1 and k >= 2
    witness.validate()
    assert len(witness.apices) == 2
    assert witness.vortex_nodes()
    # Removing the apices leaves the surface + vortex part connected.
    assert nx.is_connected(witness.non_apex_graph())


# ---------------------------------------------------------------- clique sums


def test_clique_sum_compose_validates_definition_8():
    components = [grid_graph(4, 4), grid_graph(3, 5), grid_graph(4, 3)]
    decomposition = clique_sum_compose(components, k=3, seed=8)
    decomposition.validate()
    assert len(decomposition.bags) == 3
    assert decomposition.max_partial_clique_size() <= 3
    assert nx.is_connected(decomposition.graph)


def test_clique_sum_path_shape_has_linear_depth():
    components = [grid_graph(3, 3) for _ in range(6)]
    decomposition = clique_sum_compose(components, k=2, seed=9, tree_shape="path")
    assert decomposition.depth(root=0) == 5


def test_clique_sum_completed_bag_contains_partial_clique_edges():
    components = [grid_graph(4, 4), grid_graph(4, 4)]
    decomposition = clique_sum_compose(components, k=3, seed=10)
    for edge in decomposition.tree.edges():
        clique = decomposition.partial_cliques[frozenset(edge)]
        for bag_index in edge:
            completed = decomposition.completed_bag_graph(bag_index)
            clique_list = sorted(clique)
            for i in range(len(clique_list)):
                for j in range(i + 1, len(clique_list)):
                    assert completed.has_edge(clique_list[i], clique_list[j])


def test_clique_sum_edge_deletion_keeps_graph_connected():
    components = [grid_graph(4, 4) for _ in range(4)]
    decomposition = clique_sum_compose(components, k=3, seed=11, delete_probability=0.8)
    decomposition.validate()
    assert nx.is_connected(decomposition.graph)


def test_decomposition_from_tree_decomposition_round_trip():
    witness = random_ktree(20, 2, seed=12)
    view = decomposition_from_tree_decomposition(
        witness.graph, witness.decomposition, witness.width
    )
    view.validate()
    assert view.k == witness.width + 1


def test_clique_sum_rejects_empty_or_disconnected_components():
    with pytest.raises(InvalidGraphError):
        clique_sum_compose([], k=2)
    disconnected = nx.Graph()
    disconnected.add_nodes_from([0, 1])
    with pytest.raises(InvalidGraphError):
        clique_sum_compose([disconnected], k=2)


# ---------------------------------------------------------------- L_k samples


def test_sample_lk_graph_is_connected_with_valid_witness():
    sample = sample_lk_graph(num_bags=5, k=3, bag_size=18, seed=13)
    assert nx.is_connected(sample.graph)
    sample.decomposition.validate()
    assert len(sample.decomposition.bags) == 5
    kinds = {bag.kind for bag in sample.decomposition.bags.values()}
    assert kinds <= {"planar", "treewidth", "almost_embeddable"}


def test_planar_plus_apex_witness_is_consistent():
    witness = planar_plus_apex(6, 6, apices=2, seed=14)
    witness.validate()
    assert len(witness.apices) == 2
    assert witness.graph.number_of_nodes() == 38


def test_perturbed_planar_graph_accounts_for_extra_edges():
    graph, witness = perturbed_planar_graph(6, 6, extra_edges=3, extra_apices=1, seed=15)
    assert witness.genus == 3
    assert len(witness.apices) == 1
    witness.validate()
    assert nx.is_connected(graph)


# ---------------------------------------------------------------- lower bound & weights


def test_lower_bound_graph_shape():
    instance = lower_bound_graph(6, 16)
    graph = instance.graph
    assert nx.is_connected(graph)
    assert len(instance.path_starts) == 6
    # Small diameter despite long paths.
    assert nx.diameter(graph) <= 2 * (16).bit_length() + 6
    with pytest.raises(InvalidGraphError):
        lower_bound_graph(0, 5)


def test_weight_assignments():
    graph = grid_graph(4, 4)
    assign_unit_weights(graph)
    assert total_weight(graph) == graph.number_of_edges()
    assign_random_weights(graph, seed=1, integer=True)
    weights = {graph[u][v]["weight"] for u, v in graph.edges()}
    assert len(weights) == graph.number_of_edges()  # tie-breaker makes them unique
    assign_adversarial_weights(graph, seed=2)
    light = [w for _, _, w in graph.edges(data="weight") if w < 100]
    assert light  # the spine edges are light
