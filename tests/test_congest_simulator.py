"""Tests for the active-set simulator: semantics, determinism, telemetry.

The heart of the module is the differential layer: for every workload, the
active-set :class:`CongestSimulator` must produce a :class:`SimulationResult`
*identical* (rounds, messages, words, outputs, per-round telemetry) to the
full-scan :class:`ReferenceSimulator`, which preserves the seed
implementation's execute-everything semantics.  The idle-node fast path is
therefore observationally invisible.
"""

import networkx as nx
import pytest

from repro.congest.node import NodeContext, NodeProgram
from repro.congest.primitives import broadcast_value, distributed_bfs_tree, flood_max_id
from repro.congest.reference import ReferenceSimulator
from repro.congest.simulator import CongestSimulator
from repro.errors import SimulationError
from repro.graphs.lower_bound import lower_bound_graph
from repro.graphs.planar import grid_graph, wheel_graph


class _PulseProgram(NodeProgram):
    """Sends its id for a fixed number of rounds, then goes quiet and halts."""

    def __init__(self, context: NodeContext, pulses: int = 3) -> None:
        super().__init__(context)
        self.pulses = pulses

    def on_start(self):
        return {neighbour: 1 for neighbour in self.context.neighbours}

    def on_round(self, round_number, inbox):
        if round_number <= self.pulses:
            return {neighbour: round_number for neighbour in self.context.neighbours}
        self.halted = True
        return {}


class _WakeOnMessageProgram(NodeProgram):
    """Halts immediately; node 0 pokes it later (tests the halted+inbox wake)."""

    def on_start(self):
        if self.context.node == 0:
            self.received_pokes = 0
            return {}
        self.halted = True
        return {}

    def on_round(self, round_number, inbox):
        if self.context.node == 0 and round_number == 4:
            self.halted = True
            return {neighbour: "poke" for neighbour in self.context.neighbours}
        if self.context.node != 0 and inbox:
            self.woken_at = round_number
        self.halted = self.context.node != 0 or round_number >= 4
        return {}

    def result(self):
        return getattr(self, "woken_at", None)


class _DiameterReaderProgram(NodeProgram):
    """Reads context.diameter_bound (forces the lazy computation)."""

    def on_start(self):
        self.seen = self.context.diameter_bound
        self.halted = True
        return {}

    def result(self):
        return self.seen


# ------------------------------------------------------------- differential


@pytest.mark.parametrize(
    "make_graph",
    [
        lambda: grid_graph(5, 5),
        lambda: wheel_graph(16),
        lambda: lower_bound_graph(3, 4).graph,
    ],
    ids=["grid", "wheel", "lower_bound"],
)
@pytest.mark.parametrize(
    "factory",
    [NodeProgram, _PulseProgram, _WakeOnMessageProgram],
    ids=["idle", "pulse", "wake"],
)
def test_active_set_matches_reference_exactly(make_graph, factory):
    fast = CongestSimulator(make_graph(), factory).run()
    slow = ReferenceSimulator(make_graph(), factory).run()
    assert fast == slow  # rounds, messages, words, outputs AND telemetry


@pytest.mark.parametrize(
    "primitive",
    [
        lambda g, cls: distributed_bfs_tree(g, root=0, simulator_cls=cls)[1],
        lambda g, cls: flood_max_id(g, simulator_cls=cls)[1],
        lambda g, cls: broadcast_value(g, 0, ("v", 7), simulator_cls=cls),
    ],
    ids=["bfs", "flood_max", "broadcast"],
)
def test_primitives_match_reference_exactly(primitive):
    graph = grid_graph(6, 6)
    assert primitive(graph, CongestSimulator) == primitive(graph, ReferenceSimulator)


# -------------------------------------------------------------- determinism


def test_determinism_under_node_order_permutation():
    ordered = grid_graph(5, 5)
    shuffled = nx.Graph()
    shuffled.add_nodes_from(reversed(list(ordered.nodes())))
    shuffled.add_edges_from(reversed(list(ordered.edges())))
    for factory in (_PulseProgram, _WakeOnMessageProgram):
        a = CongestSimulator(ordered, factory).run()
        b = CongestSimulator(shuffled, factory).run()
        assert a == b


# --------------------------------------------------------------- quiescence


def test_idle_network_costs_zero_rounds():
    result = CongestSimulator(grid_graph(4, 4), NodeProgram).run()
    assert result.rounds == 0
    assert result.messages == 0
    # The programs still executed (on_start plus one halting on_round).
    assert [entry.active_nodes for entry in result.telemetry] == [16, 16]


def test_rounds_is_last_communication_round():
    result = CongestSimulator(grid_graph(4, 4), _PulseProgram).run()
    by_round = {entry.round: entry for entry in result.telemetry}
    last_with_traffic = max(r for r, entry in by_round.items() if entry.messages > 0)
    # The delivery of the last pulse still counts as a round.
    assert result.rounds == last_with_traffic + 1


def test_halted_nodes_wake_on_message():
    result = CongestSimulator(grid_graph(3, 3), _WakeOnMessageProgram).run()
    neighbours_of_zero = set(grid_graph(3, 3).neighbors(0))
    for node, woken_at in result.outputs.items():
        assert (woken_at == 5) == (node in neighbours_of_zero)


def test_divergent_program_raises():
    class _Chatterbox(NodeProgram):
        def on_start(self):
            return {neighbour: 1 for neighbour in self.context.neighbours}

        def on_round(self, round_number, inbox):
            return {neighbour: 1 for neighbour in self.context.neighbours}

    with pytest.raises(SimulationError, match="did not converge"):
        CongestSimulator(grid_graph(3, 3), _Chatterbox).run(max_rounds=50)


# ---------------------------------------------------------------- telemetry


def test_telemetry_totals_are_consistent():
    result = CongestSimulator(grid_graph(5, 5), _PulseProgram).run()
    assert sum(entry.messages for entry in result.telemetry) == result.messages
    assert sum(entry.words for entry in result.telemetry) == result.words
    assert result.peak_active_nodes() == 25
    assert result.total_active_node_rounds() >= 25


def test_active_set_shrinks_as_programs_halt():
    _, result = distributed_bfs_tree(grid_graph(7, 7), root=0)
    actives = [entry.active_nodes for entry in result.telemetry]
    # The BFS wavefront: everyone runs round 1, then the frontier shrinks to
    # the last corner instead of staying at n (the full-scan cost profile).
    assert actives[0] == 49
    assert actives[-1] < 10


# ------------------------------------------------------------ lazy diameter


def test_diameter_bound_is_lazy(monkeypatch):
    def _boom(*args, **kwargs):
        raise AssertionError("nx.diameter should not be called")

    monkeypatch.setattr(nx, "diameter", _boom)
    # BFS never reads context.diameter_bound: no diameter computation.
    tree, _ = distributed_bfs_tree(grid_graph(6, 6), root=0)
    assert tree.height > 0


def test_diameter_bound_computed_on_demand():
    graph = grid_graph(4, 4)
    simulator = CongestSimulator(graph, _DiameterReaderProgram)
    result = simulator.run()
    assert set(result.outputs.values()) == {nx.diameter(graph)}


def test_explicit_diameter_bound_respected():
    simulator = CongestSimulator(grid_graph(3, 3), _DiameterReaderProgram, diameter_bound=99)
    result = simulator.run()
    assert set(result.outputs.values()) == {99}


def test_reference_simulator_computes_diameter_eagerly():
    simulator = ReferenceSimulator(grid_graph(4, 4), NodeProgram)
    assert simulator._diameter_bound == nx.diameter(grid_graph(4, 4))


# ------------------------------------------------------------- enforcement


class _OversizedProgram(NodeProgram):
    def on_start(self):
        return {neighbour: tuple(range(50)) for neighbour in self.context.neighbours[:1]}


class _StrangerProgram(NodeProgram):
    def on_start(self):
        return {"not-a-neighbour": 1}


@pytest.mark.parametrize("simulator_cls", [CongestSimulator, ReferenceSimulator])
def test_bandwidth_and_topology_enforced(simulator_cls):
    with pytest.raises(SimulationError, match="exceeding the bandwidth"):
        simulator_cls(grid_graph(3, 3), _OversizedProgram).run()
    with pytest.raises(SimulationError, match="non-neighbour"):
        simulator_cls(grid_graph(3, 3), _StrangerProgram).run()


class _MidRunOversizedProgram(NodeProgram):
    def on_start(self):
        return {neighbour: 1 for neighbour in self.context.neighbours}

    def on_round(self, round_number, inbox):
        if round_number == 3:
            return {neighbour: tuple(range(50)) for neighbour in self.context.neighbours[:1]}
        return {neighbour: 1 for neighbour in self.context.neighbours}


def test_bandwidth_enforced_mid_run():
    with pytest.raises(SimulationError, match="exceeding the bandwidth"):
        CongestSimulator(grid_graph(3, 3), _MidRunOversizedProgram).run()
