"""Tests for the exact minor-containment search and generator validation."""

import networkx as nx
import pytest

from repro.errors import InvalidGraphError
from repro.graphs.minors import (
    complete_bipartite_minor,
    complete_graph_minor,
    excludes_minor,
    has_minor,
    verify_family_exclusion,
)
from repro.graphs.planar import (
    grid_graph,
    random_outerplanar_graph,
    random_series_parallel_graph,
    wheel_graph,
)
from repro.graphs.treewidth import random_caterpillar_tree, random_ktree


def test_k3_minor_in_any_cycle_but_not_in_trees():
    assert has_minor(nx.cycle_graph(8), complete_graph_minor(3))
    tree = random_caterpillar_tree(15, seed=1)
    assert excludes_minor(tree, complete_graph_minor(3))


def test_k4_minor_in_wheel_but_not_series_parallel():
    assert has_minor(wheel_graph(6), complete_graph_minor(4))
    sp = random_series_parallel_graph(18, seed=2)
    assert excludes_minor(sp, complete_graph_minor(4))


def test_k5_and_k33_absent_from_planar_grids():
    grid = grid_graph(4, 5)
    assert excludes_minor(grid, complete_graph_minor(5))
    # K_{3,3} *is* a minor of a large enough grid; on a 2-row grid it is not.
    thin = grid_graph(2, 6)
    assert excludes_minor(thin, complete_bipartite_minor(3, 3))


def test_grid_contains_k4_minor():
    assert has_minor(grid_graph(3, 3), complete_graph_minor(4))


def test_complete_graph_detected_by_clique_fast_path():
    assert has_minor(nx.complete_graph(6), complete_graph_minor(5))


def test_ktree_excludes_larger_clique_minor():
    witness = random_ktree(14, 2, seed=3)
    assert excludes_minor(witness.graph, complete_graph_minor(5))


def test_outerplanar_excludes_k4():
    graph = random_outerplanar_graph(12, seed=4)
    assert excludes_minor(graph, complete_graph_minor(4))


def test_verify_family_exclusion_over_a_small_family():
    family = [random_series_parallel_graph(12, seed=s) for s in range(4)]
    assert verify_family_exclusion(family, complete_graph_minor(4))


def test_minor_node_limit_guard():
    big = nx.path_graph(100)
    with pytest.raises(InvalidGraphError):
        has_minor(big, complete_graph_minor(3))
    # Raising the limit explicitly allows the call.
    assert excludes_minor(big, complete_graph_minor(3), node_limit=200)
