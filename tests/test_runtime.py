"""Differential tests for the vectorized CONGEST runtime.

The runtime's contract (docs/simulator.md) is *observational equality*:
for every compiled program family, a :class:`RuntimeSimulator` execution
must produce a :class:`SimulationResult` **identical** -- rounds, messages,
words, label-keyed outputs and per-round telemetry including executed-node
counts -- to the per-node active-set :class:`CongestSimulator` and the
full-scan :class:`ReferenceSimulator` on the same network.  The suite pins
this across every registered scenario family (all 7) for the BFS and
broadcast programs the MST scenario simulates, plus the flood-max and
convergecast programs, and checks the new mode's exception contract
(empty/disconnected networks, label-space networks, factories without a
compiled twin, bandwidth enforcement).
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest import (
    CongestSimulator,
    ReferenceSimulator,
    RuntimeSimulator,
    broadcast_value,
    convergecast_aggregate,
    distributed_bfs_tree,
    flood_max_id,
)
from repro.congest.node import NodeProgram
from repro.core import view_of
from repro.errors import InvalidGraphError, SimulationError
from repro.graphs.planar import grid_graph
from repro.scenarios import Scenario, build_instance, run_scenario
from repro.scenarios.registry import family, family_names

ALL_SIMULATORS = [CongestSimulator, ReferenceSimulator, RuntimeSimulator]


def _tiny_instance(name):
    return build_instance(name, family(name).tiny_params, seed=3)


def _values_for(graph, seed=0):
    return {
        node: (index * 31 + seed) % 97
        for index, node in enumerate(sorted(graph.nodes(), key=repr))
    }


# ------------------------------------------------------ all-family equality


@pytest.mark.parametrize("family_name", family_names())
def test_bfs_runtime_matches_per_node_modes_on_every_family(family_name):
    instance = _tiny_instance(family_name)
    view = instance.view
    root = min(instance.graph.nodes(), key=repr)
    trees = {}
    results = {}
    for simulator_cls in ALL_SIMULATORS:
        trees[simulator_cls], results[simulator_cls] = distributed_bfs_tree(
            view, root, simulator_cls=simulator_cls
        )
    # rounds, messages, words, outputs AND per-round telemetry all equal.
    assert results[RuntimeSimulator] == results[CongestSimulator]
    assert results[RuntimeSimulator] == results[ReferenceSimulator]
    # ... and so is the label-keyed tree built from the outputs.
    assert trees[RuntimeSimulator].parent == trees[CongestSimulator].parent
    assert trees[RuntimeSimulator].root == trees[CongestSimulator].root


@pytest.mark.parametrize("family_name", family_names())
def test_broadcast_runtime_matches_per_node_modes_on_every_family(family_name):
    instance = _tiny_instance(family_name)
    view = instance.view
    source = min(instance.graph.nodes(), key=repr)
    value = ("mst", 1234.5)
    results = [
        broadcast_value(view, source, value, simulator_cls=simulator_cls)
        for simulator_cls in ALL_SIMULATORS
    ]
    assert results[2] == results[0]
    assert results[2] == results[1]
    assert set(results[2].outputs.values()) == {value}


@pytest.mark.parametrize("family_name", family_names())
def test_flood_max_runtime_matches_per_node_modes_on_every_family(family_name):
    instance = _tiny_instance(family_name)
    view = instance.view
    outcomes = [
        flood_max_id(view, simulator_cls=simulator_cls)
        for simulator_cls in ALL_SIMULATORS
    ]
    leaders = {leader for leader, _ in outcomes}
    assert len(leaders) == 1
    assert outcomes[2][1] == outcomes[0][1]
    assert outcomes[2][1] == outcomes[1][1]


@pytest.mark.parametrize("family_name", family_names())
def test_convergecast_runtime_matches_per_node_modes_on_every_family(family_name):
    instance = _tiny_instance(family_name)
    view = instance.view
    values = _values_for(instance.graph)
    outcomes = [
        convergecast_aggregate(
            view, instance.tree, values, combine=min, simulator_cls=simulator_cls
        )
        for simulator_cls in ALL_SIMULATORS
    ]
    aggregate, result = outcomes[2]
    assert aggregate == min(values.values())
    assert outcomes[2] == outcomes[0]
    assert outcomes[2] == outcomes[1]
    # Exactly one report per tree edge, up the tree.
    assert result.messages == len(instance.tree.parent) - 1


def test_convergecast_order_sensitive_combine_matches():
    """Float summation folds in the same order in all three modes."""
    instance = _tiny_instance("planar")
    view = instance.view
    values = {node: 0.1 * (index + 1) for index, node in enumerate(
        sorted(instance.graph.nodes(), key=repr)
    )}

    def add(a, b):
        return a + b

    outcomes = [
        convergecast_aggregate(
            view, instance.tree, values, combine=add, simulator_cls=simulator_cls
        )
        for simulator_cls in ALL_SIMULATORS
    ]
    # Bit-identical floats, not approximately equal ones.
    assert outcomes[0][0] == outcomes[1][0] == outcomes[2][0]
    assert outcomes[0] == outcomes[1] == outcomes[2]


# ------------------------------------------------------- scenario workloads


def test_mst_scenario_record_identical_under_runtime_mode():
    scenario = Scenario(
        name="planar/steiner/mst",
        family="planar",
        constructor="steiner",
        algorithm="mst",
        params={"side": 6},
        seed=2,
    )
    core = run_scenario(scenario).as_dict()["result"]
    fast = run_scenario(scenario, runtime=True).as_dict()["result"]
    for key in (
        "mst_rounds",
        "mst_phases",
        "mst_weight",
        "phase_qualities",
        "sim_rounds",
        "sim_messages",
        "sim_words",
        "sim_peak_active_nodes",
        "sim_active_node_rounds",
    ):
        assert fast[key] == core[key], key


# ------------------------------------------------------- exception contract


def test_runtime_rejects_disconnected_network():
    graph = nx.Graph()
    graph.add_edges_from([(0, 1), (2, 3)])  # two components
    with pytest.raises(InvalidGraphError, match="not connected"):
        distributed_bfs_tree(view_of(graph), 0, simulator_cls=RuntimeSimulator)


def test_runtime_rejects_empty_network():
    with pytest.raises(InvalidGraphError, match="empty"):
        RuntimeSimulator(view_of(nx.Graph()), NodeProgram)


def test_runtime_requires_a_graph_view():
    with pytest.raises(InvalidGraphError, match="GraphView"):
        distributed_bfs_tree(grid_graph(3, 3), 0, simulator_cls=RuntimeSimulator)


def test_runtime_rejects_factories_without_compiled_twin():
    view = view_of(grid_graph(3, 3))
    with pytest.raises(SimulationError, match="compile_runtime"):
        RuntimeSimulator(view, NodeProgram)


@pytest.mark.parametrize("simulator_cls", ALL_SIMULATORS)
def test_bandwidth_enforced_identically(simulator_cls):
    view = view_of(grid_graph(3, 3))
    oversized = tuple(range(50))
    with pytest.raises(SimulationError, match="exceeding the bandwidth"):
        broadcast_value(view, 0, oversized, simulator_cls=simulator_cls)


@pytest.mark.parametrize("simulator_cls", ALL_SIMULATORS)
def test_convergecast_topology_enforced_identically(simulator_cls):
    """A tree edge that is not a network edge raises in every mode."""
    from repro.structure.spanning import RootedTree

    path = nx.Graph()
    path.add_edges_from([(0, 1), (1, 2)])
    bad_tree = RootedTree({0: None, 1: 0, 2: 0}, 0)  # (0, 2) is no edge
    with pytest.raises(SimulationError, match="non-neighbour"):
        convergecast_aggregate(
            view_of(path), bad_tree, {0: 1, 1: 2, 2: 3}, simulator_cls=simulator_cls
        )


# ------------------------------------------------------------- sanity


def test_runtime_builds_no_per_node_programs():
    """The speedup exists because runtime mode skips per-node set-up."""
    view = view_of(grid_graph(5, 5))
    root_index = view.index_of(0)
    from repro.congest.primitives import _BfsFactory

    simulator = RuntimeSimulator(view, _BfsFactory(root_index))
    assert simulator.programs == {}
    result = simulator.run()
    assert result.rounds > 0
