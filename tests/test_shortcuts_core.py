"""Tests for the Shortcut object, its measures and the part generators."""

import networkx as nx
import pytest

from repro.errors import InvalidPartitionError, InvalidShortcutError
from repro.graphs.planar import grid_graph, wheel_graph
from repro.graphs.weights import assign_random_weights
from repro.shortcuts.parts import (
    boruvka_parts,
    path_parts,
    random_connected_parts,
    singleton_parts,
    tree_fragment_parts,
    validate_parts,
)
from repro.shortcuts.shortcut import Shortcut
from repro.structure.spanning import bfs_spanning_tree


# ------------------------------------------------------------------ parts


def test_validate_parts_accepts_disjoint_connected_sets(small_grid):
    validate_parts(small_grid, [frozenset({0, 1, 2}), frozenset({10, 11})])


def test_validate_parts_rejects_overlap_disconnection_and_foreign_nodes(small_grid):
    with pytest.raises(InvalidPartitionError):
        validate_parts(small_grid, [frozenset({0, 1}), frozenset({1, 2})])
    with pytest.raises(InvalidPartitionError):
        validate_parts(small_grid, [frozenset({0, 35})])
    with pytest.raises(InvalidPartitionError):
        validate_parts(small_grid, [frozenset({0, 999})])
    with pytest.raises(InvalidPartitionError):
        validate_parts(small_grid, [frozenset()])


def test_tree_fragment_parts_cover_all_vertices(small_grid, small_grid_tree):
    parts = tree_fragment_parts(small_grid, small_grid_tree, num_parts=7, seed=1)
    assert len(parts) == 7
    assert set().union(*parts) == set(small_grid.nodes())


def test_path_parts_are_paths_in_the_tree(small_grid, small_grid_tree):
    parts = path_parts(small_grid, small_grid_tree)
    tree_graph = small_grid_tree.as_graph()
    for part in parts:
        induced = tree_graph.subgraph(part)
        assert nx.is_connected(induced)
        assert all(degree <= 2 for _, degree in induced.degree())


def test_random_connected_parts_respect_size(small_grid):
    parts = random_connected_parts(small_grid, num_parts=4, part_size=5, seed=2)
    assert len(parts) == 4
    assert all(len(part) <= 5 for part in parts)


def test_boruvka_parts_shrink_with_phases(weighted_grid):
    zero = boruvka_parts(weighted_grid, phases=0)
    one = boruvka_parts(weighted_grid, phases=1)
    two = boruvka_parts(weighted_grid, phases=2)
    assert len(zero) == weighted_grid.number_of_nodes()
    assert len(one) <= len(zero) // 2
    assert len(two) <= len(one)


def test_singleton_parts(small_grid):
    parts = singleton_parts(small_grid)
    assert len(parts) == small_grid.number_of_nodes()


# ------------------------------------------------------------------ Shortcut measures


def test_shortcut_measures_on_a_hand_checked_instance():
    # Path 0-1-2-3-4 with the BFS tree equal to the graph.
    graph = nx.path_graph(5)
    tree = bfs_spanning_tree(graph, root=0)
    parts = [frozenset({0, 1}), frozenset({3, 4})]
    shortcut = Shortcut(
        graph=graph,
        tree=tree,
        parts=parts,
        edge_sets=[{(1, 2), (2, 3)}, {(2, 3)}],
    )
    shortcut.validate()
    assert shortcut.congestion() == 2  # edge (2, 3) is used by both parts
    # Part 0: component {1,2,3} contains part vertex 1, vertex 0 is isolated -> 2 blocks.
    assert len(shortcut.block_components(0)) == 2
    # Part 1: component {2,3} contains 3, vertex 4 isolated -> 2 blocks.
    assert len(shortcut.block_components(1)) == 2
    assert shortcut.block_parameter() == 2
    assert shortcut.quality() == 2 * tree.diameter() + 2
    assert shortcut.is_tree_restricted()


def test_shortcut_rejects_non_tree_edges_when_restricted(wheel):
    hub = max(wheel.nodes(), key=lambda v: wheel.degree(v))
    tree = bfs_spanning_tree(wheel, root=hub)
    non_tree_edge = next(
        (u, v) for u, v in wheel.edges() if (min(u, v), max(u, v)) not in tree.edge_set()
    )
    outer = frozenset(set(wheel.nodes()) - {hub})
    shortcut = Shortcut(wheel, tree, [outer], [{non_tree_edge}])
    assert not shortcut.is_tree_restricted()
    with pytest.raises(InvalidShortcutError):
        shortcut.validate()
    # Non-tree edges are fine when T-restriction is not required (general shortcuts).
    shortcut.validate(require_tree_restricted=False)


def test_shortcut_rejects_non_graph_edges(small_grid, small_grid_tree):
    shortcut = Shortcut(small_grid, small_grid_tree, [frozenset({0})], [{(0, 35)}])
    with pytest.raises(InvalidShortcutError):
        shortcut.validate()


def test_shortcut_rejects_mismatched_edge_sets(small_grid, small_grid_tree):
    with pytest.raises(InvalidShortcutError):
        Shortcut(small_grid, small_grid_tree, [frozenset({0})], [])


def test_augmented_subgraph_contains_part_and_shortcut_edges(small_grid, small_grid_tree):
    part = frozenset({0, 1, 6})
    edges = small_grid_tree.steiner_tree_edges({0, 14})
    shortcut = Shortcut(small_grid, small_grid_tree, [part], [edges])
    augmented = shortcut.augmented_subgraph(0)
    assert set(part) <= set(augmented.nodes())
    for u, v in edges:
        assert augmented.has_edge(u, v)


def test_part_diameters_reported_for_each_part(small_grid, small_grid_tree, small_grid_parts):
    edges = [small_grid_tree.steiner_tree_edges(part) for part in small_grid_parts]
    shortcut = Shortcut(small_grid, small_grid_tree, small_grid_parts, edges)
    diameters = shortcut.part_diameters()
    assert len(diameters) == len(small_grid_parts)
    assert all(diameter >= 0 for diameter in diameters)


def test_measure_as_row_round_trip(small_grid, small_grid_tree, small_grid_parts):
    shortcut = Shortcut(
        small_grid,
        small_grid_tree,
        small_grid_parts,
        [small_grid_tree.steiner_tree_edges(part) for part in small_grid_parts],
    )
    row = shortcut.measure().as_row()
    assert row["quality"] == row["block"] * row["tree_diameter"] + row["congestion"]
    assert row["num_parts"] == len(small_grid_parts)
