"""Guard the paper-to-code map against refactor rot.

``docs/paper_map.md`` names concrete code symbols for every theorem,
definition and corollary it maps.  A rename or move that forgets the map
would silently rot it; this test extracts every backticked dotted
``repro...`` symbol from the document and asserts that each one still
imports (modules) or resolves by attribute access (classes, functions,
methods).  CI also runs this file as its own step, so a docs regression is
visible as a docs failure rather than a generic test failure.
"""

from __future__ import annotations

import importlib
import pathlib
import re

DOCS_DIR = pathlib.Path(__file__).resolve().parent.parent / "docs"
PAPER_MAP = DOCS_DIR / "paper_map.md"
SYMBOL_PATTERN = re.compile(r"`(repro(?:\.\w+)+)`")


def _resolve(dotted: str):
    """Import the longest module prefix, then walk the rest by attribute."""
    parts = dotted.split(".")
    module = None
    cut = len(parts)
    while cut > 0:
        try:
            module = importlib.import_module(".".join(parts[:cut]))
            break
        except ModuleNotFoundError:
            cut -= 1
    if module is None:
        raise AssertionError(f"no importable module prefix in {dotted!r}")
    obj = module
    for attribute in parts[cut:]:
        if not hasattr(obj, attribute):
            raise AssertionError(f"{dotted!r}: {obj!r} has no attribute {attribute!r}")
        obj = getattr(obj, attribute)
    return obj


def test_paper_map_exists_and_names_enough_symbols():
    assert PAPER_MAP.exists(), "docs/paper_map.md is missing"
    symbols = set(SYMBOL_PATTERN.findall(PAPER_MAP.read_text(encoding="utf-8")))
    # The map covers Theorem 1, Theorems 4-9, Definitions 9-13 and
    # Corollary 1; that cannot be done honestly in fewer symbols than this.
    assert len(symbols) >= 25, f"paper map names only {len(symbols)} symbols"


def test_every_symbol_in_paper_map_resolves():
    symbols = sorted(set(SYMBOL_PATTERN.findall(PAPER_MAP.read_text(encoding="utf-8"))))
    failures = []
    for dotted in symbols:
        try:
            _resolve(dotted)
        except AssertionError as error:
            failures.append(str(error))
    assert not failures, "stale symbols in docs/paper_map.md:\n" + "\n".join(failures)


def test_architecture_doc_exists_and_is_linked():
    architecture = DOCS_DIR / "architecture.md"
    assert architecture.exists(), "docs/architecture.md is missing"
    readme = (DOCS_DIR.parent / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in readme, "README must link the architecture guide"
    assert "docs/paper_map.md" in readme, "README must link the paper map"
