"""Guard the documentation tree against refactor rot.

``docs/paper_map.md`` and ``docs/simulator.md`` name concrete code symbols
(theorem-to-code rows, telemetry fields, simulator modes).  A rename or
move that forgets the docs would silently rot them; these tests extract
every backticked dotted ``repro...`` symbol from the documents and assert
that each one still imports (modules) or resolves by attribute access
(classes, functions, methods).  A second layer checks every *relative
link* in ``docs/*.md`` and the README: each must point at a file that
exists.  CI runs this file as its own ``docs`` job, so a docs regression
is visible as a docs failure rather than a generic test failure.
"""

from __future__ import annotations

import importlib
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
PAPER_MAP = DOCS_DIR / "paper_map.md"
SIMULATOR_DOC = DOCS_DIR / "simulator.md"
SYMBOL_CHECKED_DOCS = [PAPER_MAP, SIMULATOR_DOC]
SYMBOL_PATTERN = re.compile(r"`(repro(?:\.\w+)+)`")
# [text](target) markdown links; external schemes and pure anchors are skipped.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _resolve(dotted: str):
    """Import the longest module prefix, then walk the rest by attribute."""
    parts = dotted.split(".")
    module = None
    cut = len(parts)
    while cut > 0:
        try:
            module = importlib.import_module(".".join(parts[:cut]))
            break
        except ModuleNotFoundError:
            cut -= 1
    if module is None:
        raise AssertionError(f"no importable module prefix in {dotted!r}")
    obj = module
    for attribute in parts[cut:]:
        if not hasattr(obj, attribute):
            raise AssertionError(f"{dotted!r}: {obj!r} has no attribute {attribute!r}")
        obj = getattr(obj, attribute)
    return obj


def test_paper_map_exists_and_names_enough_symbols():
    assert PAPER_MAP.exists(), "docs/paper_map.md is missing"
    symbols = set(SYMBOL_PATTERN.findall(PAPER_MAP.read_text(encoding="utf-8")))
    # The map covers Theorem 1, Theorems 4-9, Definitions 9-13 and
    # Corollary 1; that cannot be done honestly in fewer symbols than this.
    assert len(symbols) >= 25, f"paper map names only {len(symbols)} symbols"


@pytest.mark.parametrize("document", SYMBOL_CHECKED_DOCS, ids=lambda p: p.name)
def test_every_symbol_in_docs_resolves(document):
    assert document.exists(), f"docs/{document.name} is missing"
    symbols = sorted(set(SYMBOL_PATTERN.findall(document.read_text(encoding="utf-8"))))
    failures = []
    for dotted in symbols:
        try:
            _resolve(dotted)
        except AssertionError as error:
            failures.append(str(error))
    assert not failures, f"stale symbols in docs/{document.name}:\n" + "\n".join(failures)


def test_architecture_doc_exists_and_is_linked():
    architecture = DOCS_DIR / "architecture.md"
    assert architecture.exists(), "docs/architecture.md is missing"
    readme = (DOCS_DIR.parent / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in readme, "README must link the architecture guide"
    assert "docs/paper_map.md" in readme, "README must link the paper map"


def test_simulator_doc_exists_and_is_linked():
    assert SIMULATOR_DOC.exists(), "docs/simulator.md is missing"
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/simulator.md" in readme, "README must link the simulator guide"
    architecture = (DOCS_DIR / "architecture.md").read_text(encoding="utf-8")
    assert "simulator.md" in architecture, (
        "docs/architecture.md must link the simulator guide"
    )


def _relative_links(markdown: pathlib.Path) -> list[str]:
    links = []
    for target in LINK_PATTERN.findall(markdown.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append(target.split("#", 1)[0])
    return links


def test_relative_links_in_docs_resolve():
    documents = sorted(DOCS_DIR.glob("*.md")) + [REPO_ROOT / "README.md"]
    broken = []
    for document in documents:
        base = document.parent
        for target in _relative_links(document):
            if not (base / target).exists():
                broken.append(f"{document.relative_to(REPO_ROOT)} -> {target}")
    assert not broken, "broken relative links:\n" + "\n".join(broken)
