"""Tests for cell partitions, cell assignment and combinatorial gates."""

import networkx as nx
import pytest

from repro.errors import InvalidPartitionError
from repro.graphs.minor_free import planar_plus_apex
from repro.graphs.planar import grid_graph, wheel_graph
from repro.shortcuts.parts import path_parts
from repro.structure.cell_assignment import compute_cell_assignment
from repro.structure.cells import (
    CellPartition,
    cells_from_multisource_bfs,
    cells_from_tree_without_apices,
    merge_cells_touching,
)
from repro.structure.gates import (
    CombinatorialGate,
    GateCollection,
    planar_gates,
    trivial_gates,
    validate_gates,
)
from repro.structure.spanning import bfs_spanning_tree


# ------------------------------------------------------------------ cells


def test_cells_from_tree_without_apices_cover_non_apex_vertices(apex_witness):
    tree = bfs_spanning_tree(apex_witness.graph)
    cells = cells_from_tree_without_apices(tree, apex_witness.apices)
    cells.validate(apex_witness.graph)
    covered = cells.covered_vertices()
    assert covered == frozenset(apex_witness.graph.nodes()) - frozenset(apex_witness.apices)


def test_cells_are_connected_subtrees_of_small_diameter(apex_witness):
    tree = bfs_spanning_tree(apex_witness.graph)
    cells = cells_from_tree_without_apices(tree, apex_witness.apices)
    surface = apex_witness.non_apex_graph()
    for diameter in cells.measured_diameters(surface):
        assert diameter <= tree.diameter()


def test_wheel_cells_are_arcs_of_the_outer_cycle(wheel):
    hub = max(wheel.nodes(), key=lambda v: wheel.degree(v))
    tree = bfs_spanning_tree(wheel, root=hub)
    cells = cells_from_tree_without_apices(tree, [hub])
    # BFS from the hub makes every outer vertex a child of the hub: singleton cells.
    assert len(cells) == wheel.number_of_nodes() - 1


def test_multisource_bfs_cells_partition_the_graph():
    graph = grid_graph(6, 6)
    cells = cells_from_multisource_bfs(graph, sources=[0, 35])
    cells.validate(graph, require_cover=True)
    assert len(cells) == 2


def test_cell_partition_validation_rejects_overlap_and_disconnection():
    graph = grid_graph(3, 3)
    overlapping = CellPartition(cells=[frozenset({0, 1}), frozenset({1, 2})])
    with pytest.raises(InvalidPartitionError):
        overlapping.validate(graph)
    disconnected = CellPartition(cells=[frozenset({0, 8})])
    with pytest.raises(InvalidPartitionError):
        disconnected.validate(graph)


def test_merge_cells_touching_marks_special_cells():
    graph = grid_graph(4, 4)
    cells = cells_from_multisource_bfs(graph, sources=[0, 15])
    merged = merge_cells_touching(cells, [[0, 15]])
    # The group touches both cells, so they merge into a single special cell.
    assert len(merged) == 1
    assert merged.special == {0}


# ------------------------------------------------------------------ cell assignment


def test_cell_assignment_satisfies_definition_15(apex_witness):
    tree = bfs_spanning_tree(apex_witness.graph)
    cells = cells_from_tree_without_apices(tree, apex_witness.apices)
    parts = path_parts(apex_witness.non_apex_graph())
    assignment = compute_cell_assignment(parts, cells)
    assignment.validate(allow_skipped=2)
    assert assignment.max_skipped <= 2
    # Property (ii): the reported beta matches a recount.
    for cell_index in range(len(cells)):
        count = sum(
            1 for related in assignment.related_cells.values() if cell_index in related
        )
        assert count <= assignment.beta
    # Parts are only related to cells they intersect.
    for part_index, related in assignment.related_cells.items():
        part = set(parts[part_index])
        for cell_index in related:
            assert part & set(cells.cells[cell_index])


def test_cell_assignment_ignores_special_cells():
    graph = grid_graph(4, 4)
    cells = cells_from_multisource_bfs(graph, sources=[0, 15])
    cells = merge_cells_touching(cells, [[0]])  # cell containing 0 becomes special
    parts = [frozenset({v}) for v in graph.nodes()]
    assignment = compute_cell_assignment(parts, cells)
    special_index = next(iter(cells.special))
    for related in assignment.related_cells.values():
        assert special_index not in related


def test_cell_assignment_beta_is_small_for_wheel(wheel):
    hub = max(wheel.nodes(), key=lambda v: wheel.degree(v))
    tree = bfs_spanning_tree(wheel, root=hub)
    cells = cells_from_tree_without_apices(tree, [hub])
    outer = frozenset(set(wheel.nodes()) - {hub})
    assignment = compute_cell_assignment([outer], cells)
    # A single part: every cell is related to at most that one part.
    assert assignment.beta <= 1


# ------------------------------------------------------------------ gates


def _grid_apex_cells():
    witness = planar_plus_apex(6, 6, apices=1, seed=21)
    tree = bfs_spanning_tree(witness.graph)
    surface = witness.non_apex_graph()
    cells = cells_from_tree_without_apices(tree, witness.apices)
    return surface, cells


def test_trivial_gates_satisfy_definition_17():
    surface, cells = _grid_apex_cells()
    collection = trivial_gates(surface, cells)
    s = validate_gates(surface, collection)
    assert s > 0


def test_planar_gates_satisfy_definition_17_and_report_s():
    surface, cells = _grid_apex_cells()
    collection = planar_gates(surface, cells)
    s = validate_gates(surface, collection)
    assert s >= 0
    assert collection.measured_s() == s


def test_validate_gates_rejects_uncovered_inter_cell_edges():
    surface, cells = _grid_apex_cells()
    broken = GateCollection(gates=[], partition=cells)
    # With at least two adjacent cells there is an uncovered inter-cell edge.
    if len(cells) > 1:
        with pytest.raises(InvalidPartitionError):
            validate_gates(surface, broken)


def test_combinatorial_gate_requires_fence_inside_gate():
    with pytest.raises(InvalidPartitionError):
        CombinatorialGate(fence=frozenset({1, 2}), gate=frozenset({1}))
