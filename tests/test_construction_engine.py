"""Differential and property tests for the array-native construction engine.

Three layers:

* **differential** -- the :class:`~repro.shortcuts.ConstructionEngine` fast
  path of ``oblivious_shortcut`` / ``congestion_capped_shortcut`` must
  reproduce the preserved ``networkx`` reference implementation *exactly*
  (edge sets, congestion, blocks, chosen budget) across every registered
  graph family and every part generator kind;
* **property** -- the incremental budget sweep's per-budget quality must
  equal a from-scratch ``congestion_capped_shortcut`` at each budget,
  including unsorted, duplicated and negative budget schedules;
* **substrate** -- the Euler-tour index and the int-indexed
  :class:`~repro.core.PartSet` agree with the label-keyed
  :class:`RootedTree` / ``frozenset`` structures they replace.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core import networkx_reference_paths, part_set_of, view_of
from repro.graphs.planar import grid_graph, wheel_graph
from repro.scenarios import build_instance, family_names
from repro.shortcuts.congestion_capped import (
    congestion_capped_shortcut,
    default_budget_schedule,
    oblivious_shortcut,
)
from repro.shortcuts.engine import ConstructionEngine
from repro.shortcuts.parts import path_parts, singleton_parts, tree_fragment_parts
from repro.structure.spanning import bfs_spanning_tree

PART_KINDS = ("tree_fragments", "path", "singleton")

_INSTANCES: dict = {}


def _family_instance(name):
    if name not in _INSTANCES:
        _INSTANCES[name] = build_instance(name, seed=3)
    return _INSTANCES[name]


def _family_parts(instance, kind):
    if kind == "tree_fragments":
        return instance.parts("tree_fragments", num_parts=6, seed=3)
    return instance.parts(kind)


# --------------------------------------------------------------- differential


@pytest.mark.parametrize("kind", PART_KINDS)
@pytest.mark.parametrize("family_name", family_names())
def test_oblivious_engine_matches_reference(family_name, kind):
    """Engine sweep == preserved seed sweep: edge sets, measures, chosen budget."""
    instance = _family_instance(family_name)
    graph, tree = instance.graph, instance.tree
    parts = _family_parts(instance, kind)
    fast = oblivious_shortcut(graph, tree, parts)
    with networkx_reference_paths():
        reference = oblivious_shortcut(graph, tree, parts)
    assert fast.edge_sets == reference.edge_sets
    assert fast.chosen_budget == reference.chosen_budget
    assert fast.constructor == reference.constructor == "oblivious"
    assert fast.congestion() == reference.congestion()
    assert fast.block_parameter() == reference.block_parameter()
    assert fast.measure() == reference.measure() == reference.measure_reference()


@pytest.mark.parametrize("family_name", family_names())
def test_congestion_capped_engine_matches_reference_per_budget(family_name):
    instance = _family_instance(family_name)
    graph, tree = instance.graph, instance.tree
    parts = _family_parts(instance, "tree_fragments")
    for budget in (0, 1, 2, 3, len(parts)):
        fast = congestion_capped_shortcut(graph, tree, parts, congestion_budget=budget)
        with networkx_reference_paths():
            reference = congestion_capped_shortcut(
                graph, tree, parts, congestion_budget=budget
            )
        assert fast.edge_sets == reference.edge_sets, budget
        assert fast.constructor == reference.constructor, budget
        fast.validate()
        assert fast.congestion() <= max(0, budget)


# ------------------------------------------------------------------ property


@pytest.mark.parametrize(
    "make_graph",
    [lambda: grid_graph(7, 7), lambda: wheel_graph(20)],
    ids=["grid", "wheel"],
)
def test_incremental_sweep_matches_from_scratch_at_every_budget(make_graph):
    graph = make_graph()
    tree = bfs_spanning_tree(graph)
    parts = path_parts(graph, tree)
    engine = ConstructionEngine(graph, tree, parts)
    budgets = list(range(len(parts) + 2))
    qualities = engine.quality_sweep(budgets)
    for budget in budgets:
        from_scratch = congestion_capped_shortcut(
            graph, tree, parts, congestion_budget=budget
        )
        assert qualities[budget] == from_scratch.quality(), budget


def test_sweep_handles_unsorted_duplicate_and_negative_budgets():
    graph = grid_graph(6, 6)
    tree = bfs_spanning_tree(graph)
    parts = tree_fragment_parts(graph, tree, num_parts=7, seed=5)
    budgets = [4, 1, 4, -3, 2, 1, 9]
    fast = oblivious_shortcut(graph, tree, parts, budgets=budgets)
    with networkx_reference_paths():
        reference = oblivious_shortcut(graph, tree, parts, budgets=budgets)
    assert fast.edge_sets == reference.edge_sets
    assert fast.chosen_budget == reference.chosen_budget
    assert fast.measure() == reference.measure()


def test_default_budget_schedule_is_strictly_increasing_to_num_parts():
    for num_parts in range(1, 40):
        schedule = default_budget_schedule(num_parts)
        assert schedule[-1] == num_parts
        assert len(set(schedule)) == len(schedule)
        assert schedule == sorted(schedule)
        # The doubling ladder is intact below the final budget.
        assert all(b == 2**i for i, b in enumerate(schedule[:-1]))


def test_oblivious_validates_parts_once_per_sweep(monkeypatch):
    import repro.shortcuts.congestion_capped as module

    calls = {"count": 0}
    real = module.validate_parts

    def counting(graph, parts):
        calls["count"] += 1
        return real(graph, parts)

    monkeypatch.setattr(module, "validate_parts", counting)
    graph = grid_graph(5, 5)
    tree = bfs_spanning_tree(graph)
    parts = tree_fragment_parts(graph, tree, num_parts=5, seed=1)
    oblivious_shortcut(graph, tree, parts)
    assert calls["count"] == 1
    calls["count"] = 0
    with networkx_reference_paths():
        oblivious_shortcut(graph, tree, parts)
    assert calls["count"] == 1


def test_chosen_budget_is_none_for_direct_constructions():
    graph = grid_graph(4, 4)
    tree = bfs_spanning_tree(graph)
    parts = tree_fragment_parts(graph, tree, num_parts=3, seed=2)
    assert congestion_capped_shortcut(graph, tree, parts).chosen_budget is None
    assert oblivious_shortcut(graph, tree, parts).chosen_budget is not None
    assert oblivious_shortcut(graph, tree, []).chosen_budget is None


# ----------------------------------------------------------------- substrate


def test_euler_index_intervals_match_subtree_nodes():
    graph = grid_graph(5, 5)
    tree = bfs_spanning_tree(graph)
    view = view_of(graph)
    euler = tree.euler_index(view)
    assert euler is tree.euler_index(view), "euler index must be cached per view"
    index_of, node_of = view.index_of, view.nodes
    for node in tree.nodes:
        subtree = tree.subtree_nodes(node)
        ancestor = index_of(node)
        interval = {
            node_of[v] for v in range(len(view)) if euler.in_subtree(ancestor, v)
        }
        assert interval == subtree, node
    for u in list(tree.nodes)[:6]:
        for v in list(tree.nodes)[-6:]:
            lca = euler.lca(index_of(u), index_of(v))
            assert node_of[lca] == tree.lowest_common_ancestor(u, v)


def test_part_set_arrays_and_memoisation():
    graph = grid_graph(5, 5)
    tree = bfs_spanning_tree(graph)
    parts = tree_fragment_parts(graph, tree, num_parts=4, seed=7)
    view = view_of(graph)
    part_set = part_set_of(graph, parts)
    assert part_set is part_set_of(view, parts), "memoised per (view, parts)"
    assert part_set is part_set_of(view, [frozenset(p) for p in parts]), "value-keyed"
    assert len(part_set) == len(parts)
    owner = part_set.owner_array()
    for index, part in enumerate(parts):
        members = part_set.members_of(index)
        assert members == sorted(members)
        assert {view.nodes[m] for m in members} == set(part)
        assert all(owner[m] == index for m in members)
        assert part_set.connected(index) == nx.is_connected(graph.subgraph(part))
    euler = tree.euler_index(view)
    by_tin = part_set.members_by_tin(euler)
    for index, members in enumerate(by_tin):
        tins = [euler.tin[m] for m in members]
        assert tins == sorted(tins)
        assert set(members) == set(part_set.members_of(index))


def test_part_set_connectivity_detects_disconnection():
    graph = grid_graph(3, 3)
    part_set = part_set_of(graph, [frozenset({0, 8})])
    assert not part_set.connected(0)


def test_part_sets_live_and_die_with_their_view():
    import gc
    import weakref

    from repro.core import GraphView

    graph = grid_graph(3, 3)
    view = GraphView(graph)  # deliberately bypasses the view_of memo
    part_set = part_set_of(view, [frozenset({0, 1})])
    assert view._part_sets, "part sets are memoised on the view itself"
    finalizer = weakref.ref(view)
    del view, part_set
    gc.collect()
    assert finalizer() is None, "dropping the view must drop its part sets"


def _first_violation(callable_):
    from repro.errors import InvalidPartitionError

    try:
        callable_()
    except InvalidPartitionError as error:
        return str(error)
    return None


def test_validate_parts_reports_same_violation_in_both_modes():
    """A later part's bad vertex must not mask an earlier violation (parity)."""
    from repro.shortcuts.parts import validate_parts

    graph = nx.path_graph(4)
    cases = [
        [frozenset({0}), frozenset({0}), frozenset({99})],  # overlap before missing
        [frozenset({0, 3}), frozenset({99})],  # disconnection before missing
        [frozenset({0}), frozenset(), frozenset({99})],  # empty before missing
    ]
    for parts in cases:
        fast = _first_violation(lambda: validate_parts(graph, parts))
        with networkx_reference_paths():
            reference = _first_violation(lambda: validate_parts(graph, parts))
        assert fast == reference is not None, parts


def test_cell_validate_reports_same_violation_in_both_modes():
    from repro.structure.cells import CellPartition

    graph = nx.path_graph(4)
    partition = CellPartition(cells=[frozenset({0, 3}), frozenset({99})])
    fast = _first_violation(lambda: partition.validate(graph))
    with networkx_reference_paths():
        reference = _first_violation(lambda: partition.validate(graph))
    assert fast == reference is not None


def test_validate_gates_tolerates_stale_cells_like_reference():
    """Cells with non-graph vertices: both modes ignore them (cell_of semantics)."""
    from repro.structure.cells import CellPartition
    from repro.structure.gates import CombinatorialGate, GateCollection, validate_gates

    graph = nx.path_graph(4)
    partition = CellPartition(cells=[frozenset({0, 1}), frozenset({2, 3, 99})])
    gate = frozenset({1, 2})
    collection = GateCollection(
        gates=[CombinatorialGate(fence=gate, gate=gate)], partition=partition
    )
    fast = validate_gates(graph, collection)
    with networkx_reference_paths():
        reference = validate_gates(graph, collection)
    assert fast == reference


def test_scenario_instance_memoises_part_set():
    instance = _family_instance("planar")
    first = instance.part_set("tree_fragments", num_parts=6, seed=3)
    assert first is instance.part_set("tree_fragments", num_parts=6, seed=3)
    assert first.view is instance.view
