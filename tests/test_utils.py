"""Unit tests for repro.utils."""

import random

import networkx as nx
import pytest

from repro.errors import InvalidGraphError
from repro.utils import (
    canonical_edge,
    canonical_edges,
    ensure_rng,
    invert_mapping,
    log2_ceil,
    pairs,
    relabel_to_integers,
    require_connected,
    require_simple,
)


def test_canonical_edge_is_order_independent():
    assert canonical_edge(1, 2) == canonical_edge(2, 1)
    assert canonical_edge("a", "b") == canonical_edge("b", "a")


def test_canonical_edges_deduplicates_orientations():
    edges = canonical_edges([(1, 2), (2, 1), (3, 4)])
    assert len(edges) == 2


def test_ensure_rng_accepts_seed_and_instance():
    rng1 = ensure_rng(42)
    rng2 = ensure_rng(42)
    assert rng1.random() == rng2.random()
    existing = random.Random(7)
    assert ensure_rng(existing) is existing


def test_relabel_to_integers_is_deterministic():
    graph = nx.path_graph(["c", "a", "b"])
    relabelled = relabel_to_integers(graph)
    assert set(relabelled.nodes()) == {0, 1, 2}
    again = relabel_to_integers(nx.path_graph(["c", "a", "b"]))
    assert set(relabelled.edges()) == set(again.edges())


def test_require_connected_rejects_disconnected_and_empty():
    disconnected = nx.Graph()
    disconnected.add_nodes_from([1, 2])
    with pytest.raises(InvalidGraphError):
        require_connected(disconnected)
    with pytest.raises(InvalidGraphError):
        require_connected(nx.Graph())


def test_require_simple_rejects_self_loops():
    graph = nx.Graph()
    graph.add_edge(1, 1)
    with pytest.raises(InvalidGraphError):
        require_simple(graph)


def test_log2_ceil_values_and_errors():
    assert log2_ceil(1) == 0
    assert log2_ceil(2) == 1
    assert log2_ceil(5) == 3
    with pytest.raises(ValueError):
        log2_ceil(0)


def test_pairs_enumerates_unordered_pairs():
    assert list(pairs([1, 2, 3])) == [(1, 2), (1, 3), (2, 3)]


def test_invert_mapping_groups_keys_by_value():
    inverse = invert_mapping({1: "a", 2: "a", 3: "b"})
    assert inverse == {"a": {1, 2}, "b": {3}}
