"""Tests for every shortcut constructor: validity plus family-specific bounds."""

import networkx as nx
import pytest

from repro.errors import InvalidGraphError, InvalidShortcutError
from repro.graphs.apex_vortex import build_almost_embeddable
from repro.graphs.clique_sum import clique_sum_compose
from repro.graphs.planar import grid_graph, wheel_graph
from repro.graphs.treewidth import random_partial_ktree
from repro.shortcuts.apex import apex_shortcut, apex_shortcut_from_witness
from repro.shortcuts.baseline import empty_shortcut, steiner_shortcut, whole_tree_shortcut
from repro.shortcuts.clique_sum import clique_sum_shortcut
from repro.shortcuts.congestion_capped import congestion_capped_shortcut, oblivious_shortcut
from repro.shortcuts.genus_vortex import genus_vortex_shortcut
from repro.shortcuts.minor_free import minor_free_quality_bounds, minor_free_shortcut
from repro.shortcuts.parts import tree_fragment_parts
from repro.shortcuts.planar import planar_shortcut
from repro.shortcuts.search import best_shortcut, measure_constructors
from repro.shortcuts.treewidth import treewidth_shortcut
from repro.structure.spanning import bfs_spanning_tree


# -------------------------------------------------------------- baselines


def test_empty_shortcut_has_zero_congestion(small_grid, small_grid_tree, small_grid_parts):
    shortcut = empty_shortcut(small_grid, small_grid_tree, small_grid_parts)
    shortcut.validate()
    assert shortcut.congestion() == 0
    assert shortcut.block_parameter() == max(len(part) for part in small_grid_parts)


def test_whole_tree_shortcut_has_block_one_and_congestion_num_parts(
    small_grid, small_grid_tree, small_grid_parts
):
    shortcut = whole_tree_shortcut(small_grid, small_grid_tree, small_grid_parts)
    shortcut.validate()
    assert shortcut.block_parameter() == 1
    assert shortcut.congestion() == len(small_grid_parts)


def test_steiner_shortcut_has_block_one(small_grid, small_grid_tree, small_grid_parts):
    shortcut = steiner_shortcut(small_grid, small_grid_tree, small_grid_parts)
    shortcut.validate()
    assert shortcut.block_parameter() == 1
    assert shortcut.congestion() <= len(small_grid_parts)


# -------------------------------------------------------------- congestion capped


def test_congestion_capped_respects_budget(small_grid, small_grid_tree, small_grid_parts):
    for budget in (1, 2, 4):
        shortcut = congestion_capped_shortcut(
            small_grid, small_grid_tree, small_grid_parts, congestion_budget=budget
        )
        shortcut.validate()
        assert shortcut.congestion() <= budget


def test_oblivious_shortcut_never_worse_than_steiner_or_whole_tree(
    small_grid, small_grid_tree, small_grid_parts
):
    oblivious = oblivious_shortcut(small_grid, small_grid_tree, small_grid_parts)
    steiner = steiner_shortcut(small_grid, small_grid_tree, small_grid_parts)
    whole = whole_tree_shortcut(small_grid, small_grid_tree, small_grid_parts)
    assert oblivious.quality() <= min(steiner.quality(), whole.quality())


# -------------------------------------------------------------- planar / treewidth


def test_planar_shortcut_validates_and_rejects_nonplanar(small_grid, small_grid_tree, small_grid_parts):
    shortcut = planar_shortcut(small_grid, small_grid_tree, small_grid_parts)
    shortcut.validate()
    with pytest.raises(InvalidGraphError):
        planar_shortcut(nx.complete_graph(6), parts=[frozenset({0, 1})])


def test_treewidth_shortcut_block_parameter_scales_with_width():
    witness = random_partial_ktree(40, 2, seed=5)
    graph = witness.graph
    tree = bfs_spanning_tree(graph)
    parts = tree_fragment_parts(graph, tree, num_parts=6, seed=6)
    shortcut = treewidth_shortcut(graph, tree, parts)
    shortcut.validate()
    # Theorem 5 shape: block = O(k) (constant in n); allow a generous constant.
    assert shortcut.block_parameter() <= 8 * (witness.width + 1)


# -------------------------------------------------------------- clique sums


def test_clique_sum_shortcut_requires_witness(small_grid, small_grid_tree, small_grid_parts):
    with pytest.raises(InvalidShortcutError):
        clique_sum_shortcut(small_grid, small_grid_tree, small_grid_parts, decomposition=None)


def test_clique_sum_shortcut_folded_and_unfolded_are_valid():
    components = [grid_graph(4, 4) for _ in range(6)]
    decomposition = clique_sum_compose(components, k=3, seed=7, tree_shape="path")
    graph = decomposition.graph
    tree = bfs_spanning_tree(graph)
    parts = tree_fragment_parts(graph, tree, num_parts=8, seed=8)
    folded = clique_sum_shortcut(graph, tree, parts, decomposition=decomposition, fold=True)
    unfolded = clique_sum_shortcut(graph, tree, parts, decomposition=decomposition, fold=False)
    folded.validate()
    unfolded.validate()
    # Both serve every part.
    assert folded.num_parts == unfolded.num_parts == len(parts)


# -------------------------------------------------------------- apex


def test_apex_shortcut_beats_naive_on_the_wheel(wheel):
    hub = max(wheel.nodes(), key=lambda v: wheel.degree(v))
    tree = bfs_spanning_tree(wheel, root=hub)
    outer = frozenset(set(wheel.nodes()) - {hub})
    apex = apex_shortcut(wheel, tree, [outer], apices=[hub])
    apex.validate()
    naive = empty_shortcut(wheel, tree, [outer])
    assert apex.quality() < naive.quality()
    # The wheel has diameter 2, so good shortcut quality must be O(1)-ish.
    assert apex.quality() <= 12


def test_apex_shortcut_gives_whole_tree_to_apex_containing_parts(apex_witness):
    tree = bfs_spanning_tree(apex_witness.graph)
    apex = apex_witness.apices[0]
    neighbour = next(iter(apex_witness.graph.neighbors(apex)))
    parts = [frozenset({apex, neighbour})]
    shortcut = apex_shortcut(apex_witness.graph, tree, parts, apices=apex_witness.apices)
    shortcut.validate()
    assert shortcut.edge_sets[0] == tree.edge_set()


def test_apex_shortcut_from_witness_handles_paths(apex_witness):
    from repro.shortcuts.parts import path_parts

    tree = bfs_spanning_tree(apex_witness.graph)
    parts = path_parts(apex_witness.graph, tree)
    shortcut = apex_shortcut_from_witness(apex_witness, tree, parts)
    shortcut.validate()
    assert shortcut.num_parts == len(parts)


def test_apex_shortcut_without_apices_falls_back(small_grid, small_grid_tree, small_grid_parts):
    shortcut = apex_shortcut(small_grid, small_grid_tree, small_grid_parts, apices=[])
    shortcut.validate()


# -------------------------------------------------------------- genus+vortex / minor free


def test_genus_vortex_shortcut_rejects_apices():
    witness = build_almost_embeddable(q=1, g=0, k=1, l=1, base_rows=5, base_cols=5, seed=9)
    with pytest.raises(InvalidGraphError):
        genus_vortex_shortcut(witness, parts=[])


def test_genus_vortex_shortcut_valid_on_vortex_graph():
    witness = build_almost_embeddable(q=0, g=0, k=2, l=1, base_rows=6, base_cols=6, seed=10)
    graph = witness.graph
    tree = bfs_spanning_tree(graph)
    parts = tree_fragment_parts(graph, tree, num_parts=5, seed=11)
    shortcut = genus_vortex_shortcut(witness, tree, parts)
    shortcut.validate()


def test_minor_free_shortcut_quality_within_theorem6_shape(lk_sample, lk_parts):
    tree, parts = lk_parts
    shortcut = minor_free_shortcut(lk_sample, tree, parts)
    shortcut.validate()
    measure = shortcut.measure()
    bounds = minor_free_quality_bounds(measure.tree_diameter, lk_sample.number_of_nodes)
    # The paper's bound is asymptotic; allow a constant factor of 4.
    assert measure.block <= 4 * max(4.0, bounds["block"])
    assert measure.quality <= 4 * bounds["quality"] + 20


# -------------------------------------------------------------- search helpers


def test_measure_constructors_reports_all_names(small_grid, small_grid_parts):
    results = measure_constructors(small_grid, small_grid_parts)
    assert set(results.keys()) == {"empty", "whole_tree", "steiner", "oblivious"}


def test_best_shortcut_picks_minimum_quality(small_grid, small_grid_parts):
    best = best_shortcut(small_grid, small_grid_parts)
    results = measure_constructors(small_grid, small_grid_parts)
    assert best.quality() <= min(quality.quality for quality in results.values())
