"""Property-based tests (hypothesis) for the core invariants.

These tests generate random instances -- random grid sizes, random parts,
random clique-sum compositions -- and assert the invariants listed in
DESIGN.md Section 6: every constructor's output is a valid T-restricted
shortcut whose self-reported numbers match an independent recount, the
congestion cap is always respected, decompositions satisfy their axioms, and
the simulated aggregation always agrees with a centralised computation.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest.aggregation import partwise_aggregate
from repro.graphs.clique_sum import clique_sum_compose
from repro.graphs.planar import grid_graph, random_outerplanar_graph
from repro.graphs.treewidth import random_ktree
from repro.shortcuts.baseline import steiner_shortcut, whole_tree_shortcut
from repro.shortcuts.congestion_capped import congestion_capped_shortcut, oblivious_shortcut
from repro.shortcuts.parts import random_connected_parts, tree_fragment_parts
from repro.structure.heavy_light import fold_decomposition_tree
from repro.structure.spanning import bfs_spanning_tree
from repro.structure.tree_decomposition import validate_tree_decomposition

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def grid_instances(draw):
    """A random small grid with a random family of disjoint connected parts."""
    rows = draw(st.integers(min_value=2, max_value=6))
    cols = draw(st.integers(min_value=2, max_value=6))
    graph = grid_graph(rows, cols)
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_parts = draw(st.integers(min_value=1, max_value=6))
    style = draw(st.sampled_from(["fragments", "random"]))
    tree = bfs_spanning_tree(graph)
    if style == "fragments":
        parts = tree_fragment_parts(graph, tree, num_parts=num_parts, seed=seed)
    else:
        size = draw(st.integers(min_value=1, max_value=8))
        parts = random_connected_parts(graph, num_parts=num_parts, part_size=size, seed=seed)
    return graph, tree, parts


@SETTINGS
@given(grid_instances())
def test_steiner_shortcut_invariants(instance):
    graph, tree, parts = instance
    shortcut = steiner_shortcut(graph, tree, parts)
    shortcut.validate()
    # Block parameter is 1 for non-singleton Steiner trees (the Steiner tree
    # is connected and touches the part); singleton parts have one block too.
    assert shortcut.block_parameter() <= 1 or all(len(p) == 1 for p in parts)
    # Recount congestion independently.
    recount: dict = {}
    for edges in shortcut.edge_sets:
        for edge in edges:
            recount[edge] = recount.get(edge, 0) + 1
    assert shortcut.congestion() == max(recount.values(), default=0)


@SETTINGS
@given(grid_instances(), st.integers(min_value=1, max_value=5))
def test_congestion_cap_is_respected(instance, budget):
    graph, tree, parts = instance
    shortcut = congestion_capped_shortcut(graph, tree, parts, congestion_budget=budget)
    shortcut.validate()
    assert shortcut.congestion() <= budget
    # Every assigned edge still comes from the part's Steiner tree.
    for part, edges in zip(parts, shortcut.edge_sets):
        steiner = tree.steiner_tree_edges(part)
        assert edges <= steiner


@SETTINGS
@given(grid_instances())
def test_oblivious_beats_or_matches_whole_tree(instance):
    graph, tree, parts = instance
    oblivious = oblivious_shortcut(graph, tree, parts)
    whole = whole_tree_shortcut(graph, tree, parts)
    oblivious.validate()
    assert oblivious.quality() <= whole.quality()


@SETTINGS
@given(grid_instances())
def test_aggregation_matches_central_computation(instance):
    graph, tree, parts = instance
    shortcut = oblivious_shortcut(graph, tree, parts)
    values = {v: (13 * hash(v)) % 101 for v in graph.nodes()}
    result = partwise_aggregate(shortcut, values, combine=min)
    expected = [min(values[v] for v in part) for part in parts]
    assert result.values == expected


@SETTINGS
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(["random", "path", "star"]),
)
def test_clique_sum_compose_always_satisfies_definition_8(num_extra, k, seed, shape):
    components = [grid_graph(3, 3)] + [random_outerplanar_graph(8, seed=seed + i) for i in range(num_extra)]
    decomposition = clique_sum_compose(components, k=k, seed=seed, tree_shape=shape)
    decomposition.validate()  # raises on any axiom violation
    assert nx.is_connected(decomposition.graph)
    folded = fold_decomposition_tree(decomposition)
    folded.validate()
    assert folded.depth() <= decomposition.depth() + 1


@SETTINGS
@given(
    st.integers(min_value=6, max_value=30),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=10_000),
)
def test_ktree_decomposition_axioms(n, k, seed):
    if n < k + 1:
        n = k + 1
    witness = random_ktree(n, k, seed=seed)
    validate_tree_decomposition(witness.graph, witness.decomposition)
    assert max(len(bag) for bag in witness.decomposition.nodes()) == k + 1


@SETTINGS
@given(grid_instances(), st.data())
def test_tree_contraction_is_a_tree_with_bounded_diameter(instance, data):
    graph, tree, _parts = instance
    nodes = sorted(graph.nodes())
    keep = data.draw(
        st.sets(st.sampled_from(nodes), min_size=1, max_size=min(10, len(nodes)))
    )
    contracted = tree.contract_to(keep)
    assert contracted.nodes == set(keep)
    assert nx.is_tree(contracted.as_graph())
    assert contracted.diameter() <= tree.diameter()
