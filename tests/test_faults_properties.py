"""Property-based tests (hypothesis) for the fault-injection layer.

Random fault models -- arbitrary mixes of drop/delay/duplicate/crash/shuffle
at random rates and seeds -- must never violate the simulator invariants
documented in docs/simulator.md:

* telemetry has one row per round, 1-based and contiguous;
* no counter is ever negative, and the result totals equal the column sums
  of the telemetry (the accounting identity
  ``delivered = messages - dropped + duplicated`` stays non-negative);
* outputs come only from live (never-crashed) nodes;
* the same (model, seed) pair reproduces the identical result, and all
  three simulator modes agree on it;
* a fail-free (null) model is normalised away and reproduces today's
  results bit-for-bit, whatever the fault seed.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest import (
    CongestSimulator,
    FaultModel,
    FaultSchedule,
    ReferenceSimulator,
    RuntimeSimulator,
    flood_max_id,
    robust_bfs_tree,
)
from repro.core import view_of
from repro.graphs.planar import grid_graph

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

_RATES = st.floats(min_value=0.0, max_value=0.3, allow_nan=False)


@st.composite
def fault_models(draw):
    """An arbitrary mix of the built-in fault kinds at bounded rates."""
    return FaultModel(
        drop=draw(_RATES),
        delay=draw(_RATES),
        max_delay=draw(st.integers(min_value=1, max_value=4)),
        duplicate=draw(_RATES),
        crash=draw(st.floats(min_value=0.0, max_value=0.15, allow_nan=False)),
        crash_window=draw(st.integers(min_value=1, max_value=8)),
        shuffle=draw(st.booleans()),
    )


def _grid_view(side=4):
    return view_of(grid_graph(side, side))


def _check_invariants(result, view, schedule):
    rounds = [row.round for row in result.telemetry]
    assert rounds == list(range(1, len(rounds) + 1)), "telemetry rows not contiguous"
    for row in result.telemetry:
        for value in (row.active_nodes, row.messages, row.words,
                      row.dropped, row.delayed, row.duplicated, row.crashed):
            assert value >= 0, "negative telemetry counter"
    assert result.messages == sum(row.messages for row in result.telemetry)
    assert result.words == sum(row.words for row in result.telemetry)
    assert result.dropped == sum(row.dropped for row in result.telemetry)
    assert result.delayed == sum(row.delayed for row in result.telemetry)
    assert result.duplicated == sum(row.duplicated for row in result.telemetry)
    assert result.crashed_nodes == sum(row.crashed for row in result.telemetry)
    assert result.dropped <= result.messages, "dropped more than was sent"
    assert result.messages - result.dropped + result.duplicated >= 0
    assert 0 <= result.rounds <= len(result.telemetry)
    # Outputs come only from live nodes: anything the schedule crashed
    # within the run is absent from the output map.
    crashed_in_run = {
        index
        for index in range(len(view.nodes))
        if (crash := schedule.crash_round(index)) is not None
        and crash <= len(result.telemetry)
    }
    for label in result.outputs:
        assert view.index_of(label) not in crashed_in_run


@SETTINGS
@given(model=fault_models(), seed=st.integers(min_value=0, max_value=2**32))
def test_random_schedules_preserve_simulator_invariants(model, seed):
    view = _grid_view()
    schedule = FaultSchedule(model, seed=seed)
    _, result = flood_max_id(view, fault_schedule=schedule)
    _check_invariants(result, view, schedule)


@SETTINGS
@given(model=fault_models(), seed=st.integers(min_value=0, max_value=2**32))
def test_robust_bfs_under_random_schedules(model, seed):
    view = _grid_view()
    schedule = FaultSchedule(model, seed=seed)
    tree, result, repaired = robust_bfs_tree(view, 0, schedule)
    _check_invariants(result, view, schedule)
    assert repaired >= 0
    # Whatever the schedule did, the repaired tree spans the network.
    assert set(tree.parent) == set(view.nodes)


@SETTINGS
@given(model=fault_models(), seed=st.integers(min_value=0, max_value=2**32))
def test_same_schedule_reproduces_identical_results(model, seed):
    view = _grid_view()
    first = flood_max_id(view, fault_schedule=FaultSchedule(model, seed=seed))
    second = flood_max_id(view, fault_schedule=FaultSchedule(model, seed=seed))
    assert first == second


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(model=fault_models(), seed=st.integers(min_value=0, max_value=2**32))
def test_three_modes_agree_under_random_schedules(model, seed):
    view = _grid_view()
    outcomes = [
        flood_max_id(view, simulator_cls=cls, fault_schedule=FaultSchedule(model, seed=seed))
        for cls in (CongestSimulator, ReferenceSimulator, RuntimeSimulator)
    ]
    assert outcomes[0] == outcomes[1] == outcomes[2]


@SETTINGS
@given(seed=st.integers(min_value=0, max_value=2**32))
def test_null_models_reproduce_fail_free_results_bit_for_bit(seed):
    view = _grid_view()
    fail_free = flood_max_id(view)
    nulled = flood_max_id(view, fault_schedule=FaultSchedule(FaultModel(), seed=seed))
    assert nulled == fail_free
