"""Tests for the scenario engine: registries, caching, matrix runs, CLI."""

import json

import pytest

from repro.errors import InvalidShortcutError
from repro.scenarios import (
    FamilySpec,
    InstanceCache,
    Scenario,
    ScenarioInstance,
    algorithm_names,
    applicable_constructors,
    build_instance,
    constructor,
    constructor_names,
    family,
    family_names,
    register_constructor,
    register_family,
    run_matrix,
    run_scenario,
    scenario_matrix,
)
from repro.scenarios.__main__ import main as scenarios_main
from repro.congest.reference import ReferenceSimulator


# ---------------------------------------------------------------- registries


def test_all_seven_families_registered():
    assert family_names() == [
        "apex",
        "clique_sum",
        "genus",
        "lower_bound",
        "minor_free",
        "planar",
        "treewidth",
    ]


def test_constructor_and_algorithm_registries():
    assert {"empty", "whole_tree", "steiner", "oblivious"} <= set(constructor_names())
    assert {"planar", "treewidth", "clique_sum", "apex", "genus_vortex", "minor_free"} <= set(
        constructor_names()
    )
    assert algorithm_names() == ["aggregate", "mincut", "mst", "quality"]


def test_unknown_names_raise():
    with pytest.raises(KeyError, match="unknown family"):
        family("nope")
    with pytest.raises(KeyError, match="unknown constructor"):
        constructor("nope")
    with pytest.raises(ValueError, match="already registered"):
        register_family(family("planar"))
    with pytest.raises(ValueError, match="already registered"):
        register_constructor(constructor("steiner"))


def test_family_specific_constructors_require_their_witness():
    planar = build_instance("planar", {"side": 5})
    names = applicable_constructors(planar)
    assert "minor_free" not in names
    assert "apex" not in names
    assert "planar" in names
    genus = build_instance("genus", seed=1)
    assert "genus_vortex" in applicable_constructors(genus)
    assert "planar" not in applicable_constructors(genus)  # torus is non-planar


def test_every_family_admits_at_least_two_constructors():
    for name in family_names():
        instance = build_instance(name, family(name).tiny_params, seed=0)
        assert len(applicable_constructors(instance)) >= 2


# ------------------------------------------------------------------ instances


def test_instance_caches_tree_and_parts():
    instance = build_instance("planar", {"side": 5})
    assert instance.tree is instance.tree
    first = instance.parts("tree_fragments", num_parts=4)
    assert instance.parts("tree_fragments", num_parts=4) is first
    assert instance.parts("tree_fragments", num_parts=5) is not first
    with pytest.raises(ValueError, match="unknown parts kind"):
        instance.parts("nope")


def test_weighted_graph_is_a_seeded_copy():
    instance = build_instance("planar", {"side": 4})
    weighted = instance.weighted_graph(seed=3)
    assert weighted is not instance.graph
    assert weighted is instance.weighted_graph(seed=3)  # cached
    assert weighted is not instance.weighted_graph(seed=4)
    # The shared instance graph stays unweighted.
    u, v = next(iter(instance.graph.edges()))
    assert "weight" not in instance.graph[u][v]
    assert "weight" in weighted[u][v]


def test_instance_cache_deduplicates():
    cache = InstanceCache()
    a = build_instance("treewidth", seed=2, cache=cache)
    b = build_instance("treewidth", seed=2, cache=cache)
    c = build_instance("treewidth", seed=3, cache=cache)
    assert a is b
    assert a is not c
    assert len(cache) == 2
    assert cache.hits == 1
    assert cache.misses == 2


# ------------------------------------------------------------------ running


def test_run_scenario_quality_record_shape():
    record = run_scenario(Scenario(
        name="demo", family="planar", constructor="planar",
        params={"side": 5}, seed=1,
    ))
    payload = record.as_dict()
    assert payload["applicable"] is True
    assert payload["instance"]["n"] == 25
    row = payload["result"]["shortcut"]
    assert set(row) >= {"block", "congestion", "quality", "tree_diameter"}
    json.dumps(payload)  # JSON-friendly end to end


def test_run_scenario_inapplicable_is_recorded_not_raised():
    record = run_scenario(Scenario(
        name="demo", family="planar", constructor="minor_free", params={"side": 4},
    ))
    assert record.applicable is False
    assert record.result == {}


def test_run_scenario_is_deterministic():
    spec = Scenario(
        name="d", family="minor_free", constructor="minor_free",
        algorithm="aggregate", seed=5,
    )
    assert run_scenario(spec).as_dict() == run_scenario(spec).as_dict()


def test_run_scenario_mst_records_telemetry_and_is_simulator_agnostic():
    spec = Scenario(
        name="m", family="planar", constructor="steiner", algorithm="mst",
        params={"side": 5}, seed=2,
    )
    cache = InstanceCache()
    fast = run_scenario(spec, cache=cache).as_dict()["result"]
    slow = run_scenario(spec, cache=cache, simulator_cls=ReferenceSimulator).as_dict()["result"]
    assert fast["weight_matches_reference"]
    assert fast["sim_rounds"] > 0
    assert fast["sim_peak_active_nodes"] == 25
    for key in ("mst_rounds", "mst_phases", "mst_weight", "sim_rounds", "sim_messages"):
        assert fast[key] == slow[key]


def test_scenario_matrix_covers_all_families_through_shared_cache():
    cache = InstanceCache()
    scenarios = scenario_matrix(size="tiny", cache=cache)
    records = run_matrix(scenarios, cache=cache)
    families_seen = {record["family"] for record in records if record["applicable"]}
    assert families_seen == set(family_names())
    # One instance per family, reused across all its constructors.
    assert len(cache) == len(family_names())
    assert cache.hits >= len(records)
    assert all(record["applicable"] for record in records)


def test_scenario_matrix_filters():
    scenarios = scenario_matrix(
        families=["planar", "genus"], constructors=["steiner", "planar"], size="tiny"
    )
    labels = {(s.family, s.constructor) for s in scenarios}
    # planar admits both; the genus instance is non-planar so only steiner.
    assert labels == {("planar", "steiner"), ("planar", "planar"), ("genus", "steiner")}
    with pytest.raises(ValueError, match="size must be"):
        scenario_matrix(size="huge")


def test_custom_registry_entries_flow_into_the_matrix():
    from repro.graphs.planar import cycle_graph
    from repro.scenarios import registry as registry_module

    register_family(FamilySpec(
        name="test_cycle",
        description="cycle used by the registry extension test",
        build=lambda seed=0, n=8: ScenarioInstance(
            "test_cycle", {"n": n}, seed, cycle_graph(n)
        ),
        default_params={"n": 10},
        tiny_params={"n": 6},
    ))
    try:
        records = run_matrix(scenario_matrix(families=["test_cycle"], size="tiny"))
        assert {record["constructor"] for record in records if record["applicable"]} >= {
            "empty", "steiner", "oblivious", "whole_tree",
        }
    finally:
        # Keep the global registry pristine for other tests in this session.
        registry_module._FAMILIES.pop("test_cycle", None)


def test_shortcut_validation_still_guards_scenario_shortcuts():
    instance = build_instance("planar", {"side": 4})
    shortcut = constructor("steiner").build(instance, instance.tree, instance.parts("path"))
    shortcut.validate()
    shortcut.edge_sets[0] = frozenset({(("bogus", 0), ("bogus", 1))})
    with pytest.raises(InvalidShortcutError):
        shortcut.validate()


# ----------------------------------------------------------------------- CLI


def test_cli_list_runs(capsys):
    assert scenarios_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "families:" in out and "constructors:" in out and "algorithms:" in out


def test_cli_tiny_sweep_writes_json(tmp_path):
    output = tmp_path / "records.json"
    code = scenarios_main([
        "--families", "planar", "treewidth",
        "--constructors", "steiner", "oblivious",
        "--size", "tiny", "--output", str(output),
    ])
    assert code == 0
    records = json.loads(output.read_text())
    assert {record["family"] for record in records} == {"planar", "treewidth"}
    assert all(record["applicable"] for record in records)


def test_parallel_matrix_matches_serial():
    """--jobs N: process-pool sweep, record-for-record identical and ordered."""
    cache = InstanceCache()
    scenarios = scenario_matrix(
        families=["planar", "lower_bound"], size="tiny", cache=cache
    )
    serial = run_matrix(scenarios, cache=cache)
    parallel = run_matrix(scenarios, jobs=2)
    assert parallel == serial


def test_cli_algorithms_and_jobs(tmp_path):
    output = tmp_path / "records.json"
    code = scenarios_main([
        "--families", "planar",
        "--constructors", "empty", "steiner",
        "--algorithms", "quality", "mst",
        "--size", "tiny", "--jobs", "2", "--output", str(output),
    ])
    assert code == 0
    records = json.loads(output.read_text())
    assert [record["scenario"] for record in records] == [
        "planar/empty/quality", "planar/steiner/quality",
        "planar/empty/mst", "planar/steiner/mst",
    ]


def test_cli_rejects_empty_family_filter(capsys):
    with pytest.raises(SystemExit):
        scenarios_main(["--families"])
    assert "expected at least one argument" in capsys.readouterr().err


# ---------------------------------------------------------------- native path


def test_build_instance_native_matches_classic_structure():
    native = build_instance("planar", {"side": 7}, seed=3, native=True)
    classic = build_instance("planar", {"side": 7}, seed=3)
    assert native.native and not classic.native
    assert native.view.nodes == classic.view.nodes
    assert native.view.core.indptr.tolist() == classic.view.core.indptr.tolist()
    assert native.view.core.indices.tolist() == classic.view.core.indices.tolist()
    assert native.num_nodes == classic.num_nodes == 49
    assert native.num_edges == classic.num_edges
    # Same spanning tree and parts, derived nx-free on the native side.
    assert native.tree.parent == classic.tree.parent
    assert native.parts("tree_fragments", num_parts=4) == classic.parts(
        "tree_fragments", num_parts=4
    )


def test_instance_cache_keys_native_separately():
    cache = InstanceCache()
    native = build_instance("planar", {"side": 5}, seed=1, cache=cache, native=True)
    classic = build_instance("planar", {"side": 5}, seed=1, cache=cache)
    assert native is not classic
    assert build_instance("planar", {"side": 5}, seed=1, cache=cache, native=True) is native


def test_instantiate_native_without_builder_raises():
    with pytest.raises(ValueError, match="no native"):
        family("treewidth").instantiate(seed=0, native=True)


def test_run_scenario_native_mst_is_nx_free_and_oracle_checked():
    from repro.core import nx_materializations

    scenario = Scenario(
        name="nm", family="planar", constructor="oblivious", algorithm="mst",
        params={"side": 6}, seed=2, native=True,
    )
    before = nx_materializations()
    record = run_scenario(scenario).as_dict()
    assert nx_materializations() == before
    assert record["native"] is True
    assert record["applicable"] is True
    assert record["instance"]["n"] == 36
    result = record["result"]
    assert result["weight_matches_reference"]
    assert result["mst_rounds"] > 0
    assert result["sim_rounds"] > 0


def test_classic_records_do_not_carry_a_native_key():
    record = run_scenario(Scenario(
        name="c", family="planar", constructor="planar", params={"side": 5}, seed=1,
    )).as_dict()
    assert "native" not in record


def test_scenario_matrix_native_defaults_to_native_capable_families():
    scenarios = scenario_matrix(algorithm_name="quality", size="tiny", native=True)
    assert scenarios, "at least one family must have a native builder"
    assert {scenario.family for scenario in scenarios} == {"planar"}
    assert all(scenario.native for scenario in scenarios)


def test_cli_native_sweep_with_param_override(tmp_path):
    output = tmp_path / "records.json"
    code = scenarios_main([
        "--families", "planar", "--constructors", "oblivious",
        "--algorithms", "mst", "--native", "--params", "side=6",
        "--output", str(output),
    ])
    assert code == 0
    records = json.loads(output.read_text())
    assert records and all(record["applicable"] for record in records)
    assert all(record["native"] for record in records)
    assert all(record["instance"]["n"] == 36 for record in records)
