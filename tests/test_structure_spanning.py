"""Tests for rooted spanning trees, Steiner subtrees and tree contraction."""

import networkx as nx
import pytest

from repro.errors import InvalidGraphError
from repro.graphs.planar import grid_graph, wheel_graph
from repro.structure.spanning import (
    RootedTree,
    bfs_spanning_tree,
    center_root,
    graph_diameter,
    steiner_tree_edges,
)


def test_bfs_tree_spans_and_respects_distances(small_grid):
    tree = bfs_spanning_tree(small_grid, root=0)
    tree.validate(small_grid)
    distances = nx.single_source_shortest_path_length(small_grid, 0)
    assert tree.depth == distances  # BFS tree depth equals graph distance from root
    assert tree.height == max(distances.values())


def test_bfs_tree_height_at_most_diameter(small_grid):
    tree = bfs_spanning_tree(small_grid)
    assert tree.height <= nx.diameter(small_grid)
    assert tree.diameter() <= 2 * tree.height


def test_rooted_tree_rejects_bad_parent_maps():
    with pytest.raises(InvalidGraphError):
        RootedTree({0: None, 1: 5}, root=0)  # parent 5 is not a node
    with pytest.raises(InvalidGraphError):
        RootedTree({0: 1, 1: 0}, root=0)  # root must have parent None


def test_lca_and_tree_path(small_grid):
    tree = bfs_spanning_tree(small_grid, root=0)
    for u, v in [(5, 30), (7, 35), (0, 35)]:
        path = tree.tree_path(u, v)
        assert path[0] == u and path[-1] == v
        # consecutive path nodes are tree edges
        edges = tree.edge_set()
        for a, b in zip(path, path[1:]):
            assert (min(a, b), max(a, b)) in edges or (a, b) in edges or (b, a) in edges
        lca = tree.lowest_common_ancestor(u, v)
        assert lca in path


def test_steiner_tree_spans_terminals_and_is_minimal(small_grid):
    tree = bfs_spanning_tree(small_grid, root=0)
    terminals = [3, 20, 33]
    edges = steiner_tree_edges(tree, terminals)
    subgraph = nx.Graph(list(edges))
    for t in terminals:
        assert t in subgraph
    assert nx.is_connected(subgraph)
    # Minimality: every leaf of the Steiner subtree is a terminal.
    for node in subgraph.nodes():
        if subgraph.degree(node) == 1:
            assert node in terminals


def test_steiner_tree_of_single_terminal_is_empty(small_grid):
    tree = bfs_spanning_tree(small_grid)
    assert tree.steiner_tree_edges([7]) == set()


def test_contract_to_produces_tree_on_kept_vertices(small_grid):
    tree = bfs_spanning_tree(small_grid, root=0)
    keep = {0, 7, 14, 23, 35}
    contracted = tree.contract_to(keep)
    assert contracted.nodes == keep
    graph = contracted.as_graph()
    assert nx.is_tree(graph)
    assert contracted.diameter() <= tree.diameter()


def test_contract_to_rejects_foreign_vertices(small_grid):
    tree = bfs_spanning_tree(small_grid)
    with pytest.raises(InvalidGraphError):
        tree.contract_to({0, 999})
    with pytest.raises(InvalidGraphError):
        tree.contract_to(set())


def test_subtree_nodes_and_children(small_grid):
    tree = bfs_spanning_tree(small_grid, root=0)
    all_nodes = tree.subtree_nodes(0)
    assert all_nodes == set(small_grid.nodes())
    for child in tree.children[0]:
        assert tree.subtree_nodes(child) < all_nodes


def test_center_root_reduces_tree_height():
    graph = grid_graph(1, 20)  # a path: rooting at the centre halves the height
    centre = center_root(graph)
    centred = bfs_spanning_tree(graph, root=centre)
    cornered = bfs_spanning_tree(graph, root=0)
    assert centred.height <= cornered.height // 2 + 1


def test_graph_diameter_exact_and_approximate():
    wheel = wheel_graph(20)
    assert graph_diameter(wheel) == 2
    big = grid_graph(25, 25)
    approx = graph_diameter(big, exact_threshold=10)
    assert approx >= nx.diameter(big) // 2
