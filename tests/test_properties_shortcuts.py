"""Property tests: every constructor's self-reported quality is honest.

For every registered shortcut constructor, over seeded random instances of
every registered graph family, the :class:`ShortcutQuality` returned by
``Shortcut.measure()`` must *exactly* match a from-scratch recomputation of
congestion (Definition 11), block parameter (Definition 12), tree diameter
and quality (Definition 13) implemented here independently of the
:class:`Shortcut` class (plain counters and union-find, no calls back into
the measured code).

A deterministic sweep covers every (family, applicable constructor) cell at
two seeds; a Hypothesis layer then fuzzes seeds and part counts across the
same grid.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    applicable_constructors,
    build_instance,
    constructor,
    family_names,
)
from repro.shortcuts.shortcut import Shortcut


# ------------------------------------------------------------- from scratch


def _recompute_congestion(shortcut: Shortcut) -> int:
    counts: Counter = Counter()
    for edges in shortcut.edge_sets:
        for edge in edges:
            counts[edge] += 1
    return max(counts.values(), default=0)


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[Hashable, Hashable] = {}

    def add(self, item: Hashable) -> None:
        if item not in self.parent:
            self.parent[item] = item

    def find(self, item: Hashable) -> Hashable:
        while self.parent[item] != item:
            self.parent[item] = self.parent[self.parent[item]]
            item = self.parent[item]
        return item

    def union(self, a: Hashable, b: Hashable) -> None:
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def _recompute_block(shortcut: Shortcut) -> int:
    """Definition 12 via union-find over each part's shortcut edge set."""
    worst = 0
    for index, part in enumerate(shortcut.parts):
        uf = _UnionFind()
        for vertex in part:
            uf.add(vertex)
        for u, v in shortcut.edge_sets[index]:
            uf.union(u, v)
        roots = {uf.find(vertex) for vertex in part}
        worst = max(worst, len(roots))
    return worst


def _recompute_tree_diameter(shortcut: Shortcut) -> int:
    tree_graph = nx.Graph()
    tree_graph.add_nodes_from(shortcut.tree.parent.keys())
    for node, parent in shortcut.tree.parent.items():
        if parent is not None:
            tree_graph.add_edge(node, parent)
    if tree_graph.number_of_nodes() <= 1:
        return 0
    return nx.diameter(tree_graph)


def _assert_measure_is_honest(shortcut: Shortcut) -> None:
    measure = shortcut.measure()
    congestion = _recompute_congestion(shortcut)
    block = _recompute_block(shortcut)
    diameter = _recompute_tree_diameter(shortcut)
    assert measure.congestion == congestion
    assert measure.block == block
    assert measure.tree_diameter == diameter
    assert measure.quality == block * diameter + congestion
    assert measure.num_parts == len(shortcut.parts)
    assert measure.total_shortcut_edges == sum(len(edges) for edges in shortcut.edge_sets)
    # The convenience accessors agree with the one-shot measurement.
    assert shortcut.congestion() == congestion
    assert shortcut.block_parameter() == block
    assert shortcut.quality() == measure.quality


def _check_cell(family_name: str, seed: int, num_parts: int) -> list[str]:
    """Run every applicable constructor on one instance; return the names."""
    instance = build_instance(family_name, seed=seed)
    parts = instance.parts("tree_fragments", num_parts=num_parts, seed=seed)
    names = applicable_constructors(instance)
    for name in names:
        shortcut = constructor(name).build(instance, instance.tree, parts)
        shortcut.validate()
        _assert_measure_is_honest(shortcut)
    return names


# ------------------------------------------------------------------- sweeps


@pytest.mark.parametrize("family_name", family_names())
@pytest.mark.parametrize("seed", [0, 3])
def test_every_constructor_reports_honest_quality(family_name, seed):
    names = _check_cell(family_name, seed=seed, num_parts=5)
    # Every family admits the four baselines plus (usually) its own theorem.
    assert len(names) >= 4


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    family_name=st.sampled_from(family_names()),
    seed=st.integers(min_value=0, max_value=10_000),
    num_parts=st.integers(min_value=1, max_value=9),
)
def test_honest_quality_fuzzed(family_name, seed, num_parts):
    _check_cell(family_name, seed=seed, num_parts=num_parts)


def test_path_and_singleton_parts_are_honest_too():
    instance = build_instance("planar", {"side": 6})
    for kind in ("path", "singleton"):
        parts = instance.parts(kind)
        for name in ("steiner", "oblivious"):
            shortcut = constructor(name).build(instance, instance.tree, parts)
            _assert_measure_is_honest(shortcut)
