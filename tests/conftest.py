"""Shared pytest fixtures: small, deterministic instances used across test modules."""

from __future__ import annotations

import pytest

from repro.graphs.minor_free import planar_plus_apex, sample_lk_graph
from repro.graphs.planar import grid_graph, wheel_graph
from repro.graphs.weights import assign_random_weights
from repro.shortcuts.parts import path_parts, tree_fragment_parts
from repro.structure.spanning import bfs_spanning_tree


@pytest.fixture(scope="session")
def small_grid():
    """A 6x6 grid: the workhorse planar instance."""
    return grid_graph(6, 6)


@pytest.fixture(scope="session")
def small_grid_tree(small_grid):
    return bfs_spanning_tree(small_grid)


@pytest.fixture(scope="session")
def small_grid_parts(small_grid, small_grid_tree):
    return path_parts(small_grid, small_grid_tree)


@pytest.fixture(scope="session")
def weighted_grid():
    graph = grid_graph(5, 5)
    assign_random_weights(graph, seed=5, integer=True)
    return graph


@pytest.fixture(scope="session")
def apex_witness():
    """An 8x8 grid plus one apex, with its almost-embeddable witness."""
    return planar_plus_apex(8, 8, apices=1, seed=3)


@pytest.fixture(scope="session")
def wheel():
    """The wheel graph on 24 outer nodes plus a hub (the paper's running example)."""
    return wheel_graph(24)


@pytest.fixture(scope="session")
def lk_sample():
    """A small L_3 sample with its clique-sum witness."""
    return sample_lk_graph(num_bags=4, k=3, bag_size=20, seed=7)


@pytest.fixture(scope="session")
def lk_parts(lk_sample):
    tree = bfs_spanning_tree(lk_sample.graph)
    return tree, tree_fragment_parts(lk_sample.graph, tree, num_parts=8, seed=9)
