"""Property wall for the CSR-native generators (hypothesis-driven).

Random ``(family, shape, weight seed)`` draws must preserve the generator
invariants that the rest of the stack relies on but the differential suite
only samples at fixed shapes:

- the emitted CSR is a well-formed symmetric graph (monotone ``indptr``
  anchored at 0/2m, sorted adjacency rows, every edge mirrored with the
  identical weight, no self-loops, strictly positive weights);
- every family produces a connected graph (``require_connected`` is part
  of the preserved generators' contract);
- structural promises hold where they are cheaply checkable -- planarity
  of the planar families, the width-``k`` interval certificate of the
  bounded-treewidth chains;
- generation is a pure function of ``(family, shape, seed)``: rebuilding
  in-process and in process-pool workers yields bit-identical arrays,
  which is what lets ``run_matrix --jobs N`` fan instances out safely.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.native import NATIVE_GENERATORS
from repro.graphs.planar import is_planar

# Wheel graphs are planar too, but ``delaunay`` is the interesting case:
# planarity of the triangulation is a property of the geometry, not the
# construction.
PLANAR_FAMILIES = ("grid", "cylinder", "cycle", "star", "wheel", "delaunay")

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def family_cases(draw, families=None):
    family = draw(st.sampled_from(sorted(families or NATIVE_GENERATORS)))
    if family == "grid":
        kwargs = {"rows": draw(st.integers(1, 12)), "cols": draw(st.integers(1, 12))}
    elif family == "cylinder":
        kwargs = {"rows": draw(st.integers(1, 8)), "cols": draw(st.integers(3, 12))}
    elif family == "cycle":
        kwargs = {"n": draw(st.integers(3, 60))}
    elif family == "star":
        kwargs = {"n": draw(st.integers(1, 60))}
    elif family == "wheel":
        kwargs = {"n": draw(st.integers(3, 40))}
    elif family == "delaunay":
        kwargs = {"n": draw(st.integers(4, 40)), "seed": draw(st.integers(0, 999))}
    elif family == "ktree_chain":
        k = draw(st.integers(1, 4))
        kwargs = {"n": draw(st.integers(k + 1, 50)), "k": k}
    else:  # clique_sum_chain
        k = draw(st.integers(1, 3))
        kwargs = {
            "num_bags": draw(st.integers(1, 4)),
            "bag_side": draw(st.integers(3, 5)),
            "k": k,
        }
    weight_seed = draw(st.one_of(st.none(), st.integers(0, 2**31 - 1)))
    return family, kwargs, weight_seed


def _build(family, kwargs, weight_seed):
    native_fn = NATIVE_GENERATORS[family][0]
    if weight_seed is None:
        return native_fn(**kwargs)
    return native_fn(**kwargs, weight_seed=weight_seed, integer=False)


def _arrays(family, kwargs, weight_seed):
    """Picklable worker: build a case and return its raw arrays."""
    view = _build(family, kwargs, weight_seed)
    core = view.core
    weights = core.weights.tolist() if view.has_weights else None
    return view.nodes, core.indptr.tolist(), core.indices.tolist(), weights


@given(case=family_cases())
@SETTINGS
def test_symmetric_csr_invariants(case):
    family, kwargs, weight_seed = case
    view = _build(family, kwargs, weight_seed)
    core = view.core
    n = core.num_nodes
    indptr, indices = core.indptr, core.indices
    assert len(view.nodes) == n == len(set(view.nodes))
    assert view.nodes == sorted(view.nodes, key=repr)
    # Monotone row pointers anchored at 0 and 2m.
    assert indptr[0] == 0
    assert indptr[-1] == len(indices) == 2 * core.num_edges
    assert np.all(np.diff(indptr) >= 0)
    assert core.sorted_adjacency
    directed = set()
    for u in range(n):
        row = indices[indptr[u] : indptr[u + 1]].tolist()
        assert row == sorted(row), "adjacency rows must be index-sorted"
        assert len(row) == len(set(row)), "no parallel edges"
        assert u not in row, "no self-loops"
        directed.update((u, v) for v in row)
    # Every directed arc is mirrored ...
    assert directed == {(v, u) for u, v in directed}
    if weight_seed is not None:
        weights = core.weights
        assert np.all(weights > 0)
        by_arc = {}
        for u in range(n):
            for offset in range(int(indptr[u]), int(indptr[u + 1])):
                by_arc[(u, int(indices[offset]))] = float(weights[offset])
        # ... with the identical weight on both directions.
        assert all(by_arc[(u, v)] == by_arc[(v, u)] for (u, v) in by_arc)


@given(case=family_cases())
@SETTINGS
def test_every_family_is_connected(case):
    family, kwargs, weight_seed = case
    assert _build(family, kwargs, weight_seed).core.is_connected()


@given(case=family_cases(families=PLANAR_FAMILIES))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_planar_families_are_planar(case):
    family, kwargs, weight_seed = case
    view = _build(family, kwargs, weight_seed)
    assert is_planar(view.graph)


@given(case=family_cases(families=("ktree_chain",)))
@SETTINGS
def test_ktree_chain_interval_certificate(case):
    """Every edge spans at most ``k`` labels: the bags ``{i-k .. i}`` are a
    path decomposition of width ``k``, certifying treewidth <= k."""
    family, kwargs, weight_seed = case
    view = _build(family, kwargs, weight_seed)
    nodes = view.nodes
    indptr, indices = view.core.indptr, view.core.indices
    k = kwargs["k"]
    for u in range(view.core.num_nodes):
        for v in indices[indptr[u] : indptr[u + 1]].tolist():
            assert 1 <= abs(nodes[u] - nodes[v]) <= k


@given(case=family_cases())
@SETTINGS
def test_rebuild_is_bit_identical(case):
    family, kwargs, weight_seed = case
    assert _arrays(family, kwargs, weight_seed) == _arrays(family, kwargs, weight_seed)


@pytest.mark.parametrize(
    "family, kwargs, weight_seed",
    [
        ("grid", {"rows": 9, "cols": 14}, 5),
        ("delaunay", {"n": 60, "seed": 11}, 23),
        ("clique_sum_chain", {"num_bags": 3, "bag_side": 4, "k": 3}, 0),
    ],
)
def test_seed_determinism_across_process_pool_workers(family, kwargs, weight_seed):
    """The same draw in two pool workers equals the in-process build exactly
    (the contract ``run_matrix --jobs N`` relies on)."""
    local = _arrays(family, kwargs, weight_seed)
    with ProcessPoolExecutor(max_workers=2) as pool:
        remote = [
            future.result()
            for future in [
                pool.submit(_arrays, family, kwargs, weight_seed) for _ in range(2)
            ]
        ]
    assert remote[0] == local
    assert remote[1] == local
