"""Tests for the CONGEST simulator, its primitives and part-wise aggregation."""

import networkx as nx
import pytest

from repro.congest.aggregation import partwise_aggregate
from repro.congest.node import NodeContext, NodeProgram, message_size_in_words
from repro.congest.primitives import distributed_bfs_tree, flood_max_id
from repro.congest.simulator import CongestSimulator
from repro.errors import SimulationError
from repro.graphs.planar import grid_graph, wheel_graph
from repro.shortcuts.baseline import empty_shortcut, steiner_shortcut, whole_tree_shortcut
from repro.shortcuts.congestion_capped import oblivious_shortcut
from repro.shortcuts.parts import path_parts, tree_fragment_parts
from repro.structure.spanning import bfs_spanning_tree


# ------------------------------------------------------------------ model basics


def test_message_size_accounting():
    assert message_size_in_words(None) == 0
    assert message_size_in_words(7) == 1
    assert message_size_in_words((1, 2.5, 3)) == 3
    assert message_size_in_words("tag") == 1
    assert message_size_in_words({"a": 1}) == 2


class _ChattyProgram(NodeProgram):
    """Sends an oversized message in round 1 (used to test enforcement)."""

    def on_start(self):
        return {
            neighbour: tuple(range(50)) for neighbour in self.context.neighbours[:1]
        }


class _StrangerProgram(NodeProgram):
    """Sends to a node that is not a neighbour."""

    def on_start(self):
        return {("not", "a", "neighbour"): 1}


def test_simulator_enforces_bandwidth_and_topology():
    graph = grid_graph(3, 3)
    with pytest.raises(SimulationError):
        CongestSimulator(graph, _ChattyProgram).run()
    with pytest.raises(SimulationError):
        CongestSimulator(graph, _StrangerProgram).run()


def test_simulator_rejects_disconnected_and_looped_graphs():
    disconnected = nx.Graph()
    disconnected.add_nodes_from([0, 1])
    with pytest.raises(Exception):
        CongestSimulator(disconnected, NodeProgram)
    looped = nx.Graph()
    looped.add_edge(0, 0)
    looped.add_edge(0, 1)
    with pytest.raises(Exception):
        CongestSimulator(looped, NodeProgram)


def test_idle_programs_terminate_immediately():
    graph = grid_graph(3, 3)
    result = CongestSimulator(graph, NodeProgram).run()
    assert result.messages == 0
    assert result.rounds <= 1


# ------------------------------------------------------------------ primitives


def test_distributed_bfs_tree_matches_distances_and_round_bound():
    graph = grid_graph(5, 5)
    tree, stats = distributed_bfs_tree(graph, root=0)
    distances = nx.single_source_shortest_path_length(graph, 0)
    assert tree.depth == distances
    assert stats.rounds <= nx.diameter(graph) + 3


def test_distributed_bfs_tree_on_wheel_is_constant_rounds():
    wheel = wheel_graph(30)
    hub = max(wheel.nodes(), key=lambda v: wheel.degree(v))
    tree, stats = distributed_bfs_tree(wheel, root=hub)
    assert tree.height == 1
    assert stats.rounds <= 4


def test_flood_max_id_elects_unique_leader():
    graph = grid_graph(4, 4)
    leader, stats = flood_max_id(graph)
    assert leader in graph
    assert stats.rounds <= 2 * nx.diameter(graph) + 4


# ------------------------------------------------------------------ aggregation


def _central_aggregates(parts, values, combine):
    result = []
    for part in parts:
        items = [values[v] for v in part]
        aggregate = items[0]
        for item in items[1:]:
            aggregate = combine(aggregate, item)
        result.append(aggregate)
    return result


def test_partwise_aggregate_matches_central_min(small_grid, small_grid_tree, small_grid_parts):
    shortcut = oblivious_shortcut(small_grid, small_grid_tree, small_grid_parts)
    values = {v: (v * 7) % 23 for v in small_grid.nodes()}
    result = partwise_aggregate(shortcut, values, combine=min)
    assert result.values == _central_aggregates(small_grid_parts, values, min)
    assert result.rounds > 0
    assert max(result.per_part_rounds) <= result.rounds


def test_partwise_aggregate_matches_central_sum(small_grid, small_grid_tree):
    parts = tree_fragment_parts(small_grid, small_grid_tree, num_parts=5, seed=3)
    shortcut = steiner_shortcut(small_grid, small_grid_tree, parts)
    values = {v: 1 for v in small_grid.nodes()}
    result = partwise_aggregate(shortcut, values, combine=lambda a, b: a + b)
    assert result.values == [len(part) for part in parts]


def test_partwise_aggregate_single_vertex_parts(small_grid, small_grid_tree):
    parts = [frozenset({v}) for v in list(small_grid.nodes())[:10]]
    shortcut = empty_shortcut(small_grid, small_grid_tree, parts)
    values = {v: v for v in small_grid.nodes()}
    result = partwise_aggregate(shortcut, values, combine=min)
    assert result.values == [next(iter(p)) for p in parts]
    assert result.rounds == 0


def test_partwise_aggregate_missing_value_raises(small_grid, small_grid_tree, small_grid_parts):
    shortcut = empty_shortcut(small_grid, small_grid_tree, small_grid_parts)
    with pytest.raises(SimulationError):
        partwise_aggregate(shortcut, {0: 1}, combine=min)


def test_congestion_serialises_shared_edges(wheel):
    """Many parts sharing the hub's tree edges must pay congestion in rounds."""
    hub = max(wheel.nodes(), key=lambda v: wheel.degree(v))
    tree = bfs_spanning_tree(wheel, root=hub)
    outer = sorted(set(wheel.nodes()) - {hub})
    # Parts: consecutive arcs of the outer cycle.
    arc = len(outer) // 4
    parts = [frozenset(outer[i * arc : (i + 1) * arc]) for i in range(4)]
    whole = whole_tree_shortcut(wheel, tree, parts)
    lean = oblivious_shortcut(wheel, tree, parts)
    values = {v: v for v in wheel.nodes()}
    rounds_whole = partwise_aggregate(whole, values, combine=min).rounds
    rounds_lean = partwise_aggregate(lean, values, combine=min).rounds
    assert rounds_lean <= rounds_whole + 2  # pruning congestion never hurts much


def test_aggregation_on_wheel_beats_no_shortcut(wheel):
    """The paper's motivating example: the outer cycle aggregates slowly alone."""
    hub = max(wheel.nodes(), key=lambda v: wheel.degree(v))
    tree = bfs_spanning_tree(wheel, root=hub)
    outer = frozenset(set(wheel.nodes()) - {hub})
    values = {v: v for v in wheel.nodes()}
    from repro.shortcuts.apex import apex_shortcut

    with_shortcut = apex_shortcut(wheel, tree, [outer], apices=[hub])
    without = empty_shortcut(wheel, tree, [outer])
    fast = partwise_aggregate(with_shortcut, values, combine=min).rounds
    slow = partwise_aggregate(without, values, combine=min).rounds
    assert fast < slow
