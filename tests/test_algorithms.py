"""Tests for the distributed MST and approximate min-cut algorithms."""

import networkx as nx
import pytest

from repro.algorithms.mincut import approximate_min_cut, exact_min_cut
from repro.algorithms.mst import boruvka_mst, reference_mst_weight
from repro.algorithms.mst_baselines import (
    gkp_reference_rounds,
    no_shortcut_builder,
    paper_reference_rounds,
    whole_tree_builder,
)
from repro.graphs.minor_free import planar_plus_apex
from repro.graphs.planar import cycle_graph, grid_graph, random_delaunay_triangulation, wheel_graph
from repro.graphs.weights import assign_adversarial_weights, assign_random_weights, assign_unit_weights
from repro.shortcuts.apex import apex_shortcut_from_witness
from repro.structure.spanning import bfs_spanning_tree


# ------------------------------------------------------------------ MST correctness


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_boruvka_matches_reference_on_grids(seed):
    graph = grid_graph(5, 5)
    assign_random_weights(graph, seed=seed, integer=True)
    result = boruvka_mst(graph, validate_shortcuts=True)
    assert abs(result.weight - reference_mst_weight(graph)) < 1e-6
    assert len(result.edges) == graph.number_of_nodes() - 1
    mst_graph = nx.Graph(list(result.edges))
    assert nx.is_tree(mst_graph)


def test_boruvka_matches_reference_on_delaunay():
    graph = random_delaunay_triangulation(60, seed=4)
    assign_random_weights(graph, seed=4, integer=True)
    result = boruvka_mst(graph)
    assert abs(result.weight - reference_mst_weight(graph)) < 1e-6


def test_boruvka_with_all_builders_agree(weighted_grid):
    reference = reference_mst_weight(weighted_grid)
    for builder in (None, no_shortcut_builder, whole_tree_builder):
        result = boruvka_mst(weighted_grid, shortcut_builder=builder)
        assert abs(result.weight - reference) < 1e-6


def test_boruvka_phase_count_is_logarithmic(weighted_grid):
    result = boruvka_mst(weighted_grid)
    assert result.phases <= 2 + weighted_grid.number_of_nodes().bit_length()
    assert len(result.phase_rounds) == result.phases
    assert sum(result.phase_rounds) == result.rounds


def test_boruvka_on_unit_weights_returns_spanning_tree():
    graph = grid_graph(4, 6)
    assign_unit_weights(graph)
    result = boruvka_mst(graph)
    assert len(result.edges) == graph.number_of_nodes() - 1


def test_shortcuts_help_on_adversarial_wheel_weights():
    """On the wheel with a long light outer path, shortcuts beat the naive runs."""
    wheel = wheel_graph(48)
    hub = max(wheel.nodes(), key=lambda v: wheel.degree(v))
    spine = sorted(set(wheel.nodes()) - {hub})
    assign_adversarial_weights(wheel, spine=spine)
    tree = bfs_spanning_tree(wheel, root=hub)
    naive = boruvka_mst(wheel, shortcut_builder=no_shortcut_builder, tree=tree)
    accelerated = boruvka_mst(wheel, tree=tree)
    assert abs(naive.weight - accelerated.weight) < 1e-6
    assert accelerated.rounds < naive.rounds


def test_apex_builder_on_planar_plus_apex_matches_reference():
    witness = planar_plus_apex(7, 7, apices=1, seed=5)
    graph = witness.graph
    assign_random_weights(graph, seed=5, integer=True)
    tree = bfs_spanning_tree(graph)

    def builder(g, t, parts):
        return apex_shortcut_from_witness(witness, t, parts)

    result = boruvka_mst(graph, shortcut_builder=builder, tree=tree)
    assert abs(result.weight - reference_mst_weight(graph)) < 1e-6
    assert result.phase_qualities  # qualities recorded per phase


# ------------------------------------------------------------------ reference curves


def test_reference_round_formulas_are_monotone():
    assert gkp_reference_rounds(400, 10) > gkp_reference_rounds(100, 10)
    assert paper_reference_rounds(20, 100) > paper_reference_rounds(10, 100)


# ------------------------------------------------------------------ min cut


def test_exact_min_cut_on_cycle_is_two():
    graph = cycle_graph(12)
    assign_unit_weights(graph)
    assert exact_min_cut(graph) == 2.0


def test_approximate_min_cut_within_epsilon_on_grid():
    graph = grid_graph(5, 5)
    assign_random_weights(graph, low=1, high=10, seed=6, integer=True)
    result = approximate_min_cut(graph, epsilon=1.0)
    assert result.value >= result.exact_value - 1e-9
    assert result.approximation_ratio <= 2.0
    assert result.rounds > 0
    assert 0 < len(result.side) < graph.number_of_nodes()


def test_approximate_min_cut_exact_on_cycle():
    graph = cycle_graph(16)
    assign_unit_weights(graph)
    result = approximate_min_cut(graph, epsilon=0.5)
    # A cycle's min cut (2) always 2-respects a packed spanning tree.
    assert result.value == pytest.approx(2.0)
    assert result.approximation_ratio == pytest.approx(1.0)


def test_approximate_min_cut_cut_edges_cross_reported_side():
    graph = grid_graph(4, 4)
    assign_random_weights(graph, low=1, high=5, seed=7, integer=True)
    result = approximate_min_cut(graph, epsilon=1.0)
    for u, v in result.cut_edges:
        assert (u in result.side) != (v in result.side)
    crossing_weight = sum(graph[u][v]["weight"] for u, v in result.cut_edges)
    assert crossing_weight == pytest.approx(result.value)


def test_min_cut_rejects_bad_epsilon(weighted_grid):
    with pytest.raises(Exception):
        approximate_min_cut(weighted_grid, epsilon=0.0)
