"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools lacks the
PEP 660 editable-wheel machinery (it falls back to the classic
``setup.py develop`` code path).
"""

from setuptools import setup

setup()
