"""Minimal in-tree PEP 517 / PEP 660 build backend.

Why this exists: the reproduction is developed and evaluated in an offline
environment whose ``setuptools`` installation predates built-in editable
wheel support and which has no ``wheel`` package (and no network to fetch
one).  ``pip install -e .`` would therefore fail with the standard setuptools
backend.  This backend builds the (editable) wheel with nothing but the
standard library, which is trivial for a pure-Python ``src``-layout package:

* ``build_wheel``     zips ``src/repro`` plus the dist-info metadata;
* ``build_editable``  ships a single ``.pth`` file pointing at ``src`` plus
  the same metadata, which is the classic "path file" editable install.

The backend intentionally supports only this one project; it reads the name
and version from ``pyproject.toml`` so they are defined in exactly one place.
"""

from __future__ import annotations

import base64
import csv
import hashlib
import io
import os
import zipfile

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - fallback for 3.10
    tomllib = None

_ROOT = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(_ROOT, "src")


def _project_metadata() -> tuple[str, str, list[str]]:
    """Return (name, version, dependencies) from pyproject.toml."""
    path = os.path.join(_ROOT, "pyproject.toml")
    if tomllib is not None:
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
        project = data.get("project", {})
        return (
            project.get("name", "repro"),
            project.get("version", "0.0.0"),
            list(project.get("dependencies", [])),
        )
    # Extremely defensive fallback: the values the project actually uses.
    return "repro", "1.0.0", []


def _record_hash(data: bytes) -> str:
    digest = hashlib.sha256(data).digest()
    return "sha256=" + base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")


class _WheelWriter:
    """Accumulates files for a wheel and writes the RECORD at the end."""

    def __init__(self, path: str) -> None:
        self._zip = zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED)
        self._records: list[tuple[str, str, int]] = []

    def add(self, arcname: str, data: bytes) -> None:
        self._zip.writestr(arcname, data)
        self._records.append((arcname, _record_hash(data), len(data)))

    def finish(self, dist_info: str) -> None:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        for name, digest, size in self._records:
            writer.writerow([name, digest, size])
        writer.writerow([f"{dist_info}/RECORD", "", ""])
        self._zip.writestr(f"{dist_info}/RECORD", buffer.getvalue())
        self._zip.close()


def _metadata_files(name: str, version: str, dependencies: list[str]) -> dict[str, bytes]:
    metadata_lines = [
        "Metadata-Version: 2.1",
        f"Name: {name}",
        f"Version: {version}",
        "Summary: Reproduction of 'Minor Excluded Network Families Admit Fast "
        "Distributed Algorithms' (PODC 2018)",
        "Requires-Python: >=3.10",
    ]
    metadata_lines += [f"Requires-Dist: {dep}" for dep in dependencies]
    wheel_lines = [
        "Wheel-Version: 1.0",
        "Generator: repro-inline-backend (1.0)",
        "Root-Is-Purelib: true",
        "Tag: py3-none-any",
    ]
    return {
        "METADATA": ("\n".join(metadata_lines) + "\n").encode("utf-8"),
        "WHEEL": ("\n".join(wheel_lines) + "\n").encode("utf-8"),
        "top_level.txt": b"repro\n",
    }


def _wheel_name(name: str, version: str) -> str:
    return f"{name}-{version}-py3-none-any.whl"


def _write_wheel(wheel_directory: str, editable: bool) -> str:
    name, version, dependencies = _project_metadata()
    dist_info = f"{name}-{version}.dist-info"
    filename = _wheel_name(name, version)
    target = os.path.join(wheel_directory, filename)
    writer = _WheelWriter(target)
    if editable:
        writer.add(f"__editable__.{name}.pth", (_SRC + "\n").encode("utf-8"))
    else:
        package_root = os.path.join(_SRC, name)
        for directory, _dirs, files in sorted(os.walk(package_root)):
            for file_name in sorted(files):
                if file_name.endswith((".pyc", ".pyo")):
                    continue
                full = os.path.join(directory, file_name)
                arcname = os.path.relpath(full, _SRC).replace(os.sep, "/")
                with open(full, "rb") as handle:
                    writer.add(arcname, handle.read())
    for meta_name, data in _metadata_files(name, version, dependencies).items():
        writer.add(f"{dist_info}/{meta_name}", data)
    writer.finish(dist_info)
    return filename


# --- PEP 517 hooks -----------------------------------------------------------


def get_requires_for_build_wheel(config_settings=None):  # noqa: D103 - PEP 517 API
    return []


def get_requires_for_build_editable(config_settings=None):  # noqa: D103 - PEP 660 API
    return []


def get_requires_for_build_sdist(config_settings=None):  # noqa: D103 - PEP 517 API
    return []


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):  # noqa: D103
    return _write_wheel(wheel_directory, editable=False)


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):  # noqa: D103
    return _write_wheel(wheel_directory, editable=True)


def build_sdist(sdist_directory, config_settings=None):  # noqa: D103 - PEP 517 API
    import tarfile

    name, version, _ = _project_metadata()
    base = f"{name}-{version}"
    target = os.path.join(sdist_directory, base + ".tar.gz")
    with tarfile.open(target, "w:gz") as archive:
        for entry in ("pyproject.toml", "setup.py", "README.md", "build_backend.py", "src"):
            full = os.path.join(_ROOT, entry)
            if os.path.exists(full):
                archive.add(full, arcname=os.path.join(base, entry))
    return os.path.basename(target)
