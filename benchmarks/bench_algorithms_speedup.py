"""S5 -- the array-native algorithm layer versus the networkx reference.

The acceptance gate of the algorithm-layer refactor: one end-to-end
distributed MST plus one (1+eps)-approximate min-cut (the Corollary 1
workload) on the array-native fast paths -- flat union-find Boruvka
fragments, CSR MWOE scans, engine-driven per-phase shortcuts, indexed
aggregation, Euler-interval respecting-cut sweeps -- must be at least **3x**
faster than the preserved seed implementations forced via
``repro.core.networkx_reference_paths`` on a mid-size planar grid, with both
arms producing identical results (MST edges/weight/rounds/phases/qualities,
cut value/side/edges/rounds).  On this hardware the measured ratio is ~5-8x.

Each run appends its record to ``benchmarks/BENCH_S5.json`` (see
``conftest.append_trajectory``) -- a trajectory of (size, speedup, rounds)
entries so that speedup regressions are visible across commits, not just
against the gate.

CI runs this file at a smaller side by setting ``S5_BENCH_SIDE`` and raises
``S5_BENCH_REPEATS``; both arms take the best of N runs, which keeps the
ratio stable on noisy shared runners.
"""

import os

from conftest import append_trajectory, run_experiment

from repro.analysis.experiments import experiment_algorithms_speedup

SIDE = int(os.environ.get("S5_BENCH_SIDE", "30"))
REPEATS = int(os.environ.get("S5_BENCH_REPEATS", "3"))


def test_s5_algorithms_speedup(benchmark):
    result = run_experiment(
        benchmark,
        experiment_algorithms_speedup,
        side=SIDE,
        repeats=REPEATS,
    )
    append_trajectory("S5", result)
    assert result["results_agree"]
    assert result["speedup"] >= 3.0
