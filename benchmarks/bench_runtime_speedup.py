"""S6 -- the vectorized CONGEST runtime versus the per-node core mode.

The acceptance gate of the runtime refactor: the end-to-end simulated
phases of a 30x30-grid MST scenario (simulated BFS-tree construction plus
result broadcast) must run at least **3x** faster under the vectorized
:class:`~repro.congest.runtime.RuntimeSimulator` (compiled batch programs
over flat arrays) than under the per-node active-set
:class:`~repro.congest.CongestSimulator` in core mode -- the previously
fastest execution mode -- with both arms producing identical records (MST
rounds/phases/weight and the complete simulated-phase telemetry: rounds,
messages, words, peak active nodes, active-node-rounds).  On this hardware
the measured ratio is ~6-9x.

Each run appends its record to ``benchmarks/BENCH_S6.json`` -- a
trajectory of (size, speedup, rounds) entries so that speedup regressions
are visible across commits, not just against the gate.

CI runs this file at a smaller side by setting ``S6_BENCH_SIDE`` and
raises ``S6_BENCH_REPEATS``; both arms take the best of N runs, which
keeps the ratio stable on noisy shared runners.
"""

import os

from conftest import append_trajectory, run_experiment

from repro.analysis.experiments import experiment_runtime_speedup

SIDE = int(os.environ.get("S6_BENCH_SIDE", "30"))
REPEATS = int(os.environ.get("S6_BENCH_REPEATS", "3"))


def test_s6_runtime_speedup(benchmark):
    result = run_experiment(
        benchmark,
        experiment_runtime_speedup,
        side=SIDE,
        repeats=REPEATS,
    )
    append_trajectory("S6", result)
    # Rounds, messages and telemetry exactly equal to the per-node mode.
    assert result["results_agree"]
    assert result["runtime"]["mst_rounds"] == result["core"]["mst_rounds"]
    # The vectorized runtime is at least 3x faster on the simulated phases.
    assert result["sim_speedup"] >= 3.0
    # ... and the whole MST scenario got faster, not slower.
    assert result["total_speedup"] > 1.0
