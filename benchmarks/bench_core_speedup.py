"""S3 -- CoreGraph paths versus the pre-refactor networkx paths (>=2x gate).

The acceptance gate of the CSR kernel refactor: with the preserved
``networkx`` reference implementations forced via
``repro.core.networkx_reference_paths`` as the baseline,

* ``Shortcut.measure()`` (flat congestion counting + epoch union-find
  blocks) must be at least 2x faster than the per-part
  ``nx.Graph``-components recomputation, and
* the full simulated MST scenario on the n=2025 grid (core-mode simulator,
  CSR aggregation trees and part validation, fast per-phase quality) must be
  at least 2x faster than the same scenario on the pre-refactor paths,

with both arms producing identical results.  On this hardware the measured
ratios are ~25-35x for quality measurement and ~3x for the MST run.

CI runs this file at a smaller n by setting ``CORE_BENCH_MST_SIDE`` /
``CORE_BENCH_QUALITY_SIDE``; the MST ratio shrinks with n (fixed set-up
costs weigh on the core arm), so the smoke also raises
``CORE_BENCH_REPEATS`` -- both arms take the best of N runs, which keeps
the ratio stable on noisy shared runners.

Each run appends its record to ``benchmarks/BENCH_S3.json`` (see
``conftest.append_trajectory``), like every other speedup gate.
"""

import os

from conftest import append_trajectory, run_experiment

from repro.analysis.experiments import experiment_core_speedup

MST_SIDE = int(os.environ.get("CORE_BENCH_MST_SIDE", "45"))
QUALITY_SIDE = int(os.environ.get("CORE_BENCH_QUALITY_SIDE", "30"))
REPEATS = int(os.environ.get("CORE_BENCH_REPEATS", "3"))


def test_s3_core_speedup(benchmark):
    result = run_experiment(
        benchmark,
        experiment_core_speedup,
        mst_side=MST_SIDE,
        quality_side=QUALITY_SIDE,
        repeats=REPEATS,
    )
    append_trajectory("S3", result)
    assert result["quality"]["results_agree"]
    assert result["mst"]["results_agree"]
    assert result["quality"]["speedup"] >= 2.0
    assert result["mst"]["speedup"] >= 2.0
