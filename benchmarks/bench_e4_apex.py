"""E4 -- Lemma 9 / Theorem 8: apex graphs (wheel and grid+apex workloads)."""

from conftest import run_experiment

from repro.analysis.experiments import experiment_apex


def test_e4_apex(benchmark):
    result = run_experiment(benchmark, experiment_apex, cycle_size=64, grid_side=10)
    wheel = result["wheel"]
    # The apex collapses the diameter to 2 and the apex-aware shortcut tracks it.
    assert wheel["diameter_with_apex"] == 2
    assert wheel["apex_quality"] < wheel["naive_quality"]
    assert result["grid_plus_apex"]["cell_assignment_max_skipped"] <= 2
