"""E2 -- Theorem 5: treewidth-k shortcut quality versus k (see DESIGN.md)."""

from conftest import run_experiment

from repro.analysis.experiments import experiment_treewidth_quality


def test_e2_treewidth_quality(benchmark):
    result = run_experiment(benchmark, experiment_treewidth_quality, widths=(2, 3, 4), n=60)
    for row in result["rows"]:
        # Block parameter stays bounded by O(k), independent of n.
        assert row["block"] <= 8 * (row["k"] + 1)
