"""E3 -- Theorem 7: clique-sum composition and the heavy-light folding ablation."""

from conftest import run_experiment

from repro.analysis.experiments import experiment_clique_sum


def test_e3_clique_sum_folding(benchmark):
    result = run_experiment(benchmark, experiment_clique_sum, num_bags=10, bag_side=5, k=3)
    assert result["decomposition_depth"] == 9  # deliberately path-shaped (worst case)
    assert result["folded"]["quality"] > 0
    assert result["unfolded"]["quality"] > 0
