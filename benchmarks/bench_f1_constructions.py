"""F1 -- Figure 1: the apex / vortex / clique-sum ingredients as illustrated."""

from conftest import run_experiment

from repro.analysis.experiments import experiment_constructions


def test_f1_constructions(benchmark):
    result = run_experiment(benchmark, experiment_constructions)
    assert result["almost_embeddable"]["vortex_internal_nodes"] > 0
    assert result["clique_sum"]["shared_clique_size"] <= 3
