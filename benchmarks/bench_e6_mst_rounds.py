"""E6 -- Corollary 1: MST round counts on excluded-minor versus general graphs."""

from conftest import run_experiment

from repro.analysis.experiments import experiment_mst_rounds


def test_e6_mst_rounds(benchmark):
    result = run_experiment(
        benchmark,
        experiment_mst_rounds,
        grid_side=10,
        lower_bound_paths=8,
        lower_bound_length=8,
    )
    planar = result["planar_plus_apex"]
    assert planar["weight_matches_reference"]
    # The excluded-minor instance finishes well under the sqrt(n) reference curve.
    assert planar["accelerated_rounds"] < 20 * planar["general_graph_reference_sqrt_n"]
    # On the wheel with adversarial weights (long skinny fragments, diameter 2)
    # the shortcut-accelerated MST beats the naive baseline outright.
    assert result["wheel_adversarial"]["accelerated_wins"]
