"""A1 -- ablation: the congestion/block trade-off of the oblivious constructor.

DESIGN.md calls out the congestion budget of the structure-oblivious
constructor (the knob the HIZ16a doubling search tunes) as the design choice
worth ablating: too small a budget fragments every part into many blocks, too
large a budget lets hot tree edges serialise many parts.  This benchmark
sweeps the budget on a planar+apex instance and prints the measured
block / congestion / quality curve, confirming that the doubling search's
chosen operating point sits at (or near) the minimum of the curve.
"""

import json

from repro.graphs.minor_free import planar_plus_apex
from repro.shortcuts.congestion_capped import congestion_capped_shortcut, oblivious_shortcut
from repro.shortcuts.parts import path_parts
from repro.structure.spanning import bfs_spanning_tree


def _sweep(grid_side: int = 10, seed: int = 5) -> dict:
    witness = planar_plus_apex(grid_side, grid_side, apices=1, seed=seed)
    graph = witness.graph
    tree = bfs_spanning_tree(graph)
    parts = path_parts(witness.non_apex_graph())
    rows = []
    for budget in (1, 2, 4, 8, 16, len(parts)):
        shortcut = congestion_capped_shortcut(graph, tree, parts, congestion_budget=budget)
        measure = shortcut.measure()
        rows.append(
            {
                "budget": budget,
                "block": measure.block,
                "congestion": measure.congestion,
                "quality": measure.quality,
            }
        )
    searched = oblivious_shortcut(graph, tree, parts).measure()
    return {
        "experiment": "A1-congestion-budget-ablation",
        "rows": rows,
        "doubling_search_quality": searched.quality,
        "best_fixed_budget_quality": min(row["quality"] for row in rows),
    }


def test_a1_congestion_budget_ablation(benchmark):
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(json.dumps(result, indent=2))
    # The doubling search must match the best fixed budget it could have tried.
    assert result["doubling_search_quality"] <= result["best_fixed_budget_quality"]
