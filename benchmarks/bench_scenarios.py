"""S1 -- the scenario-matrix sweep: every family x applicable constructor.

This is the declarative "one entry point" sweep of the scenario engine; the
CI smoke runs it on the families' tiny sizes.  The same sweep is available
on the command line as ``python -m repro.scenarios --size tiny``.
"""

from conftest import run_experiment

from repro.analysis.experiments import experiment_scenario_matrix
from repro.scenarios import family_names


def test_s1_scenario_matrix(benchmark):
    result = run_experiment(
        benchmark,
        experiment_scenario_matrix,
        size="tiny",
        algorithm="quality",
    )
    per_family = result["constructors_per_family"]
    # Every registered family ran, each through at least two constructors.
    assert sorted(per_family) == family_names()
    assert len(per_family) == 7
    assert all(count >= 2 for count in per_family.values())
    # The shared instance cache actually deduplicated instance generation.
    assert result["instance_cache"]["instances"] == 7
    # Every applicable record carries a measured quality row.
    for record in result["records"]:
        if record["applicable"]:
            row = record["result"]["shortcut"]
            assert row["quality"] >= row["congestion"]
