"""E10 -- Lemmas 4-7: cell-assignment beta and combinatorial gate size."""

from conftest import run_experiment

from repro.analysis.experiments import experiment_cells_and_gates


def test_e10_cells_and_gates(benchmark):
    result = run_experiment(benchmark, experiment_cells_and_gates, grid_side=10)
    assert result["max_skipped"] <= 2  # Definition 15 property (i)
    assert result["beta"] <= result["num_parts"]
