"""E9 -- Lemma 2/3: treewidth of Genus+Vortex graphs scales with (g+1) k l D."""

from conftest import run_experiment

from repro.analysis.experiments import experiment_genus_vortex_treewidth


def test_e9_genus_vortex_treewidth(benchmark):
    result = run_experiment(
        benchmark, experiment_genus_vortex_treewidth, sides=(5, 7, 9), genus=1, depth=2
    )
    for row in result["rows"]:
        assert row["measured_width"] <= 4 * row["target_width"]
