"""S2 -- active-set versus full-scan (seed) simulator on a 2000-node grid MST.

The acceptance gate of the active-set rewrite: the simulator-driven phases
of a 45x45-grid MST scenario (simulated BFS-tree construction plus result
broadcast) must run at least 2x faster under the active-set simulator than
under the seed-faithful full-scan :class:`ReferenceSimulator`, with both
producing identical results.  On this hardware the measured ratio is ~10x
for the simulated phases and ~2.5x for the whole MST run.

Each run appends its record to ``benchmarks/BENCH_S2.json`` (see
``conftest.append_trajectory``), like every other speedup gate.
"""

from conftest import append_trajectory, run_experiment

from repro.analysis.experiments import experiment_simulator_speedup


def test_s2_simulator_speedup(benchmark):
    result = run_experiment(
        benchmark,
        experiment_simulator_speedup,
        side=45,
    )
    append_trajectory("S2", result)
    assert result["n"] == 2025
    # Both simulators agree on every measured quantity (rounds, weights, ...).
    assert result["results_agree"]
    assert result["active_set"]["mst_rounds"] == result["full_scan"]["mst_rounds"]
    # The active-set simulator is at least 2x faster on the simulated phases.
    assert result["sim_speedup"] >= 2.0
    # ... and the whole MST run (Boruvka included) got faster, not slower.
    assert result["total_speedup"] > 1.0
