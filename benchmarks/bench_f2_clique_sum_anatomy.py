"""F2-F4 -- Figures 2-4: anatomy of the clique-sum shortcut construction.

Instruments the local/global split of Theorem 7 on a path-shaped clique-sum:
how many edges each part receives from the global versus the local step, and
how much the heavy-light folding (Figure 4) compresses the decomposition tree.
"""

import json

from repro.graphs.clique_sum import clique_sum_compose
from repro.graphs.planar import grid_graph
from repro.shortcuts.clique_sum import clique_sum_shortcut
from repro.shortcuts.parts import tree_fragment_parts
from repro.structure.heavy_light import fold_decomposition_tree, identity_folding
from repro.structure.spanning import bfs_spanning_tree


def _anatomy(num_bags: int = 12, bag_side: int = 4, k: int = 3, seed: int = 2024) -> dict:
    components = [grid_graph(bag_side, bag_side) for _ in range(num_bags)]
    decomposition = clique_sum_compose(components, k=k, seed=seed, tree_shape="path")
    graph = decomposition.graph
    tree = bfs_spanning_tree(graph)
    parts = tree_fragment_parts(graph, tree, num_parts=12, seed=seed)
    folded_view = fold_decomposition_tree(decomposition)
    unfolded_view = identity_folding(decomposition)
    folded = clique_sum_shortcut(graph, tree, parts, decomposition=decomposition, fold=True)
    unfolded = clique_sum_shortcut(graph, tree, parts, decomposition=decomposition, fold=False)
    return {
        "experiment": "F2-clique-sum-anatomy",
        "num_bags": num_bags,
        "original_depth": decomposition.depth(root=0),
        "folded_depth": folded_view.depth(),
        "unfolded_depth": unfolded_view.depth(),
        "folded_measure": folded.measure().as_row(),
        "unfolded_measure": unfolded.measure().as_row(),
        "folded_total_edges": sum(len(edges) for edges in folded.edge_sets),
        "unfolded_total_edges": sum(len(edges) for edges in unfolded.edge_sets),
    }


def test_f2_clique_sum_anatomy(benchmark):
    result = benchmark.pedantic(_anatomy, rounds=1, iterations=1)
    print()
    print(json.dumps(result, indent=2))
    assert result["folded_depth"] < result["original_depth"]
