"""E8 -- robustness: perturbed planar graphs remain excluded-minor-friendly."""

from conftest import run_experiment

from repro.analysis.experiments import experiment_robustness


def test_e8_robustness(benchmark):
    result = run_experiment(benchmark, experiment_robustness, grid_side=9, extra_edges=4)
    # The perturbed graph is (typically) not planar, yet the apex/minor-free
    # construction still produces a valid, reasonable-quality shortcut.
    assert result["apex_quality"]["quality"] > 0
