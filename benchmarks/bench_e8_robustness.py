"""E8 -- robustness: structural perturbation and simulated fault injection.

Two facets of the same claim (the constructions and primitives degrade
gracefully, they do not fall off a cliff):

* **structural** -- a perturbed planar graph loses planarity but keeps a
  valid, reasonable-quality apex/minor-free shortcut;
* **operational** -- the simulated MST phases keep producing the correct
  tree under seeded message drops, delays and node crashes, at a measured
  message/round overhead, with rate-0 pinned byte-identical to fail-free
  and the three simulator modes pinned equal under faults.

The degradation sweep appends its record to ``benchmarks/BENCH_E8.json``
so the overhead trajectory is visible across commits.
"""

import os

from conftest import append_trajectory, run_experiment

from repro.analysis.experiments import experiment_fault_degradation, experiment_robustness


def test_e8_robustness(benchmark):
    result = run_experiment(benchmark, experiment_robustness, grid_side=9, extra_edges=4)
    # The perturbed graph is (typically) not planar, yet the apex/minor-free
    # construction still produces a valid, reasonable-quality shortcut.
    assert result["apex_quality"]["quality"] > 0


def test_e8_fault_degradation(benchmark):
    # E8_BENCH_SIDE / E8_BENCH_KINDS let the CI smoke job shrink the sweep
    # (smaller grid, fewer fault models) without touching the contracts.
    side = int(os.environ.get("E8_BENCH_SIDE", "7"))
    kinds = tuple(os.environ.get("E8_BENCH_KINDS", "drop,delay,crash").split(","))
    result = run_experiment(
        benchmark,
        experiment_fault_degradation,
        side=side,
        rates=(0.0, 0.01, 0.05),
        kinds=kinds,
    )
    # Contracts, not just measurements: null models reproduce fail-free
    # records exactly, and faulty records agree across all three modes.
    assert result["rate_zero_matches_fail_free"]
    assert result["three_mode_equal"]
    # Every cell still computes the reference MST weight (the protocol
    # degrades in cost, not in correctness).
    assert all(row["weight_matches_reference"] for row in result["rows"])
    # Overhead is monotone in spirit: faults never make the run cheaper.
    assert all(row["message_overhead"] >= 1.0 for row in result["rows"])
    append_trajectory("E8", result)
