"""S4 -- the array-native construction engine versus the networkx reference.

The acceptance gate of the construction-engine refactor: the full
``oblivious_shortcut`` budget sweep (Euler-tour benefits, Steiner edge ids
shared across the sweep, incremental per-budget quality on the
:class:`~repro.shortcuts.ConstructionEngine`) must be at least **3x** faster
than the preserved seed implementation forced via
``repro.core.networkx_reference_paths`` on a mid-size planar grid, with both
arms producing the identical shortcut (edge sets, chosen budget, measured
quality).  On this hardware the measured ratio is ~10-25x.

Each run appends its record to ``benchmarks/BENCH_S4.json`` (see
``conftest.append_trajectory``) -- a trajectory of (size, speedup, chosen
budget) entries so that speedup regressions are visible across commits,
not just against the gate.

CI runs this file at a smaller side by setting ``S4_BENCH_SIDE`` and raises
``S4_BENCH_REPEATS``; both arms take the best of N runs, which keeps the
ratio stable on noisy shared runners.
"""

import os

from conftest import append_trajectory, run_experiment

from repro.analysis.experiments import experiment_construction_speedup

SIDE = int(os.environ.get("S4_BENCH_SIDE", "30"))
REPEATS = int(os.environ.get("S4_BENCH_REPEATS", "3"))


def test_s4_construction_speedup(benchmark):
    result = run_experiment(
        benchmark,
        experiment_construction_speedup,
        side=SIDE,
        repeats=REPEATS,
    )
    append_trajectory("S4", result)
    assert result["results_agree"]
    assert result["speedup"] >= 3.0
