"""S4 -- the array-native construction engine versus the networkx reference.

The acceptance gate of the construction-engine refactor: the full
``oblivious_shortcut`` budget sweep (Euler-tour benefits, Steiner edge ids
shared across the sweep, incremental per-budget quality on the
:class:`~repro.shortcuts.ConstructionEngine`) must be at least **3x** faster
than the preserved seed implementation forced via
``repro.core.networkx_reference_paths`` on a mid-size planar grid, with both
arms producing the identical shortcut (edge sets, chosen budget, measured
quality).  On this hardware the measured ratio is ~10-25x.

Each run appends its record to ``benchmarks/BENCH_S4.json`` -- a trajectory
of (size, speedup, chosen budget) entries so that speedup regressions are
visible across commits, not just against the gate.

CI runs this file at a smaller side by setting ``S4_BENCH_SIDE`` and raises
``S4_BENCH_REPEATS``; both arms take the best of N runs, which keeps the
ratio stable on noisy shared runners.
"""

import json
import os

from conftest import run_experiment

from repro.analysis.experiments import experiment_construction_speedup

SIDE = int(os.environ.get("S4_BENCH_SIDE", "30"))
REPEATS = int(os.environ.get("S4_BENCH_REPEATS", "3"))
TRAJECTORY_PATH = os.path.join(os.path.dirname(__file__), "BENCH_S4.json")


def _append_trajectory(result: dict) -> None:
    history: list[dict] = []
    if os.path.exists(TRAJECTORY_PATH):
        try:
            with open(TRAJECTORY_PATH) as handle:
                history = json.load(handle)
        except (OSError, ValueError):
            history = []
    history.append(result)
    with open(TRAJECTORY_PATH, "w") as handle:
        json.dump(history, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_s4_construction_speedup(benchmark):
    result = run_experiment(
        benchmark,
        experiment_construction_speedup,
        side=SIDE,
        repeats=REPEATS,
    )
    _append_trajectory(result)
    assert result["results_agree"]
    assert result["speedup"] >= 3.0
