"""E5 -- Theorem 6: shortcut quality on sampled L_k graphs versus the O~(d^2) target."""

from conftest import run_experiment

from repro.analysis.experiments import experiment_minor_free_quality


def test_e5_minor_free_quality(benchmark):
    result = run_experiment(
        benchmark, experiment_minor_free_quality, bag_counts=(3, 5, 7), bag_size=25
    )
    for row in result["rows"]:
        assert row["quality"] <= 6 * row["target_quality"] + 30
