"""E7 -- Corollary 1: (1+eps)-approximate min-cut accuracy and round counts."""

from conftest import run_experiment

from repro.analysis.experiments import experiment_mincut


def test_e7_mincut(benchmark):
    result = run_experiment(benchmark, experiment_mincut, grid_side=8, epsilon=1.0)
    assert result["approximation_ratio"] <= 1.0 + result["epsilon"] + 1e-9
    assert result["rounds"] > 0
