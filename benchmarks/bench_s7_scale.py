"""S7 -- the CSR-native instance pipeline at million-node scale.

The acceptance gate of the dual-path inversion: a ``side x side`` grid
(default 1000, i.e. one million nodes) is built straight into CSR form by
the scenario registry's native builder and pushed through every layer end
to end -- BFS spanning tree, tree-fragment parts, the shortcut
construction engine (quality sweep + build at the documented congestion
budget), hashed-weight engine MST checked against the scipy oracle, and
the vectorized-runtime BFS + broadcast simulation -- without ever
materialising an ``nx.Graph`` (the adapter's materialisation counter must
stay at zero) and within the wall-clock / peak-RSS budgets below.

Budgets (measured on the reference box, 1 core / 125 GB):
the non-MST legs together take well under a minute at n=10^6 (build ~6 s,
shortcut ~14 s, runtime BFS ~10 s, broadcast ~6 s); the simulated Boruvka
convergecasts dominate at ~2.5 h (the message schedule grows with
congestion x n per phase over ~10 phases), and peak RSS lands around
90-100 GiB.  The default budgets leave headroom above that; CI shrinks
the instance with ``S7_BENCH_SIDE`` and passes matching budget overrides
instead of skipping the gate.

Each run appends its record to ``benchmarks/BENCH_S7.json`` through the
shared trajectory helper.  Records carry ``schema = "s7-native-scale/1"``
(the field list is documented in ``benchmarks/pytest.ini``); rows from
older layouts -- the file predates this gate -- are dropped before
appending so they cannot poison the trajectory.
"""

import json
import os
from pathlib import Path

from conftest import append_trajectory, run_experiment

from repro.analysis.experiments import experiment_native_scale

SCHEMA = "s7-native-scale/1"

SIDE = int(os.environ.get("S7_BENCH_SIDE", "1000"))
SEED = int(os.environ.get("S7_BENCH_SEED", "7"))
NUM_PARTS = int(os.environ.get("S7_BENCH_PARTS", "64"))
BUDGET = int(os.environ.get("S7_BENCH_BUDGET", "16"))
# Wall-clock / peak-RSS budgets for the default million-node instance; CI
# overrides them together with S7_BENCH_SIDE.
BUDGET_SECONDS = float(os.environ.get("S7_BENCH_BUDGET_SECONDS", "14400"))
BUDGET_RSS_MIB = float(os.environ.get("S7_BENCH_BUDGET_RSS_MIB", "118784"))


def _prune_foreign_rows() -> None:
    """Drop trajectory rows that predate the s7-native-scale schema."""
    path = Path(__file__).parent / "BENCH_S7.json"
    try:
        rows = json.loads(path.read_text())
    except (OSError, ValueError):
        return
    if not isinstance(rows, list):
        path.unlink()
        return
    kept = [row for row in rows if isinstance(row, dict) and row.get("schema") == SCHEMA]
    if kept != rows:
        path.write_text(json.dumps(kept, indent=2, sort_keys=True) + "\n")


def test_s7_native_scale(benchmark):
    _prune_foreign_rows()
    result = run_experiment(
        benchmark,
        experiment_native_scale,
        side=SIDE,
        seed=SEED,
        num_parts=NUM_PARTS,
        shortcut_budget=BUDGET,
    )
    append_trajectory("S7", result)
    assert result["schema"] == SCHEMA
    # The native path really was nx-free end to end.
    assert result["nx_materializations"] == 0
    # Structure: the full grid came out of the CSR generator ...
    assert result["n"] == SIDE * SIDE
    assert result["m"] == 2 * SIDE * (SIDE - 1)
    # ... the BFS trees are corner-rooted grid trees of height 2(side-1) ...
    assert result["tree_height"] == 2 * (SIDE - 1)
    assert result["bfs_tree_height"] == 2 * (SIDE - 1)
    assert result["broadcast_rounds"] >= result["bfs_tree_height"]
    # ... the shortcut construction produced a finite measured quality ...
    assert result["shortcut_quality"] > 0
    # ... and the engine MST agrees with the scipy oracle exactly.
    assert result["mst_weight_matches_oracle"]
    assert result["mst_phases"] >= 1
    # The whole pipeline fits the documented budgets.
    assert result["total_seconds"] <= BUDGET_SECONDS
    assert result["peak_rss_mib"] <= BUDGET_RSS_MIB
