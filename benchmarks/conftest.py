"""Shared helpers for the benchmark harness.

Every benchmark file regenerates one experiment of DESIGN.md Section 3 (one
per "table/figure", i.e. per quantitative claim of the paper), runs it once
under pytest-benchmark for timing, and prints the measured record so that the
numbers quoted in EXPERIMENTS.md can be regenerated with::

    PYTHONPATH=src pytest benchmarks/ --benchmark-only -s

The experiment functions are thin declarative layers over the scenario
engine (:mod:`repro.scenarios`): instances come from the family registry and
shortcuts from the constructor registry.  ``bench_scenarios.py`` runs the
full family x constructor matrix through the engine's single entry point,
and ``bench_simulator_speedup.py`` gates the active-set simulator's >=2x
speedup over the seed full-scan implementation.
"""

from __future__ import annotations

import json

import pytest


def run_experiment(benchmark, function, **kwargs):
    """Run ``function`` once under the benchmark fixture and print its record."""
    result = benchmark.pedantic(lambda: function(**kwargs), rounds=1, iterations=1)
    print()
    print(json.dumps(result, indent=2, default=str))
    return result
