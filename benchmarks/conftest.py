"""Shared helpers for the benchmark harness.

Every benchmark file regenerates one experiment of DESIGN.md Section 3 (one
per "table/figure", i.e. per quantitative claim of the paper), runs it once
under pytest-benchmark for timing, and prints the measured record so that the
numbers quoted in EXPERIMENTS.md can be regenerated with::

    PYTHONPATH=src pytest benchmarks/ --benchmark-only -s

The experiment functions are thin declarative layers over the scenario
engine (:mod:`repro.scenarios`): instances come from the family registry and
shortcuts from the constructor registry.  ``bench_scenarios.py`` runs the
full family x constructor matrix through the engine's single entry point,
and ``bench_simulator_speedup.py`` gates the active-set simulator's >=2x
speedup over the seed full-scan implementation.

Every ``bench_*_speedup.py`` gate appends its record to a
``benchmarks/BENCH_S<k>.json`` trajectory file through
:func:`append_trajectory`, so speedup regressions are visible across
commits (not just against the gate) from the very first run after a fresh
clone; the E8 fault-degradation sweep does the same into
``benchmarks/BENCH_E8.json``.  The trajectory files are gitignored.
"""

from __future__ import annotations

import json
import os

import pytest

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def run_experiment(benchmark, function, **kwargs):
    """Run ``function`` once under the benchmark fixture and print its record."""
    result = benchmark.pedantic(lambda: function(**kwargs), rounds=1, iterations=1)
    print()
    print(json.dumps(result, indent=2, default=str))
    return result


def append_trajectory(name: str, result: dict) -> None:
    """Append ``result`` to ``benchmarks/BENCH_<name>.json``.

    The file holds a JSON list, one record per benchmark run; an unreadable
    or missing file starts a fresh trajectory rather than failing the gate.
    """
    path = os.path.join(_BENCH_DIR, f"BENCH_{name}.json")
    history: list[dict] = []
    if os.path.exists(path):
        try:
            with open(path) as handle:
                history = json.load(handle)
        except (OSError, ValueError):
            history = []
    history.append(result)
    with open(path, "w") as handle:
        json.dump(history, handle, indent=2, sort_keys=True)
        handle.write("\n")
