"""Shared helpers for the benchmark harness.

Every benchmark file regenerates one experiment of DESIGN.md Section 3 (one
per "table/figure", i.e. per quantitative claim of the paper), runs it once
under pytest-benchmark for timing, and prints the measured record so that the
numbers quoted in EXPERIMENTS.md can be regenerated with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import json

import pytest


def run_experiment(benchmark, function, **kwargs):
    """Run ``function`` once under the benchmark fixture and print its record."""
    result = benchmark.pedantic(lambda: function(**kwargs), rounds=1, iterations=1)
    print()
    print(json.dumps(result, indent=2, default=str))
    return result
