"""E1 -- Theorem 4: planar shortcut quality versus diameter (see DESIGN.md)."""

from conftest import run_experiment

from repro.analysis.experiments import experiment_planar_quality


def test_e1_planar_quality(benchmark):
    result = run_experiment(benchmark, experiment_planar_quality, sides=(6, 10, 14, 18))
    # Shape check: quality grows sub-quadratically in the tree diameter
    # (the Theorem 4 target is ~ d log d, i.e. exponent ~ 1).
    assert result["quality_vs_diameter_exponent"] < 2.0
