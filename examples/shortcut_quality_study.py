#!/usr/bin/env python3
"""Shortcut-quality study across graph families (the paper's Table-of-theorems).

Sweeps four families -- planar grids, bounded-treewidth graphs, planar+apex
graphs and lower-bound-style general graphs -- measures the quality achieved
by the baseline and structure-aware constructors on adversarial parts, and
prints the comparison table together with fitted growth exponents.  This is
the "who wins, by roughly what factor" picture behind Theorems 4, 5, 6 and
the Omega~(sqrt n) contrast of the introduction.

Run it with ``python examples/shortcut_quality_study.py``.
"""

from repro.analysis.quality import format_table, quality_sweep, summarize_rows
from repro.graphs.lower_bound import lower_bound_graph
from repro.graphs.minor_free import planar_plus_apex
from repro.graphs.planar import grid_graph
from repro.graphs.treewidth import random_partial_ktree
from repro.shortcuts.parts import path_parts, tree_fragment_parts
from repro.shortcuts.search import default_constructors
from repro.structure.spanning import bfs_spanning_tree


def build_instances():
    instances = []
    for side in (8, 12, 16):
        graph = grid_graph(side, side)
        instances.append((f"planar-grid-{side}", graph, path_parts(graph)))
    for width in (2, 4):
        witness = random_partial_ktree(60, width, seed=width)
        tree = bfs_spanning_tree(witness.graph)
        instances.append(
            (f"treewidth-{width}", witness.graph, tree_fragment_parts(witness.graph, tree, 8, seed=1))
        )
    apex = planar_plus_apex(10, 10, apices=1, seed=5)
    instances.append(("planar+apex", apex.graph, path_parts(apex.non_apex_graph())))
    hard = lower_bound_graph(8, 16)
    instances.append(("lower-bound", hard.graph, [frozenset(range(i * 16, (i + 1) * 16)) for i in range(8)]))
    return instances


def main() -> None:
    instances = build_instances()
    rows = quality_sweep(instances, default_constructors())
    print(format_table(rows))
    print()
    summary = summarize_rows(rows)
    for name, stats in sorted(summary.items()):
        print(
            f"{name:12s} mean quality={stats['mean_quality']:8.1f}  "
            f"quality~d^alpha with alpha={stats['quality_vs_diameter_exponent']:.2f}"
        )


if __name__ == "__main__":
    main()
