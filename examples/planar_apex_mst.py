#!/usr/bin/env python3
"""The paper's flagship scenario: a planar map network with one hub attached.

The introduction motivates excluded-minor graphs with exactly this example:
"a planar graph with an added vertex attached to every other node" has tiny
diameter, breaks planar-only algorithms, and yet is trivially an excluded-
minor graph (one apex over a planar surface).  This example builds such a
network, shows how the apex construction of Lemma 9 / Theorem 8 forms cells,
computes the cell assignment, and runs the distributed MST with three
different shortcut builders to compare round counts:

* the apex-aware construction (Theorem 8),
* the structure-oblivious constructor (what the real algorithm runs),
* the no-shortcut baseline.

Run it with ``python examples/planar_apex_mst.py``.
"""

from repro import (
    assign_adversarial_weights,
    bfs_spanning_tree,
    boruvka_mst,
    cells_from_tree_without_apices,
    compute_cell_assignment,
    graph_diameter,
    no_shortcut_builder,
    path_parts,
    planar_plus_apex,
    reference_mst_weight,
)
from repro.shortcuts.apex import apex_shortcut_from_witness


def main() -> None:
    witness = planar_plus_apex(rows=12, cols=12, apices=1, attach_probability=0.35, seed=42)
    graph = witness.graph
    diameter = graph_diameter(graph)
    print(
        f"planar grid + apex: n={graph.number_of_nodes()}, diameter={diameter} "
        f"(the 12x12 grid alone has diameter 22)"
    )

    # Cells and cell assignment (Definition 14/15, Lemma 9).
    tree = bfs_spanning_tree(graph)
    cells = cells_from_tree_without_apices(tree, witness.apices)
    parts = path_parts(witness.non_apex_graph())
    assignment = compute_cell_assignment(parts, cells)
    print(
        f"cells: {len(cells)}, parts: {len(parts)}, "
        f"cell-assignment beta={assignment.beta}, skipped<=2: {assignment.max_skipped <= 2}"
    )

    # Adversarial weights force long skinny MST fragments: the regime where
    # shortcuts matter most.
    assign_adversarial_weights(graph, seed=7)

    def apex_builder(g, t, fragment_parts):
        return apex_shortcut_from_witness(witness, t, fragment_parts)

    reference = reference_mst_weight(graph)
    for name, builder in [
        ("apex-aware (Theorem 8)", apex_builder),
        ("oblivious (default)", None),
        ("no shortcuts (naive)", no_shortcut_builder),
    ]:
        result = boruvka_mst(graph, shortcut_builder=builder, tree=tree)
        assert abs(result.weight - reference) < 1e-6
        print(
            f"{name:24s} rounds={result.rounds:5d}  phases={result.phases}  "
            f"per-phase={result.phase_rounds}"
        )


if __name__ == "__main__":
    main()
