#!/usr/bin/env python3
"""Quickstart: build shortcuts for an excluded-minor network and run MST on it.

The script walks through the reproduction's main loop in ~40 lines:

1. sample a random member of the family L_k (a k-clique-sum of k-almost-
   embeddable graphs -- exactly the graphs the Graph Structure Theorem says
   every excluded-minor graph looks like);
2. build the Theorem 6 shortcut for an adversarial family of parts and print
   its measured block parameter, congestion and quality next to the paper's
   O~(d^2) target;
3. run the distributed Boruvka MST over those shortcuts in the CONGEST cost
   model and compare its round count with the naive no-shortcut baseline.

Run it with ``python examples/quickstart.py``.
"""

from repro import (
    assign_random_weights,
    bfs_spanning_tree,
    boruvka_mst,
    minor_free_shortcut,
    no_shortcut_builder,
    reference_mst_weight,
    sample_lk_graph,
    tree_fragment_parts,
)
from repro.shortcuts.minor_free import minor_free_quality_bounds


def main() -> None:
    # 1. Sample an excluded-minor network with its structure witness.
    sample = sample_lk_graph(num_bags=5, k=3, bag_size=25, seed=2018)
    graph = sample.graph
    print(f"sampled L_3 graph: n={graph.number_of_nodes()}, m={graph.number_of_edges()}")

    # 2. Shortcuts for an adversarial family of parts.
    tree = bfs_spanning_tree(graph)
    parts = tree_fragment_parts(graph, tree, num_parts=10, seed=7)
    shortcut = minor_free_shortcut(sample, tree, parts)
    shortcut.validate()
    measure = shortcut.measure()
    target = minor_free_quality_bounds(measure.tree_diameter, graph.number_of_nodes())
    print(
        f"shortcut (Theorem 6 pipeline): block={measure.block} "
        f"congestion={measure.congestion} quality={measure.quality} "
        f"(paper target ~{target['quality']:.0f})"
    )

    # 3. Distributed MST with and without shortcuts.
    assign_random_weights(graph, seed=1, integer=True)

    def witness_builder(g, t, fragment_parts):
        return minor_free_shortcut(sample, t, fragment_parts)

    accelerated = boruvka_mst(graph, shortcut_builder=witness_builder, tree=tree)
    naive = boruvka_mst(graph, shortcut_builder=no_shortcut_builder, tree=tree)
    reference = reference_mst_weight(graph)
    print(f"MST weight {accelerated.weight:.1f} (reference {reference:.1f})")
    print(
        f"CONGEST rounds: with shortcuts={accelerated.rounds}, "
        f"naive baseline={naive.rounds}, phases={accelerated.phases}"
    )


if __name__ == "__main__":
    main()
