#!/usr/bin/env python3
"""Approximate minimum cut on an excluded-minor network (Corollary 1).

Builds a weighted network from the L_k family, runs the tree-packing
(1 + eps)-approximate min-cut with CONGEST round accounting, and compares the
returned value with the exact Stoer--Wagner cut.  Also sweeps eps to show the
accuracy / packing-size trade-off.

Run it with ``python examples/minor_free_mincut.py``.
"""

from repro import (
    assign_random_weights,
    approximate_min_cut,
    bfs_spanning_tree,
    sample_lk_graph,
)
from repro.shortcuts.minor_free import minor_free_shortcut


def main() -> None:
    sample = sample_lk_graph(num_bags=4, k=3, bag_size=25, seed=99)
    graph = sample.graph
    assign_random_weights(graph, low=1, high=12, seed=3, integer=True)
    tree = bfs_spanning_tree(graph)
    print(f"L_3 network: n={graph.number_of_nodes()}, m={graph.number_of_edges()}")

    def witness_builder(g, t, parts):
        return minor_free_shortcut(sample, t, parts)

    for epsilon in (1.0, 0.5):
        result = approximate_min_cut(
            graph, epsilon=epsilon, shortcut_builder=witness_builder, tree=tree
        )
        print(
            f"eps={epsilon:3.1f}: cut={result.value:.1f} "
            f"(exact {result.exact_value:.1f}, ratio {result.approximation_ratio:.3f}) "
            f"trees={result.num_trees} rounds={result.rounds}"
        )
        assert result.approximation_ratio <= 1.0 + epsilon + 1e-9


if __name__ == "__main__":
    main()
