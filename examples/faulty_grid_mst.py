#!/usr/bin/env python3
"""Distributed MST on a lossy network: seeded fault injection end to end.

The CONGEST phases of the ``mst`` workload (the BFS-tree build and the
final announcement run as genuine per-node message-passing programs) are
executed on a 30x30 grid while a seeded
:class:`~repro.congest.faults.FaultSchedule` drops a fraction of all
messages.  The robust primitives pay for the losses with retries and
acknowledgements instead of wrong answers:

* at every drop rate the computed MST weight still matches the
  centralised reference (the protocol degrades in *cost*, not in
  *correctness*);
* the degradation is measured, deterministic and reproducible: same
  ``--fault-seed``-style decision stream, same record, across all three
  simulator modes and across process pools.

Run it with ``PYTHONPATH=src python examples/faulty_grid_mst.py``.
"""

from repro.congest.faults import FaultModel
from repro.scenarios.engine import Scenario, run_scenario
from repro.scenarios.instances import InstanceCache

SIDE = 30  # n = 900
DROP_RATES = (0.0, 0.01, 0.05)
FAULT_SEED = 2018


def main() -> None:
    scenario = Scenario(
        name="faulty-grid-mst",
        family="planar",
        constructor="oblivious",
        algorithm="mst",
        params={"side": SIDE},
        seed=7,
    )
    cache = InstanceCache()  # share the instance across the sweep
    rows = []
    baseline_messages = None
    for rate in DROP_RATES:
        record = run_scenario(
            scenario,
            cache=cache,
            faults=FaultModel(drop=rate),
            fault_seed=FAULT_SEED,
        ).as_dict()
        result = record["result"]
        assert result["weight_matches_reference"], f"wrong MST at drop rate {rate}"
        if baseline_messages is None:
            baseline_messages = result["sim_messages"]
        rows.append((
            rate,
            result["sim_rounds"],
            result["sim_messages"],
            result["sim_messages"] / baseline_messages,
            result.get("sim_dropped", 0),
            result.get("bfs_repaired", 0),
        ))

    n = SIDE * SIDE
    print(f"grid: n={n}, drop rates {[f'{rate:.0%}' for rate in DROP_RATES]}, "
          f"fault seed {FAULT_SEED}")
    print("every run recomputed the reference MST weight exactly\n")
    header = f"{'drop':>6} {'rounds':>7} {'messages':>9} {'overhead':>9} {'dropped':>8} {'repaired':>9}"
    print(header)
    print("-" * len(header))
    for rate, rounds, messages, overhead, dropped, repaired in rows:
        print(f"{rate:>6.0%} {rounds:>7} {messages:>9} {overhead:>8.2f}x "
              f"{dropped:>8} {repaired:>9}")
    print("\ndegradation is graceful: losses cost retry messages and a few "
          "extra rounds, never the answer")


if __name__ == "__main__":
    main()
