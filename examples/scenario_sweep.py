#!/usr/bin/env python3
"""Scenario engine tour: declarative sweeps over families x constructors.

The script shows the three ways to drive the scenario engine:

1. run one declarative :class:`Scenario` (a planar-grid MST with the
   Theorem 4 construction) and read its record, including the per-round
   telemetry summary of the genuinely simulated CONGEST phases;
2. sweep the full matrix -- every registered graph family crossed with
   every constructor applicable to it -- through one entry point, exactly
   what ``python -m repro.scenarios --size tiny`` does;
3. extend the registry with a custom family (a cycle, i.e. the degenerate
   2-tree-width case) and watch the matrix pick it up automatically.

Run it with ``python examples/scenario_sweep.py``.
"""

from repro.graphs.planar import cycle_graph
from repro.scenarios import (
    FamilySpec,
    InstanceCache,
    Scenario,
    ScenarioInstance,
    register_family,
    run_matrix,
    run_scenario,
    scenario_matrix,
)

# -- 1. one declarative scenario -------------------------------------------

record = run_scenario(Scenario(
    name="planar-grid-mst",
    family="planar",
    constructor="planar",
    algorithm="mst",
    params={"side": 6},
    parts={"kind": "tree_fragments", "num_parts": 5},
    seed=1,
))
result = record.as_dict()["result"]
print("one scenario:", record.scenario["scenario"])
print(f"  instance: n={record.instance['n']} m={record.instance['m']}")
print(f"  MST rounds={result['mst_rounds']} phases={result['mst_phases']}"
      f" weight_ok={result['weight_matches_reference']}")
print(f"  simulated CONGEST phases: rounds={result['sim_rounds']}"
      f" messages={result['sim_messages']}"
      f" peak_active={result['sim_peak_active_nodes']}")

# -- 2. the full matrix through one entry point -----------------------------

cache = InstanceCache()
scenarios = scenario_matrix(size="tiny", algorithm_name="quality", cache=cache)
records = run_matrix(scenarios, cache=cache)
print(f"\nfull tiny matrix: {len(records)} scenario records")
width = max(len(r["scenario"]) for r in records)
for r in records:
    if r["applicable"]:
        row = r["result"]["shortcut"]
        print(f"  {r['scenario']:<{width}}  n={r['instance']['n']:>3}"
              f"  block={row['block']:>2} congestion={row['congestion']:>3}"
              f"  quality={row['quality']:>3}")

# -- 3. extending the registry ---------------------------------------------


def _build_cycle(seed: int = 0, n: int = 12) -> ScenarioInstance:
    return ScenarioInstance("cycle", {"n": n}, seed, cycle_graph(n), witness=None)


register_family(FamilySpec(
    name="cycle",
    description="a single cycle (diameter n/2, the degenerate planar case)",
    build=_build_cycle,
    default_params={"n": 12},
    tiny_params={"n": 8},
))

extra = run_matrix(scenario_matrix(families=["cycle"], size="tiny"))
print(f"\ncustom 'cycle' family swept through {sum(1 for r in extra if r['applicable'])} "
      "constructors after one register_family call")
