#!/usr/bin/env python3
"""Large-grid MST: the array-native algorithm layer at n ~ 4000.

The seed implementation of Boruvka-over-shortcuts rebuilt label-keyed
fragment families every phase and re-derived every structure per budget; at
a few thousand nodes that dominated the run.  This script exercises the
array-native fast path end to end on a 63x63 grid (n = 3969):

1. one shared :class:`~repro.core.GraphView` conversion (CSR arrays);
2. the distributed Boruvka MST (Corollary 1) with per-phase oblivious
   shortcuts built by the construction engine on flat fragment part sets --
   MWOE search is one scan over the CSR adjacency with precomputed
   canonical tie-break keys, and the per-phase CONGEST aggregation runs on
   indexed value arrays;
3. the same result cross-checked against the centralised networkx MST.

Run it with ``PYTHONPATH=src python examples/large_grid_mst.py``.
"""

import time

from repro import boruvka_mst, reference_mst_weight, view_of
from repro.graphs.planar import grid_graph
from repro.graphs.weights import assign_random_weights
from repro.structure.spanning import bfs_spanning_tree

SIDE = 63  # n = 3969


def main() -> None:
    graph = grid_graph(SIDE, SIDE)
    assign_random_weights(graph, seed=2018, integer=True)
    print(f"grid: n={graph.number_of_nodes()}, m={graph.number_of_edges()}")

    started = time.perf_counter()
    view = view_of(graph)  # one label-to-index conversion for the whole run
    tree = bfs_spanning_tree(view)
    result = boruvka_mst(graph, tree=tree)
    elapsed = time.perf_counter() - started

    reference = reference_mst_weight(graph)
    assert abs(result.weight - reference) < 1e-6, "distributed != centralised MST"
    print(
        f"distributed MST: weight={result.weight:.0f} (centralised reference "
        f"{reference:.0f}), phases={result.phases}, CONGEST rounds={result.rounds}"
    )
    print(f"per-phase qualities: {result.phase_qualities}")
    print(f"array-native wall clock: {elapsed:.2f}s (view + tree + {result.phases} phases)")


if __name__ == "__main__":
    main()
