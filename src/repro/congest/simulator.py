"""The synchronous round-driving loop of the CONGEST simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

import networkx as nx

from ..errors import SimulationError
from ..graphs.weights import WEIGHT
from ..utils import require_connected, require_simple
from .node import NodeContext, NodeProgram, message_size_in_words


@dataclass
class SimulationResult:
    """Outcome of one simulated execution.

    Attributes:
        rounds: number of synchronous rounds executed (a round in which no
            message is sent and every node is halted is not counted).
        messages: total number of (non-``None``) messages delivered.
        words: total message volume in machine words.
        outputs: mapping node -> whatever the node's program returned from
            :meth:`NodeProgram.result`.
    """

    rounds: int
    messages: int
    words: int
    outputs: dict[Hashable, object] = field(default_factory=dict)


class CongestSimulator:
    """Synchronous message-passing simulator with bandwidth enforcement.

    Args:
        graph: the network graph (connected, no self-loops).  Edge weights
            are exposed to the node programs through their context.
        program_factory: callable mapping a :class:`NodeContext` to the
            :class:`NodeProgram` that runs at that node.
        bandwidth_words: per-edge, per-direction, per-round message capacity
            in machine words (``O(log n)`` bits; 3 words is enough for an
            edge id plus a weight, matching the classical model).
        diameter_bound: optional diameter bound handed to the nodes; computed
            exactly when omitted.
    """

    def __init__(
        self,
        graph: nx.Graph,
        program_factory: Callable[[NodeContext], NodeProgram],
        bandwidth_words: int = 3,
        diameter_bound: int | None = None,
    ) -> None:
        require_connected(graph, "network graph")
        require_simple(graph, "network graph")
        self.graph = graph
        self.bandwidth_words = bandwidth_words
        if diameter_bound is None:
            diameter_bound = nx.diameter(graph) if graph.number_of_nodes() > 1 else 0
        self.diameter_bound = diameter_bound
        self.programs: dict[Hashable, NodeProgram] = {}
        n = graph.number_of_nodes()
        for node in sorted(graph.nodes(), key=repr):
            neighbours = tuple(sorted(graph.neighbors(node), key=repr))
            weights = {
                neighbour: graph[node][neighbour].get(WEIGHT, 1.0) for neighbour in neighbours
            }
            context = NodeContext(
                node=node,
                neighbours=neighbours,
                edge_weights=weights,
                num_nodes=n,
                diameter_bound=diameter_bound,
            )
            self.programs[node] = program_factory(context)

    def _validate_outgoing(self, sender: Hashable, outgoing: dict[Hashable, object]) -> None:
        for target, message in outgoing.items():
            if not self.graph.has_edge(sender, target):
                raise SimulationError(
                    f"node {sender} attempted to send to non-neighbour {target}"
                )
            size = message_size_in_words(message)
            if size > self.bandwidth_words:
                raise SimulationError(
                    f"node {sender} sent a {size}-word message to {target}, exceeding the "
                    f"bandwidth of {self.bandwidth_words} words per edge per round"
                )

    def run(self, max_rounds: int = 10_000) -> SimulationResult:
        """Run the simulation to quiescence (all halted, no messages in flight)."""
        inboxes: dict[Hashable, dict[Hashable, object]] = {node: {} for node in self.programs}
        # Round 1: on_start messages.
        pending: dict[Hashable, dict[Hashable, object]] = {node: {} for node in self.programs}
        total_messages = 0
        total_words = 0
        any_sent = False
        for node, program in self.programs.items():
            outgoing = program.on_start() or {}
            self._validate_outgoing(node, outgoing)
            for target, message in outgoing.items():
                if message is None:
                    continue
                pending[target][node] = message
                total_messages += 1
                total_words += message_size_in_words(message)
                any_sent = True
        rounds = 1 if any_sent else 0

        for round_number in range(2, max_rounds + 2):
            inboxes = pending
            pending = {node: {} for node in self.programs}
            all_halted = all(program.halted for program in self.programs.values())
            any_inbox = any(inboxes[node] for node in self.programs)
            if all_halted and not any_inbox:
                break
            any_sent = False
            for node, program in self.programs.items():
                inbox = inboxes[node]
                if program.halted and not inbox:
                    continue
                outgoing = program.on_round(round_number, inbox) or {}
                self._validate_outgoing(node, outgoing)
                for target, message in outgoing.items():
                    if message is None:
                        continue
                    pending[target][node] = message
                    total_messages += 1
                    total_words += message_size_in_words(message)
                    any_sent = True
            rounds += 1
            if not any_sent and all(program.halted for program in self.programs.values()):
                break
        else:
            raise SimulationError(f"simulation did not converge within {max_rounds} rounds")

        outputs = {node: program.result() for node, program in self.programs.items()}
        return SimulationResult(
            rounds=rounds, messages=total_messages, words=total_words, outputs=outputs
        )
