"""The synchronous round-driving loop of the CONGEST simulator.

The simulator is *active-set* driven: per round it touches only the nodes
that can possibly do work -- nodes whose program has not halted plus nodes
with a non-empty inbox -- instead of scanning every node every round.  On
sparse executions (a BFS wavefront, a shrinking flood) this makes the cost
per round proportional to the frontier, not to ``n``.  Message buffers are
allocated per recipient on demand (an idle node never owns an inbox dict)
and the diameter bound handed to the node programs is computed lazily, so
programs that never read ``D`` never pay for an all-pairs BFS.

Round accounting is consistent: ``SimulationResult.rounds`` is the index of
the last round in which any message was sent or delivered (rounds are
1-based, with the ``on_start`` sends forming round 1).  A computation that
never communicates therefore costs 0 rounds regardless of how many silent
bookkeeping rounds the programs took to halt -- the seed implementation
counted trailing silent rounds but not a silent first round, which made
round counts depend on *where* the silence happened.

:class:`ReferenceSimulator` in :mod:`repro.congest.reference` preserves the
seed's full-scan behaviour (same results, eager diameter, O(n) per round)
as a differential-testing oracle and benchmark baseline.

Handing the simulator a :class:`repro.core.GraphView` instead of an
``nx.Graph`` switches it into **core mode**: node identifiers are the
view's integer indices, neighbour lists come straight from CSR slices, the
active set sorts as plain ints and topology checks hit flat neighbour sets
-- no per-round dict-of-dict walks.  Because the view assigns indices in
repr order, a core-mode execution is round-for-round identical to the
label-mode one; only the node ids seen *inside* programs (contexts,
inboxes, message payloads built from ids) are indices.  ``run()`` keys the
result's ``outputs`` by the original labels either way; callers whose
programs emit node ids in their results (e.g. BFS parent pointers) map
those values back through ``view.node_of`` -- see
:func:`repro.congest.primitives.distributed_bfs_tree`.

The third mode is the **vectorized runtime** (``runtime=True``, or the
:class:`repro.congest.runtime.RuntimeSimulator` convenience subclass):
instead of one Python call per active node per round, the built-in node
programs are compiled into whole-network batch step functions
(:mod:`repro.congest.runtime`) that advance a round with flat-array
operations.  Rounds, messages, words, outputs and per-round telemetry are
*exactly* equal to the per-node modes -- the model semantics live in the
per-node loop below, which stays the differential oracle for the compiled
programs.  ``docs/simulator.md`` documents the model and the three-mode
equality contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

import networkx as nx

from ..core import GraphView
from ..errors import InvalidGraphError, RoundLimitError, SimulationError
from ..graphs.weights import WEIGHT
from ..utils import require_connected, require_simple
from .faults import FaultModel, FaultQueue, FaultSchedule
from .node import NodeContext, NodeProgram, message_size_in_words


@dataclass(frozen=True)
class RoundTelemetry:
    """Per-round activity record (what the scenario engine logs).

    Attributes:
        round: 1-based round index (round 1 is the ``on_start`` round).
        active_nodes: number of node programs that executed this round.
        messages: messages sent this round.
        words: message volume sent this round, in machine words.
        dropped: messages destroyed this round by the fault layer (lossy
            sends, plus mail addressed to already-crashed recipients).
        delayed: messages sent this round that will arrive late.
        duplicated: extra message copies injected for this round's sends.
        crashed: nodes that crashed *this* round (crash-stop, permanent).

    The four fault columns default to 0 so fail-free rows -- and every
    record produced before the fault layer existed -- compare equal.
    """

    round: int
    active_nodes: int
    messages: int
    words: int
    dropped: int = 0
    delayed: int = 0
    duplicated: int = 0
    crashed: int = 0


@dataclass
class SimulationResult:
    """Outcome of one simulated execution.

    Attributes:
        rounds: index of the last synchronous round in which any message was
            sent or delivered (0 for computations that never communicate).
        messages: total number of (non-``None``) messages delivered.
        words: total message volume in machine words.
        outputs: mapping node -> whatever the node's program returned from
            :meth:`NodeProgram.result`.  Crashed nodes are excluded --
            a failed processor produces no output (the "outputs only from
            live nodes" invariant of ``docs/simulator.md``).
        telemetry: one :class:`RoundTelemetry` per executed round (including
            trailing silent rounds, whose ``messages`` is 0).
        dropped: total messages destroyed by the fault layer (0 fail-free).
        delayed: total messages that arrived late (0 fail-free).
        duplicated: total extra copies injected (0 fail-free).
        crashed_nodes: number of nodes that crashed during the run.

    ``messages``/``words`` always count what the programs *sent*; under
    faults the delivered count is ``messages - dropped + duplicated``.
    """

    rounds: int
    messages: int
    words: int
    outputs: dict[Hashable, object] = field(default_factory=dict)
    telemetry: list[RoundTelemetry] = field(default_factory=list)
    dropped: int = 0
    delayed: int = 0
    duplicated: int = 0
    crashed_nodes: int = 0

    def peak_active_nodes(self) -> int:
        """Return the largest number of programs executed in any round."""
        return max((entry.active_nodes for entry in self.telemetry), default=0)

    def total_active_node_rounds(self) -> int:
        """Return the sum of per-round active counts (the simulator's work)."""
        return sum(entry.active_nodes for entry in self.telemetry)


class CongestSimulator:
    """Synchronous message-passing simulator with bandwidth enforcement.

    Args:
        graph: the network graph (connected, no self-loops).  Edge weights
            are exposed to the node programs through their context.
        program_factory: callable mapping a :class:`NodeContext` to the
            :class:`NodeProgram` that runs at that node.
        bandwidth_words: per-edge, per-direction, per-round message capacity
            in machine words (``O(log n)`` bits; 3 words is enough for an
            edge id plus a weight, matching the classical model).
        diameter_bound: optional diameter bound handed to the nodes; when
            omitted it is computed exactly -- but lazily, only if some
            program actually reads ``context.diameter_bound``.
        fault_schedule: an optional :class:`~repro.congest.faults.FaultSchedule`
            (or bare :class:`~repro.congest.faults.FaultModel`, wrapped with
            seed 0) injecting seeded message drops/delays/duplications, node
            crashes and adversarial delivery order.  A null schedule is
            normalised to ``None``, so a rate-0 model runs the unchanged
            fail-free code path bit-for-bit.
    """

    def __init__(
        self,
        graph: nx.Graph | GraphView,
        program_factory: Callable[[NodeContext], NodeProgram],
        bandwidth_words: int = 3,
        diameter_bound: int | None = None,
        runtime: bool = False,
        fault_schedule: FaultSchedule | FaultModel | None = None,
    ) -> None:
        self._view: GraphView | None = graph if isinstance(graph, GraphView) else None
        self.bandwidth_words = bandwidth_words
        self._diameter_bound = diameter_bound
        self.programs: dict[Hashable, NodeProgram] = {}
        self._runtime_program = None
        if fault_schedule is not None and not isinstance(fault_schedule, FaultSchedule):
            fault_schedule = FaultSchedule(fault_schedule)
        self._fault_schedule = (
            fault_schedule if fault_schedule is not None and fault_schedule.active else None
        )
        if runtime:
            self._init_runtime(program_factory)
            return
        if self._view is not None:
            self._init_core(self._view, program_factory)
            return
        require_connected(graph, "network graph")
        require_simple(graph, "network graph")
        self._graph = graph
        self._neighbour_sets = None
        n = graph.number_of_nodes()
        # Deterministic node order, independent of graph insertion order.
        self._order: list[Hashable] = sorted(graph.nodes(), key=repr)
        self._rank: dict[Hashable, int] = {node: i for i, node in enumerate(self._order)}
        self._sort_key = self._rank.__getitem__
        for node in self._order:
            neighbours = tuple(sorted(graph.neighbors(node), key=repr))
            weights = {
                neighbour: graph[node][neighbour].get(WEIGHT, 1.0) for neighbour in neighbours
            }
            context = NodeContext(
                node=node,
                neighbours=neighbours,
                edge_weights=weights,
                num_nodes=n,
                diameter_bound=self._resolve_diameter_bound,
            )
            self.programs[node] = program_factory(context)

    def _init_core(
        self, view: GraphView, program_factory: Callable[[NodeContext], NodeProgram]
    ) -> None:
        """Core mode: nodes are CSR indices, adjacency comes from flat slices."""
        core = view.core
        # Same exception contract as label mode (require_connected): an empty
        # or disconnected network is a *precondition* failure of the caller's
        # input, so both modes raise InvalidGraphError with the same message;
        # SimulationError stays reserved for illegal states detected while a
        # simulation is running (bad sends, bandwidth, round budgets).
        if core.num_nodes == 0:
            raise InvalidGraphError("network graph is empty")
        if not core.is_connected():
            raise InvalidGraphError("network graph is not connected")
        self._graph = None  # lazy: materialised only if .graph is read
        n = core.num_nodes
        # Index order == repr order of the labels, so this *is* the canonical
        # deterministic order; ints sort natively (no rank map needed).
        self._order = list(range(n))
        self._rank = None
        self._sort_key = None
        neighbour_sets: list[set[int]] = []
        identity = _identity
        resolve = self._resolve_diameter_bound
        for node in self._order:
            neighbours = core.neighbors(node)
            weights = dict(zip(neighbours, core.neighbor_weights(node)))
            neighbour_sets.append(set(neighbours))
            context = NodeContext(
                node=node,
                neighbours=tuple(neighbours),
                edge_weights=weights,
                num_nodes=n,
                diameter_bound=resolve,
                id_key=identity,
            )
            self.programs[node] = program_factory(context)
        self._neighbour_sets = neighbour_sets

    def _init_runtime(self, program_factory) -> None:
        """Runtime mode: no per-node programs; one compiled batch program.

        The network must already be a :class:`repro.core.GraphView` -- the
        batch programs are index-native and their outputs are mapped back
        to labels through the view, exactly like core mode.  Construction
        performs the same empty/disconnected precondition checks as
        :meth:`_init_core` (and raises the same
        :class:`~repro.errors.InvalidGraphError`), then asks the factory
        for its compiled twin via the ``compile_runtime`` hook attached by
        :mod:`repro.congest.primitives`.
        """
        view = self._view
        if view is None:
            raise InvalidGraphError(
                "the vectorized runtime needs a GraphView network; wrap the graph "
                "with repro.core.view_of (the per-node modes accept nx.Graph)"
            )
        core = view.core
        if core.num_nodes == 0:
            raise InvalidGraphError("network graph is empty")
        if not core.is_connected():
            raise InvalidGraphError("network graph is not connected")
        self._graph = None  # lazy: materialised only if .graph is read
        self._order = list(range(core.num_nodes))
        self._rank = None
        self._sort_key = None
        self._neighbour_sets = None
        if self._fault_schedule is not None:
            # The compiled twins assume fail-free delivery (depth-uniform BFS
            # rounds, parity-buffered inboxes); under an active schedule the
            # runtime mode drives a batched flat-array interpreter instead --
            # see FaultRuntime in repro.congest.runtime.  Any factory works
            # here (the interpreter runs genuine node programs), so the
            # robust retry/ack factories need no compiled twin.
            from .runtime import FaultRuntime

            self._runtime_program = FaultRuntime(self, program_factory)
            return
        compile_hook = getattr(program_factory, "compile_runtime", None)
        if compile_hook is None:
            raise SimulationError(
                f"program factory {program_factory!r} has no vectorized runtime "
                "(no compile_runtime hook); run it under the per-node modes instead"
            )
        self._runtime_program = compile_hook(self)

    @property
    def graph(self) -> nx.Graph:
        """The network as an ``nx.Graph``, materialised on demand.

        In core and runtime mode the simulator runs entirely on the view's
        CSR arrays; the ``nx`` adapter graph is only built (lazily, through
        :attr:`GraphView.graph`) if something actually reads this attribute,
        so native million-node simulations never construct one.
        """
        if self._graph is None:
            self._graph = self._view.graph
        return self._graph

    def _resolve_diameter_bound(self) -> int:
        if self._diameter_bound is None:
            if self._view is not None:
                core = self._view.core
                self._diameter_bound = core.exact_diameter()
            else:
                graph = self.graph
                self._diameter_bound = (
                    nx.diameter(graph) if graph.number_of_nodes() > 1 else 0
                )
        return self._diameter_bound

    @property
    def diameter_bound(self) -> int:
        """The diameter bound the nodes see (computed on first access)."""
        return self._resolve_diameter_bound()

    def _validate_outgoing(self, sender: Hashable, outgoing: dict[Hashable, object]) -> None:
        neighbour_sets = self._neighbour_sets
        for target, message in outgoing.items():
            if neighbour_sets is not None:
                ok = target in neighbour_sets[sender]
            else:
                ok = self.graph.has_edge(sender, target)
            if not ok:
                raise SimulationError(
                    f"node {sender} attempted to send to non-neighbour {target}"
                )
            size = message_size_in_words(message)
            if size > self.bandwidth_words:
                raise SimulationError(
                    f"node {sender} sent a {size}-word message to {target}, exceeding the "
                    f"bandwidth of {self.bandwidth_words} words per edge per round"
                )

    def _final_outputs(self, exclude: frozenset | set = frozenset()) -> dict[Hashable, object]:
        """Collect per-node results, keyed by original labels in core mode.

        ``exclude`` holds crashed nodes (program id space): a failed
        processor produces no output, so its key is absent entirely.
        """
        programs = self.programs
        if self._view is not None:
            node_of = self._view.nodes
            return {
                node_of[index]: programs[index].result()
                for index in self._order
                if index not in exclude
            }
        return {
            node: programs[node].result() for node in self._order if node not in exclude
        }

    def _crash_rounds(self) -> dict[int, list[Hashable]]:
        """Resolve the schedule's crash decisions into round -> [nodes].

        Nodes are program ids; within a round they are listed in canonical
        order (``self._order``), so all modes count and apply crashes
        identically.
        """
        schedule = self._fault_schedule
        canon = self._rank
        by_round: dict[int, list[Hashable]] = {}
        for node in self._order:
            crash = schedule.crash_round(node if canon is None else canon[node])
            if crash is not None:
                by_round.setdefault(crash, []).append(node)
        return by_round

    def _run_faulty(self, max_rounds: int) -> SimulationResult:
        """The active-set loop with the fault layer at both mail boundaries.

        All sends route through a :class:`~repro.congest.faults.FaultQueue`
        (drop/delay/duplicate at the send boundary) and each round's
        inboxes come back crash-filtered and adversarially ordered from
        the same queue (deliver boundary).  The activation rule is the
        fail-free one -- recipients of this round's deliveries plus every
        never-halted program -- minus crashed nodes, which never execute
        from their crash round on.
        """
        programs = self.programs
        sort_key = self._sort_key
        schedule = self._fault_schedule
        queue = FaultQueue(schedule, self._rank)
        crash_by_round = self._crash_rounds()
        crashed: set[Hashable] = set()
        total_messages = total_words = 0
        total_dropped = total_delayed = total_duplicated = 0
        telemetry: list[RoundTelemetry] = []
        last_active_round = 0

        # Round 1: on_start for every program that has not already crashed.
        newly = crash_by_round.get(1, ())
        crashed.update(newly)
        sent = words = executed = 0
        for node in self._order:
            if node in crashed:
                continue
            executed += 1
            outgoing = programs[node].on_start() or {}
            self._validate_outgoing(node, outgoing)
            for target, message in outgoing.items():
                if message is None:
                    continue
                queue.send(1, node, target, message)
                sent += 1
                words += message_size_in_words(message)
        dropped, delayed, duplicated = queue.take_round_stats()
        total_messages += sent
        total_words += words
        total_dropped += dropped
        total_delayed += delayed
        total_duplicated += duplicated
        telemetry.append(
            RoundTelemetry(1, executed, sent, words, dropped, delayed, duplicated, len(newly))
        )
        if sent:
            last_active_round = 1
        live = {
            node
            for node in self._order
            if node not in crashed and not programs[node].halted
        }

        round_number = 1
        while live or queue.has_mail():
            round_number += 1
            if round_number > max_rounds + 1:
                raise RoundLimitError(
                    f"simulation did not converge within {max_rounds} rounds",
                    partial=SimulationResult(
                        rounds=last_active_round,
                        messages=total_messages,
                        words=total_words,
                        outputs=self._final_outputs(exclude=crashed),
                        telemetry=telemetry,
                        dropped=total_dropped,
                        delayed=total_delayed,
                        duplicated=total_duplicated,
                        crashed_nodes=len(crashed),
                    ),
                )
            inboxes = queue.deliveries(round_number)
            delivered = bool(inboxes)
            newly = crash_by_round.get(round_number, ())
            for node in newly:
                crashed.add(node)
                live.discard(node)
            active = live if not inboxes else live.union(inboxes.keys())
            sent = words = executed = 0
            for node in sorted(active, key=sort_key):
                program = programs[node]
                inbox = inboxes.get(node)
                if inbox is None:
                    if program.halted:
                        continue
                    inbox = {}
                executed += 1
                outgoing = program.on_round(round_number, inbox) or {}
                self._validate_outgoing(node, outgoing)
                for target, message in outgoing.items():
                    if message is None:
                        continue
                    queue.send(round_number, node, target, message)
                    sent += 1
                    words += message_size_in_words(message)
                if program.halted:
                    live.discard(node)
                else:
                    live.add(node)
            dropped, delayed, duplicated = queue.take_round_stats()
            total_messages += sent
            total_words += words
            total_dropped += dropped
            total_delayed += delayed
            total_duplicated += duplicated
            telemetry.append(RoundTelemetry(
                round_number, executed, sent, words, dropped, delayed, duplicated, len(newly)
            ))
            if sent or delivered:
                last_active_round = round_number

        return SimulationResult(
            rounds=last_active_round,
            messages=total_messages,
            words=total_words,
            outputs=self._final_outputs(exclude=crashed),
            telemetry=telemetry,
            dropped=total_dropped,
            delayed=total_delayed,
            duplicated=total_duplicated,
            crashed_nodes=len(crashed),
        )

    def run(self, max_rounds: int = 10_000) -> SimulationResult:
        """Run the simulation to quiescence (all halted, no messages in flight).

        In runtime mode the compiled batch program drives the loop instead;
        the returned :class:`SimulationResult` is exactly equal either way
        (the equality contract in ``docs/simulator.md``).  With an active
        fault schedule the fault-aware loop runs instead; exceeding
        ``max_rounds`` raises :class:`~repro.errors.RoundLimitError`
        carrying the partial result.
        """
        if self._runtime_program is not None:
            return self._runtime_program.drive(max_rounds)
        if self._fault_schedule is not None:
            return self._run_faulty(max_rounds)
        programs = self.programs
        sort_key = self._sort_key
        # pending maps recipient -> {sender: message}; inbox dicts are created
        # on demand, so idle nodes never own (or cause the allocation of) a
        # buffer.  live is the set of non-halted programs; together with the
        # pending recipients it forms the active set of the next round.
        pending: dict[Hashable, dict[Hashable, object]] = {}
        live: set[Hashable] = {
            node for node, program in programs.items() if not program.halted
        }
        total_messages = 0
        total_words = 0
        telemetry: list[RoundTelemetry] = []
        last_active_round = 0

        # Round 1: on_start messages (every program executes once).
        sent = words = 0
        for node in self._order:
            outgoing = programs[node].on_start() or {}
            self._validate_outgoing(node, outgoing)
            for target, message in outgoing.items():
                if message is None:
                    continue
                pending.setdefault(target, {})[node] = message
                sent += 1
                words += message_size_in_words(message)
        total_messages += sent
        total_words += words
        telemetry.append(RoundTelemetry(1, len(self._order), sent, words))
        if sent:
            last_active_round = 1
        live = {node for node in live if not programs[node].halted}

        round_number = 1
        while live or pending:
            round_number += 1
            if round_number > max_rounds + 1:
                raise RoundLimitError(
                    f"simulation did not converge within {max_rounds} rounds",
                    partial=SimulationResult(
                        rounds=last_active_round,
                        messages=total_messages,
                        words=total_words,
                        outputs=self._final_outputs(),
                        telemetry=telemetry,
                    ),
                )
            inboxes = pending
            pending = {}
            delivered = bool(inboxes)
            active = live if not inboxes else live.union(inboxes.keys())
            sent = words = 0
            executed = 0
            for node in sorted(active, key=sort_key):
                program = programs[node]
                inbox = inboxes.get(node)
                if inbox is None:
                    if program.halted:
                        continue
                    inbox = {}
                executed += 1
                outgoing = program.on_round(round_number, inbox) or {}
                self._validate_outgoing(node, outgoing)
                for target, message in outgoing.items():
                    if message is None:
                        continue
                    pending.setdefault(target, {})[node] = message
                    sent += 1
                    words += message_size_in_words(message)
                if program.halted:
                    live.discard(node)
                else:
                    live.add(node)
            total_messages += sent
            total_words += words
            telemetry.append(RoundTelemetry(round_number, executed, sent, words))
            if sent or delivered:
                last_active_round = round_number

        return SimulationResult(
            rounds=last_active_round,
            messages=total_messages,
            words=total_words,
            outputs=self._final_outputs(),
            telemetry=telemetry,
        )


def _identity(value: object) -> object:
    """The core-mode id sort key: indices already sort in canonical order."""
    return value
