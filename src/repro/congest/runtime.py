"""The vectorized CONGEST runtime: whole-network batch step functions.

The per-node modes of :class:`repro.congest.simulator.CongestSimulator`
execute one Python ``on_round`` call per active node per round.  For the
built-in primitives that is pure interpreter overhead: a BFS flood, a
broadcast, a leader election or a convergecast does the *same* tiny piece
of work at every node of a frontier, so the whole frontier can be advanced
at once with flat-array operations.  This module compiles each built-in
node program into a :class:`RuntimeProgram` -- a batch twin that holds the
entire network's state in preallocated arrays (``parent`` / ``joined`` /
``best`` / ``acc`` vectors indexed by CSR vertex) and processes a round as

* one pass over the round's **recipient array** (the distinct targets of
  the previous round's sends, deduplicated with epoch-stamped arrays or a
  double-buffered :class:`_Inbox` instead of per-node dict allocation),
* CSR-sliced message generation straight off
  :class:`repro.core.CoreGraph`'s flat adjacency arrays, and
* per-round telemetry accumulated into parallel flat columns (rounds /
  executed / messages / words) that are materialised into
  :class:`~repro.congest.simulator.RoundTelemetry` rows once, at the end.

Like the rest of the kernel (see :mod:`repro.core.graph`), the arrays are
flat Python lists: the access pattern is element-at-a-time graph
traversal, where list indexing beats numpy item access.

**The equality contract.**  A runtime execution is *observationally
identical* to the per-node core mode (and therefore to the label mode and
the full-scan :class:`~repro.congest.reference.ReferenceSimulator`): the
returned :class:`~repro.congest.simulator.SimulationResult` has exactly
equal ``rounds``, ``messages``, ``words``, label-keyed ``outputs`` and
per-round telemetry (including executed-node counts, which requires the
batch programs to reproduce the active-set rule precisely: a round
executes the recipients of the previous round's sends plus every
never-halted program).  ``tests/test_runtime.py`` pins this on every
registered scenario family; ``docs/simulator.md`` spells the contract out.

Only programs with a compiled twin can run here: the simulator's
``runtime=True`` mode asks the program factory for a ``compile_runtime``
hook (attached by the factories in :mod:`repro.congest.primitives`) and
refuses factories without one -- arbitrary user ``NodeProgram``
subclasses keep running under the per-node modes, which remain the
semantic reference.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..errors import RoundLimitError, SimulationError
from .faults import FaultQueue
from .node import NodeContext, message_size_in_words
from .simulator import CongestSimulator, RoundTelemetry, SimulationResult, _identity


class _Inbox:
    """Double-buffered per-node message accumulator on preallocated arrays.

    Messages for round ``r`` and round ``r + 1`` live on alternating sides
    (``r & 1``), so a batch step can *read* this round's deliveries while
    *writing* next round's without clobbering a recipient that appears in
    both.  Per-node payload lists are allocated once and reused (cleared on
    the first push of a round, detected by an exact round tag), and the
    recipient list of a round is built in push order -- the deduplicated
    "who has mail" frontier the batch programs iterate instead of scanning
    all nodes.
    """

    __slots__ = ("_payloads", "_tags", "_pending")

    def __init__(self, num_nodes: int) -> None:
        self._payloads: tuple[list, list] = (
            [None] * num_nodes,
            [None] * num_nodes,
        )
        self._tags: tuple[list[int], list[int]] = ([0] * num_nodes, [0] * num_nodes)
        self._pending: list[list[int]] = [[], []]

    def push(self, round_number: int, target: int, payload) -> None:
        """Queue ``payload`` for delivery to ``target`` in ``round_number``."""
        side = round_number & 1
        tags = self._tags[side]
        rows = self._payloads[side]
        row = rows[target]
        if tags[target] != round_number:
            tags[target] = round_number
            if row is None:
                row = rows[target] = []
            else:
                row.clear()
            self._pending[side].append(target)
        row.append(payload)

    def recipients(self, round_number: int) -> list[int]:
        """Return (and consume) the distinct delivery targets of a round."""
        side = round_number & 1
        out = self._pending[side]
        self._pending[side] = []
        return out

    def payloads(self, round_number: int, target: int) -> list:
        """Return the payloads delivered to ``target`` this round."""
        return self._payloads[round_number & 1][target]

    def received(self, round_number: int, target: int) -> bool:
        """True when ``target`` has mail in ``round_number``."""
        return self._tags[round_number & 1][target] == round_number

    def has_mail(self, round_number: int) -> bool:
        """True when any message is queued for delivery in ``round_number``."""
        return bool(self._pending[round_number & 1])


class RuntimeProgram:
    """Base class for compiled batch programs (one instance = whole network).

    Subclasses implement the three batch hooks; :meth:`drive` supplies the
    round loop with exactly the accounting of the per-node simulators:
    round 1 executes every program (``on_start``), ``rounds`` is the index
    of the last round with any send or delivery, and the loop runs while
    the program reports work (pending deliveries or live programs) --
    mirroring ``while live or pending`` of the active-set loop.
    """

    def __init__(self, view, bandwidth_words: int) -> None:
        self.view = view
        self.core = view.core
        self.bandwidth_words = bandwidth_words

    # -- the batch API (one call per round, whole network) -----------------

    def on_start(self) -> tuple[int, int]:
        """Execute every node's round 1; return ``(sent, words)``."""
        raise NotImplementedError

    def on_round(self, round_number: int) -> tuple[int, int, int, bool]:
        """Advance one round; return ``(executed, sent, words, delivered)``."""
        raise NotImplementedError

    def has_work(self) -> bool:
        """True while any message is in flight or any program is live."""
        raise NotImplementedError

    def outputs(self) -> Sequence:
        """Per-index final results (:meth:`NodeProgram.result` of each node)."""
        raise NotImplementedError

    # -- shared accounting -------------------------------------------------

    def _check_bandwidth(self, sender: int, target: int, message) -> int:
        """Size a message and enforce the per-edge bandwidth (same error as
        the per-node ``_validate_outgoing``); batch programs call this once
        per message *shape*, since every message of a program family has
        the same size."""
        size = message_size_in_words(message)
        if size > self.bandwidth_words:
            raise SimulationError(
                f"node {sender} sent a {size}-word message to {target}, exceeding the "
                f"bandwidth of {self.bandwidth_words} words per edge per round"
            )
        return size

    def drive(self, max_rounds: int = 10_000) -> SimulationResult:
        """Run to quiescence; return a result bit-comparable with the per-node modes."""
        n = self.core.num_nodes
        # Telemetry accumulates into flat parallel columns; RoundTelemetry
        # rows are materialised once, after the loop.
        executed_column: list[int] = [n]
        sent_column: list[int] = []
        words_column: list[int] = []
        sent, words = self.on_start()
        sent_column.append(sent)
        words_column.append(words)
        total_messages = sent
        total_words = words
        last_active_round = 1 if sent else 0

        round_number = 1
        while self.has_work():
            round_number += 1
            if round_number > max_rounds + 1:
                node_of = self.view.nodes
                raise RoundLimitError(
                    f"simulation did not converge within {max_rounds} rounds",
                    partial=SimulationResult(
                        rounds=last_active_round,
                        messages=total_messages,
                        words=total_words,
                        outputs={
                            node_of[index]: value
                            for index, value in enumerate(self.outputs())
                        },
                        telemetry=[
                            RoundTelemetry(index + 1, executed, sent, words)
                            for index, (executed, sent, words) in enumerate(
                                zip(executed_column, sent_column, words_column)
                            )
                        ],
                    ),
                )
            executed, sent, words, delivered = self.on_round(round_number)
            total_messages += sent
            total_words += words
            executed_column.append(executed)
            sent_column.append(sent)
            words_column.append(words)
            if sent or delivered:
                last_active_round = round_number

        node_of = self.view.nodes
        outputs = {node_of[index]: value for index, value in enumerate(self.outputs())}
        telemetry = [
            RoundTelemetry(index + 1, executed, sent, words)
            for index, (executed, sent, words) in enumerate(
                zip(executed_column, sent_column, words_column)
            )
        ]
        return SimulationResult(
            rounds=last_active_round,
            messages=total_messages,
            words=total_words,
            outputs=outputs,
            telemetry=telemetry,
        )


class BfsRuntime(RuntimeProgram):
    """Batch twin of :class:`repro.congest.primitives._BfsProgram`.

    State is four flat vectors (``joined`` / ``parent`` / ``best`` sender /
    recipient ``stamp``); a round joins every unjoined recipient to its
    minimum-index sender (all offers of a round carry the same depth, so
    the per-node ``min((depth, id), ...)`` tie-break reduces to the min
    sender) and floods ``("bfs", depth + 1)`` -- 2 words -- from the new
    joiners through their CSR slices, minus the chosen parent edge.
    """

    def __init__(self, view, bandwidth_words: int, root: int) -> None:
        super().__init__(view, bandwidth_words)
        n = self.core.num_nodes
        self.root = root
        self._joined = bytearray(n)
        self._joined[root] = 1
        self._parent = [-1] * n
        self._best = [0] * n
        self._stamp = [0] * n
        self._epoch = 0
        self._recipients: list[int] = []
        # The root never halts in on_start, so it is live until it executes
        # in round 2 (every other program halts the moment it runs).
        self._root_live = True

    def on_start(self) -> tuple[int, int]:
        indptr, indices = self.core._indptr_list, self.core._indices_list
        start, end = indptr[self.root], indptr[self.root + 1]
        sent = end - start
        if sent:
            self._check_bandwidth(self.root, indices[start], ("bfs", 0))
        self._epoch = epoch = self._epoch + 1
        stamp, best = self._stamp, self._best
        recipients = self._recipients
        for offset in range(start, end):
            target = indices[offset]
            stamp[target] = epoch
            best[target] = self.root
            recipients.append(target)
        return sent, 2 * sent

    def on_round(self, round_number: int) -> tuple[int, int, int, bool]:
        recipients = self._recipients
        delivered = bool(recipients)
        executed = len(recipients)
        if self._root_live:
            # Round 2: the root executes from the live set (it is never its
            # own neighbour, so it is not among the recipients).
            if self._stamp[self.root] != self._epoch:
                executed += 1
            self._root_live = False
        joined, parent, best = self._joined, self._parent, self._best
        # Two passes: first fix every joiner's parent (the per-target min
        # sender accumulated last round), then generate this round's sends
        # -- which restamp ``best`` for *next* round's recipients.
        joiners = []
        for target in recipients:
            if not joined[target]:
                joined[target] = 1
                parent[target] = best[target]
                joiners.append(target)
        self._epoch = epoch = self._epoch + 1
        stamp = self._stamp
        indptr, indices = self.core._indptr_list, self.core._indices_list
        new_recipients: list[int] = []
        sent = 0
        for source in joiners:
            skip = parent[source]
            for offset in range(indptr[source], indptr[source + 1]):
                neighbour = indices[offset]
                if neighbour == skip:
                    continue
                sent += 1
                if stamp[neighbour] != epoch:
                    stamp[neighbour] = epoch
                    best[neighbour] = source
                    new_recipients.append(neighbour)
                elif source < best[neighbour]:
                    best[neighbour] = source
        self._recipients = new_recipients
        return executed, sent, 2 * sent, delivered

    def has_work(self) -> bool:
        return self._root_live or bool(self._recipients)

    def outputs(self) -> Sequence:
        # result() of the per-node program: the parent index, None at the
        # root (and at unreached nodes, which a connected network has none of).
        return [None if parent < 0 else parent for parent in self._parent]


class BroadcastRuntime(RuntimeProgram):
    """Batch twin of :class:`repro.congest.primitives._BroadcastProgram`.

    Every message is ``("bc", value)`` with one shared ``value``, so only
    sender *identities* need delivering: newly informed nodes forward to
    every neighbour that did not just send to them (per-node exclusion of
    the round's senders, reproduced with a token-marked scratch array).
    """

    def __init__(self, view, bandwidth_words: int, source: int, value) -> None:
        super().__init__(view, bandwidth_words)
        n = self.core.num_nodes
        self.source = source
        self.value = value
        self._informed = bytearray(n)
        self._informed[source] = 1
        self._inbox = _Inbox(n)
        self._mark = [0] * n
        self._token = 0
        self._round = 1
        self._source_live = True
        self._words_per_message = message_size_in_words(("bc", value))

    def on_start(self) -> tuple[int, int]:
        indptr, indices = self.core._indptr_list, self.core._indices_list
        start, end = indptr[self.source], indptr[self.source + 1]
        sent = end - start
        if sent:
            self._check_bandwidth(self.source, indices[start], ("bc", self.value))
        inbox = self._inbox
        for offset in range(start, end):
            inbox.push(2, indices[offset], self.source)
        return sent, sent * self._words_per_message

    def on_round(self, round_number: int) -> tuple[int, int, int, bool]:
        self._round = round_number
        inbox = self._inbox
        recipients = inbox.recipients(round_number)
        delivered = bool(recipients)
        executed = len(recipients)
        if self._source_live:
            if not inbox.received(round_number, self.source):
                executed += 1
            self._source_live = False
        informed = self._informed
        mark = self._mark
        indptr, indices = self.core._indptr_list, self.core._indices_list
        next_round = round_number + 1
        sent = 0
        for target in recipients:
            if informed[target]:
                continue  # woken, returns {} (already has the value)
            informed[target] = 1
            self._token = token = self._token + 1
            for sender in inbox.payloads(round_number, target):
                mark[sender] = token
            for offset in range(indptr[target], indptr[target + 1]):
                neighbour = indices[offset]
                if mark[neighbour] == token:
                    continue
                sent += 1
                inbox.push(next_round, neighbour, target)
        return executed, sent, sent * self._words_per_message, delivered

    def has_work(self) -> bool:
        return self._source_live or self._inbox.has_mail(self._round + 1)

    def outputs(self) -> Sequence:
        value = self.value
        return [value if informed else None for informed in self._informed]


class FloodMaxRuntime(RuntimeProgram):
    """Batch twin of :class:`repro.congest.primitives._FloodMaxProgram`.

    The one compiled program with a non-trivial live set: every node stays
    live until its first round without an improvement, and improved nodes
    re-flood their ``best`` (one machine word -- core-mode identifiers are
    ints) to their whole CSR slice.  Messages carry best-id *values*, so
    the inbox accumulates payloads and a round folds each recipient's mail
    with ``max``.
    """

    def __init__(self, view, bandwidth_words: int) -> None:
        super().__init__(view, bandwidth_words)
        n = self.core.num_nodes
        self._best = list(range(n))
        self._live = bytearray(b"\x01" * n) if n else bytearray()
        self._live_list = list(range(n))
        self._inbox = _Inbox(n)
        self._round = 1

    def on_start(self) -> tuple[int, int]:
        indptr, indices = self.core._indptr_list, self.core._indices_list
        inbox = self._inbox
        sent = 0
        if self.core.num_edges:
            self._check_bandwidth(0, indices[0], self.core.num_nodes - 1)
        for source in range(self.core.num_nodes):
            for offset in range(indptr[source], indptr[source + 1]):
                inbox.push(2, indices[offset], source)
            sent += indptr[source + 1] - indptr[source]
        return sent, sent

    def on_round(self, round_number: int) -> tuple[int, int, int, bool]:
        self._round = round_number
        inbox = self._inbox
        recipients = inbox.recipients(round_number)
        delivered = bool(recipients)
        live, live_list, best = self._live, self._live_list, self._best
        executed = len(live_list)
        for target in recipients:
            if not live[target]:
                executed += 1
        indptr, indices = self.core._indptr_list, self.core._indices_list
        next_round = round_number + 1
        sent = 0
        for target in recipients:
            incoming = max(inbox.payloads(round_number, target))
            if incoming > best[target]:
                best[target] = incoming
                for offset in range(indptr[target], indptr[target + 1]):
                    inbox.push(next_round, indices[offset], incoming)
                sent += indptr[target + 1] - indptr[target]
            elif live[target]:
                live[target] = 0  # first quiet round: the program halts
        for node in live_list:
            if live[node] and not inbox.received(round_number, node):
                live[node] = 0  # executed with an empty inbox: halts
        if live_list:
            self._live_list = [node for node in live_list if live[node]]
        return executed, sent, sent, delivered

    def has_work(self) -> bool:
        return bool(self._live_list) or self._inbox.has_mail(self._round + 1)

    def outputs(self) -> Sequence:
        return list(self._best)


class ConvergecastRuntime(RuntimeProgram):
    """Batch twin of :class:`repro.congest.primitives._ConvergecastProgram`.

    Aggregation up a rooted spanning tree: flat ``acc`` / ``remaining``
    vectors, leaves fire in round 1, and an internal node fires ``("cc",
    acc)`` to its parent in the round its last child's report arrives.
    Mail folds in ascending child order (the per-node program sorts its
    inbox the same way), so non-commutative float ``combine``s still match
    bit for bit.
    """

    def __init__(
        self,
        view,
        bandwidth_words: int,
        parent: Sequence[int],
        values: Sequence,
        combine: Callable,
    ) -> None:
        super().__init__(view, bandwidth_words)
        n = self.core.num_nodes
        self._parent = list(parent)
        self._acc = list(values)
        self._combine = combine
        self._remaining = [0] * n
        for node_parent in self._parent:
            if node_parent >= 0:
                self._remaining[node_parent] += 1
        self._root = self._parent.index(-1) if n else -1
        self._result = None
        self._inbox = _Inbox(n)
        self._round = 1

    def _check_edge(self, sender: int, target: int) -> None:
        """The topology half of ``_validate_outgoing``: unlike the other
        compiled programs, convergecast sends along *caller-supplied* parent
        pointers rather than CSR slices, so each report edge must be checked
        against the network exactly as the per-node modes do."""
        if not self.core.has_edge(sender, target):
            raise SimulationError(
                f"node {sender} attempted to send to non-neighbour {target}"
            )

    def on_start(self) -> tuple[int, int]:
        inbox = self._inbox
        parent, acc, remaining = self._parent, self._acc, self._remaining
        sent = words = 0
        for node in range(self.core.num_nodes):
            if remaining[node]:
                continue
            up = parent[node]
            if up < 0:
                self._result = acc[node]  # single-node tree: no communication
                continue
            self._check_edge(node, up)
            words += self._check_bandwidth(node, up, ("cc", acc[node]))
            inbox.push(2, up, node)
            sent += 1
        return sent, words

    def on_round(self, round_number: int) -> tuple[int, int, int, bool]:
        self._round = round_number
        inbox = self._inbox
        recipients = inbox.recipients(round_number)
        delivered = bool(recipients)
        executed = len(recipients)
        parent, acc, remaining = self._parent, self._acc, self._remaining
        combine = self._combine
        next_round = round_number + 1
        sent = words = 0
        for target in recipients:
            children = sorted(inbox.payloads(round_number, target))
            folded = acc[target]
            for child in children:
                folded = combine(folded, acc[child])
            acc[target] = folded
            remaining[target] -= len(children)
            if remaining[target] == 0:
                up = parent[target]
                if up < 0:
                    self._result = folded
                else:
                    self._check_edge(target, up)
                    words += self._check_bandwidth(target, up, ("cc", folded))
                    inbox.push(next_round, up, target)
                    sent += 1
        return executed, sent, words, delivered

    def has_work(self) -> bool:
        return self._inbox.has_mail(self._round + 1)

    def outputs(self) -> Sequence:
        root = self._root
        return [self._result if node == root else None for node in range(self.core.num_nodes)]


class FaultRuntime(RuntimeProgram):
    """The runtime mode's engine under an active fault schedule.

    The compiled twins above are fail-free by construction: ``BfsRuntime``
    collapses the per-node tie-break because all offers of a round carry
    the same depth (false under delays), and :class:`_Inbox` double-buffers
    on round parity (breaks for delays > 1).  Rather than forking every
    twin per fault combination, an active schedule switches the runtime
    mode to this batched flat-array interpreter: node programs are built
    once into an index-addressed list (no per-label dicts anywhere),
    per-round state lives in ``bytearray`` live/crashed masks plus a
    compacted live list, telemetry accumulates into parallel columns, and
    all mail flows through the same :class:`~repro.congest.faults.FaultQueue`
    as the per-node modes -- one decision stream, three engines.  This is
    a deliberate trade: faulty runtime executions keep the observational
    equality contract (and stay faster than the label mode) but give up
    the compiled twins' constant factors.
    """

    def __init__(self, simulator: CongestSimulator, program_factory) -> None:
        super().__init__(simulator._view, simulator.bandwidth_words)
        self._schedule = simulator._fault_schedule
        core = self.core
        n = core.num_nodes
        resolve = simulator._resolve_diameter_bound
        programs = []
        neighbour_sets: list[set[int]] = []
        for node in range(n):
            neighbours = core.neighbors(node)
            weights = dict(zip(neighbours, core.neighbor_weights(node)))
            neighbour_sets.append(set(neighbours))
            context = NodeContext(
                node=node,
                neighbours=tuple(neighbours),
                edge_weights=weights,
                num_nodes=n,
                diameter_bound=resolve,
                id_key=_identity,
            )
            programs.append(program_factory(context))
        self._programs = programs
        self._neighbour_sets = neighbour_sets

    def _validate(self, sender: int, outgoing: dict) -> None:
        neighbour_set = self._neighbour_sets[sender]
        for target, message in outgoing.items():
            if target not in neighbour_set:
                raise SimulationError(
                    f"node {sender} attempted to send to non-neighbour {target}"
                )
            self._check_bandwidth(sender, target, message)

    def drive(self, max_rounds: int = 10_000) -> SimulationResult:
        """Fault-aware batch loop; results equal the per-node fault loops."""
        n = self.core.num_nodes
        schedule = self._schedule
        queue = FaultQueue(schedule)  # runtime ids are already canonical
        programs = self._programs
        crash_by_round: dict[int, list[int]] = {}
        for node in range(n):
            crash = schedule.crash_round(node)
            if crash is not None:
                crash_by_round.setdefault(crash, []).append(node)
        crashed = bytearray(n)
        live = bytearray(n)
        executed_column: list[int] = []
        sent_column: list[int] = []
        words_column: list[int] = []
        fault_columns: list[tuple[int, int, int, int]] = []
        total_messages = total_words = 0
        total_dropped = total_delayed = total_duplicated = 0
        total_crashed = 0

        def materialise(last_active_round: int) -> SimulationResult:
            node_of = self.view.nodes
            outputs = {
                node_of[index]: programs[index].result()
                for index in range(n)
                if not crashed[index]
            }
            telemetry = [
                RoundTelemetry(index + 1, executed, sent, words, *faults)
                for index, (executed, sent, words, faults) in enumerate(
                    zip(executed_column, sent_column, words_column, fault_columns)
                )
            ]
            return SimulationResult(
                rounds=last_active_round,
                messages=total_messages,
                words=total_words,
                outputs=outputs,
                telemetry=telemetry,
                dropped=total_dropped,
                delayed=total_delayed,
                duplicated=total_duplicated,
                crashed_nodes=total_crashed,
            )

        newly = crash_by_round.get(1, ())
        for node in newly:
            crashed[node] = 1
        total_crashed += len(newly)
        sent = words = executed = 0
        for node in range(n):
            if crashed[node]:
                continue
            executed += 1
            program = programs[node]
            outgoing = program.on_start() or {}
            self._validate(node, outgoing)
            for target, message in outgoing.items():
                if message is None:
                    continue
                queue.send(1, node, target, message)
                sent += 1
                words += message_size_in_words(message)
            if not program.halted:
                live[node] = 1
        dropped, delayed, duplicated = queue.take_round_stats()
        total_messages += sent
        total_words += words
        total_dropped += dropped
        total_delayed += delayed
        total_duplicated += duplicated
        executed_column.append(executed)
        sent_column.append(sent)
        words_column.append(words)
        fault_columns.append((dropped, delayed, duplicated, len(newly)))
        last_active_round = 1 if sent else 0
        live_list = [node for node in range(n) if live[node]]

        round_number = 1
        while live_list or queue.has_mail():
            round_number += 1
            if round_number > max_rounds + 1:
                raise RoundLimitError(
                    f"simulation did not converge within {max_rounds} rounds",
                    partial=materialise(last_active_round),
                )
            inboxes = queue.deliveries(round_number)
            delivered = bool(inboxes)
            newly = crash_by_round.get(round_number, ())
            for node in newly:
                crashed[node] = 1
                live[node] = 0
            total_crashed += len(newly)
            if inboxes:
                candidates = sorted(set(live_list).union(inboxes))
            else:
                candidates = live_list
            sent = words = executed = 0
            for node in candidates:
                if crashed[node]:
                    continue
                program = programs[node]
                inbox = inboxes.get(node)
                if inbox is None:
                    if program.halted:
                        continue
                    inbox = {}
                executed += 1
                outgoing = program.on_round(round_number, inbox) or {}
                self._validate(node, outgoing)
                for target, message in outgoing.items():
                    if message is None:
                        continue
                    queue.send(round_number, node, target, message)
                    sent += 1
                    words += message_size_in_words(message)
                live[node] = 0 if program.halted else 1
            live_list = [node for node in candidates if live[node]]
            dropped, delayed, duplicated = queue.take_round_stats()
            total_messages += sent
            total_words += words
            total_dropped += dropped
            total_delayed += delayed
            total_duplicated += duplicated
            executed_column.append(executed)
            sent_column.append(sent)
            words_column.append(words)
            fault_columns.append((dropped, delayed, duplicated, len(newly)))
            if sent or delivered:
                last_active_round = round_number

        return materialise(last_active_round)


class RuntimeSimulator(CongestSimulator):
    """:class:`CongestSimulator` pinned to the vectorized runtime mode.

    A convenience subclass for the ``simulator_cls`` threading used by the
    primitives, the scenario engine and the benchmarks: passing this class
    where :class:`CongestSimulator` or
    :class:`~repro.congest.reference.ReferenceSimulator` is accepted runs
    the same workload on compiled batch programs.  The network must be a
    :class:`repro.core.GraphView` (the runtime is index-native) and the
    program factory must carry a ``compile_runtime`` hook -- both enforced
    at construction with the same exception contract as the core mode
    (:class:`~repro.errors.InvalidGraphError` for empty/disconnected/
    label-space networks, :class:`~repro.errors.SimulationError` for
    factories without a compiled twin).
    """

    def __init__(
        self,
        graph,
        program_factory,
        bandwidth_words: int = 3,
        diameter_bound: int | None = None,
        fault_schedule=None,
    ) -> None:
        super().__init__(
            graph,
            program_factory,
            bandwidth_words=bandwidth_words,
            diameter_bound=diameter_bound,
            runtime=True,
            fault_schedule=fault_schedule,
        )
