"""Basic distributed primitives implemented as genuine CONGEST node programs.

These are the building blocks whose round complexities are textbook facts
(BFS tree construction, flooding and broadcast each take ``O(D)`` rounds)
and which the higher-level algorithms charge as overhead: Boruvka's merge
coordination, for example, costs one broadcast over the BFS tree per phase.
Running them through the real simulator keeps the model honest -- the tests
check both their outputs and their ``O(D)`` round counts.

Every primitive accepts a ``simulator_cls`` so that callers (the scenario
engine, the differential tests, the speedup benchmark) can run the same
node programs under the active-set :class:`CongestSimulator` or the
full-scan :class:`repro.congest.reference.ReferenceSimulator` -- and a
``graph`` that is either an ``nx.Graph`` or a
:class:`repro.core.GraphView`.  Given a view the simulation runs in core
mode (integer node ids over CSR slices); the primitives translate the
caller-facing labels at the boundary (the root argument in, parent
pointers and leaders out), so results are label-identical either way.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from ..core import GraphView
from ..structure.spanning import RootedTree
from .node import NodeContext, NodeProgram
from .simulator import CongestSimulator, SimulationResult


class _BfsProgram(NodeProgram):
    """Flood a BFS token from the root; every node records its parent.

    Nodes waiting for the wavefront *halt* instead of idling: a halted node
    with mail is woken by the simulator, so the active set each round is the
    genuine BFS frontier (plus its recipients), not every unjoined node.
    The message pattern -- and therefore rounds, messages and words -- is
    unchanged; only the executed-node telemetry tightens.
    """

    def __init__(self, context: NodeContext, root: Hashable) -> None:
        super().__init__(context)
        self.root = root
        self.parent: Hashable | None = None
        self.joined = context.node == root

    def on_start(self) -> dict[Hashable, object]:
        if self.joined:
            return {neighbour: ("bfs", 0) for neighbour in self.context.neighbours}
        self.halted = True  # sleep until the wavefront's message wakes us
        return {}

    def on_round(self, round_number: int, inbox: dict[Hashable, object]) -> dict[Hashable, object]:
        self.halted = True
        if self.joined:
            return {}
        offers = [(message[1], sender) for sender, message in inbox.items() if message[0] == "bfs"]
        if not offers:
            return {}
        id_key = self.context.id_key
        depth, sender = min(offers, key=lambda item: (item[0], id_key(item[1])))
        self.parent = sender
        self.joined = True
        return {
            neighbour: ("bfs", depth + 1)
            for neighbour in self.context.neighbours
            if neighbour != sender
        }

    def result(self) -> object:
        return self.parent


def distributed_bfs_tree(
    graph: nx.Graph | GraphView,
    root: Hashable,
    simulator_cls: type[CongestSimulator] = CongestSimulator,
) -> tuple[RootedTree, SimulationResult]:
    """Build a BFS tree with a genuine flooding execution; return tree + stats.

    The round count of the returned :class:`SimulationResult` is ``O(D)``,
    which the tests assert; the resulting tree is used as the spanning tree
    ``T`` of the shortcut framework exactly as Theorem 1 prescribes.

    ``root`` is always a node *label*; in core mode the primitive converts it
    to an index on the way in and maps the parent pointers back to labels on
    the way out, so the returned tree is label-keyed either way.
    """
    view = graph if isinstance(graph, GraphView) else None
    program_root = root if view is None else view.index_of(root)
    simulator = simulator_cls(graph, lambda ctx: _BfsProgram(ctx, program_root))
    result = simulator.run()
    if view is None:
        parent = {node: output for node, output in result.outputs.items()}
    else:
        node_of = view.nodes
        parent = {
            node: (None if output is None else node_of[output])
            for node, output in result.outputs.items()
        }
    parent[root] = None
    tree = RootedTree(parent, root)
    tree.validate(view.graph if view is not None else graph)
    return tree, result


class _FloodMaxProgram(NodeProgram):
    """Every node learns the maximum node identifier (leader election by flooding)."""

    def __init__(self, context: NodeContext) -> None:
        super().__init__(context)
        self.best = context.node
        self.rounds_quiet = 0

    def on_start(self) -> dict[Hashable, object]:
        return {neighbour: self.best for neighbour in self.context.neighbours}

    def on_round(self, round_number: int, inbox: dict[Hashable, object]) -> dict[Hashable, object]:
        improved = False
        id_key = self.context.id_key
        for message in inbox.values():
            if id_key(message) > id_key(self.best):
                self.best = message
                improved = True
        if improved:
            return {neighbour: self.best for neighbour in self.context.neighbours}
        # A node halts once it has been quiet for one round past the diameter
        # bound; the simulator also terminates on global quiescence.
        self.halted = True
        return {}

    def result(self) -> object:
        return self.best


def flood_max_id(
    graph: nx.Graph | GraphView,
    simulator_cls: type[CongestSimulator] = CongestSimulator,
) -> tuple[Hashable, SimulationResult]:
    """Elect the maximum-id node as the leader by flooding; return (leader, stats).

    In core mode the elected maximum *index* is the maximum-repr label (index
    order is repr order), returned in label form.
    """
    simulator = simulator_cls(graph, _FloodMaxProgram)
    result = simulator.run()
    leaders = set(result.outputs.values())
    if len(leaders) != 1:
        raise RuntimeError(f"leader election did not converge: {leaders}")
    leader = next(iter(leaders))
    if isinstance(graph, GraphView):
        leader = graph.node_of(leader)
    return leader, result


class _BroadcastProgram(NodeProgram):
    """Flood a single value from one source to every node (leader announcement).

    Like :class:`_BfsProgram`, uninformed nodes halt and are woken by the
    flood's messages, so the per-round active set is the flood frontier.
    """

    def __init__(self, context: NodeContext, source: Hashable, value: object) -> None:
        super().__init__(context)
        self.source = source
        self.value: object = value if context.node == source else None
        self.informed = context.node == source

    def on_start(self) -> dict[Hashable, object]:
        if self.informed:
            return {neighbour: ("bc", self.value) for neighbour in self.context.neighbours}
        self.halted = True  # sleep until the flood's message wakes us
        return {}

    def on_round(self, round_number: int, inbox: dict[Hashable, object]) -> dict[Hashable, object]:
        self.halted = True
        if self.informed:
            return {}
        offers = [message[1] for message in inbox.values() if message[0] == "bc"]
        if not offers:
            return {}
        self.value = offers[0]
        self.informed = True
        senders = {sender for sender, message in inbox.items() if message[0] == "bc"}
        return {
            neighbour: ("bc", self.value)
            for neighbour in self.context.neighbours
            if neighbour not in senders
        }

    def result(self) -> object:
        return self.value


def broadcast_value(
    graph: nx.Graph | GraphView,
    source: Hashable,
    value: object,
    simulator_cls: type[CongestSimulator] = CongestSimulator,
) -> SimulationResult:
    """Broadcast ``value`` from ``source`` to every node; return the run stats.

    Used by the scenario engine to charge the ``O(D)`` result-announcement
    phase of the distributed algorithms as a genuine simulated execution.
    The returned outputs map every node to the received value, which the
    callers assert for correctness.  ``source`` is a label; in core mode it
    is converted to an index at the boundary.
    """
    program_source = (
        graph.index_of(source) if isinstance(graph, GraphView) else source
    )
    simulator = simulator_cls(
        graph, lambda ctx: _BroadcastProgram(ctx, program_source, value)
    )
    result = simulator.run()
    wrong = [node for node, output in result.outputs.items() if output != value]
    if wrong:
        raise RuntimeError(f"broadcast did not reach nodes {wrong[:5]}")
    return result
