"""Basic distributed primitives implemented as genuine CONGEST node programs.

These are the building blocks whose round complexities are textbook facts
(BFS tree construction, flooding and broadcast each take ``O(D)`` rounds)
and which the higher-level algorithms charge as overhead: Boruvka's merge
coordination, for example, costs one broadcast over the BFS tree per phase.
Running them through the real simulator keeps the model honest -- the tests
check both their outputs and their ``O(D)`` round counts.

Every primitive accepts a ``simulator_cls`` so that callers (the scenario
engine, the differential tests, the speedup benchmark) can run the same
node programs under the active-set :class:`CongestSimulator` or the
full-scan :class:`repro.congest.reference.ReferenceSimulator`.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from ..structure.spanning import RootedTree
from .node import NodeContext, NodeProgram
from .simulator import CongestSimulator, SimulationResult


class _BfsProgram(NodeProgram):
    """Flood a BFS token from the root; every node records its parent."""

    def __init__(self, context: NodeContext, root: Hashable) -> None:
        super().__init__(context)
        self.root = root
        self.parent: Hashable | None = None
        self.joined = context.node == root
        self.to_notify: list[Hashable] = list(context.neighbours) if self.joined else []

    def on_start(self) -> dict[Hashable, object]:
        if self.joined:
            return {neighbour: ("bfs", 0) for neighbour in self.context.neighbours}
        return {}

    def on_round(self, round_number: int, inbox: dict[Hashable, object]) -> dict[Hashable, object]:
        if self.joined:
            self.halted = True
            return {}
        offers = [(message[1], sender) for sender, message in inbox.items() if message[0] == "bfs"]
        if not offers:
            return {}
        depth, sender = min(offers, key=lambda item: (item[0], repr(item[1])))
        self.parent = sender
        self.joined = True
        self.halted = True
        return {
            neighbour: ("bfs", depth + 1)
            for neighbour in self.context.neighbours
            if neighbour != sender
        }

    def result(self) -> object:
        return self.parent


def distributed_bfs_tree(
    graph: nx.Graph,
    root: Hashable,
    simulator_cls: type[CongestSimulator] = CongestSimulator,
) -> tuple[RootedTree, SimulationResult]:
    """Build a BFS tree with a genuine flooding execution; return tree + stats.

    The round count of the returned :class:`SimulationResult` is ``O(D)``,
    which the tests assert; the resulting tree is used as the spanning tree
    ``T`` of the shortcut framework exactly as Theorem 1 prescribes.
    """
    simulator = simulator_cls(graph, lambda ctx: _BfsProgram(ctx, root))
    result = simulator.run()
    parent = {node: output for node, output in result.outputs.items()}
    parent[root] = None
    tree = RootedTree(parent, root)
    tree.validate(graph)
    return tree, result


class _FloodMaxProgram(NodeProgram):
    """Every node learns the maximum node identifier (leader election by flooding)."""

    def __init__(self, context: NodeContext) -> None:
        super().__init__(context)
        self.best = context.node
        self.rounds_quiet = 0

    def on_start(self) -> dict[Hashable, object]:
        return {neighbour: self.best for neighbour in self.context.neighbours}

    def on_round(self, round_number: int, inbox: dict[Hashable, object]) -> dict[Hashable, object]:
        improved = False
        for message in inbox.values():
            if repr(message) > repr(self.best):
                self.best = message
                improved = True
        if improved:
            return {neighbour: self.best for neighbour in self.context.neighbours}
        # A node halts once it has been quiet for one round past the diameter
        # bound; the simulator also terminates on global quiescence.
        self.halted = True
        return {}

    def result(self) -> object:
        return self.best


def flood_max_id(
    graph: nx.Graph,
    simulator_cls: type[CongestSimulator] = CongestSimulator,
) -> tuple[Hashable, SimulationResult]:
    """Elect the maximum-id node as the leader by flooding; return (leader, stats)."""
    simulator = simulator_cls(graph, _FloodMaxProgram)
    result = simulator.run()
    leaders = set(result.outputs.values())
    if len(leaders) != 1:
        raise RuntimeError(f"leader election did not converge: {leaders}")
    return next(iter(leaders)), result


class _BroadcastProgram(NodeProgram):
    """Flood a single value from one source to every node (leader announcement)."""

    def __init__(self, context: NodeContext, source: Hashable, value: object) -> None:
        super().__init__(context)
        self.source = source
        self.value: object = value if context.node == source else None
        self.informed = context.node == source

    def on_start(self) -> dict[Hashable, object]:
        if self.informed:
            return {neighbour: ("bc", self.value) for neighbour in self.context.neighbours}
        return {}

    def on_round(self, round_number: int, inbox: dict[Hashable, object]) -> dict[Hashable, object]:
        if self.informed:
            self.halted = True
            return {}
        offers = [message[1] for message in inbox.values() if message[0] == "bc"]
        if not offers:
            return {}
        self.value = offers[0]
        self.informed = True
        self.halted = True
        senders = {sender for sender, message in inbox.items() if message[0] == "bc"}
        return {
            neighbour: ("bc", self.value)
            for neighbour in self.context.neighbours
            if neighbour not in senders
        }

    def result(self) -> object:
        return self.value


def broadcast_value(
    graph: nx.Graph,
    source: Hashable,
    value: object,
    simulator_cls: type[CongestSimulator] = CongestSimulator,
) -> SimulationResult:
    """Broadcast ``value`` from ``source`` to every node; return the run stats.

    Used by the scenario engine to charge the ``O(D)`` result-announcement
    phase of the distributed algorithms as a genuine simulated execution.
    The returned outputs map every node to the received value, which the
    callers assert for correctness.
    """
    simulator = simulator_cls(graph, lambda ctx: _BroadcastProgram(ctx, source, value))
    result = simulator.run()
    wrong = [node for node, output in result.outputs.items() if output != value]
    if wrong:
        raise RuntimeError(f"broadcast did not reach nodes {wrong[:5]}")
    return result
