"""Basic distributed primitives implemented as genuine CONGEST node programs.

These are the building blocks whose round complexities are textbook facts
(BFS tree construction, flooding and broadcast each take ``O(D)`` rounds)
and which the higher-level algorithms charge as overhead: Boruvka's merge
coordination, for example, costs one broadcast over the BFS tree per phase.
Running them through the real simulator keeps the model honest -- the tests
check both their outputs and their ``O(D)`` round counts.

Every primitive accepts a ``simulator_cls`` so that callers (the scenario
engine, the differential tests, the speedup benchmarks) can run the same
node programs under any of the three execution modes -- the active-set
:class:`CongestSimulator`, the full-scan
:class:`repro.congest.reference.ReferenceSimulator`, or the vectorized
:class:`repro.congest.runtime.RuntimeSimulator` -- and a ``graph`` that is
either an ``nx.Graph`` or a :class:`repro.core.GraphView`.  Given a view
the simulation runs in core mode (integer node ids over CSR slices); the
primitives translate the caller-facing labels at the boundary (the root
argument in, parent pointers and leaders out), so results are
label-identical either way.

Each primitive's program factory is a small class that builds the per-node
:class:`NodeProgram` when called with a context *and* carries the
``compile_runtime`` hook the runtime mode asks for -- the hook returns the
program family's batch twin from :mod:`repro.congest.runtime`.  The
per-node class stays the semantic definition; the compiled twin must
reproduce it exactly (see ``docs/simulator.md`` for the contract).
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping

import networkx as nx

from ..core import GraphView
from ..errors import InvalidGraphError, SimulationError
from ..structure.spanning import RootedTree
from .node import NodeContext, NodeProgram
from .runtime import (
    BfsRuntime,
    BroadcastRuntime,
    ConvergecastRuntime,
    FloodMaxRuntime,
    RuntimeProgram,
)
from .simulator import CongestSimulator, SimulationResult


class _BfsProgram(NodeProgram):
    """Flood a BFS token from the root; every node records its parent.

    Nodes waiting for the wavefront *halt* instead of idling: a halted node
    with mail is woken by the simulator, so the active set each round is the
    genuine BFS frontier (plus its recipients), not every unjoined node.
    The message pattern -- and therefore rounds, messages and words -- is
    unchanged; only the executed-node telemetry tightens.
    """

    def __init__(self, context: NodeContext, root: Hashable) -> None:
        super().__init__(context)
        self.root = root
        self.parent: Hashable | None = None
        self.joined = context.node == root

    def on_start(self) -> dict[Hashable, object]:
        if self.joined:
            return {neighbour: ("bfs", 0) for neighbour in self.context.neighbours}
        self.halted = True  # sleep until the wavefront's message wakes us
        return {}

    def on_round(self, round_number: int, inbox: dict[Hashable, object]) -> dict[Hashable, object]:
        self.halted = True
        if self.joined:
            return {}
        offers = [(message[1], sender) for sender, message in inbox.items() if message[0] == "bfs"]
        if not offers:
            return {}
        id_key = self.context.id_key
        depth, sender = min(offers, key=lambda item: (item[0], id_key(item[1])))
        self.parent = sender
        self.joined = True
        return {
            neighbour: ("bfs", depth + 1)
            for neighbour in self.context.neighbours
            if neighbour != sender
        }

    def result(self) -> object:
        return self.parent


class _BfsFactory:
    """Factory for :class:`_BfsProgram` with its vectorized twin.

    ``root`` is already in program id space (an index in core/runtime mode,
    a label otherwise) -- :func:`distributed_bfs_tree` converts at the
    boundary.
    """

    __slots__ = ("root",)

    def __init__(self, root: Hashable) -> None:
        self.root = root

    def __call__(self, context: NodeContext) -> NodeProgram:
        return _BfsProgram(context, self.root)

    def compile_runtime(self, simulator: CongestSimulator) -> RuntimeProgram:
        return BfsRuntime(simulator._view, simulator.bandwidth_words, self.root)


def distributed_bfs_tree(
    graph: nx.Graph | GraphView,
    root: Hashable,
    simulator_cls: type[CongestSimulator] = CongestSimulator,
) -> tuple[RootedTree, SimulationResult]:
    """Build a BFS tree with a genuine flooding execution; return tree + stats.

    The round count of the returned :class:`SimulationResult` is ``O(D)``,
    which the tests assert; the resulting tree is used as the spanning tree
    ``T`` of the shortcut framework exactly as Theorem 1 prescribes.

    ``root`` is always a node *label*; in core mode the primitive converts it
    to an index on the way in and maps the parent pointers back to labels on
    the way out, so the returned tree is label-keyed either way.  Runs under
    all three simulator modes (``simulator_cls``); the runtime mode requires
    ``graph`` to be a :class:`~repro.core.GraphView`.
    """
    view = graph if isinstance(graph, GraphView) else None
    program_root = root if view is None else view.index_of(root)
    simulator = simulator_cls(graph, _BfsFactory(program_root))
    result = simulator.run()
    if view is None:
        parent = {node: output for node, output in result.outputs.items()}
    else:
        node_of = view.nodes
        parent = {
            node: (None if output is None else node_of[output])
            for node, output in result.outputs.items()
        }
    parent[root] = None
    tree = RootedTree(parent, root)
    tree.validate(view.graph if view is not None else graph)
    return tree, result


class _FloodMaxProgram(NodeProgram):
    """Every node learns the maximum node identifier (leader election by flooding)."""

    def __init__(self, context: NodeContext) -> None:
        super().__init__(context)
        self.best = context.node
        self.rounds_quiet = 0

    def on_start(self) -> dict[Hashable, object]:
        return {neighbour: self.best for neighbour in self.context.neighbours}

    def on_round(self, round_number: int, inbox: dict[Hashable, object]) -> dict[Hashable, object]:
        improved = False
        id_key = self.context.id_key
        for message in inbox.values():
            if id_key(message) > id_key(self.best):
                self.best = message
                improved = True
        if improved:
            return {neighbour: self.best for neighbour in self.context.neighbours}
        # A node halts once it has been quiet for one round past the diameter
        # bound; the simulator also terminates on global quiescence.
        self.halted = True
        return {}

    def result(self) -> object:
        return self.best


class _FloodMaxFactory:
    """Factory for :class:`_FloodMaxProgram` with its vectorized twin."""

    __slots__ = ()

    def __call__(self, context: NodeContext) -> NodeProgram:
        return _FloodMaxProgram(context)

    def compile_runtime(self, simulator: CongestSimulator) -> RuntimeProgram:
        return FloodMaxRuntime(simulator._view, simulator.bandwidth_words)


def flood_max_id(
    graph: nx.Graph | GraphView,
    simulator_cls: type[CongestSimulator] = CongestSimulator,
) -> tuple[Hashable, SimulationResult]:
    """Elect the maximum-id node as the leader by flooding; return (leader, stats).

    In core mode the elected maximum *index* is the maximum-repr label (index
    order is repr order), returned in label form.  Runs under all three
    simulator modes; the runtime mode requires a view.
    """
    simulator = simulator_cls(graph, _FloodMaxFactory())
    result = simulator.run()
    leaders = set(result.outputs.values())
    if len(leaders) != 1:
        raise RuntimeError(f"leader election did not converge: {leaders}")
    leader = next(iter(leaders))
    if isinstance(graph, GraphView):
        leader = graph.node_of(leader)
    return leader, result


class _BroadcastProgram(NodeProgram):
    """Flood a single value from one source to every node (leader announcement).

    Like :class:`_BfsProgram`, uninformed nodes halt and are woken by the
    flood's messages, so the per-round active set is the flood frontier.
    """

    def __init__(self, context: NodeContext, source: Hashable, value: object) -> None:
        super().__init__(context)
        self.source = source
        self.value: object = value if context.node == source else None
        self.informed = context.node == source

    def on_start(self) -> dict[Hashable, object]:
        if self.informed:
            return {neighbour: ("bc", self.value) for neighbour in self.context.neighbours}
        self.halted = True  # sleep until the flood's message wakes us
        return {}

    def on_round(self, round_number: int, inbox: dict[Hashable, object]) -> dict[Hashable, object]:
        self.halted = True
        if self.informed:
            return {}
        offers = [message[1] for message in inbox.values() if message[0] == "bc"]
        if not offers:
            return {}
        self.value = offers[0]
        self.informed = True
        senders = {sender for sender, message in inbox.items() if message[0] == "bc"}
        return {
            neighbour: ("bc", self.value)
            for neighbour in self.context.neighbours
            if neighbour not in senders
        }

    def result(self) -> object:
        return self.value


class _BroadcastFactory:
    """Factory for :class:`_BroadcastProgram` with its vectorized twin.

    ``source`` is in program id space, like :class:`_BfsFactory`'s root.
    """

    __slots__ = ("source", "value")

    def __init__(self, source: Hashable, value: object) -> None:
        self.source = source
        self.value = value

    def __call__(self, context: NodeContext) -> NodeProgram:
        return _BroadcastProgram(context, self.source, self.value)

    def compile_runtime(self, simulator: CongestSimulator) -> RuntimeProgram:
        return BroadcastRuntime(
            simulator._view, simulator.bandwidth_words, self.source, self.value
        )


def broadcast_value(
    graph: nx.Graph | GraphView,
    source: Hashable,
    value: object,
    simulator_cls: type[CongestSimulator] = CongestSimulator,
) -> SimulationResult:
    """Broadcast ``value`` from ``source`` to every node; return the run stats.

    Used by the scenario engine to charge the ``O(D)`` result-announcement
    phase of the distributed algorithms as a genuine simulated execution.
    The returned outputs map every node to the received value, which the
    callers assert for correctness.  ``source`` is a label; in core mode it
    is converted to an index at the boundary.  Runs under all three
    simulator modes; the runtime mode requires a view.
    """
    program_source = (
        graph.index_of(source) if isinstance(graph, GraphView) else source
    )
    simulator = simulator_cls(graph, _BroadcastFactory(program_source, value))
    result = simulator.run()
    wrong = [node for node, output in result.outputs.items() if output != value]
    if wrong:
        raise RuntimeError(f"broadcast did not reach nodes {wrong[:5]}")
    return result


class _ConvergecastProgram(NodeProgram):
    """Aggregate values up a rooted spanning tree (tree convergecast).

    The upward half of the classic broadcast-and-echo: every node knows its
    tree parent and its number of children (state left behind by the BFS
    build phase, as in Boruvka's merge coordination); leaves report
    ``("cc", value)`` immediately, an internal node folds each child report
    into its accumulator -- in ascending child-id order, so non-commutative
    ``combine``s are deterministic -- and reports upward the round its last
    child arrives.  All waiting is mail-driven (nodes halt, the simulator
    wakes them on delivery), so the active set per round is exactly the set
    of nodes receiving reports.
    """

    def __init__(
        self,
        context: NodeContext,
        parent: Hashable | None,
        num_children: int,
        value: object,
        combine: Callable[[object, object], object],
    ) -> None:
        super().__init__(context)
        self.parent = parent
        self.remaining = num_children
        self.acc = value
        self.combine = combine
        self.aggregate: object | None = None

    def on_start(self) -> dict[Hashable, object]:
        self.halted = True  # all waiting is mail-driven
        if self.remaining:
            return {}
        if self.parent is None:  # single-node tree: the root is a leaf
            self.aggregate = self.acc
            return {}
        return {self.parent: ("cc", self.acc)}

    def on_round(self, round_number: int, inbox: dict[Hashable, object]) -> dict[Hashable, object]:
        self.halted = True
        id_key = self.context.id_key
        for sender in sorted(inbox, key=id_key):
            self.acc = self.combine(self.acc, inbox[sender][1])
            self.remaining -= 1
        if self.remaining:
            return {}
        if self.parent is None:
            self.aggregate = self.acc
            return {}
        return {self.parent: ("cc", self.acc)}

    def result(self) -> object:
        return self.aggregate


class _ConvergecastFactory:
    """Factory for :class:`_ConvergecastProgram` with its vectorized twin.

    ``parent`` / ``num_children`` / ``values`` are keyed by program id
    (indices in core/runtime mode, labels otherwise);
    :func:`convergecast_aggregate` converts at the boundary.
    """

    __slots__ = ("parent", "num_children", "values", "combine")

    def __init__(
        self,
        parent: Mapping[Hashable, Hashable | None],
        num_children: Mapping[Hashable, int],
        values: Mapping[Hashable, object],
        combine: Callable[[object, object], object],
    ) -> None:
        self.parent = parent
        self.num_children = num_children
        self.values = values
        self.combine = combine

    def __call__(self, context: NodeContext) -> NodeProgram:
        node = context.node
        return _ConvergecastProgram(
            context,
            self.parent[node],
            self.num_children[node],
            self.values[node],
            self.combine,
        )

    def compile_runtime(self, simulator: CongestSimulator) -> RuntimeProgram:
        view = simulator._view
        n = len(view.nodes)
        parent = [-1] * n
        values = [None] * n
        for node, up in self.parent.items():
            parent[node] = -1 if up is None else up
            values[node] = self.values[node]
        return ConvergecastRuntime(
            view, simulator.bandwidth_words, parent, values, self.combine
        )


def convergecast_aggregate(
    graph: nx.Graph | GraphView,
    tree: RootedTree,
    values: Mapping[Hashable, object],
    combine: Callable[[object, object], object] = min,
    simulator_cls: type[CongestSimulator] = CongestSimulator,
) -> tuple[object, SimulationResult]:
    """Aggregate ``values`` up ``tree`` to its root; return (aggregate, stats).

    The convergecast half of the aggregation primitive the shortcut
    framework accelerates (Theorem 1), run as a genuine node-program
    execution over the network: the root learns
    ``combine(values...)`` after ``O(tree height)`` rounds with exactly one
    message per tree edge.  ``tree`` must span ``graph`` (its edges are
    network edges, so the simulator's topology enforcement applies) and
    ``values`` must cover every node; ``combine`` must be associative but
    may be non-commutative/non-exact (folding order is pinned to ascending
    child id, identically in all three simulator modes).
    """
    view = graph if isinstance(graph, GraphView) else None
    num_nodes = len(view) if view is not None else graph.number_of_nodes()
    if len(tree.parent) != num_nodes:
        raise InvalidGraphError("convergecast needs a spanning tree of the network")
    missing = [node for node in tree.parent if node not in values]
    if missing:
        raise SimulationError(f"no input value for vertex {missing[0]}")
    if view is None:
        parent = dict(tree.parent)
        num_children = {node: len(tree.children[node]) for node in tree.parent}
        node_values = {node: values[node] for node in tree.parent}
    else:
        index_of = view.index_of
        parent = {}
        num_children = {}
        node_values = {}
        for node, up in tree.parent.items():
            index = index_of(node)
            parent[index] = None if up is None else index_of(up)
            num_children[index] = len(tree.children[node])
            node_values[index] = values[node]
    factory = _ConvergecastFactory(parent, num_children, node_values, combine)
    simulator = simulator_cls(graph, factory)
    result = simulator.run()
    aggregate = result.outputs[tree.root]
    return aggregate, result
