"""Basic distributed primitives implemented as genuine CONGEST node programs.

These are the building blocks whose round complexities are textbook facts
(BFS tree construction, flooding and broadcast each take ``O(D)`` rounds)
and which the higher-level algorithms charge as overhead: Boruvka's merge
coordination, for example, costs one broadcast over the BFS tree per phase.
Running them through the real simulator keeps the model honest -- the tests
check both their outputs and their ``O(D)`` round counts.

Every primitive accepts a ``simulator_cls`` so that callers (the scenario
engine, the differential tests, the speedup benchmarks) can run the same
node programs under any of the three execution modes -- the active-set
:class:`CongestSimulator`, the full-scan
:class:`repro.congest.reference.ReferenceSimulator`, or the vectorized
:class:`repro.congest.runtime.RuntimeSimulator` -- and a ``graph`` that is
either an ``nx.Graph`` or a :class:`repro.core.GraphView`.  Given a view
the simulation runs in core mode (integer node ids over CSR slices); the
primitives translate the caller-facing labels at the boundary (the root
argument in, parent pointers and leaders out), so results are
label-identical either way.

Each primitive's program factory is a small class that builds the per-node
:class:`NodeProgram` when called with a context *and* carries the
``compile_runtime`` hook the runtime mode asks for -- the hook returns the
program family's batch twin from :mod:`repro.congest.runtime`.  The
per-node class stays the semantic definition; the compiled twin must
reproduce it exactly (see ``docs/simulator.md`` for the contract).
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping

import networkx as nx

from ..core import GraphView
from ..errors import InvalidGraphError, SimulationError
from ..structure.spanning import RootedTree
from .faults import FaultModel, FaultSchedule
from .node import NodeContext, NodeProgram
from .runtime import (
    BfsRuntime,
    BroadcastRuntime,
    ConvergecastRuntime,
    FloodMaxRuntime,
    RuntimeProgram,
)
from .simulator import CongestSimulator, SimulationResult


class _BfsProgram(NodeProgram):
    """Flood a BFS token from the root; every node records its parent.

    Nodes waiting for the wavefront *halt* instead of idling: a halted node
    with mail is woken by the simulator, so the active set each round is the
    genuine BFS frontier (plus its recipients), not every unjoined node.
    The message pattern -- and therefore rounds, messages and words -- is
    unchanged; only the executed-node telemetry tightens.
    """

    def __init__(self, context: NodeContext, root: Hashable) -> None:
        super().__init__(context)
        self.root = root
        self.parent: Hashable | None = None
        self.joined = context.node == root

    def on_start(self) -> dict[Hashable, object]:
        if self.joined:
            return {neighbour: ("bfs", 0) for neighbour in self.context.neighbours}
        self.halted = True  # sleep until the wavefront's message wakes us
        return {}

    def on_round(self, round_number: int, inbox: dict[Hashable, object]) -> dict[Hashable, object]:
        self.halted = True
        if self.joined:
            return {}
        offers = [(message[1], sender) for sender, message in inbox.items() if message[0] == "bfs"]
        if not offers:
            return {}
        id_key = self.context.id_key
        depth, sender = min(offers, key=lambda item: (item[0], id_key(item[1])))
        self.parent = sender
        self.joined = True
        return {
            neighbour: ("bfs", depth + 1)
            for neighbour in self.context.neighbours
            if neighbour != sender
        }

    def result(self) -> object:
        return self.parent


class _BfsFactory:
    """Factory for :class:`_BfsProgram` with its vectorized twin.

    ``root`` is already in program id space (an index in core/runtime mode,
    a label otherwise) -- :func:`distributed_bfs_tree` converts at the
    boundary.
    """

    __slots__ = ("root",)

    def __init__(self, root: Hashable) -> None:
        self.root = root

    def __call__(self, context: NodeContext) -> NodeProgram:
        return _BfsProgram(context, self.root)

    def compile_runtime(self, simulator: CongestSimulator) -> RuntimeProgram:
        return BfsRuntime(simulator._view, simulator.bandwidth_words, self.root)


def _resolve_schedule(
    fault_schedule: FaultSchedule | FaultModel | None,
) -> FaultSchedule | None:
    """Normalise the primitives' ``fault_schedule`` argument.

    Accepts a schedule, a bare model (wrapped with seed 0) or None, and
    returns an *active* schedule or None -- null models come back as None,
    so a rate-0 fault spec takes the unchanged fail-free code path (plain
    programs, no ack traffic) and reproduces fail-free results exactly.
    """
    if fault_schedule is None:
        return None
    if not isinstance(fault_schedule, FaultSchedule):
        fault_schedule = FaultSchedule(fault_schedule)
    return fault_schedule if fault_schedule.active else None


def distributed_bfs_tree(
    graph: nx.Graph | GraphView,
    root: Hashable,
    simulator_cls: type[CongestSimulator] = CongestSimulator,
    fault_schedule: FaultSchedule | FaultModel | None = None,
    retry_budget: int = 5,
) -> tuple[RootedTree, SimulationResult]:
    """Build a BFS tree with a genuine flooding execution; return tree + stats.

    The round count of the returned :class:`SimulationResult` is ``O(D)``,
    which the tests assert; the resulting tree is used as the spanning tree
    ``T`` of the shortcut framework exactly as Theorem 1 prescribes.

    ``root`` is always a node *label*; in core mode the primitive converts it
    to an index on the way in and maps the parent pointers back to labels on
    the way out, so the returned tree is label-keyed either way.  Runs under
    all three simulator modes (``simulator_cls``); the runtime mode requires
    ``graph`` to be a :class:`~repro.core.GraphView`.

    With an active ``fault_schedule`` the robust retry/ack flood runs
    instead and the returned tree is centrally repaired where the fault
    layer disconnected it -- see :func:`robust_bfs_tree`, which also
    reports the repair count.
    """
    schedule = _resolve_schedule(fault_schedule)
    if schedule is not None:
        tree, result, _ = robust_bfs_tree(
            graph, root, schedule, simulator_cls=simulator_cls, retry_budget=retry_budget
        )
        return tree, result
    view = graph if isinstance(graph, GraphView) else None
    program_root = root if view is None else view.index_of(root)
    simulator = simulator_cls(graph, _BfsFactory(program_root))
    result = simulator.run()
    if view is None:
        parent = {node: output for node, output in result.outputs.items()}
    else:
        node_of = view.nodes
        parent = {
            node: (None if output is None else node_of[output])
            for node, output in result.outputs.items()
        }
    parent[root] = None
    tree = RootedTree(parent, root)
    tree.validate(view if view is not None else graph)
    return tree, result


class _RobustBfsProgram(NodeProgram):
    """BFS flood with bounded retry and acknowledgement (fault-tolerant).

    Under message loss a single ``("bfs", depth)`` offer can vanish, so a
    joined node keeps a ``pending`` map of neighbours it has not yet heard
    from and re-offers every round until an acknowledgement arrives or a
    per-neighbour send budget expires (give-up, bounded termination).
    Acknowledgements are mostly *implicit*: receiving ``("bfs", _)`` from a
    neighbour proves that neighbour has joined, which is all the sender
    wanted to know.  Explicit ``("ok",)`` replies cover the remaining case
    (a node offered to someone who was already joined and therefore will
    never offer back).  The join rule is the plain program's -- minimum
    ``(depth, id)`` over the round's offers -- so fault-free prefixes of
    the execution pick the same parents.
    """

    def __init__(self, context: NodeContext, root: Hashable, retry_budget: int) -> None:
        super().__init__(context)
        self.root = root
        self.retry_budget = retry_budget
        self.parent: Hashable | None = None
        self.joined = context.node == root
        self.depth = 0 if self.joined else None
        self.pending: dict[Hashable, int] = {}

    def on_start(self) -> dict[Hashable, object]:
        if self.joined:
            self.pending = {
                neighbour: self.retry_budget for neighbour in self.context.neighbours
            }
            self.halted = not self.pending
            return {neighbour: ("bfs", 0) for neighbour in self.context.neighbours}
        self.halted = True  # sleep until an offer (or retry) wakes us
        return {}

    def on_round(self, round_number: int, inbox: dict[Hashable, object]) -> dict[Hashable, object]:
        pending = self.pending
        offers = []
        for sender, message in inbox.items():
            if message[0] == "ok":
                pending.pop(sender, None)
            else:  # ("bfs", depth): an offer, and implicit proof sender joined
                pending.pop(sender, None)
                offers.append((message[1], sender))
        out: dict[Hashable, object] = {}
        if not self.joined and offers:
            id_key = self.context.id_key
            depth, parent = min(offers, key=lambda item: (item[0], id_key(item[1])))
            self.parent = parent
            self.joined = True
            self.depth = depth + 1
            offer_senders = {sender for _, sender in offers}
            self.pending = pending = {
                neighbour: self.retry_budget + 1
                for neighbour in self.context.neighbours
                if neighbour != parent and neighbour not in offer_senders
            }
        if self.joined:
            payload = ("bfs", self.depth)
            for neighbour in list(pending):
                out[neighbour] = payload
                remaining = pending[neighbour] - 1
                if remaining <= 0:
                    del pending[neighbour]  # budget exhausted: give up
                else:
                    pending[neighbour] = remaining
            # Explicitly ack offers we will not answer with an offer of our
            # own (the sender is waiting for proof we joined).
            for _, sender in offers:
                if sender not in out:
                    out[sender] = ("ok",)
        self.halted = (not pending) if self.joined else True
        return out

    def result(self) -> object:
        return self.parent


class _RobustBfsFactory:
    """Factory for :class:`_RobustBfsProgram` (fault schedules only).

    No ``compile_runtime`` hook: under an active schedule the runtime mode
    runs the batched :class:`~repro.congest.runtime.FaultRuntime`
    interpreter, which executes genuine node programs and needs no twin.
    """

    __slots__ = ("root", "retry_budget")

    def __init__(self, root: Hashable, retry_budget: int) -> None:
        self.root = root
        self.retry_budget = retry_budget

    def __call__(self, context: NodeContext) -> NodeProgram:
        return _RobustBfsProgram(context, self.root, self.retry_budget)


def _graft_unreached(
    nodes: list[Hashable],
    parent: dict[Hashable, Hashable | None],
    root: Hashable,
    neighbours_of: Callable[[Hashable], list[Hashable]],
) -> int:
    """Deterministically repair a partial BFS parent map in place.

    ``parent`` may be missing nodes (crashed, or never reached before every
    offerer's budget expired) and surviving pointers may dangle into such
    holes.  The repair keeps every pointer whose chain provably reaches the
    root and repeatedly attaches, in canonical node order, each remaining
    node to its first (minimum canonical) neighbour with a proven chain --
    the tree a recovery protocol would rebuild from the survivors.  Returns
    the number of reassigned/added parent pointers; terminates on every
    connected graph.
    """
    children: dict[Hashable, list[Hashable]] = {}
    for node, up in parent.items():
        if up is not None:
            children.setdefault(up, []).append(node)
    safe = {root}
    stack = [root]
    while stack:
        for child in children.get(stack.pop(), ()):
            if child not in safe:
                safe.add(child)
                stack.append(child)
    repaired = 0
    unsafe = [node for node in nodes if node not in safe]
    while unsafe:
        progress = False
        still = []
        for node in unsafe:
            up = parent.get(node)
            if up is not None and up in safe:
                safe.add(node)  # dangling chain reattached upstream of us
                progress = True
                continue
            anchors = [nb for nb in neighbours_of(node) if nb in safe]
            if anchors:
                parent[node] = anchors[0]
                safe.add(node)
                repaired += 1
                progress = True
            else:
                still.append(node)
        unsafe = still
        if unsafe and not progress:  # unreachable: the network is connected
            raise SimulationError("partial BFS tree could not be repaired")
    return repaired


def robust_bfs_tree(
    graph: nx.Graph | GraphView,
    root: Hashable,
    fault_schedule: FaultSchedule | FaultModel | None,
    simulator_cls: type[CongestSimulator] = CongestSimulator,
    retry_budget: int = 5,
) -> tuple[RootedTree, SimulationResult, int]:
    """BFS tree under faults; return ``(tree, stats, repaired_edges)``.

    Runs the retry/ack flood of :class:`_RobustBfsProgram` through the
    fault layer, then centrally repairs the partial parent map (crashed
    nodes and nodes every offer to which was lost) with
    :func:`_graft_unreached`.  The returned tree always spans the network
    and validates -- even when the root itself crashed, in which case
    *every* edge is a repair and the simulation result's outputs are empty
    of the root (the documented partial-output contract).  ``repaired``
    counts the grafted parent pointers (0 = the flood survived intact).
    A null/None schedule falls back to the fail-free primitive with
    ``repaired = 0``.
    """
    schedule = _resolve_schedule(fault_schedule)
    if schedule is None:
        tree, result = distributed_bfs_tree(graph, root, simulator_cls=simulator_cls)
        return tree, result, 0
    view = graph if isinstance(graph, GraphView) else None
    program_root = root if view is None else view.index_of(root)
    factory = _RobustBfsFactory(program_root, retry_budget)
    simulator = simulator_cls(graph, factory, fault_schedule=schedule)
    result = simulator.run()
    if view is None:
        parent = dict(result.outputs)
        nodes = sorted(graph.nodes(), key=repr)

        def neighbours_of(node):
            return sorted(graph.neighbors(node), key=repr)

    else:
        node_of = view.nodes
        core = view.core
        index_of = view.index_of
        parent = {
            node: (None if output is None else node_of[output])
            for node, output in result.outputs.items()
        }
        nodes = list(node_of)  # index order == repr order: canonical

        def neighbours_of(node):
            return [node_of[index] for index in core.neighbors(index_of(node))]

    parent[root] = None
    repaired = _graft_unreached(nodes, parent, root, neighbours_of)
    tree = RootedTree(parent, root)
    tree.validate(view if view is not None else graph)
    return tree, result, repaired


class _FloodMaxProgram(NodeProgram):
    """Every node learns the maximum node identifier (leader election by flooding)."""

    def __init__(self, context: NodeContext) -> None:
        super().__init__(context)
        self.best = context.node
        self.rounds_quiet = 0

    def on_start(self) -> dict[Hashable, object]:
        return {neighbour: self.best for neighbour in self.context.neighbours}

    def on_round(self, round_number: int, inbox: dict[Hashable, object]) -> dict[Hashable, object]:
        improved = False
        id_key = self.context.id_key
        for message in inbox.values():
            if id_key(message) > id_key(self.best):
                self.best = message
                improved = True
        if improved:
            return {neighbour: self.best for neighbour in self.context.neighbours}
        # A node halts once it has been quiet for one round past the diameter
        # bound; the simulator also terminates on global quiescence.
        self.halted = True
        return {}

    def result(self) -> object:
        return self.best


class _FloodMaxFactory:
    """Factory for :class:`_FloodMaxProgram` with its vectorized twin."""

    __slots__ = ()

    def __call__(self, context: NodeContext) -> NodeProgram:
        return _FloodMaxProgram(context)

    def compile_runtime(self, simulator: CongestSimulator) -> RuntimeProgram:
        return FloodMaxRuntime(simulator._view, simulator.bandwidth_words)


def flood_max_id(
    graph: nx.Graph | GraphView,
    simulator_cls: type[CongestSimulator] = CongestSimulator,
    fault_schedule: FaultSchedule | FaultModel | None = None,
) -> tuple[Hashable, SimulationResult]:
    """Elect the maximum-id node as the leader by flooding; return (leader, stats).

    In core mode the elected maximum *index* is the maximum-repr label (index
    order is repr order), returned in label form.  Runs under all three
    simulator modes; the runtime mode requires a view.

    Under an active ``fault_schedule`` the plain flood runs through the
    fault layer unchanged (it cannot hang: a node halts on its first quiet
    round) but nodes cut off by losses or crashes may disagree; the
    documented partial contract returns the maximum *claimed* leader among
    the survivors instead of raising.
    """
    schedule = _resolve_schedule(fault_schedule)
    simulator = simulator_cls(graph, _FloodMaxFactory(), fault_schedule=schedule)
    result = simulator.run()
    leaders = set(result.outputs.values())
    if len(leaders) == 1:
        leader = next(iter(leaders))
    elif schedule is None:
        raise RuntimeError(f"leader election did not converge: {leaders}")
    elif leaders:
        # Survivors disagree: report the strongest claim (program id order).
        key = _program_id_key if isinstance(graph, GraphView) else repr
        leader = max(leaders, key=key)
    else:
        return None, result  # every node crashed: nobody was elected
    if isinstance(graph, GraphView):
        leader = graph.node_of(leader)
    return leader, result


def _program_id_key(value: object) -> object:
    """Core-mode program ids (ints) compare natively."""
    return value


class _BroadcastProgram(NodeProgram):
    """Flood a single value from one source to every node (leader announcement).

    Like :class:`_BfsProgram`, uninformed nodes halt and are woken by the
    flood's messages, so the per-round active set is the flood frontier.
    """

    def __init__(self, context: NodeContext, source: Hashable, value: object) -> None:
        super().__init__(context)
        self.source = source
        self.value: object = value if context.node == source else None
        self.informed = context.node == source

    def on_start(self) -> dict[Hashable, object]:
        if self.informed:
            return {neighbour: ("bc", self.value) for neighbour in self.context.neighbours}
        self.halted = True  # sleep until the flood's message wakes us
        return {}

    def on_round(self, round_number: int, inbox: dict[Hashable, object]) -> dict[Hashable, object]:
        self.halted = True
        if self.informed:
            return {}
        offers = [message[1] for message in inbox.values() if message[0] == "bc"]
        if not offers:
            return {}
        self.value = offers[0]
        self.informed = True
        senders = {sender for sender, message in inbox.items() if message[0] == "bc"}
        return {
            neighbour: ("bc", self.value)
            for neighbour in self.context.neighbours
            if neighbour not in senders
        }

    def result(self) -> object:
        return self.value


class _BroadcastFactory:
    """Factory for :class:`_BroadcastProgram` with its vectorized twin.

    ``source`` is in program id space, like :class:`_BfsFactory`'s root.
    """

    __slots__ = ("source", "value")

    def __init__(self, source: Hashable, value: object) -> None:
        self.source = source
        self.value = value

    def __call__(self, context: NodeContext) -> NodeProgram:
        return _BroadcastProgram(context, self.source, self.value)

    def compile_runtime(self, simulator: CongestSimulator) -> RuntimeProgram:
        return BroadcastRuntime(
            simulator._view, simulator.bandwidth_words, self.source, self.value
        )


class _RobustBroadcastProgram(NodeProgram):
    """Broadcast with bounded retry and acknowledgement (fault-tolerant).

    Same protocol shape as :class:`_RobustBfsProgram`: an informed node
    keeps re-announcing ``("bc", value)`` to every neighbour it has no
    proof about, where proof is an implicit ack (the neighbour announced
    back) or an explicit ``("ok",)``; per-neighbour budgets bound the
    retries, so the flood always terminates and uninformed nodes are a
    documented partial output (``result() is None``), including the case
    of a crashed source.
    """

    def __init__(
        self, context: NodeContext, source: Hashable, value: object, retry_budget: int
    ) -> None:
        super().__init__(context)
        self.source = source
        self.retry_budget = retry_budget
        self.value: object = value if context.node == source else None
        self.informed = context.node == source
        self.pending: dict[Hashable, int] = {}

    def on_start(self) -> dict[Hashable, object]:
        if self.informed:
            self.pending = {
                neighbour: self.retry_budget for neighbour in self.context.neighbours
            }
            self.halted = not self.pending
            return {neighbour: ("bc", self.value) for neighbour in self.context.neighbours}
        self.halted = True
        return {}

    def on_round(self, round_number: int, inbox: dict[Hashable, object]) -> dict[Hashable, object]:
        pending = self.pending
        announcers = []
        for sender, message in inbox.items():
            if message[0] == "ok":
                pending.pop(sender, None)
            else:  # ("bc", value): the announcement, and an implicit ack
                pending.pop(sender, None)
                announcers.append(sender)
        out: dict[Hashable, object] = {}
        if not self.informed and announcers:
            self.value = inbox[announcers[0]][1]
            self.informed = True
            known = set(announcers)
            self.pending = pending = {
                neighbour: self.retry_budget + 1
                for neighbour in self.context.neighbours
                if neighbour not in known
            }
        if self.informed:
            payload = ("bc", self.value)
            for neighbour in list(pending):
                out[neighbour] = payload
                remaining = pending[neighbour] - 1
                if remaining <= 0:
                    del pending[neighbour]
                else:
                    pending[neighbour] = remaining
            for sender in announcers:
                if sender not in out:
                    out[sender] = ("ok",)
        self.halted = (not pending) if self.informed else True
        return out

    def result(self) -> object:
        return self.value


class _RobustBroadcastFactory:
    """Factory for :class:`_RobustBroadcastProgram` (fault schedules only)."""

    __slots__ = ("source", "value", "retry_budget")

    def __init__(self, source: Hashable, value: object, retry_budget: int) -> None:
        self.source = source
        self.value = value
        self.retry_budget = retry_budget

    def __call__(self, context: NodeContext) -> NodeProgram:
        return _RobustBroadcastProgram(context, self.source, self.value, self.retry_budget)


def broadcast_value(
    graph: nx.Graph | GraphView,
    source: Hashable,
    value: object,
    simulator_cls: type[CongestSimulator] = CongestSimulator,
    fault_schedule: FaultSchedule | FaultModel | None = None,
    retry_budget: int = 5,
) -> SimulationResult:
    """Broadcast ``value`` from ``source`` to every node; return the run stats.

    Used by the scenario engine to charge the ``O(D)`` result-announcement
    phase of the distributed algorithms as a genuine simulated execution.
    The returned outputs map every node to the received value, which the
    callers assert for correctness.  ``source`` is a label; in core mode it
    is converted to an index at the boundary.  Runs under all three
    simulator modes; the runtime mode requires a view.

    Under an active ``fault_schedule`` the retry/ack announcement of
    :class:`_RobustBroadcastProgram` runs instead; nodes still uninformed
    when every retry budget expired (or crashed, absent from ``outputs``
    entirely) are the partial contract -- count them via
    ``result.outputs`` rather than expecting an exception.
    """
    program_source = (
        graph.index_of(source) if isinstance(graph, GraphView) else source
    )
    schedule = _resolve_schedule(fault_schedule)
    if schedule is not None:
        factory = _RobustBroadcastFactory(program_source, value, retry_budget)
        return simulator_cls(graph, factory, fault_schedule=schedule).run()
    simulator = simulator_cls(graph, _BroadcastFactory(program_source, value))
    result = simulator.run()
    wrong = [node for node, output in result.outputs.items() if output != value]
    if wrong:
        raise RuntimeError(f"broadcast did not reach nodes {wrong[:5]}")
    return result


class _ConvergecastProgram(NodeProgram):
    """Aggregate values up a rooted spanning tree (tree convergecast).

    The upward half of the classic broadcast-and-echo: every node knows its
    tree parent and its number of children (state left behind by the BFS
    build phase, as in Boruvka's merge coordination); leaves report
    ``("cc", value)`` immediately, an internal node folds each child report
    into its accumulator -- in ascending child-id order, so non-commutative
    ``combine``s are deterministic -- and reports upward the round its last
    child arrives.  All waiting is mail-driven (nodes halt, the simulator
    wakes them on delivery), so the active set per round is exactly the set
    of nodes receiving reports.
    """

    def __init__(
        self,
        context: NodeContext,
        parent: Hashable | None,
        num_children: int,
        value: object,
        combine: Callable[[object, object], object],
    ) -> None:
        super().__init__(context)
        self.parent = parent
        self.remaining = num_children
        self.acc = value
        self.combine = combine
        self.aggregate: object | None = None

    def on_start(self) -> dict[Hashable, object]:
        self.halted = True  # all waiting is mail-driven
        if self.remaining:
            return {}
        if self.parent is None:  # single-node tree: the root is a leaf
            self.aggregate = self.acc
            return {}
        return {self.parent: ("cc", self.acc)}

    def on_round(self, round_number: int, inbox: dict[Hashable, object]) -> dict[Hashable, object]:
        self.halted = True
        id_key = self.context.id_key
        for sender in sorted(inbox, key=id_key):
            self.acc = self.combine(self.acc, inbox[sender][1])
            self.remaining -= 1
        if self.remaining:
            return {}
        if self.parent is None:
            self.aggregate = self.acc
            return {}
        return {self.parent: ("cc", self.acc)}

    def result(self) -> object:
        return self.aggregate


class _ConvergecastFactory:
    """Factory for :class:`_ConvergecastProgram` with its vectorized twin.

    ``parent`` / ``num_children`` / ``values`` are keyed by program id
    (indices in core/runtime mode, labels otherwise);
    :func:`convergecast_aggregate` converts at the boundary.
    """

    __slots__ = ("parent", "num_children", "values", "combine")

    def __init__(
        self,
        parent: Mapping[Hashable, Hashable | None],
        num_children: Mapping[Hashable, int],
        values: Mapping[Hashable, object],
        combine: Callable[[object, object], object],
    ) -> None:
        self.parent = parent
        self.num_children = num_children
        self.values = values
        self.combine = combine

    def __call__(self, context: NodeContext) -> NodeProgram:
        node = context.node
        return _ConvergecastProgram(
            context,
            self.parent[node],
            self.num_children[node],
            self.values[node],
            self.combine,
        )

    def compile_runtime(self, simulator: CongestSimulator) -> RuntimeProgram:
        view = simulator._view
        n = len(view.nodes)
        parent = [-1] * n
        values = [None] * n
        for node, up in self.parent.items():
            parent[node] = -1 if up is None else up
            values[node] = self.values[node]
        return ConvergecastRuntime(
            view, simulator.bandwidth_words, parent, values, self.combine
        )


class _RobustConvergecastProgram(NodeProgram):
    """Tree convergecast with acked, retried reports and a round timeout.

    A child re-sends ``("cc", acc)`` to its parent every round until the
    parent's ``("ok",)`` arrives or the send budget expires; the parent
    acks every report and folds each child's *first* one (retries dedupe
    on the reporting child).  Because a crashed or cut-off child would
    leave ``remaining`` forever positive, every node also carries a
    ``timeout_round`` at which it fires its partial accumulator upward
    regardless -- timeouts are staggered by tree depth (deeper nodes fire
    earlier), so even under heavy crashes the surviving partial aggregates
    still propagate to the root.  Reports arriving after the fold closed
    are acked and discarded (the documented partial contract).
    """

    def __init__(
        self,
        context: NodeContext,
        parent: Hashable | None,
        num_children: int,
        value: object,
        combine: Callable[[object, object], object],
        retry_budget: int,
        timeout_round: int,
    ) -> None:
        super().__init__(context)
        self.parent = parent
        self.remaining = num_children
        self.acc = value
        self.combine = combine
        self.retry_budget = retry_budget
        self.timeout_round = timeout_round
        self.aggregate: object | None = None
        self.reported: set[Hashable] = set()
        self.fired = False
        self.acked = False
        self.sends_left = 0

    def on_start(self) -> dict[Hashable, object]:
        if self.remaining == 0:
            self.fired = True
            if self.parent is None:  # single-node tree
                self.aggregate = self.acc
                self.halted = True
                return {}
            self.sends_left = self.retry_budget
            self.halted = self.sends_left == 0
            return {self.parent: ("cc", self.acc)}
        self.halted = False  # stay live: the timeout clock must tick
        return {}

    def on_round(self, round_number: int, inbox: dict[Hashable, object]) -> dict[Hashable, object]:
        out: dict[Hashable, object] = {}
        id_key = self.context.id_key
        for sender in sorted(inbox, key=id_key):
            message = inbox[sender]
            if message[0] == "ok":
                self.acked = True
                continue
            out[sender] = ("ok",)  # every report is acknowledged
            if sender not in self.reported:
                self.reported.add(sender)
                if not self.fired:
                    self.acc = self.combine(self.acc, message[1])
                    self.remaining -= 1
                # else: late report after our timeout fired -- discarded.
        if not self.fired and (self.remaining == 0 or round_number >= self.timeout_round):
            self.fired = True
            if self.parent is None:
                self.aggregate = self.acc
            else:
                self.sends_left = self.retry_budget + 1
        if (
            self.fired
            and self.parent is not None
            and not self.acked
            and self.sends_left > 0
        ):
            out[self.parent] = ("cc", self.acc)
            self.sends_left -= 1
        if self.parent is None:
            self.halted = self.fired
        else:
            self.halted = self.fired and (self.acked or self.sends_left == 0)
        return out

    def result(self) -> object:
        return self.aggregate


class _RobustConvergecastFactory:
    """Factory for :class:`_RobustConvergecastProgram` (fault schedules only).

    Like :class:`_ConvergecastFactory` plus per-node timeout rounds (all
    keyed by program id); :func:`convergecast_aggregate` computes the
    depth-staggered timeouts at the boundary.
    """

    __slots__ = ("parent", "num_children", "values", "timeouts", "combine", "retry_budget")

    def __init__(
        self,
        parent: Mapping[Hashable, Hashable | None],
        num_children: Mapping[Hashable, int],
        values: Mapping[Hashable, object],
        timeouts: Mapping[Hashable, int],
        combine: Callable[[object, object], object],
        retry_budget: int,
    ) -> None:
        self.parent = parent
        self.num_children = num_children
        self.values = values
        self.timeouts = timeouts
        self.combine = combine
        self.retry_budget = retry_budget

    def __call__(self, context: NodeContext) -> NodeProgram:
        node = context.node
        return _RobustConvergecastProgram(
            context,
            self.parent[node],
            self.num_children[node],
            self.values[node],
            self.combine,
            self.retry_budget,
            self.timeouts[node],
        )


def convergecast_aggregate(
    graph: nx.Graph | GraphView,
    tree: RootedTree,
    values: Mapping[Hashable, object],
    combine: Callable[[object, object], object] = min,
    simulator_cls: type[CongestSimulator] = CongestSimulator,
    fault_schedule: FaultSchedule | FaultModel | None = None,
    retry_budget: int = 5,
) -> tuple[object, SimulationResult]:
    """Aggregate ``values`` up ``tree`` to its root; return (aggregate, stats).

    The convergecast half of the aggregation primitive the shortcut
    framework accelerates (Theorem 1), run as a genuine node-program
    execution over the network: the root learns
    ``combine(values...)`` after ``O(tree height)`` rounds with exactly one
    message per tree edge.  ``tree`` must span ``graph`` (its edges are
    network edges, so the simulator's topology enforcement applies) and
    ``values`` must cover every node; ``combine`` must be associative but
    may be non-commutative/non-exact (folding order is pinned to ascending
    child id, identically in all three simulator modes).

    Under an active ``fault_schedule`` the acked/retried convergecast of
    :class:`_RobustConvergecastProgram` runs instead, with per-node
    timeouts staggered by tree depth; the returned aggregate folds only
    the reports that survived (``None`` when the root itself crashed) --
    the documented partial contract.
    """
    view = graph if isinstance(graph, GraphView) else None
    num_nodes = len(view) if view is not None else graph.number_of_nodes()
    if len(tree.parent) != num_nodes:
        raise InvalidGraphError("convergecast needs a spanning tree of the network")
    missing = [node for node in tree.parent if node not in values]
    if missing:
        raise SimulationError(f"no input value for vertex {missing[0]}")
    schedule = _resolve_schedule(fault_schedule)
    if view is None:
        parent = dict(tree.parent)
        num_children = {node: len(tree.children[node]) for node in tree.parent}
        node_values = {node: values[node] for node in tree.parent}
        program_of = None
    else:
        index_of = view.index_of
        parent = {}
        num_children = {}
        node_values = {}
        for node, up in tree.parent.items():
            index = index_of(node)
            parent[index] = None if up is None else index_of(up)
            num_children[index] = len(tree.children[node])
            node_values[index] = values[node]
        program_of = index_of
    if schedule is not None:
        # Depth-staggered timeouts: deeper nodes give up earlier, so a
        # partial accumulator still has time to climb to the root before
        # *its* timeout.  The stride covers one retry burst per tree level.
        depth: dict[Hashable, int] = {tree.root: 0}
        frontier = [tree.root]
        while frontier:
            node = frontier.pop()
            for child in tree.children[node]:
                depth[child] = depth[node] + 1
                frontier.append(child)
        max_depth = max(depth.values(), default=0)
        stride = retry_budget + 4
        timeouts = {}
        for node, level in depth.items():
            program = node if program_of is None else program_of(node)
            timeouts[program] = 2 * (max_depth + 1) + (max_depth - level) * stride + 4
        factory = _RobustConvergecastFactory(
            parent, num_children, node_values, timeouts, combine, retry_budget
        )
        result = simulator_cls(graph, factory, fault_schedule=schedule).run()
        return result.outputs.get(tree.root), result
    factory = _ConvergecastFactory(parent, num_children, node_values, combine)
    simulator = simulator_cls(graph, factory)
    result = simulator.run()
    aggregate = result.outputs[tree.root]
    return aggregate, result
