"""The seed full-scan simulator, kept as a differential-testing oracle.

:class:`ReferenceSimulator` reproduces the original (pre-active-set)
implementation faithfully in everything that costs time:

* the diameter bound is computed **eagerly** in the constructor (an
  all-pairs BFS when no bound is supplied);
* every round scans **every** node and reallocates a fresh inbox dict per
  node per round;
* global halt status is re-derived by iterating all programs.

Only the round *counting* follows the fixed, consistent rule of
:mod:`repro.congest.simulator` (rounds = index of the last round with any
send or delivery), so that a :class:`SimulationResult` produced here is
bit-for-bit comparable with the active-set simulator's.  The differential
tests in ``tests/test_congest_simulator.py`` assert exactly that equality,
and ``benchmarks/bench_simulator_speedup.py`` uses this class as the
baseline the active-set rewrite is measured against.

In the three-mode taxonomy of ``docs/simulator.md`` this is the
**reference** mode: the slowest engine, the simplest code, and therefore
the anchor of the equality contract -- the active-set mode is pinned to
it on arbitrary node programs, and the vectorized runtime is pinned to
both on every compiled program family (``tests/test_runtime.py``).  It
accepts a :class:`~repro.core.GraphView` like the active-set simulator
(full-scan semantics, core-mode ids), so all three modes can be compared
on one network object.
"""

from __future__ import annotations

from typing import Hashable

from ..errors import RoundLimitError
from .faults import FaultQueue
from .node import message_size_in_words
from .simulator import CongestSimulator, RoundTelemetry, SimulationResult


class ReferenceSimulator(CongestSimulator):
    """Full-scan CONGEST simulator with the seed's per-round cost profile."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # The seed computed the diameter bound in the constructor whether or
        # not any program would read it; keep that (costly) behaviour.
        self._resolve_diameter_bound()

    def _run_faulty(self, max_rounds: int) -> SimulationResult:
        """The fault-aware loop in full-scan flavour.

        Same :class:`~repro.congest.faults.FaultQueue` boundaries and crash
        bookkeeping as the active-set loop, but every round scans every
        node and re-derives global halt status by iterating all programs
        -- the seed's cost profile, kept as the fault layer's differential
        oracle.
        """
        programs = self.programs
        schedule = self._fault_schedule
        queue = FaultQueue(schedule, self._rank)
        crash_by_round = self._crash_rounds()
        crashed: set[Hashable] = set()
        total_messages = total_words = 0
        total_dropped = total_delayed = total_duplicated = 0
        telemetry: list[RoundTelemetry] = []
        last_active_round = 0

        newly = crash_by_round.get(1, ())
        crashed.update(newly)
        sent = words = executed = 0
        for node in self._order:
            if node in crashed:
                continue
            executed += 1
            outgoing = programs[node].on_start() or {}
            self._validate_outgoing(node, outgoing)
            for target, message in outgoing.items():
                if message is None:
                    continue
                queue.send(1, node, target, message)
                sent += 1
                words += message_size_in_words(message)
        dropped, delayed, duplicated = queue.take_round_stats()
        total_messages += sent
        total_words += words
        total_dropped += dropped
        total_delayed += delayed
        total_duplicated += duplicated
        telemetry.append(
            RoundTelemetry(1, executed, sent, words, dropped, delayed, duplicated, len(newly))
        )
        if sent:
            last_active_round = 1

        for round_number in range(2, max_rounds + 2):
            all_halted = all(
                programs[node].halted or node in crashed for node in self._order
            )
            if all_halted and not queue.has_mail():
                break
            inboxes = queue.deliveries(round_number)
            delivered = bool(inboxes)
            newly = crash_by_round.get(round_number, ())
            crashed.update(newly)
            sent = words = executed = 0
            for node in self._order:
                if node in crashed:
                    continue
                program = programs[node]
                inbox = inboxes.get(node)
                if inbox is None:
                    if program.halted:
                        continue
                    inbox = {}
                executed += 1
                outgoing = program.on_round(round_number, inbox) or {}
                self._validate_outgoing(node, outgoing)
                for target, message in outgoing.items():
                    if message is None:
                        continue
                    queue.send(round_number, node, target, message)
                    sent += 1
                    words += message_size_in_words(message)
            dropped, delayed, duplicated = queue.take_round_stats()
            total_messages += sent
            total_words += words
            total_dropped += dropped
            total_delayed += delayed
            total_duplicated += duplicated
            telemetry.append(RoundTelemetry(
                round_number, executed, sent, words, dropped, delayed, duplicated, len(newly)
            ))
            if sent or delivered:
                last_active_round = round_number
        else:
            raise RoundLimitError(
                f"simulation did not converge within {max_rounds} rounds",
                partial=SimulationResult(
                    rounds=last_active_round,
                    messages=total_messages,
                    words=total_words,
                    outputs=self._final_outputs(exclude=crashed),
                    telemetry=telemetry,
                    dropped=total_dropped,
                    delayed=total_delayed,
                    duplicated=total_duplicated,
                    crashed_nodes=len(crashed),
                ),
            )

        return SimulationResult(
            rounds=last_active_round,
            messages=total_messages,
            words=total_words,
            outputs=self._final_outputs(exclude=crashed),
            telemetry=telemetry,
            dropped=total_dropped,
            delayed=total_delayed,
            duplicated=total_duplicated,
            crashed_nodes=len(crashed),
        )

    def run(self, max_rounds: int = 10_000) -> SimulationResult:
        """Run to quiescence with a full node scan per round (seed behaviour)."""
        if self._fault_schedule is not None:
            return self._run_faulty(max_rounds)
        programs = self.programs
        inboxes: dict[Hashable, dict[Hashable, object]] = {node: {} for node in programs}
        pending: dict[Hashable, dict[Hashable, object]] = {node: {} for node in programs}
        total_messages = 0
        total_words = 0
        telemetry: list[RoundTelemetry] = []
        last_active_round = 0

        sent = words = 0
        for node in self._order:
            outgoing = programs[node].on_start() or {}
            self._validate_outgoing(node, outgoing)
            for target, message in outgoing.items():
                if message is None:
                    continue
                pending[target][node] = message
                sent += 1
                words += message_size_in_words(message)
        total_messages += sent
        total_words += words
        telemetry.append(RoundTelemetry(1, len(self._order), sent, words))
        if sent:
            last_active_round = 1

        for round_number in range(2, max_rounds + 2):
            inboxes = pending
            pending = {node: {} for node in programs}
            all_halted = all(program.halted for program in programs.values())
            any_inbox = any(inboxes[node] for node in programs)
            if all_halted and not any_inbox:
                break
            sent = words = 0
            executed = 0
            for node in self._order:
                program = programs[node]
                inbox = inboxes[node]
                if program.halted and not inbox:
                    continue
                executed += 1
                outgoing = program.on_round(round_number, inbox) or {}
                self._validate_outgoing(node, outgoing)
                for target, message in outgoing.items():
                    if message is None:
                        continue
                    pending[target][node] = message
                    sent += 1
                    words += message_size_in_words(message)
            total_messages += sent
            total_words += words
            telemetry.append(RoundTelemetry(round_number, executed, sent, words))
            if sent or any_inbox:
                last_active_round = round_number
        else:
            raise RoundLimitError(
                f"simulation did not converge within {max_rounds} rounds",
                partial=SimulationResult(
                    rounds=last_active_round,
                    messages=total_messages,
                    words=total_words,
                    outputs=self._final_outputs(),
                    telemetry=telemetry,
                ),
            )

        outputs = self._final_outputs()
        return SimulationResult(
            rounds=last_active_round,
            messages=total_messages,
            words=total_words,
            outputs=outputs,
            telemetry=telemetry,
        )
