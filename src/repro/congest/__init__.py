"""A synchronous CONGEST-model simulator (Section 1.3.1 of the paper).

The CONGEST model: communication proceeds in synchronous rounds; in every
round each node may send one ``O(log n)``-bit message to each of its
neighbours; local computation is free; nodes initially know only their own
neighbourhood (plus ``n`` and ``D`` up to constants).

Two levels of simulation are provided:

* :mod:`repro.congest.simulator` runs genuine per-node message-passing
  programs (:class:`repro.congest.node.NodeProgram`) round by round with
  bandwidth enforcement -- used for the basic primitives (BFS tree
  construction, flooding, broadcast, convergecast) and for tests that pin
  down the model's semantics;
* :mod:`repro.congest.aggregation` simulates the *part-wise aggregation*
  primitive of the shortcut framework at the message-schedule level: every
  part aggregates over ``G[P_i] + H_i`` and edges shared by several parts
  deliver one message per round per direction, so the measured round count
  directly reflects the congestion + dilation of the shortcut.  This is the
  primitive Theorem 1 invokes ``O(log n)`` times per Boruvka phase.

The node-program level runs in three execution modes with one equality
contract (rounds, messages, words, outputs and per-round telemetry all
exactly equal -- see ``docs/simulator.md``): the full-scan
:class:`ReferenceSimulator` (the seed oracle), the active-set
:class:`CongestSimulator` (label or core submode), and the vectorized
:class:`RuntimeSimulator` (compiled batch programs over flat arrays,
:mod:`repro.congest.runtime`).
"""

from .node import NodeContext, NodeProgram
from .faults import (
    BUILT_IN_FAULT_KINDS,
    FaultModel,
    FaultQueue,
    FaultSchedule,
    parse_fault_spec,
)
from .simulator import CongestSimulator, RoundTelemetry, SimulationResult
from .reference import ReferenceSimulator
from .runtime import FaultRuntime, RuntimeProgram, RuntimeSimulator
from .primitives import (
    broadcast_value,
    convergecast_aggregate,
    distributed_bfs_tree,
    flood_max_id,
    robust_bfs_tree,
)
from .aggregation import AggregationResult, partwise_aggregate

__all__ = [
    "AggregationResult",
    "BUILT_IN_FAULT_KINDS",
    "CongestSimulator",
    "FaultModel",
    "FaultQueue",
    "FaultRuntime",
    "FaultSchedule",
    "NodeContext",
    "NodeProgram",
    "ReferenceSimulator",
    "RoundTelemetry",
    "RuntimeProgram",
    "RuntimeSimulator",
    "SimulationResult",
    "broadcast_value",
    "convergecast_aggregate",
    "distributed_bfs_tree",
    "flood_max_id",
    "parse_fault_spec",
    "partwise_aggregate",
    "robust_bfs_tree",
]
