"""Seeded, deterministic fault injection for the CONGEST simulator.

The fail-free simulator answers "how many rounds does the algorithm take";
this module answers "and what happens when the network misbehaves" without
giving up reproducibility.  Every perturbation -- dropping a message,
delaying it by ``k`` rounds, duplicating it, crashing a node, permuting a
round's delivery order -- is drawn by a **pure hash function** of
``(seed, kind, round, canonical sender, canonical receiver)``, never from
mutable RNG state.  Two consequences follow directly:

* a faulty run is exactly reproducible from ``(FaultModel, seed)`` alone,
  so faulty executions are differentially testable across the three
  simulator modes just like fail-free ones (the equality contract of
  ``docs/simulator.md`` extends verbatim); and
* the decision stream is independent of evaluation order and of process
  identity, so a parallel ``run_matrix(jobs=N)`` sweep with faults is
  byte-identical to the serial sweep -- there is no RNG state to leak.

The three pieces:

:class:`FaultModel`
    the declarative spec (rates, delay bound, crash window, explicit
    ``crash_at`` pins, adversarial ``shuffle``).  An all-zero model is
    *null* and the simulators treat it exactly like no fault layer at all,
    which is what makes "rate 0 reproduces the fail-free trajectory
    bit-for-bit" true by construction.

:class:`FaultSchedule`
    the seeded decision stream: ``fate(round, u, v)`` for per-message
    drop/delay/duplication, ``crash_round(node)`` for node failures,
    ``shuffle_order`` for delivery-order permutations.  Node identifiers
    are **canonical**: CSR indices in core/runtime mode, repr-rank in
    label mode -- the same ints in every mode, so one schedule drives all
    three engines identically.

:class:`FaultQueue`
    the shared mailbox all three run loops route their sends through: a
    round-bucketed pending store that applies the schedule at the *send*
    boundary (drop / delay / duplicate) and the *deliver* boundary
    (crashed-recipient filtering, adversarial permutation), and accounts
    every decision into the per-round fault telemetry columns.

Accounting identity (asserted by the property tests): ``messages`` keeps
counting what programs *send*; of those, ``dropped`` never arrive and each
``duplicated`` send arrives once more, so total deliveries equal
``messages - dropped + duplicated``.  A delayed message is counted in
``delayed`` once at its send round and still delivers (unless its
recipient crashes first, which re-books it as dropped in the delivery
round).  When two messages from the same sender reach the same recipient
in the same round (possible only under delays/duplication), the
chronologically later send wins -- the same overwrite rule in all modes,
since every mode writes through this one queue in canonical node order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping

from ..errors import SimulationError

__all__ = [
    "BUILT_IN_FAULT_KINDS",
    "FaultModel",
    "FaultQueue",
    "FaultSchedule",
    "parse_fault_spec",
]

_MASK = (1 << 64) - 1

# Decision-kind tags: each perturbation draws from its own hash stream so
# e.g. raising the drop rate never changes which messages get delayed.
_DROP = 1
_DELAY = 2
_DELAY_K = 3
_DUP = 4
_CRASH = 5
_CRASH_ROUND = 6
_SHUFFLE = 7


def _mix(*parts: int) -> int:
    """splitmix64-style finalizer folded over the parts (pure, stateless)."""
    x = 0x9E3779B97F4A7C15
    for part in parts:
        x = ((x ^ (part & _MASK)) * 0xBF58476D1CE4E5B9) & _MASK
        x ^= x >> 27
        x = (x * 0x94D049BB133111EB) & _MASK
        x ^= x >> 31
    return x


def _u01(*parts: int) -> float:
    """A uniform [0, 1) variate from the pure hash stream."""
    return _mix(*parts) / float(1 << 64)


@dataclass(frozen=True)
class FaultModel:
    """Declarative spec of a fault environment (all perturbations optional).

    Attributes:
        drop: per-message loss probability in ``[0, 1]``.
        delay: per-message delay probability; a delayed message arrives
            ``k`` rounds late with ``k`` uniform in ``1..max_delay``.
        max_delay: upper bound on the per-message delay (>= 1).
        duplicate: per-message duplication probability; the duplicate is a
            faithful copy delivered one round after the original and is
            exempt from further faults (at most one copy per send).
        crash: per-node crash probability; a crashed node picks its crash
            round uniformly in ``1..crash_window`` and never executes from
            that round on (crash-stop, no recovery).
        crash_window: upper bound on randomly drawn crash rounds (>= 1).
        crash_at: explicit ``(node, round)`` pins overriding the random
            draw; nodes are canonical ids (CSR indices / repr ranks).
        shuffle: when true, each recipient's per-round inbox is permuted
            by a seeded Fisher-Yates before delivery (adversarial
            delivery order for order-sensitive programs).
    """

    drop: float = 0.0
    delay: float = 0.0
    max_delay: int = 1
    duplicate: float = 0.0
    crash: float = 0.0
    crash_window: int = 1
    crash_at: tuple[tuple[int, int], ...] = ()
    shuffle: bool = False

    def __post_init__(self) -> None:
        for name in ("drop", "delay", "duplicate", "crash"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {rate!r}")
        if self.max_delay < 1:
            raise ValueError(f"max_delay must be >= 1, got {self.max_delay!r}")
        if self.crash_window < 1:
            raise ValueError(f"crash_window must be >= 1, got {self.crash_window!r}")
        object.__setattr__(self, "crash_at", tuple(
            (int(node), int(round_number)) for node, round_number in self.crash_at
        ))
        for node, round_number in self.crash_at:
            if round_number < 1:
                raise ValueError(
                    f"crash_at round for node {node} must be >= 1, got {round_number}"
                )

    @property
    def is_null(self) -> bool:
        """True when the model perturbs nothing (fail-free by construction)."""
        return (
            self.drop == 0.0
            and self.delay == 0.0
            and self.duplicate == 0.0
            and self.crash == 0.0
            and not self.crash_at
            and not self.shuffle
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly description (recorded by the scenario engine)."""
        return {
            "drop": self.drop,
            "delay": self.delay,
            "max_delay": self.max_delay,
            "duplicate": self.duplicate,
            "crash": self.crash,
            "crash_window": self.crash_window,
            "crash_at": [list(pin) for pin in self.crash_at],
            "shuffle": self.shuffle,
        }

    @classmethod
    def preset(cls, kind: str, rate: float = 0.05) -> "FaultModel":
        """One built-in single-perturbation model per fault kind.

        ``kind`` is one of :data:`BUILT_IN_FAULT_KINDS`; ``rate`` is the
        perturbation probability (ignored for ``"shuffle"``, which is a
        pure delivery-order adversary).  ``rate=0`` yields a null model of
        every kind except ``"shuffle"``.
        """
        if kind == "drop":
            return cls(drop=rate)
        if kind == "delay":
            return cls(delay=rate, max_delay=3)
        if kind == "duplicate":
            return cls(duplicate=rate)
        if kind == "crash":
            return cls(crash=rate, crash_window=8)
        if kind == "shuffle":
            return cls(shuffle=True)
        raise ValueError(
            f"unknown fault kind {kind!r}; built-ins are {BUILT_IN_FAULT_KINDS}"
        )


BUILT_IN_FAULT_KINDS: tuple[str, ...] = (
    "drop", "delay", "duplicate", "crash", "shuffle",
)


def parse_fault_spec(spec: str) -> FaultModel:
    """Parse the CLI fault spec mini-language into a :class:`FaultModel`.

    The spec is a comma-separated list of clauses::

        drop=0.05,delay=0.02:3,dup=0.01,crash=0.05:10,shuffle

    ``delay=p:k`` bounds the delay at ``k`` rounds (default 1) and
    ``crash=p:w`` draws crash rounds in ``1..w`` (default 1); ``dup`` is
    an alias for ``duplicate`` and a bare ``shuffle`` turns the delivery
    adversary on.  An empty spec is the null model.
    """
    fields: dict[str, object] = {}
    for clause in filter(None, (part.strip() for part in spec.split(","))):
        if clause == "shuffle":
            fields["shuffle"] = True
            continue
        if "=" not in clause:
            raise ValueError(f"malformed fault clause {clause!r} in spec {spec!r}")
        key, _, value = clause.partition("=")
        key = key.strip()
        rate, _, bound = value.partition(":")
        try:
            if key == "drop":
                fields["drop"] = float(rate)
            elif key == "delay":
                fields["delay"] = float(rate)
                if bound:
                    fields["max_delay"] = int(bound)
            elif key in ("dup", "duplicate"):
                fields["duplicate"] = float(rate)
            elif key == "crash":
                fields["crash"] = float(rate)
                if bound:
                    fields["crash_window"] = int(bound)
            else:
                raise ValueError(f"unknown fault clause {key!r} in spec {spec!r}")
        except ValueError as error:
            raise ValueError(f"malformed fault clause {clause!r}: {error}") from None
    return FaultModel(**fields)


class FaultSchedule:
    """The seeded decision stream: one pure function per perturbation kind.

    Every decision is a hash of ``(seed, kind, round, canonical ids)`` --
    no mutable state, so decisions can be queried in any order (or from
    any process) with identical outcomes.  Construct once per model+seed
    and hand the same schedule to any number of simulator runs.
    """

    __slots__ = ("model", "seed", "_crash_pins", "_crash_cache")

    def __init__(self, model: FaultModel, seed: int = 0) -> None:
        self.model = model
        self.seed = int(seed) & _MASK
        self._crash_pins = dict(model.crash_at)
        self._crash_cache: dict[int, int | None] = {}

    @property
    def active(self) -> bool:
        """False for null models: the simulators then skip the fault layer
        entirely, taking the byte-identical fail-free code paths."""
        return not self.model.is_null

    def describe(self) -> dict[str, object]:
        return {"seed": self.seed, **self.model.as_dict()}

    # -- per-message decisions (send boundary) -----------------------------

    def fate(self, round_number: int, sender: int, target: int) -> tuple[int, bool]:
        """Decide one message's fate; return ``(delay, duplicate)``.

        ``delay`` is ``-1`` for a dropped message, ``0`` for on-time
        delivery next round, ``k >= 1`` for arrival ``k`` rounds late.
        ``duplicate`` asks for one extra faithful copy a round later
        (never set for dropped messages -- the network lost the send).
        """
        model, seed = self.model, self.seed
        if model.drop and _u01(seed, _DROP, round_number, sender, target) < model.drop:
            return -1, False
        delay = 0
        if model.delay and _u01(seed, _DELAY, round_number, sender, target) < model.delay:
            delay = 1 + _mix(seed, _DELAY_K, round_number, sender, target) % model.max_delay
        duplicate = bool(model.duplicate) and (
            _u01(seed, _DUP, round_number, sender, target) < model.duplicate
        )
        return delay, duplicate

    # -- per-node decisions ------------------------------------------------

    def crash_round(self, node: int) -> int | None:
        """The round from which ``node`` never executes again (None = never).

        Explicit ``crash_at`` pins win over the random draw; decisions are
        cached per schedule (they are pure, the cache is just speed).
        """
        cache = self._crash_cache
        if node in cache:
            return cache[node]
        pinned = self._crash_pins.get(node)
        if pinned is not None:
            result: int | None = pinned
        else:
            model = self.model
            result = None
            if model.crash and _u01(self.seed, _CRASH, node) < model.crash:
                result = 1 + _mix(self.seed, _CRASH_ROUND, node) % model.crash_window
        cache[node] = result
        return result

    # -- delivery-order adversary (deliver boundary) -----------------------

    def shuffle_order(self, round_number: int, target: int, count: int) -> list[int]:
        """A seeded Fisher-Yates permutation of ``range(count)`` for one
        recipient's inbox in one round (applied to the canonically sorted
        sender list, so the result is mode-independent)."""
        order = list(range(count))
        for i in range(count - 1, 0, -1):
            j = _mix(self.seed, _SHUFFLE, round_number, target, i) % (i + 1)
            order[i], order[j] = order[j], order[i]
        return order


class FaultQueue:
    """The round-bucketed mailbox shared by all three fault-aware run loops.

    Sends pass through :meth:`send` (drop / delay / duplicate applied at
    the send boundary); each round's deliveries come back from
    :meth:`deliveries` (crashed recipients filtered, adversarial order
    applied at the deliver boundary).  ``canon`` maps program node ids to
    canonical ints (None when the ids *are* canonical, i.e. core/runtime
    mode); all schedule queries go through it, so label-mode and
    core-mode runs of the same network consume the same decision stream.
    """

    __slots__ = ("schedule", "_canon", "_sort_key", "_buckets",
                 "dropped", "delayed", "duplicated")

    def __init__(
        self,
        schedule: FaultSchedule,
        canon: Mapping[Hashable, int] | None = None,
    ) -> None:
        self.schedule = schedule
        self._canon = canon
        self._sort_key: Callable = (
            _canonical_identity if canon is None else canon.__getitem__
        )
        # arrival round -> recipient -> {sender: message}
        self._buckets: dict[int, dict[Hashable, dict[Hashable, object]]] = {}
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0

    def _canon_of(self, node: Hashable) -> int:
        canon = self._canon
        return node if canon is None else canon[node]

    def send(self, round_number: int, sender: Hashable, target: Hashable, message) -> None:
        """Route one program send through the schedule into the buckets."""
        delay, duplicate = self.schedule.fate(
            round_number, self._canon_of(sender), self._canon_of(target)
        )
        if delay < 0:
            self.dropped += 1
            return
        arrival = round_number + 1 + delay
        if delay:
            self.delayed += 1
        buckets = self._buckets
        buckets.setdefault(arrival, {}).setdefault(target, {})[sender] = message
        if duplicate:
            self.duplicated += 1
            buckets.setdefault(arrival + 1, {}).setdefault(target, {})[sender] = message

    def deliveries(self, round_number: int) -> dict[Hashable, dict[Hashable, object]]:
        """Pop and return this round's inboxes (recipient -> sender -> msg).

        Mail addressed to a recipient already crashed by ``round_number``
        is destroyed here and re-booked as dropped; with ``shuffle`` on,
        each surviving multi-sender inbox is rebuilt in the schedule's
        adversarial order (over the canonically sorted sender list, so the
        permutation is identical in every mode).
        """
        bucket = self._buckets.pop(round_number, None)
        if not bucket:
            return {}
        schedule = self.schedule
        for target in list(bucket):
            crash = schedule.crash_round(self._canon_of(target))
            if crash is not None and round_number >= crash:
                self.dropped += len(bucket.pop(target))
        if schedule.model.shuffle:
            for target, inbox in bucket.items():
                if len(inbox) > 1:
                    senders = sorted(inbox, key=self._sort_key)
                    order = schedule.shuffle_order(
                        round_number, self._canon_of(target), len(senders)
                    )
                    bucket[target] = {senders[i]: inbox[senders[i]] for i in order}
        return bucket

    def has_mail(self) -> bool:
        """True while any bucket (present or future round) holds a message."""
        return bool(self._buckets)

    def take_round_stats(self) -> tuple[int, int, int]:
        """Return and reset the (dropped, delayed, duplicated) counters --
        called once per round to fill the fault telemetry columns."""
        stats = (self.dropped, self.delayed, self.duplicated)
        self.dropped = self.delayed = self.duplicated = 0
        return stats


def _canonical_identity(value: int) -> int:
    """Sort key when program ids are already canonical ints (core mode)."""
    return value
