"""Node programs for the CONGEST simulator.

A :class:`NodeProgram` is the code running at a single network node.  The
simulator drives it through rounds: at the start of every round it receives
the messages its neighbours sent in the previous round and returns the
messages (at most one per neighbour, each at most ``bandwidth_words`` machine
words) it wants to send this round.  A node that has nothing left to do
declares itself halted; the simulation ends when every node has halted and no
messages are in flight.

Everything here serves the two *per-node* execution modes (the full-scan
reference and the active-set simulator, in label or core space); the
vectorized runtime mode never instantiates node programs -- it runs the
compiled batch twins of :mod:`repro.congest.runtime`, which must reproduce
these semantics observationally (``docs/simulator.md``).  Only
:func:`message_size_in_words` is shared by all three modes, so word
accounting cannot drift between them.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping


class NodeContext:
    """Static information a node knows at the start of the computation.

    Matching the model assumptions in Section 1.3.1, a node knows its own
    identifier, its incident edges (with weights), and the global parameters
    ``n`` and an upper bound on the diameter ``D`` (the paper notes these can
    be computed in ``O(D)`` rounds if unknown, which is negligible).

    ``diameter_bound`` may be handed in as a plain integer or as a zero-
    argument callable; in the latter case it is resolved (and cached) the
    first time a program reads it.  Programs that never consult ``D`` --
    most of the primitives -- therefore never pay for a diameter
    computation, which is what keeps the simulator's set-up cost
    proportional to the graph size rather than to an all-pairs BFS.

    ``id_key`` is the canonical sort key for node identifiers, used by
    programs that tie-break on ids (BFS parent choice, leader election).
    Label-mode simulations use ``repr``; the CSR core mode passes the
    identity, because indices are assigned in repr order of the labels --
    the two keys therefore induce the *same* total order, which is what
    keeps the core-mode executions bit-compatible with label-mode ones.
    """

    __slots__ = ("node", "neighbours", "edge_weights", "num_nodes", "id_key", "_diameter_bound")

    def __setattr__(self, name: str, value: object) -> None:
        # Immutable after construction (like the frozen dataclass it replaces),
        # except for the lazy diameter cache slot.
        if name != "_diameter_bound" and hasattr(self, name):
            raise AttributeError(f"NodeContext.{name} is read-only")
        object.__setattr__(self, name, value)

    def __init__(
        self,
        node: Hashable,
        neighbours: tuple[Hashable, ...],
        edge_weights: Mapping[Hashable, float],
        num_nodes: int,
        diameter_bound: int | Callable[[], int],
        id_key: Callable[[Hashable], object] = repr,
    ) -> None:
        self.node = node
        self.neighbours = neighbours
        self.edge_weights = edge_weights
        self.num_nodes = num_nodes
        self.id_key = id_key
        self._diameter_bound = diameter_bound

    @property
    def diameter_bound(self) -> int:
        if callable(self._diameter_bound):
            self._diameter_bound = self._diameter_bound()
        return self._diameter_bound

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"NodeContext(node={self.node!r}, degree={len(self.neighbours)}, "
            f"n={self.num_nodes})"
        )


class NodeProgram:
    """Base class for per-node CONGEST programs.

    Subclasses override :meth:`on_round`; the default implementation halts
    immediately.  Programs communicate *only* through the returned message
    dict -- the simulator enforces that messages go to genuine neighbours and
    respect the bandwidth limit.
    """

    def __init__(self, context: NodeContext) -> None:
        self.context = context
        self.halted = False

    def on_start(self) -> dict[Hashable, object]:
        """Return the messages to send in round 1 (before anything is received).

        Invariants callers may rely on: every program's ``on_start`` runs
        exactly once, in canonical node order, and counts as round 1 in the
        telemetry whether or not anything is sent.  A program that halts
        here sleeps until a message wakes it (halting never loses mail).
        """
        return {}

    def on_round(self, round_number: int, inbox: dict[Hashable, object]) -> dict[Hashable, object]:
        """Process the messages received this round; return messages to send.

        Args:
            round_number: 1-based round counter.
            inbox: mapping neighbour -> message for every message received.

        Returns:
            Mapping neighbour -> message to send this round (may be empty).

        Invariants callers may rely on: ``on_round`` is invoked exactly for
        the active set (nodes with mail plus never-halted nodes), in
        canonical node order; messages returned are validated against the
        topology and bandwidth before queueing; a message sent in round
        ``r`` is delivered at the start of round ``r + 1``.
        """
        self.halted = True
        return {}

    def result(self) -> object:
        """Return this node's final output (algorithm specific)."""
        return None


def message_size_in_words(message: object) -> int:
    """Return the size of a message in machine words (CONGEST accounting).

    A "word" is ``O(log n)`` bits: a node identifier, an edge weight, or a
    small integer each count as one word.  Tuples and lists count the sum of
    their elements; strings count one word per ``8`` characters (they are
    only used for small tags).  The simulator rejects messages larger than
    its per-edge bandwidth.
    """
    if message is None:
        return 0
    if isinstance(message, (int, float, bool)):
        return 1
    if isinstance(message, str):
        return max(1, (len(message) + 7) // 8)
    if isinstance(message, (tuple, list)):
        return sum(message_size_in_words(item) for item in message)
    if isinstance(message, dict):
        return sum(
            message_size_in_words(key) + message_size_in_words(value)
            for key, value in message.items()
        )
    # Anything else is treated as a single opaque word; programs in this
    # package only ever send numbers, ids and small tuples.
    return 1
