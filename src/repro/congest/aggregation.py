"""Part-wise aggregation over a shortcut, simulated at the message-schedule level.

This is the primitive the whole shortcut framework exists to accelerate
(Section 1.3.3): every part must compute an associative aggregate
(min / max / sum) of values held by its members.  Theorem 1's algorithm does
this by convergecasting towards a per-part leader on ``G[P_i] + H_i`` and
broadcasting the result back; the cost is governed by the dilation of those
subgraphs (block parameter times tree diameter) plus the congestion of edges
shared by several parts.

The simulation here is faithful to the CONGEST accounting without running
full node programs: every part builds a BFS aggregation tree of its
augmented subgraph, each aggregation-tree edge must carry one "up" message
(after all of the child's children have reported) and one "down" message
(after the parent has learned the result), and **each directed graph edge
delivers at most one message per round** -- so edges used by many parts
serialise, which is exactly how congestion costs rounds in the model.  A
greedy FIFO schedule is used; optimal scheduling is NP-hard but within
``O(congestion + dilation)`` of the greedy one, so the measured shape is the
one the theory predicts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Sequence

import networkx as nx

from ..errors import SimulationError
from ..shortcuts.shortcut import Shortcut
from ..structure.spanning import bfs_spanning_tree

Value = object
DirectedEdge = tuple[Hashable, Hashable]


@dataclass
class AggregationResult:
    """Outcome of one part-wise aggregation.

    Attributes:
        values: per-part aggregate value, indexed like the shortcut's parts.
        rounds: number of synchronous rounds the greedy schedule needed
            (convergecast plus broadcast, including congestion delays).
        messages: total messages sent.
        per_part_rounds: the round in which each part finished (its broadcast
            completed); the maximum equals ``rounds``.
    """

    values: list[Value]
    rounds: int
    messages: int
    per_part_rounds: list[int] = field(default_factory=list)


@dataclass
class _Task:
    """One message that must traverse one directed edge for one part."""

    part: int
    edge: DirectedEdge
    kind: str  # "up" or "down"
    child: Hashable  # the aggregation-subtree child whose data moves (for "up")


def _aggregation_tree(augmented: nx.Graph, anchor: Hashable) -> dict[Hashable, Hashable | None]:
    """Return a BFS parent map of the component of ``anchor`` in the augmented graph."""
    component = nx.node_connected_component(augmented, anchor)
    parent: dict[Hashable, Hashable | None] = {anchor: None}
    queue: deque[Hashable] = deque([anchor])
    while queue:
        node = queue.popleft()
        for neighbour in sorted(augmented.neighbors(node), key=repr):
            if neighbour in component and neighbour not in parent:
                parent[neighbour] = node
                queue.append(neighbour)
    return parent


def partwise_aggregate(
    shortcut: Shortcut,
    values: Mapping[Hashable, Value],
    combine: Callable[[Value, Value], Value] = min,
    max_rounds: int = 1_000_000,
) -> AggregationResult:
    """Aggregate ``values`` within every part of ``shortcut`` and count rounds.

    Args:
        shortcut: the shortcut whose augmented subgraphs define each part's
            communication graph.
        values: per-vertex input values; every vertex of every part must have
            one.  Vertices outside all parts are ignored (they only relay).
        combine: associative, commutative binary operation (min by default).
        max_rounds: safety bound on the schedule length.

    Returns:
        An :class:`AggregationResult` with per-part aggregates and the exact
        number of rounds used by the greedy schedule.
    """
    num_parts = shortcut.num_parts
    aggregates: list[Value] = [None] * num_parts
    per_part_done: list[int] = [0] * num_parts

    # Per-part aggregation trees and bookkeeping.
    parents: list[dict[Hashable, Hashable | None]] = []
    children_count: list[dict[Hashable, int]] = []
    pending_children: list[dict[Hashable, int]] = []
    partial: list[dict[Hashable, Value]] = []
    for index in range(num_parts):
        part = shortcut.parts[index]
        for vertex in part:
            if vertex not in values:
                raise SimulationError(f"no input value for vertex {vertex} of part {index}")
        augmented = shortcut.augmented_subgraph(index)
        anchor = min(part, key=repr)
        parent = _aggregation_tree(augmented, anchor)
        parents.append(parent)
        counts: dict[Hashable, int] = {node: 0 for node in parent}
        for node, par in parent.items():
            if par is not None:
                counts[par] += 1
        children_count.append(dict(counts))
        pending_children.append(dict(counts))
        partial.append(
            {
                node: values[node] if node in part else None
                for node in parent
            }
        )

    # Build the initial set of ready "up" tasks: leaves of each aggregation tree.
    edge_queues: dict[DirectedEdge, deque[_Task]] = {}
    outstanding = 0

    def enqueue(task: _Task) -> None:
        nonlocal outstanding
        edge_queues.setdefault(task.edge, deque()).append(task)
        outstanding += 1

    for index in range(num_parts):
        parent = parents[index]
        for node, par in parent.items():
            if par is not None and pending_children[index][node] == 0:
                enqueue(_Task(part=index, edge=(node, par), kind="up", child=node))

    # Down-phase bookkeeping: which vertices still await the broadcast.
    awaiting_down: list[set[Hashable]] = [set() for _ in range(num_parts)]

    rounds = 0
    messages = 0
    while outstanding > 0:
        if rounds > max_rounds:
            raise SimulationError("aggregation schedule exceeded the round budget")
        rounds += 1
        delivered: list[_Task] = []
        # Each directed edge delivers at most one message per round.
        for edge in sorted(edge_queues.keys(), key=repr):
            queue = edge_queues[edge]
            if queue:
                delivered.append(queue.popleft())
                outstanding -= 1
                messages += 1
        for task in delivered:
            index = task.part
            parent = parents[index]
            if task.kind == "up":
                sender, receiver = task.edge
                value = partial[index][sender]
                current = partial[index][receiver]
                if value is not None:
                    partial[index][receiver] = (
                        value if current is None else combine(current, value)
                    )
                pending_children[index][receiver] -= 1
                if pending_children[index][receiver] == 0:
                    grand = parent[receiver]
                    if grand is not None:
                        enqueue(_Task(part=index, edge=(receiver, grand), kind="up", child=receiver))
                    else:
                        # The root has the aggregate: start the broadcast.
                        aggregates[index] = partial[index][receiver]
                        awaiting_down[index] = {
                            node for node, par in parent.items() if par is not None
                        }
                        if not awaiting_down[index]:
                            per_part_done[index] = rounds
                        for node, par in parent.items():
                            if par == receiver:
                                enqueue(
                                    _Task(part=index, edge=(receiver, node), kind="down", child=node)
                                )
            else:  # down
                sender, receiver = task.edge
                awaiting_down[index].discard(receiver)
                if not awaiting_down[index]:
                    per_part_done[index] = rounds
                for node, par in parents[index].items():
                    if par == receiver:
                        enqueue(_Task(part=index, edge=(receiver, node), kind="down", child=node))

    # Single-vertex parts never enqueue anything; their aggregate is their value.
    for index in range(num_parts):
        if aggregates[index] is None:
            part = shortcut.parts[index]
            part_values = [values[v] for v in part]
            aggregate = part_values[0]
            for value in part_values[1:]:
                aggregate = combine(aggregate, value)
            aggregates[index] = aggregate
            per_part_done[index] = max(per_part_done[index], 0)

    return AggregationResult(
        values=aggregates,
        rounds=rounds,
        messages=messages,
        per_part_rounds=per_part_done,
    )
