"""Part-wise aggregation over a shortcut, simulated at the message-schedule level.

This is the primitive the whole shortcut framework exists to accelerate
(Section 1.3.3): every part must compute an associative aggregate
(min / max / sum) of values held by its members.  Theorem 1's algorithm does
this by convergecasting towards a per-part leader on ``G[P_i] + H_i`` and
broadcasting the result back; the cost is governed by the dilation of those
subgraphs (block parameter times tree diameter) plus the congestion of edges
shared by several parts.

The simulation here is faithful to the CONGEST accounting without running
full node programs: every part builds a BFS aggregation tree of its
augmented subgraph, each aggregation-tree edge must carry one "up" message
(after all of the child's children have reported) and one "down" message
(after the parent has learned the result), and **each directed graph edge
delivers at most one message per round** -- so edges used by many parts
serialise, which is exactly how congestion costs rounds in the model.  A
greedy FIFO schedule is used; optimal scheduling is NP-hard but within
``O(congestion + dilation)`` of the greedy one, so the measured shape is the
one the theory predicts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Sequence

import networkx as nx

from ..core import core_enabled, view_of
from ..errors import SimulationError
from ..shortcuts.shortcut import Shortcut
from ..structure.spanning import bfs_spanning_tree

Value = object
DirectedEdge = tuple[Hashable, Hashable]


@dataclass
class AggregationResult:
    """Outcome of one part-wise aggregation.

    Attributes:
        values: per-part aggregate value, indexed like the shortcut's parts.
        rounds: number of synchronous rounds the greedy schedule needed
            (convergecast plus broadcast, including congestion delays).
        messages: total messages sent.
        per_part_rounds: the round in which each part finished (its broadcast
            completed); the maximum equals ``rounds``.
    """

    values: list[Value]
    rounds: int
    messages: int
    per_part_rounds: list[int] = field(default_factory=list)


@dataclass
class _Task:
    """One message that must traverse one directed edge for one part."""

    part: int
    edge: DirectedEdge
    kind: str  # "up" or "down"
    child: Hashable  # the aggregation-subtree child whose data moves (for "up")


def _aggregation_tree(augmented: nx.Graph, anchor: Hashable) -> dict[Hashable, Hashable | None]:
    """Return a BFS parent map of the component of ``anchor`` in the augmented graph."""
    component = nx.node_connected_component(augmented, anchor)
    parent: dict[Hashable, Hashable | None] = {anchor: None}
    queue: deque[Hashable] = deque([anchor])
    while queue:
        node = queue.popleft()
        for neighbour in sorted(augmented.neighbors(node), key=repr):
            if neighbour in component and neighbour not in parent:
                parent[neighbour] = node
                queue.append(neighbour)
    return parent


def _aggregation_tree_core(
    shortcut: Shortcut, index: int
) -> dict[Hashable, Hashable | None]:
    """The CSR twin of ``augmented_subgraph`` + ``_aggregation_tree``.

    Builds the part's augmented adjacency (induced CSR slice of ``P_i`` plus
    the ``H_i`` edges) as flat index lists and BFS-walks it from the minimum
    index of the part.  Index order is repr order, so both the anchor choice
    and the neighbour tie-breaking coincide with the networkx path and the
    returned label-keyed parent map is identical.
    """
    view = view_of(shortcut.graph)
    index_of = view.index_of
    members = sorted(index_of(node) for node in shortcut.parts[index])
    member_set = set(members)
    adjacency: dict[int, list[int]] = {u: [] for u in members}
    neighbors = view.core.neighbors
    for u in members:
        adjacency[u] = [v for v in neighbors(u) if v in member_set]
    for a, b in shortcut.edge_sets[index]:
        u, v = index_of(a), index_of(b)
        row = adjacency.setdefault(u, [])
        if v not in row:
            row.append(v)
        row = adjacency.setdefault(v, [])
        if u not in row:
            row.append(u)
    anchor = members[0]
    parent_idx: dict[int, int | None] = {anchor: None}
    queue: deque[int] = deque([anchor])
    while queue:
        u = queue.popleft()
        for v in sorted(adjacency[u]):
            if v not in parent_idx:
                parent_idx[v] = u
                queue.append(v)
    node_of = view.nodes
    return {
        node_of[u]: (None if p is None else node_of[p]) for u, p in parent_idx.items()
    }


def partwise_aggregate(
    shortcut: Shortcut,
    values: Mapping[Hashable, Value],
    combine: Callable[[Value, Value], Value] = min,
    max_rounds: int = 1_000_000,
) -> AggregationResult:
    """Aggregate ``values`` within every part of ``shortcut`` and count rounds.

    Args:
        shortcut: the shortcut whose augmented subgraphs define each part's
            communication graph.
        values: per-vertex input values; every vertex of every part must have
            one.  Vertices outside all parts are ignored (they only relay).
        combine: associative, commutative binary operation (min by default).
        max_rounds: safety bound on the schedule length.

    Returns:
        An :class:`AggregationResult` with per-part aggregates and the exact
        number of rounds used by the greedy schedule.
    """
    num_parts = shortcut.num_parts
    aggregates: list[Value] = [None] * num_parts
    per_part_done: list[int] = [0] * num_parts

    # Per-part aggregation trees and bookkeeping.
    use_core = core_enabled()
    parents: list[dict[Hashable, Hashable | None]] = []
    children_count: list[dict[Hashable, int]] = []
    pending_children: list[dict[Hashable, int]] = []
    partial: list[dict[Hashable, Value]] = []
    for index in range(num_parts):
        part = shortcut.parts[index]
        for vertex in part:
            if vertex not in values:
                raise SimulationError(f"no input value for vertex {vertex} of part {index}")
        if use_core:
            parent = _aggregation_tree_core(shortcut, index)
        else:
            augmented = shortcut.augmented_subgraph(index)
            anchor = min(part, key=repr)
            parent = _aggregation_tree(augmented, anchor)
        parents.append(parent)
        counts: dict[Hashable, int] = {node: 0 for node in parent}
        for node, par in parent.items():
            if par is not None:
                counts[par] += 1
        children_count.append(dict(counts))
        pending_children.append(dict(counts))
        partial.append(
            {
                node: values[node] if node in part else None
                for node in parent
            }
        )

    # Build the initial set of ready "up" tasks: leaves of each aggregation tree.
    # Directed edges deliver in canonical (repr) order each round.  On the
    # core path the schedule tracks only edges with queued tasks (with their
    # repr computed once); the reference path re-sorts -- and re-reprs -- the
    # full key set every round, exactly like the pre-CoreGraph implementation.
    # Both visit the same non-empty queues in the same order.
    edge_queues: dict[DirectedEdge, deque[_Task]] = {}
    active_edges: set[DirectedEdge] = set()
    edge_key: dict[DirectedEdge, str] = {}
    outstanding = 0

    def enqueue(task: _Task) -> None:
        nonlocal outstanding
        queue = edge_queues.get(task.edge)
        if queue is None:
            queue = edge_queues[task.edge] = deque()
            if use_core:
                edge_key[task.edge] = repr(task.edge)
        queue.append(task)
        if use_core:
            active_edges.add(task.edge)
        outstanding += 1

    for index in range(num_parts):
        parent = parents[index]
        for node, par in parent.items():
            if par is not None and pending_children[index][node] == 0:
                enqueue(_Task(part=index, edge=(node, par), kind="up", child=node))

    # Down-phase bookkeeping: which vertices still await the broadcast.
    awaiting_down: list[set[Hashable]] = [set() for _ in range(num_parts)]

    rounds = 0
    messages = 0
    while outstanding > 0:
        if rounds > max_rounds:
            raise SimulationError("aggregation schedule exceeded the round budget")
        rounds += 1
        delivered: list[_Task] = []
        # Each directed edge delivers at most one message per round.
        if use_core:
            schedule = sorted(active_edges, key=edge_key.__getitem__)
        else:
            schedule = sorted(edge_queues.keys(), key=repr)
        for edge in schedule:
            queue = edge_queues[edge]
            if queue:
                delivered.append(queue.popleft())
                outstanding -= 1
                messages += 1
                if use_core and not queue:
                    active_edges.discard(edge)
        for task in delivered:
            index = task.part
            parent = parents[index]
            if task.kind == "up":
                sender, receiver = task.edge
                value = partial[index][sender]
                current = partial[index][receiver]
                if value is not None:
                    partial[index][receiver] = (
                        value if current is None else combine(current, value)
                    )
                pending_children[index][receiver] -= 1
                if pending_children[index][receiver] == 0:
                    grand = parent[receiver]
                    if grand is not None:
                        enqueue(_Task(part=index, edge=(receiver, grand), kind="up", child=receiver))
                    else:
                        # The root has the aggregate: start the broadcast.
                        aggregates[index] = partial[index][receiver]
                        awaiting_down[index] = {
                            node for node, par in parent.items() if par is not None
                        }
                        if not awaiting_down[index]:
                            per_part_done[index] = rounds
                        for node, par in parent.items():
                            if par == receiver:
                                enqueue(
                                    _Task(part=index, edge=(receiver, node), kind="down", child=node)
                                )
            else:  # down
                sender, receiver = task.edge
                awaiting_down[index].discard(receiver)
                if not awaiting_down[index]:
                    per_part_done[index] = rounds
                for node, par in parents[index].items():
                    if par == receiver:
                        enqueue(_Task(part=index, edge=(receiver, node), kind="down", child=node))

    # Single-vertex parts never enqueue anything; their aggregate is their value.
    for index in range(num_parts):
        if aggregates[index] is None:
            part = shortcut.parts[index]
            part_values = [values[v] for v in part]
            aggregate = part_values[0]
            for value in part_values[1:]:
                aggregate = combine(aggregate, value)
            aggregates[index] = aggregate
            per_part_done[index] = max(per_part_done[index], 0)

    return AggregationResult(
        values=aggregates,
        rounds=rounds,
        messages=messages,
        per_part_rounds=per_part_done,
    )
