"""Part-wise aggregation over a shortcut, simulated at the message-schedule level.

This is the primitive the whole shortcut framework exists to accelerate
(Section 1.3.3): every part must compute an associative aggregate
(min / max / sum) of values held by its members.  Theorem 1's algorithm does
this by convergecasting towards a per-part leader on ``G[P_i] + H_i`` and
broadcasting the result back; the cost is governed by the dilation of those
subgraphs (block parameter times tree diameter) plus the congestion of edges
shared by several parts.

The simulation here is faithful to the CONGEST accounting without running
full node programs: every part builds a BFS aggregation tree of its
augmented subgraph, each aggregation-tree edge must carry one "up" message
(after all of the child's children have reported) and one "down" message
(after the parent has learned the result), and **each directed graph edge
delivers at most one message per round** -- so edges used by many parts
serialise, which is exactly how congestion costs rounds in the model.  A
greedy FIFO schedule is used; optimal scheduling is NP-hard but within
``O(congestion + dilation)`` of the greedy one, so the measured shape is the
one the theory predicts.

This schedule-level simulation sits *beside* the node-program simulator
and its three execution modes (``docs/simulator.md``): the single-tree
convergecast that does run as node programs is
:func:`repro.congest.primitives.convergecast_aggregate`; this module is
the many-parts, shared-edges generalisation whose round counts realise the
quality -> rounds argument of Theorem 1.

Two entry points share one core scheduler:

* :func:`partwise_aggregate` -- the label-keyed public primitive: ``values``
  maps node labels to inputs, per-part aggregates come back in part order.
  On the CSR fast path the schedule runs entirely in vertex-index space
  (flat adjacency slices, int-keyed queues, per-edge delivery keys derived
  from the label reprs exactly once), producing round-for-round identical
  schedules to the preserved label implementation; forcing
  :func:`repro.core.networkx_reference_paths` runs the seed scheduler
  verbatim, and the differential tests pin the two equal on every family.
* :func:`partwise_aggregate_indexed` -- the array-native twin used by the
  Boruvka fast path (:mod:`repro.algorithms.mst`): ``values`` is a flat
  sequence indexed by :class:`~repro.core.GraphView` vertex index, so a
  caller that already lives in index space never round-trips through label
  dictionaries.  Aggregates, rounds and messages are identical to the
  label-keyed entry point by construction (the schedule never looks at the
  values).

Shortcuts built by the array-native construction engine carry their part
family and shortcut edges as vertex-index arrays
(:meth:`repro.shortcuts.engine.ConstructionEngine.build_shortcut`); the
scheduler consumes those directly and only falls back to the label
``edge_sets`` / ``parts`` for shortcuts built in label space.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Sequence

import networkx as nx

from ..core import core_enabled, view_of
from ..errors import SimulationError
from ..shortcuts.shortcut import Shortcut

Value = object
DirectedEdge = tuple[Hashable, Hashable]


@dataclass
class AggregationResult:
    """Outcome of one part-wise aggregation.

    Attributes:
        values: per-part aggregate value, indexed like the shortcut's parts.
        rounds: number of synchronous rounds the greedy schedule needed
            (convergecast plus broadcast, including congestion delays).
        messages: total messages sent.
        per_part_rounds: the round in which each part finished (its broadcast
            completed); the maximum equals ``rounds``.
    """

    values: list[Value]
    rounds: int
    messages: int
    per_part_rounds: list[int] = field(default_factory=list)


@dataclass
class _Task:
    """One message that must traverse one directed edge for one part."""

    part: int
    edge: DirectedEdge
    kind: str  # "up" or "down"
    child: Hashable  # the aggregation-subtree child whose data moves (for "up")


def _aggregation_tree(augmented: nx.Graph, anchor: Hashable) -> dict[Hashable, Hashable | None]:
    """Return a BFS parent map of the component of ``anchor`` in the augmented graph."""
    component = nx.node_connected_component(augmented, anchor)
    parent: dict[Hashable, Hashable | None] = {anchor: None}
    queue: deque[Hashable] = deque([anchor])
    while queue:
        node = queue.popleft()
        for neighbour in sorted(augmented.neighbors(node), key=repr):
            if neighbour in component and neighbour not in parent:
                parent[neighbour] = node
                queue.append(neighbour)
    return parent


def partwise_aggregate(
    shortcut: Shortcut,
    values: Mapping[Hashable, Value],
    combine: Callable[[Value, Value], Value] = min,
    max_rounds: int = 1_000_000,
) -> AggregationResult:
    """Aggregate ``values`` within every part of ``shortcut`` and count rounds.

    Args:
        shortcut: the shortcut whose augmented subgraphs define each part's
            communication graph.
        values: per-vertex input values; every vertex of every part must have
            one (a part vertex without a value raises
            :class:`~repro.errors.SimulationError`).  Vertices outside all
            parts are ignored (they only relay).
        combine: associative, commutative binary operation (min by default).
        max_rounds: safety bound on the schedule length.

    Returns:
        An :class:`AggregationResult` with per-part aggregates and the exact
        number of rounds used by the greedy schedule.

    Reference path: inside :func:`repro.core.networkx_reference_paths` the
    preserved seed scheduler runs on label-keyed dicts and ``nx`` subgraphs;
    the fast index-space scheduler is round-, message- and value-identical
    (``tests/test_core_graphview.py`` pins this on every family).
    """
    if core_enabled():
        return _partwise_aggregate_core(shortcut, values, None, combine, max_rounds)
    return _partwise_aggregate_reference(shortcut, values, combine, max_rounds)


def partwise_aggregate_indexed(
    shortcut: Shortcut,
    values: Sequence[Value],
    combine: Callable[[Value, Value], Value] = min,
    max_rounds: int = 1_000_000,
) -> AggregationResult:
    """Index-space twin of :func:`partwise_aggregate`.

    ``values`` is a sequence of length ``n`` indexed by the
    :class:`~repro.core.GraphView` vertex index (full coverage -- every
    vertex has an entry, so the label path's missing-value check does not
    apply).  This is the entry point for callers that already hold their
    state in flat arrays, like the Boruvka MWOE step; it skips the
    label-dictionary round trip entirely.  Outside the CSR fast paths the
    values are relabelled once and the preserved reference scheduler runs,
    so both modes remain available to differential tests.
    """
    if core_enabled():
        return _partwise_aggregate_core(shortcut, None, values, combine, max_rounds)
    view = view_of(shortcut.graph)
    labelled = {view.nodes[index]: value for index, value in enumerate(values)}
    return _partwise_aggregate_reference(shortcut, labelled, combine, max_rounds)


def _core_members(shortcut: Shortcut):
    """Return (view, part_set) for the index-space scheduler."""
    part_set = shortcut.part_set()
    return part_set.view, part_set


def _core_edge_lists(shortcut: Shortcut, view) -> list[list[tuple[int, int]]]:
    """Per-part shortcut edges as vertex-index pairs.

    Engine-built shortcuts carry them from construction; label-built
    shortcuts convert their canonical edge sets once per aggregation.
    """
    if shortcut._core_edges is not None:
        return shortcut._core_edges
    index_of = view.index_of
    return [
        [(index_of(u), index_of(v)) for u, v in edges] for edges in shortcut.edge_sets
    ]


def _partwise_aggregate_core(
    shortcut: Shortcut,
    label_values: Mapping[Hashable, Value] | None,
    indexed_values: Sequence[Value] | None,
    combine: Callable[[Value, Value], Value],
    max_rounds: int,
) -> AggregationResult:
    """The index-space greedy scheduler (the CSR fast path).

    Vertices are view indices throughout; the only label work is the
    per-directed-edge delivery key ``repr((label_u, label_v))``, computed
    once per edge that actually carries a message, which keeps the greedy
    schedule order identical to the preserved label implementation (index
    order is repr order for vertices, but *edge* keys are string reprs of
    label pairs, so they must be derived from the labels).
    """
    view, part_set = _core_members(shortcut)
    node_of = view.nodes
    num_parts = part_set.num_parts
    aggregates: list[Value] = [None] * num_parts
    per_part_done: list[int] = [0] * num_parts

    if label_values is not None:
        # Same missing-value check (and same reported vertex) as the
        # reference path: iterate the label parts in frozenset order.
        for index, part in enumerate(shortcut.parts):
            for vertex in part:
                if vertex not in label_values:
                    raise SimulationError(
                        f"no input value for vertex {vertex} of part {index}"
                    )

        def value_of(vertex: int) -> Value:
            return label_values[node_of[vertex]]

    else:

        def value_of(vertex: int) -> Value:
            return indexed_values[vertex]

    core = view.core
    indptr, indices = core._indptr_list, core._indices_list
    edge_lists = _core_edge_lists(shortcut, view)

    # Per-part aggregation trees (BFS parent maps over the augmented
    # subgraph, anchored at the part's minimum index) and bookkeeping.
    parents: list[dict[int, int | None]] = []
    children: list[dict[int, list[int]]] = []
    pending_children: list[dict[int, int]] = []
    partial: list[dict[int, Value]] = []
    for index in range(num_parts):
        members = part_set.members_of(index)
        member_set = set(members)
        adjacency: dict[int, list[int]] = {
            u: [v for v in indices[indptr[u] : indptr[u + 1]] if v in member_set]
            for u in members
        }
        for a, b in edge_lists[index]:
            row = adjacency.setdefault(a, [])
            if b not in row:
                row.append(b)
            row = adjacency.setdefault(b, [])
            if a not in row:
                row.append(a)
        anchor = members[0]
        parent: dict[int, int | None] = {anchor: None}
        # Children lists recorded in BFS discovery order -- the same order a
        # scan of ``parent.items()`` yields (dict insertion order), so the
        # down-phase enqueues below are schedule-identical to the reference
        # path's full scans while costing O(children) instead of O(part).
        kids: dict[int, list[int]] = {}
        queue: deque[int] = deque([anchor])
        while queue:
            u = queue.popleft()
            for v in sorted(adjacency[u]):
                if v not in parent:
                    parent[v] = u
                    kids.setdefault(u, []).append(v)
                    queue.append(v)
        parents.append(parent)
        children.append(kids)
        counts: dict[int, int] = {node: 0 for node in parent}
        for node, par in parent.items():
            if par is not None:
                counts[par] += 1
        pending_children.append(counts)
        partial.append(
            {
                node: value_of(node) if node in member_set else None
                for node in parent
            }
        )

    # Build the initial set of ready "up" tasks: leaves of each aggregation
    # tree.  Directed edges deliver in canonical (repr) order each round;
    # the repr of an index edge is derived from its labels once, when the
    # edge first carries a task.
    #
    # Hot-path representation (schedule-identical to the reference
    # scheduler, several times cheaper per message): tasks are plain
    # ``(part, sender, receiver, is_up)`` tuples, and the active edges are
    # kept as an always-sorted list that is *merged* with each round's
    # newly activated edges instead of being re-sorted from scratch every
    # round -- at 10^6 nodes the per-round ``sorted`` is the dominant cost.
    edge_queues: dict[tuple[int, int], deque] = {}
    edge_key: dict[tuple[int, int], str] = {}
    outstanding = 0
    fresh_edges: list[tuple[int, int]] = []  # activated since the last merge

    def enqueue(index: int, sender: int, receiver: int, is_up: bool) -> None:
        nonlocal outstanding
        edge = (sender, receiver)
        queue = edge_queues.get(edge)
        if queue is None:
            queue = edge_queues[edge] = deque()
            edge_key[edge] = f"({node_of[sender]!r}, {node_of[receiver]!r})"
        if not queue:
            fresh_edges.append(edge)
        queue.append((index, sender, receiver, is_up))
        outstanding += 1

    for index in range(num_parts):
        parent = parents[index]
        pending = pending_children[index]
        for node, par in parent.items():
            if par is not None and pending[node] == 0:
                enqueue(index, node, par, True)

    # Down-phase bookkeeping: which vertices still await the broadcast.
    awaiting_down: list[set[int]] = [set() for _ in range(num_parts)]

    key_of = edge_key.__getitem__
    rounds = 0
    messages = 0
    active: list[tuple[int, int]] = []  # sorted by edge key, queues non-empty
    while outstanding > 0:
        if rounds > max_rounds:
            raise SimulationError("aggregation schedule exceeded the round budget")
        rounds += 1
        if fresh_edges:
            fresh_edges.sort(key=key_of)
            if active:
                # Merge the (sorted) survivors with the newly activated
                # edges; both lists are duplicate-free and disjoint.
                merged: list[tuple[int, int]] = []
                append = merged.append
                iter_old = iter(active)
                iter_new = iter(fresh_edges)
                old_edge = next(iter_old, None)
                new_edge = next(iter_new, None)
                while old_edge is not None and new_edge is not None:
                    if key_of(old_edge) <= key_of(new_edge):
                        append(old_edge)
                        old_edge = next(iter_old, None)
                    else:
                        append(new_edge)
                        new_edge = next(iter_new, None)
                while old_edge is not None:
                    append(old_edge)
                    old_edge = next(iter_old, None)
                while new_edge is not None:
                    append(new_edge)
                    new_edge = next(iter_new, None)
                active = merged
            else:
                active = fresh_edges
            fresh_edges = []
        # Each directed edge delivers at most one message per round.
        delivered: list[tuple[int, int, int, bool]] = []
        still_active: list[tuple[int, int]] = []
        deliver = delivered.append
        keep = still_active.append
        queues = edge_queues
        for edge in active:
            queue = queues[edge]
            deliver(queue.popleft())
            if queue:
                keep(edge)
        outstanding -= len(delivered)
        messages += len(delivered)
        active = still_active
        for index, sender, receiver, is_up in delivered:
            if is_up:
                part_partial = partial[index]
                value = part_partial[sender]
                if value is not None:
                    current = part_partial[receiver]
                    part_partial[receiver] = (
                        value if current is None else combine(current, value)
                    )
                pending = pending_children[index]
                pending[receiver] -= 1
                if pending[receiver] == 0:
                    parent = parents[index]
                    grand = parent[receiver]
                    if grand is not None:
                        enqueue(index, receiver, grand, True)
                    else:
                        # The root has the aggregate: start the broadcast.
                        aggregates[index] = partial[index][receiver]
                        awaiting_down[index] = {
                            node for node, par in parent.items() if par is not None
                        }
                        if not awaiting_down[index]:
                            per_part_done[index] = rounds
                        for node in children[index].get(receiver, ()):
                            enqueue(index, receiver, node, False)
            else:  # down
                waiting = awaiting_down[index]
                waiting.discard(receiver)
                if not waiting:
                    per_part_done[index] = rounds
                for node in children[index].get(receiver, ()):
                    enqueue(index, receiver, node, False)

    # Single-vertex parts (and parts whose anchor component never produced a
    # task) fall back to a direct fold over their members' values.
    for index in range(num_parts):
        if aggregates[index] is None:
            members = part_set.members_of(index)
            aggregate = value_of(members[0])
            for member in members[1:]:
                aggregate = combine(aggregate, value_of(member))
            aggregates[index] = aggregate
            per_part_done[index] = max(per_part_done[index], 0)

    return AggregationResult(
        values=aggregates,
        rounds=rounds,
        messages=messages,
        per_part_rounds=per_part_done,
    )


def _partwise_aggregate_reference(
    shortcut: Shortcut,
    values: Mapping[Hashable, Value],
    combine: Callable[[Value, Value], Value],
    max_rounds: int,
) -> AggregationResult:
    """The preserved label-keyed scheduler (the pre-CoreGraph implementation).

    Kept verbatim as the differential oracle behind
    :func:`repro.core.networkx_reference_paths`: per-part ``nx`` augmented
    subgraphs, label-keyed parent maps, and a full re-sort (and re-``repr``)
    of every queue key each round -- exactly the seed's cost profile.
    """
    num_parts = shortcut.num_parts
    aggregates: list[Value] = [None] * num_parts
    per_part_done: list[int] = [0] * num_parts

    # Per-part aggregation trees and bookkeeping.
    parents: list[dict[Hashable, Hashable | None]] = []
    pending_children: list[dict[Hashable, int]] = []
    partial: list[dict[Hashable, Value]] = []
    for index in range(num_parts):
        part = shortcut.parts[index]
        for vertex in part:
            if vertex not in values:
                raise SimulationError(f"no input value for vertex {vertex} of part {index}")
        augmented = shortcut.augmented_subgraph(index)
        anchor = min(part, key=repr)
        parent = _aggregation_tree(augmented, anchor)
        parents.append(parent)
        counts: dict[Hashable, int] = {node: 0 for node in parent}
        for node, par in parent.items():
            if par is not None:
                counts[par] += 1
        pending_children.append(counts)
        partial.append(
            {
                node: values[node] if node in part else None
                for node in parent
            }
        )

    # Build the initial set of ready "up" tasks: leaves of each aggregation tree.
    edge_queues: dict[DirectedEdge, deque[_Task]] = {}
    outstanding = 0

    def enqueue(task: _Task) -> None:
        nonlocal outstanding
        queue = edge_queues.get(task.edge)
        if queue is None:
            queue = edge_queues[task.edge] = deque()
        queue.append(task)
        outstanding += 1

    for index in range(num_parts):
        parent = parents[index]
        for node, par in parent.items():
            if par is not None and pending_children[index][node] == 0:
                enqueue(_Task(part=index, edge=(node, par), kind="up", child=node))

    # Down-phase bookkeeping: which vertices still await the broadcast.
    awaiting_down: list[set[Hashable]] = [set() for _ in range(num_parts)]

    rounds = 0
    messages = 0
    while outstanding > 0:
        if rounds > max_rounds:
            raise SimulationError("aggregation schedule exceeded the round budget")
        rounds += 1
        delivered: list[_Task] = []
        # Each directed edge delivers at most one message per round.
        for edge in sorted(edge_queues.keys(), key=repr):
            queue = edge_queues[edge]
            if queue:
                delivered.append(queue.popleft())
                outstanding -= 1
                messages += 1
        for task in delivered:
            index = task.part
            parent = parents[index]
            if task.kind == "up":
                sender, receiver = task.edge
                value = partial[index][sender]
                current = partial[index][receiver]
                if value is not None:
                    partial[index][receiver] = (
                        value if current is None else combine(current, value)
                    )
                pending_children[index][receiver] -= 1
                if pending_children[index][receiver] == 0:
                    grand = parent[receiver]
                    if grand is not None:
                        enqueue(_Task(part=index, edge=(receiver, grand), kind="up", child=receiver))
                    else:
                        # The root has the aggregate: start the broadcast.
                        aggregates[index] = partial[index][receiver]
                        awaiting_down[index] = {
                            node for node, par in parent.items() if par is not None
                        }
                        if not awaiting_down[index]:
                            per_part_done[index] = rounds
                        for node, par in parent.items():
                            if par == receiver:
                                enqueue(
                                    _Task(part=index, edge=(receiver, node), kind="down", child=node)
                                )
            else:  # down
                sender, receiver = task.edge
                awaiting_down[index].discard(receiver)
                if not awaiting_down[index]:
                    per_part_done[index] = rounds
                for node, par in parents[index].items():
                    if par == receiver:
                        enqueue(_Task(part=index, edge=(receiver, node), kind="down", child=node))

    # Single-vertex parts never enqueue anything; their aggregate is their value.
    for index in range(num_parts):
        if aggregates[index] is None:
            part = shortcut.parts[index]
            part_values = [values[v] for v in part]
            aggregate = part_values[0]
            for value in part_values[1:]:
                aggregate = combine(aggregate, value)
            aggregates[index] = aggregate
            per_part_done[index] = max(per_part_done[index], 0)

    return AggregationResult(
        values=aggregates,
        rounds=rounds,
        messages=messages,
        per_part_rounds=per_part_done,
    )
