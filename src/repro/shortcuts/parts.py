"""Parts (Definition 9) and workload generators for shortcut experiments.

A *part* is a connected vertex set; the parts of a family are pairwise
disjoint.  In the algorithms that consume shortcuts, parts arise as the
fragments of Boruvka's MST algorithm or as the components of a partially
computed structure; for the shortcut experiments we also need *adversarial*
part families -- long skinny parts that stretch across the whole graph --
because those maximise the gap between the part diameter and the graph
diameter that shortcuts exist to close (the wheel-graph discussion of
Section 1.3.3).
"""

from __future__ import annotations

import random
from typing import Hashable, Sequence

import networkx as nx

from ..core import GraphView, core_enabled, part_connected, part_set_of, view_of
from ..errors import InvalidPartitionError
from ..graphs.weights import WEIGHT
from ..structure.spanning import RootedTree, bfs_spanning_tree
from ..utils import ensure_rng


def validate_parts(graph: nx.Graph | GraphView, parts: Sequence[frozenset]) -> None:
    """Check Definition 9: parts are disjoint, non-empty and connected in ``graph``.

    Connectivity runs on the memoised int-indexed
    :class:`~repro.core.PartSet` of the family (one flat-array BFS per part,
    no per-part label sets) unless the networkx reference paths are forced,
    in which case the original per-part ``subgraph`` + ``is_connected``
    check is used.  Both modes report the same first violation: if the
    family-wide part set cannot be built because a later part has
    non-graph vertices, the core path falls back to per-part BFS so the
    per-part check order is preserved.

    Given a :class:`~repro.core.GraphView` the check runs entirely on the
    CSR arrays (never materialising an ``nx.Graph``), regardless of the
    reference-path flag -- native views are exactly the instances too large
    to convert.
    """
    view = graph if isinstance(graph, GraphView) else None
    part_set = None
    part_set_failed = False
    nodes = None
    seen: set[Hashable] = set()
    for index, part in enumerate(parts):
        if not part:
            raise InvalidPartitionError(f"part {index} is empty")
        overlap = seen & set(part)
        if overlap:
            raise InvalidPartitionError(
                f"parts overlap on vertices {sorted(overlap, key=repr)[:5]}"
            )
        seen |= set(part)
        if nodes is None:
            nodes = set(view.nodes) if view is not None else set(graph.nodes())
        missing = set(part) - nodes
        if missing:
            raise InvalidPartitionError(
                f"part {index} contains non-graph vertices {sorted(missing, key=repr)[:5]}"
            )
        if view is not None or core_enabled():
            if part_set is None and not part_set_failed:
                try:
                    part_set = part_set_of(
                        view if view is not None else view_of(graph), parts
                    )
                except InvalidPartitionError:
                    part_set_failed = True
            if part_set is not None:
                connected = part_set.connected(index)
            else:
                connected = part_connected(
                    view if view is not None else view_of(graph), part
                )
        else:
            connected = nx.is_connected(graph.subgraph(part))
        if not connected:
            raise InvalidPartitionError(f"part {index} is not connected (Definition 9)")


def random_connected_parts(
    graph: nx.Graph,
    num_parts: int,
    part_size: int,
    seed: int | random.Random | None = None,
) -> list[frozenset]:
    """Grow ``num_parts`` disjoint connected parts of roughly ``part_size`` vertices.

    Each part is grown by a randomised BFS from an unused seed vertex and
    stops when it reaches ``part_size`` vertices or runs out of unused
    neighbours.  Vertices not absorbed by any part are simply not in any part
    (Definition 9 does not require the parts to cover the graph).
    """
    if num_parts < 1 or part_size < 1:
        raise InvalidPartitionError("num_parts and part_size must be positive")
    rng = ensure_rng(seed)
    unused = set(graph.nodes())
    parts: list[frozenset] = []
    candidates = sorted(graph.nodes(), key=repr)
    rng.shuffle(candidates)
    for start in candidates:
        if len(parts) >= num_parts:
            break
        if start not in unused:
            continue
        part = {start}
        unused.discard(start)
        frontier = [start]
        while frontier and len(part) < part_size:
            vertex = frontier.pop(rng.randrange(len(frontier)))
            for neighbour in sorted(graph.neighbors(vertex), key=repr):
                if neighbour in unused and len(part) < part_size:
                    part.add(neighbour)
                    unused.discard(neighbour)
                    frontier.append(neighbour)
        parts.append(frozenset(part))
    validate_parts(graph, parts)
    return parts


def tree_fragment_parts(
    graph: nx.Graph | GraphView,
    tree: RootedTree | None = None,
    num_parts: int = 8,
    seed: int | random.Random | None = None,
) -> list[frozenset]:
    """Split a spanning tree into ``num_parts`` subtrees and use them as parts.

    Removing ``num_parts - 1`` random edges from a spanning tree leaves
    ``num_parts`` subtrees; each is connected in the graph (it is connected
    already in the tree) and together they cover every vertex.  This is the
    canonical "fragments of a partially built spanning forest" workload.

    Given a :class:`~repro.core.GraphView` the whole computation is nx-free:
    the cut edges are sampled from the same canonical sorted edge list (so
    the rng draws are identical), and the forest components come from a
    union-find over the surviving parent edges instead of
    ``nx.connected_components`` -- the resulting parts are equal as sets.
    """
    rng = ensure_rng(seed)
    tree = tree if tree is not None else bfs_spanning_tree(graph)
    edges = sorted(tree.edges())
    if num_parts < 1:
        raise InvalidPartitionError("num_parts must be positive")
    cuts = min(num_parts - 1, len(edges))
    removed = rng.sample(edges, cuts) if cuts else []
    if isinstance(graph, GraphView):
        parts = _forest_components(tree, removed)
    else:
        forest = tree.as_graph()
        forest.remove_edges_from(removed)
        parts = [frozenset(component) for component in nx.connected_components(forest)]
    parts.sort(key=lambda part: min(map(repr, part)))
    validate_parts(graph, parts)
    return parts


def _forest_components(tree: RootedTree, removed: Sequence[tuple]) -> list[frozenset]:
    """Components of the tree minus ``removed`` edges, via union-find."""
    from ..utils import canonical_edge

    cut = set(removed)
    leader: dict[Hashable, Hashable] = {node: node for node in tree.parent}

    def find(node: Hashable) -> Hashable:
        root = node
        while leader[root] != root:
            root = leader[root]
        while leader[node] != root:
            leader[node], node = root, leader[node]
        return root

    for node, par in tree.parent.items():
        if par is None or canonical_edge(node, par) in cut:
            continue
        ru, rv = find(node), find(par)
        if ru != rv:
            leader[ru] = rv
    groups: dict[Hashable, set[Hashable]] = {}
    for node in tree.parent:
        groups.setdefault(find(node), set()).add(node)
    return [frozenset(group) for group in groups.values()]


def path_parts(
    graph: nx.Graph,
    tree: RootedTree | None = None,
) -> list[frozenset]:
    """Decompose a spanning tree into vertex-disjoint paths and use them as parts.

    The decomposition is the heavy-path decomposition of the spanning tree:
    every part is a root-to-leaf-ish path, i.e. a maximally long and skinny
    connected set.  These are the adversarial parts for which the naive
    "aggregate inside your own part" strategy costs ``Theta(part length)``
    rounds, while good shortcuts cost ``~ quality`` rounds.
    """
    tree = tree if tree is not None else bfs_spanning_tree(graph)
    from ..structure.heavy_light import heavy_light_chains

    chains = heavy_light_chains(tree.as_graph(), tree.root)
    parts = [frozenset(chain) for chain in chains]
    validate_parts(graph, parts)
    return parts


def boruvka_parts(
    graph: nx.Graph,
    phases: int = 1,
    seed: int | random.Random | None = None,
) -> list[frozenset]:
    """Return the MST fragments after a number of Boruvka phases.

    Starting from singleton fragments, each phase merges every fragment with
    the fragment across its minimum-weight outgoing edge (using the edge
    ``weight`` attribute, defaulting to 1 with deterministic tie-breaking by
    edge id).  After ``phases`` rounds the fragments are exactly the parts
    the distributed MST algorithm would hand to the shortcut framework next.
    """
    if phases < 0:
        raise InvalidPartitionError("phases must be non-negative")
    fragment: dict[Hashable, int] = {v: i for i, v in enumerate(sorted(graph.nodes(), key=repr))}

    def weight_of(u: Hashable, v: Hashable) -> tuple[float, str]:
        return (graph[u][v].get(WEIGHT, 1.0), repr((min(repr(u), repr(v)), max(repr(u), repr(v)))))

    for _ in range(phases):
        if len(set(fragment.values())) <= 1:
            break
        best_edge: dict[int, tuple[tuple[float, str], Hashable, Hashable]] = {}
        for u, v in graph.edges():
            fu, fv = fragment[u], fragment[v]
            if fu == fv:
                continue
            w = weight_of(u, v)
            for f in (fu, fv):
                if f not in best_edge or w < best_edge[f][0]:
                    best_edge[f] = (w, u, v)
        union: dict[int, int] = {f: f for f in set(fragment.values())}

        def find(f: int) -> int:
            while union[f] != f:
                union[f] = union[union[f]]
                f = union[f]
            return f

        for f, (_, u, v) in best_edge.items():
            ru, rv = find(fragment[u]), find(fragment[v])
            if ru != rv:
                union[max(ru, rv)] = min(ru, rv)
        fragment = {v: find(f) for v, f in fragment.items()}

    groups: dict[int, set[Hashable]] = {}
    for vertex, f in fragment.items():
        groups.setdefault(f, set()).add(vertex)
    parts = [frozenset(group) for _, group in sorted(groups.items())]
    validate_parts(graph, parts)
    return parts


def singleton_parts(graph: nx.Graph | GraphView) -> list[frozenset]:
    """Return one singleton part per vertex (the phase-0 Boruvka fragments)."""
    nodes = graph.nodes if isinstance(graph, GraphView) else graph.nodes()
    return [frozenset({v}) for v in sorted(nodes, key=repr)]
