"""The array-native construction engine behind the congestion-capped search.

The oblivious constructor of HIZ16a (see
:mod:`repro.shortcuts.congestion_capped`) is a *sweep*: the same
(tree, parts) instance is pruned at geometrically increasing congestion
budgets and the best measured quality wins.  The seed implementation paid
for everything per budget -- it re-derived every part's Steiner edge set,
materialised an O(n) subtree set per Steiner edge per part to rank the
benefits, and re-measured full quality from scratch for each candidate.

:class:`ConstructionEngine` computes the budget-independent state exactly
once per (graph, tree, parts):

* **Steiner edge ids** -- every tree edge is identified by the view index of
  its child endpoint; a part's Steiner edges are found by walking members up
  the flat ``parent`` array into an epoch-stamped mark array and keeping the
  marked vertices inside the Euler-tour interval of the terminals' LCA;
* **Euler-tour benefits** -- the benefit of a part at a tree edge (number of
  part vertices behind the edge, Definition 12's tie-breaker) is one
  O(|Steiner|) accumulation pass over the Steiner vertices in decreasing
  ``tin`` order, instead of per-edge subtree-set intersections;
* **owner rankings** -- for every tree edge the requesting parts are ranked
  once by (benefit desc, part index asc); the budget-``b`` winners are then
  simply the top-``b`` prefix, so keep sets only grow with ``b``.

The incremental sweep exploits that monotonicity: per-edge congestion at
budget ``b`` is ``min(#owners, b)`` (a closed form), and the block
parameter is maintained by per-part union-find structures over Steiner
vertices that only ever *merge* as the budget grows -- each budget step
unions exactly the newly-won (edge, part) pairs and updates a per-part
terminal-component counter.  Once a budget drops no edge at all, every
larger budget produces the identical shortcut and the sweep short-circuits.

The engine reproduces the preserved ``networkx`` reference implementation
*exactly* (edge sets, congestion, blocks, chosen budget); the differential
tests in ``tests/test_construction_engine.py`` pin this on every graph
family and part generator.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from ..core import PartSet, part_set_of, view_of
from ..structure.spanning import RootedTree
from .shortcut import Shortcut


class EngineScratch:
    """Reusable size-``n`` work arrays for repeated engine builds over one view.

    One :class:`ConstructionEngine` allocates three length-``n`` arrays for
    its Steiner derivation.  Built once per construction that is fine; the
    Boruvka fast path builds a fresh engine *per phase* over the same view,
    so it threads one scratch through the whole run -- the epoch counter is
    persistent, which makes re-use O(1) (no clearing pass between phases).
    """

    __slots__ = ("size", "mark_stamp", "member_stamp", "acc", "epoch")

    def __init__(self, size: int) -> None:
        self.size = size
        self.mark_stamp = [0] * size  # ancestor-closure marking
        self.member_stamp = [0] * size  # terminal membership
        self.acc = [0] * size  # subtree terminal counts
        self.epoch = 0


class ConstructionEngine:
    """Shared per-(graph, tree, parts) state for the congestion-capped sweep.

    Building the engine computes the Steiner edge-id arrays, Euler-tour
    benefits and per-edge owner rankings once; :meth:`quality_sweep` then
    prices any set of budgets incrementally and :meth:`build_shortcut`
    materialises the pruned :class:`Shortcut` for one chosen budget.

    The part family may be supplied either as label frozensets (``parts``)
    or directly as an int-indexed :class:`~repro.core.PartSet`
    (``part_set``); the Boruvka fast path uses the latter so per-phase
    fragment families never round-trip through labels.  ``scratch`` is an
    optional :class:`EngineScratch` shared across engines over the same
    view (one allocation per MST run instead of one per phase).
    """

    def __init__(
        self,
        graph: nx.Graph,
        tree: RootedTree,
        parts: Sequence[frozenset] | None = None,
        part_set: PartSet | None = None,
        scratch: EngineScratch | None = None,
    ) -> None:
        self.graph = graph
        self.tree = tree
        if part_set is not None:
            self.part_set = part_set
            self.view = part_set.view
        else:
            if parts is None:
                raise TypeError("ConstructionEngine needs either parts or a part_set")
            self.view = view_of(graph)
            self.part_set = part_set_of(self.view, parts)
        self.euler = tree.euler_index(self.view)
        if scratch is None or scratch.size != len(self.view):
            scratch = EngineScratch(len(self.view))
        self.scratch = scratch
        self._tree_diameter: int | None = None
        self._build_steiner_index()
        self._rank_owners()

    @property
    def parts(self) -> list[frozenset]:
        """The family as label frozensets (lazy when built from a part set)."""
        return self.part_set.label_parts()

    @property
    def num_parts(self) -> int:
        return self.part_set.num_parts

    # -- budget-independent state -----------------------------------------

    def _build_steiner_index(self) -> None:
        """Compute per-part Steiner vertex/edge-id arrays and edge benefits."""
        parent, tin = self.euler.parent, self.euler.tin
        members_by_tin = self.part_set.members_by_tin(self.euler)
        scratch = self.scratch
        mark_stamp = scratch.mark_stamp  # ancestor-closure marking
        member_stamp = scratch.member_stamp  # terminal membership
        acc = scratch.acc  # subtree terminal counts (reset via the kept list)

        # Per part: Steiner vertex list, Steiner edge ids (child indices) and
        # the parallel benefit array.
        self.steiner_nodes: list[list[int]] = []
        self.steiner_edges: list[list[int]] = []
        self.benefits: list[list[int]] = []

        epoch = scratch.epoch
        for part_index, members in self.part_set.iter_members():
            epoch += 1
            # The Steiner tree is the ancestor closure of the terminals
            # restricted to the subtree of their LCA, which in DFS order is
            # the LCA of the extreme-tin members (the sorted tin views make
            # those the first and last entries).  Computing the subtree's tin
            # interval *first* lets every root-walk stop at parent(top)
            # instead of climbing to the root: ancestors of a member are
            # either inside subtree(top) (tin >= low) or proper ancestors of
            # top (tin < low), so the marked set is exactly the old
            # ancestor-closure intersected with the interval -- and singleton
            # parts, the bulk of Boruvka's first phase, cost O(1) instead of
            # O(tree depth).
            by_tin = members_by_tin[part_index]
            top = self.euler.lca(by_tin[0], by_tin[-1])
            low = tin[top]
            kept: list[int] = []
            for member in members:
                member_stamp[member] = epoch
                node = member
                while node >= 0 and mark_stamp[node] != epoch and tin[node] >= low:
                    mark_stamp[node] = epoch
                    kept.append(node)
                    node = parent[node]
            # One accumulation pass in decreasing tin order: children are
            # processed before their parents, so acc[node] is the number of
            # part vertices in the Steiner subtree below node -- equal to the
            # reference |subtree(node) & part| because every part vertex in
            # subtree(node) routes its root path through node.
            kept.sort(key=tin.__getitem__, reverse=True)
            for node in kept:
                acc[node] = 0
            edges: list[int] = []
            benefit: list[int] = []
            for node in kept:
                below = acc[node] + (1 if member_stamp[node] == epoch else 0)
                par = parent[node]
                if par >= 0 and mark_stamp[par] == epoch and tin[par] >= low:
                    edges.append(node)
                    benefit.append(below)
                    acc[par] += below
            self.steiner_nodes.append(kept)
            self.steiner_edges.append(edges)
            self.benefits.append(benefit)
        scratch.epoch = epoch

    def _rank_owners(self) -> None:
        """Rank every tree edge's requesting parts by (benefit desc, index asc)."""
        owners: dict[int, list[int]] = {}
        owner_benefits: dict[int, list[int]] = {}
        for part_index, edges in enumerate(self.steiner_edges):
            benefit = self.benefits[part_index]
            for offset, edge in enumerate(edges):
                entry = owners.get(edge)
                if entry is None:
                    owners[edge] = [part_index]
                    owner_benefits[edge] = [benefit[offset]]
                else:
                    entry.append(part_index)
                    owner_benefits[edge].append(benefit[offset])
        ranked: dict[int, list[int]] = {}
        for edge, parts in owners.items():
            if len(parts) == 1:
                ranked[edge] = parts
                continue
            benefit = owner_benefits[edge]
            pairs = sorted(zip(parts, benefit), key=lambda item: (-item[1], item[0]))
            ranked[edge] = [part for part, _benefit in pairs]
        self.ranked_owners = ranked
        self.max_owner_count = max((len(parts) for parts in ranked.values()), default=0)

    def tree_diameter(self) -> int:
        if self._tree_diameter is None:
            self._tree_diameter = self.tree.diameter()
        return self._tree_diameter

    # -- the incremental budget sweep --------------------------------------

    def quality_sweep(self, budgets: Sequence[int]) -> dict[int, int]:
        """Return ``{budget: quality}`` for every distinct requested budget.

        Budgets are priced in ascending order: going from one budget to the
        next only *adds* kept (edge, part) pairs (each edge's winners are a
        prefix of its ranking), so the per-part block counts are maintained
        by union-find merges and the per-edge congestion has the closed form
        ``min(#owners, budget)``.  Negative budgets price like 0, matching
        the constructor's clamp.  Once a budget drops no edge at all the
        remaining budgets share its quality (the candidates are identical).
        """
        distinct = sorted({max(0, int(budget)) for budget in budgets})
        if not distinct:
            return {}
        diameter = self.tree_diameter()
        sizes = [self.part_set.size_of(p) for p in range(self.part_set.num_parts)]

        # (edge, part) pairs grouped by the rank at which the part wins the
        # edge: rank r is won exactly when the budget exceeds r.
        by_rank: list[list[tuple[int, int]]] = [[] for _ in range(self.max_owner_count)]
        for edge, ranked in self.ranked_owners.items():
            for rank, part in enumerate(ranked):
                by_rank[rank].append((edge, part))

        # Per-part union-find over the Steiner vertices (local ids), with a
        # terminal flag per root and a live terminal-component counter.
        local: list[dict[int, int]] = []
        uf_parent: list[list[int]] = []
        has_terminal: list[list[bool]] = []
        blocks = list(sizes)  # budget 0: every part vertex is its own block
        for part_index, kept in enumerate(self.steiner_nodes):
            mapping = {node: local_id for local_id, node in enumerate(kept)}
            local.append(mapping)
            uf_parent.append(list(range(len(kept))))
            member_set = set(self.part_set.members_of(part_index))
            has_terminal.append([node in member_set for node in kept])

        def find(parents: list[int], item: int) -> int:
            root = item
            while parents[root] != root:
                root = parents[root]
            while parents[item] != root:
                parents[item], item = root, parents[item]
            return root

        parent = self.euler.parent
        qualities: dict[int, int] = {}
        max_count = self.max_owner_count
        current_rank = 0
        constant_quality: int | None = None
        for budget in distinct:
            if constant_quality is not None:
                qualities[budget] = constant_quality
                continue
            for rank in range(current_rank, min(budget, max_count)):
                for edge, part in by_rank[rank]:
                    mapping = local[part]
                    parents = uf_parent[part]
                    a = find(parents, mapping[edge])
                    b = find(parents, mapping[parent[edge]])
                    if a == b:
                        continue
                    flags = has_terminal[part]
                    if flags[a] and flags[b]:
                        blocks[part] -= 1
                    parents[b] = a
                    flags[a] = flags[a] or flags[b]
            current_rank = min(budget, max_count)
            congestion = min(max_count, budget)
            block = max(blocks, default=0)
            qualities[budget] = block * diameter + congestion
            if budget >= max_count:
                # No edge is dropped at this budget: every larger budget
                # yields the identical (unpruned) candidate.
                constant_quality = qualities[budget]
        return qualities

    # -- materialisation ---------------------------------------------------

    def build_shortcut(self, congestion_budget: int) -> Shortcut:
        """Materialise the pruned :class:`Shortcut` for one budget.

        The shortcut is built in index space -- per-part ``(child, parent)``
        vertex-index pairs plus the engine's part set -- and derives its
        canonical label edge sets lazily, so a consumer that stays on the
        array-native path (the Boruvka fast loop, the indexed aggregation)
        never pays for label materialisation.
        """
        budget = max(0, int(congestion_budget))
        dropped: set[tuple[int, int]] = set()
        if budget < self.max_owner_count:
            for edge, ranked in self.ranked_owners.items():
                if len(ranked) > budget:
                    for part in ranked[budget:]:
                        dropped.add((edge, part))
        parent = self.euler.parent
        core_edge_lists: list[list[tuple[int, int]]] = []
        for part_index, edges in enumerate(self.steiner_edges):
            if dropped:
                kept = [
                    (edge, parent[edge])
                    for edge in edges
                    if (edge, part_index) not in dropped
                ]
            else:
                kept = [(edge, parent[edge]) for edge in edges]
            core_edge_lists.append(kept)
        return Shortcut(
            graph=self.graph,
            tree=self.tree,
            parts=None,
            edge_sets=None,
            constructor=f"congestion_capped(c={budget})",
            part_set=self.part_set,
            core_edge_lists=core_edge_lists,
        )
