"""The :class:`Shortcut` object and its quality measures (Definitions 9-13).

A shortcut assigns to every part ``P_i`` a set of extra edges ``H_i`` that
the part may use when spreading information.  The three quantities the paper
tracks are:

* **congestion** (Definition 11): the maximum, over edges ``e``, of the
  number of parts whose ``H_i`` contains ``e``;
* **block parameter** (Definition 12): the maximum, over parts, of the
  number of connected components of the spanning subgraph ``(V, H_i)`` that
  contain a vertex of ``P_i``;
* **quality** (Definition 13): ``q(d) = b(d) * d + c(d)`` where ``d`` is the
  diameter of the spanning tree ``T`` the shortcut is restricted to.

The object stores everything needed to recompute these quantities from
scratch, which the property-based tests use to confirm that every
constructor's self-reported numbers are honest.

The measurements run on flat arrays over the graph's shared
:class:`~repro.core.GraphView`: congestion is a bulk counter update and the
block parameter a union-find over vertex indices, instead of one
``nx.Graph``-plus-``connected_components`` construction per part.  The
original per-part ``networkx`` recomputation is preserved as
:meth:`Shortcut.measure_reference` (and :meth:`block_components`, which
still returns the actual component sets); the differential tests pin the
fast path against it on every graph family.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

import networkx as nx

from ..core import core_enabled, part_set_of, view_of
from ..errors import InvalidShortcutError
from ..structure.spanning import RootedTree
from ..utils import canonical_edge

Edge = tuple[Hashable, Hashable]


@dataclass(frozen=True)
class ShortcutQuality:
    """A summary of the measured parameters of one shortcut.

    Attributes:
        congestion: Definition 11 congestion.
        block: Definition 12 block parameter.
        tree_diameter: the diameter ``d_T`` of the spanning tree used.
        quality: ``block * tree_diameter + congestion`` (Definition 13).
        num_parts: how many parts the shortcut serves.
        total_shortcut_edges: sum over parts of ``|H_i|`` (a size measure
            used by the experiments, not by the theory).
    """

    congestion: int
    block: int
    tree_diameter: int
    quality: int
    num_parts: int
    total_shortcut_edges: int

    def as_row(self) -> dict[str, int]:
        """Return the summary as a flat dict (one row of an experiment table)."""
        return {
            "congestion": self.congestion,
            "block": self.block,
            "tree_diameter": self.tree_diameter,
            "quality": self.quality,
            "num_parts": self.num_parts,
            "total_shortcut_edges": self.total_shortcut_edges,
        }


class _EpochUnionFind:
    """Union-find over ``0 .. n-1`` with O(1) epoch-stamped reuse.

    ``reset()`` bumps the epoch instead of reinitialising the parent array,
    so measuring many parts over one graph costs flat arrays once, not once
    per part.  A vertex whose stamp is stale is implicitly its own root.
    """

    __slots__ = ("parent", "stamp", "epoch")

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))
        self.stamp = [0] * size
        self.epoch = 0

    def reset(self) -> None:
        self.epoch += 1

    def _activate(self, item: int) -> None:
        if self.stamp[item] != self.epoch:
            self.stamp[item] = self.epoch
            self.parent[item] = item

    def find(self, item: int) -> int:
        # A stale vertex is implicitly a singleton; fresh vertices only ever
        # point at fresh vertices (parents are assigned between activated
        # nodes), so the chase below stays within the current epoch.
        if self.stamp[item] != self.epoch:
            return item
        parent = self.parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        self._activate(a)
        self._activate(b)
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


class Shortcut:
    """A (possibly tree-restricted) shortcut for a family of parts.

    Args:
        graph: the network graph ``G``.
        tree: the rooted spanning tree ``T`` the shortcut is restricted to.
        parts: the parts ``P_1, ..., P_N`` (disjoint connected vertex sets).
            May be ``None`` when ``part_set`` is given.
        edge_sets: for every part, the set of shortcut edges ``H_i`` in
            canonical form.  ``H_i`` may be empty.  May be ``None`` when
            ``core_edge_lists`` is given.
        constructor: free-form name of the construction that produced the
            shortcut (recorded in experiment outputs).
        part_set: optional int-indexed :class:`~repro.core.PartSet` of the
            family.  When given, ``parts`` is ignored and the label
            frozensets are derived lazily -- the array-native algorithm
            layer hands per-phase Boruvka fragments through here without
            ever materialising label sets on its hot path.
        core_edge_lists: optional per-part lists of ``(u_index, v_index)``
            shortcut edges over ``part_set.view``.  When given,
            ``edge_sets`` may be ``None``; the canonical label edge sets are
            derived lazily, and the CONGEST aggregation primitive consumes
            the index pairs directly.

    Label access (``shortcut.parts`` / ``shortcut.edge_sets``) always works
    regardless of which representation the constructor supplied; the other
    representation is derived on first use.  The differential tests pin both
    derivations against the label-native reference constructions.
    """

    def __init__(
        self,
        graph: nx.Graph,
        tree: RootedTree,
        parts: Sequence[frozenset] | None,
        edge_sets: Sequence[Iterable[Edge]] | None,
        constructor: str = "unknown",
        part_set=None,
        core_edge_lists: Sequence[Sequence[tuple[int, int]]] | None = None,
    ) -> None:
        self.graph = graph
        self.tree = tree
        self._part_set = part_set
        if part_set is not None:
            self._parts: list[frozenset] | None = None
            num_parts = part_set.num_parts
        else:
            if parts is None:
                raise InvalidShortcutError("need either parts or a part_set")
            self._parts = [frozenset(part) for part in parts]
            num_parts = len(self._parts)
        self._core_edges = list(core_edge_lists) if core_edge_lists is not None else None
        if edge_sets is not None:
            self._raw_edge_sets: list[Iterable[Edge]] | None = list(edge_sets)
            num_edge_sets = len(self._raw_edge_sets)
        elif self._core_edges is not None:
            self._raw_edge_sets = None
            num_edge_sets = len(self._core_edges)
        else:
            raise InvalidShortcutError("need either edge_sets or core_edge_lists")
        if num_parts != num_edge_sets:
            raise InvalidShortcutError("need exactly one edge set per part")
        self._edge_sets: list[frozenset[Edge]] | None = None
        self.constructor = constructor
        # Set by the budget-searching constructors (oblivious_shortcut) to the
        # congestion budget that won the sweep (and the quality it was priced
        # at); None for direct constructions.
        self.chosen_budget: int | None = None
        self.chosen_quality: int | None = None
        self._tree_diameter: int | None = None

    # -- lazy label representations ----------------------------------------

    @property
    def parts(self) -> list[frozenset]:
        """The parts as label frozensets (derived from the part set if needed)."""
        if self._parts is None:
            self._parts = self._part_set.label_parts()
        return self._parts

    @property
    def edge_sets(self) -> list[frozenset[Edge]]:
        """The per-part canonical label edge sets (materialised on first use)."""
        if self._edge_sets is None:
            self._edge_sets = self._canonical_edge_sets()
        return self._edge_sets

    def _canonical_edge_sets(self) -> list[frozenset[Edge]]:
        # Canonicalisation is hoisted out of the per-edge loop: endpoint reprs
        # are memoised across all parts (shortcut edge sets overlap heavily on
        # tree edges), and empty edge sets skip the loop entirely.
        reprs: dict[Hashable, str] = {}
        _get = reprs.get
        _EMPTY: frozenset[Edge] = frozenset()
        if self._raw_edge_sets is None:
            node_of = self._part_set.view.nodes
            return [
                frozenset(
                    (
                        (node_of[a], node_of[b])
                        if repr(node_of[a]) <= repr(node_of[b])
                        else (node_of[b], node_of[a])
                    )
                    for a, b in pairs
                )
                if pairs
                else _EMPTY
                for pairs in self._core_edges
            ]
        # Identity memo: constructors that give several parts the same edge-set
        # object (whole-tree, shared per-cell sets) keep that sharing through
        # canonicalisation, which the measurement dedup exploits.  The inputs
        # stay alive in ``_raw_edge_sets`` for the duration, so ids are stable.
        canon_cache: dict[int, frozenset[Edge]] = {}

        def canonicalise(edges: Iterable[Edge]) -> frozenset[Edge]:
            if not edges:
                return _EMPTY
            cached = canon_cache.get(id(edges))
            if cached is not None:
                return cached
            out = set()
            for u, v in edges:
                ru = _get(u)
                if ru is None:
                    ru = reprs[u] = repr(u)
                rv = _get(v)
                if rv is None:
                    rv = reprs[v] = repr(v)
                out.add((u, v) if ru <= rv else (v, u))
            result = frozenset(out)
            canon_cache[id(edges)] = result
            return result

        return [canonicalise(edges) for edges in self._raw_edge_sets]

    def part_set(self):
        """Return (and cache) the int-indexed :class:`~repro.core.PartSet`.

        Engine-built shortcuts carry theirs from construction; label-built
        shortcuts resolve one through the package-wide
        :func:`~repro.core.part_set_of` memo on first use.
        """
        if self._part_set is None:
            self._part_set = part_set_of(view_of(self.graph), self.parts)
        return self._part_set

    # -- basic measures ---------------------------------------------------

    @property
    def num_parts(self) -> int:
        if self._parts is not None:
            return len(self._parts)
        return self._part_set.num_parts

    def tree_diameter(self) -> int:
        if self._tree_diameter is None:
            self._tree_diameter = self.tree.diameter()
        return self._tree_diameter

    def edge_congestion(self) -> dict[Edge, int]:
        """Return the per-edge congestion map ``c_e`` of Definition 11."""
        congestion: Counter = Counter()
        for edges in self.edge_sets:
            congestion.update(edges)
        return dict(congestion)

    def congestion(self) -> int:
        """Return the congestion (Definition 11): max parts sharing one edge."""
        if not core_enabled():
            counts: dict[Edge, int] = {}
            for edges in self.edge_sets:
                for edge in edges:
                    counts[edge] = counts.get(edge, 0) + 1
            return max(counts.values(), default=0)
        congestion: Counter = Counter()
        for edges, multiplicity in self._edge_set_multiplicities():
            if multiplicity == 1:
                congestion.update(edges)
            else:
                for edge in edges:
                    congestion[edge] += multiplicity
        return max(congestion.values(), default=0)

    def _edge_set_multiplicities(self) -> list[tuple[frozenset[Edge], int]]:
        """Group the per-part edge sets by object identity.

        Constructors that hand several parts the same frozenset (the
        whole-tree baseline, per-cell sharing) are measured once per distinct
        set instead of once per part; distinct objects keep multiplicity 1.
        """
        grouped: dict[int, list] = {}
        for edges in self.edge_sets:
            entry = grouped.get(id(edges))
            if entry is None:
                grouped[id(edges)] = [edges, 1]
            else:
                entry[1] += 1
        return [(edges, count) for edges, count in grouped.values()]

    def block_components(self, index: int) -> list[set[Hashable]]:
        """Return the block components of part ``index`` (Definition 12).

        These are the connected components of the spanning subgraph
        ``(V, H_i)`` that contain at least one vertex of ``P_i``.  Vertices
        of ``P_i`` untouched by any shortcut edge each form a singleton block
        component, exactly as the definition prescribes.
        """
        part = self.parts[index]
        subgraph = nx.Graph()
        subgraph.add_nodes_from(part)
        for u, v in self.edge_sets[index]:
            subgraph.add_edge(u, v)
        components = []
        for component in nx.connected_components(subgraph):
            if component & part:
                components.append(set(component))
        return components

    def block_parameter(self) -> int:
        """Return the block parameter (Definition 12): max blocks of any part.

        Flat union-find over vertex indices of the graph's shared
        :class:`~repro.core.GraphView`: a part with edge set ``H_i`` has
        exactly ``|{find(v) : v in P_i}|`` block components (untouched part
        vertices are their own roots, i.e. singleton blocks), so no spanning
        subgraph is ever materialised.  Parts with empty ``H_i`` short-circuit
        to ``|P_i|``.
        """
        if not core_enabled():
            return self.block_parameter_reference()
        worst = 0
        union_find: _EpochUnionFind | None = None
        part_set = None
        # Parts sharing one edge-set object (by identity) share one union-find
        # build; only the per-part root count differs.
        parts_by_set: dict[int, list[int]] = {}
        set_for_id: dict[int, frozenset[Edge]] = {}
        for index, edges in enumerate(self.edge_sets):
            parts_by_set.setdefault(id(edges), []).append(index)
            set_for_id[id(edges)] = edges
        for set_id, part_indices in parts_by_set.items():
            edges = set_for_id[set_id]
            if not edges:
                part_set = part_set if part_set is not None else self.part_set()
                worst = max(
                    worst, max(part_set.size_of(i) for i in part_indices)
                )
                continue
            if union_find is None:
                # The int-indexed member arrays are memoised per (view, parts)
                # -- or carried from construction by the engine -- so every
                # candidate shortcut in a sweep over the same part family
                # shares one label-to-index conversion.
                part_set = self.part_set()
                view = part_set.view
                union_find = _EpochUnionFind(len(view))
                index_of = view.index_of
            union_find.reset()
            union = union_find.union
            for u, v in edges:
                union(index_of(u), index_of(v))
            find = union_find.find
            for part_index in part_indices:
                roots = {find(member) for member in part_set.members_of(part_index)}
                worst = max(worst, len(roots))
        return worst

    def block_parameter_reference(self) -> int:
        """The pre-CoreGraph block parameter (per-part nx components)."""
        return max(
            (len(self.block_components(i)) for i in range(self.num_parts)), default=0
        )

    def quality(self, tree_diameter: int | None = None) -> int:
        """Return the quality ``b * d + c`` (Definition 13)."""
        d = tree_diameter if tree_diameter is not None else self.tree_diameter()
        return self.block_parameter() * d + self.congestion()

    def measure(self) -> ShortcutQuality:
        """Return the full measured summary of this shortcut."""
        d = self.tree_diameter()
        block = self.block_parameter()
        congestion = self.congestion()
        return ShortcutQuality(
            congestion=congestion,
            block=block,
            tree_diameter=d,
            quality=block * d + congestion,
            num_parts=self.num_parts,
            total_shortcut_edges=sum(len(edges) for edges in self.edge_sets),
        )

    def measure_reference(self) -> ShortcutQuality:
        """The pre-CoreGraph measurement path, kept as a differential oracle.

        Re-measures congestion with a per-edge dict walk, the block parameter
        with one ``nx.Graph`` + ``connected_components`` per part, and the
        tree diameter through an ``nx`` double BFS -- exactly the seed
        implementation.  ``benchmarks/bench_core_speedup.py`` uses this as
        the baseline for the >=2x gate, and the differential tests assert
        ``measure() == measure_reference()`` on every family.
        """
        congestion_map: dict[Edge, int] = {}
        for edges in self.edge_sets:
            for edge in edges:
                congestion_map[edge] = congestion_map.get(edge, 0) + 1
        congestion = max(congestion_map.values(), default=0)
        block = self.block_parameter_reference()
        # Same memoised tree diameter as measure(): the pre-refactor code
        # cached it too, so it is deliberately not part of the comparison.
        d = self.tree_diameter()
        return ShortcutQuality(
            congestion=congestion,
            block=block,
            tree_diameter=d,
            quality=block * d + congestion,
            num_parts=self.num_parts,
            total_shortcut_edges=sum(len(edges) for edges in self.edge_sets),
        )

    # -- derived graphs ----------------------------------------------------

    def augmented_subgraph(self, index: int) -> nx.Graph:
        """Return ``G[P_i] + H_i``: the graph part ``i`` communicates on.

        This is the induced subgraph on the part plus every shortcut edge and
        any shortcut-edge endpoint outside the part; Theorem 1's algorithm
        performs its per-part aggregation on exactly this graph, and the
        CONGEST aggregation primitive of :mod:`repro.congest.aggregation`
        simulates communication on it.
        """
        part = self.parts[index]
        subgraph = nx.Graph()
        subgraph.add_nodes_from(part)
        for u, v in self.graph.subgraph(part).edges():
            subgraph.add_edge(u, v)
        for u, v in self.edge_sets[index]:
            subgraph.add_edge(u, v)
        return subgraph

    def part_diameters(self) -> list[int]:
        """Return the diameter of ``G[P_i] + H_i`` for every part.

        The paper's framework upper-bounds these by ``O(b * d_T)``; the
        experiments report the measured values alongside the bound.  Shortcut
        edges that are disconnected from the part contribute nothing to the
        diameter (they are useless but legal), so the measurement is taken on
        the connected component containing the part.
        """
        diameters = []
        for index in range(self.num_parts):
            augmented = self.augmented_subgraph(index)
            if augmented.number_of_nodes() <= 1:
                diameters.append(0)
                continue
            anchor = next(iter(self.parts[index]))
            component = nx.node_connected_component(augmented, anchor)
            diameters.append(nx.diameter(augmented.subgraph(component)))
        return diameters

    # -- validation ---------------------------------------------------------

    def is_tree_restricted(self) -> bool:
        """Return True iff every shortcut edge lies on the tree (Definition 10)."""
        tree_edges = self.tree.edge_set()
        return all(edges <= tree_edges for edges in self.edge_sets)

    def validate(self, require_tree_restricted: bool = True) -> None:
        """Check structural sanity; raise :class:`InvalidShortcutError` on failure.

        Checks performed:
        * every shortcut edge is an edge of the graph;
        * (optionally) every shortcut edge is a tree edge (Definition 10);
        * every part is connected and parts are disjoint (Definition 9).

        Note that shortcut edges disconnected from their part are *legal*
        (they waste congestion but break nothing), so connectivity of the
        full augmented subgraph is deliberately not required.
        """
        seen: set[Hashable] = set()
        for index, part in enumerate(self.parts):
            if not part:
                raise InvalidShortcutError(f"part {index} is empty")
            if seen & part:
                raise InvalidShortcutError("parts are not disjoint")
            seen |= part
            if not nx.is_connected(self.graph.subgraph(part)):
                raise InvalidShortcutError(f"part {index} is not connected")
        tree_edges = self.tree.edge_set()
        for index, edges in enumerate(self.edge_sets):
            for u, v in edges:
                if not self.graph.has_edge(u, v):
                    raise InvalidShortcutError(
                        f"shortcut edge ({u}, {v}) of part {index} is not a graph edge"
                    )
            if require_tree_restricted and not edges <= tree_edges:
                bad = next(iter(edges - tree_edges))
                raise InvalidShortcutError(
                    f"shortcut edge {bad} of part {index} is not a tree edge "
                    "(Definition 10 requires T-restriction)"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"Shortcut(constructor={self.constructor!r}, parts={self.num_parts}, "
            f"edges={sum(len(e) for e in self.edge_sets)})"
        )
