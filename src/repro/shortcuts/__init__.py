"""Low-congestion tree-restricted shortcuts: the paper's core contribution.

The subpackage is organised by graph family, mirroring the paper's proof
structure:

* :mod:`repro.shortcuts.parts`        -- parts (Definition 9) and workload generators
* :mod:`repro.shortcuts.shortcut`     -- the :class:`Shortcut` object, congestion /
  block / quality measures (Definitions 10-13)
* :mod:`repro.shortcuts.baseline`     -- trivial constructions (empty, whole-tree,
  Steiner-tree) used as baselines
* :mod:`repro.shortcuts.congestion_capped` -- the structure-oblivious constructor in
  the spirit of HIZ16a that the distributed algorithm itself would run
* :mod:`repro.shortcuts.engine`       -- the array-native construction engine behind
  it (Euler-tour benefits, shared Steiner edge ids, incremental budget sweep)
* :mod:`repro.shortcuts.planar`       -- Theorem 4 (planar graphs)
* :mod:`repro.shortcuts.treewidth`    -- Theorem 5 (bounded treewidth)
* :mod:`repro.shortcuts.genus_vortex` -- Theorem 9 / Corollary 3 (Genus+Vortex)
* :mod:`repro.shortcuts.clique_sum`   -- Theorem 7 (k-clique-sums, local/global split,
  heavy-light folding)
* :mod:`repro.shortcuts.apex`         -- Lemma 9/10 and Theorem 8 (apex graphs)
* :mod:`repro.shortcuts.minor_free`   -- Theorem 6 (the full excluded-minor pipeline)
* :mod:`repro.shortcuts.search`       -- measurement sweeps and the best-of portfolio
"""

from .parts import (
    boruvka_parts,
    path_parts,
    random_connected_parts,
    tree_fragment_parts,
    validate_parts,
)
from .shortcut import Shortcut, ShortcutQuality
from .baseline import empty_shortcut, steiner_shortcut, whole_tree_shortcut
from .congestion_capped import (
    congestion_capped_shortcut,
    default_budget_schedule,
    oblivious_shortcut,
)
from .engine import ConstructionEngine
from .planar import planar_shortcut
from .treewidth import treewidth_shortcut
from .genus_vortex import genus_vortex_shortcut
from .clique_sum import clique_sum_shortcut
from .apex import apex_shortcut
from .minor_free import minor_free_shortcut
from .search import best_shortcut, measure_constructors

__all__ = [
    "ConstructionEngine",
    "Shortcut",
    "ShortcutQuality",
    "apex_shortcut",
    "best_shortcut",
    "boruvka_parts",
    "clique_sum_shortcut",
    "congestion_capped_shortcut",
    "default_budget_schedule",
    "empty_shortcut",
    "genus_vortex_shortcut",
    "measure_constructors",
    "minor_free_shortcut",
    "oblivious_shortcut",
    "path_parts",
    "planar_shortcut",
    "random_connected_parts",
    "steiner_shortcut",
    "tree_fragment_parts",
    "treewidth_shortcut",
    "validate_parts",
    "whole_tree_shortcut",
]
