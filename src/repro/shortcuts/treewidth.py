"""Shortcuts for bounded-treewidth graphs (Theorem 5, HIZ16b).

Theorem 5 states that treewidth-``k`` graphs admit tree-restricted shortcuts
with block parameter ``O(k)`` and congestion ``O(k log n)``.  Structurally, a
width-``k`` tree decomposition presents the graph as tiny bags (at most
``k + 1`` vertices) glued along their intersections -- which is precisely a
``(k+1)``-clique-sum decomposition whose bags are trivially shortcut-able.
We therefore reuse the Theorem 7 machinery of
:mod:`repro.shortcuts.clique_sum` with the tree decomposition as the
clique-sum witness and a trivial per-bag shortcutter.  The resulting bounds
are ``b = O(k)`` and ``c = O(k log^2 n)`` -- a ``log n`` factor above the
theorem's statement, coming from the generic folding argument; the measured
values reported by experiment E2 are compared against both expressions.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from ..graphs.clique_sum import Bag, CliqueSumDecomposition, decomposition_from_tree_decomposition
from ..structure.spanning import RootedTree, bfs_spanning_tree
from ..structure.tree_decomposition import TreeDecomposition, greedy_tree_decomposition
from .baseline import steiner_shortcut
from .clique_sum import clique_sum_shortcut
from .shortcut import Shortcut


def _tiny_bag_shortcutter(
    bag_graph: nx.Graph,
    bag_tree: RootedTree,
    subparts: Sequence[frozenset],
    bag: Bag,
) -> Shortcut:
    """Local shortcutter for width-``k`` bags: each sub-part gets its Steiner tree.

    A bag of a width-``k`` decomposition has at most ``k + 1`` vertices, so
    the Steiner tree of any sub-part inside the repaired bag tree has at most
    ``k`` edges and the per-bag congestion is at most ``k + 1`` -- constants
    the clique-sum composition then carries through.
    """
    return steiner_shortcut(bag_graph, bag_tree, subparts)


def treewidth_shortcut(
    graph: nx.Graph,
    tree: RootedTree | None = None,
    parts: Sequence[frozenset] = (),
    decomposition: TreeDecomposition | None = None,
    clique_sum_view: CliqueSumDecomposition | None = None,
    fold: bool = True,
) -> Shortcut:
    """Construct a tree-restricted shortcut from a treewidth decomposition.

    Args:
        graph: the network graph.
        tree: spanning tree ``T`` (defaults to BFS).
        parts: the parts to serve.
        decomposition: a :class:`TreeDecomposition`; computed heuristically
            (min-degree) when omitted.
        clique_sum_view: optionally, a pre-built clique-sum view of the
            decomposition (as produced by
            :func:`repro.graphs.clique_sum.decomposition_from_tree_decomposition`);
            passing it avoids recomputing the adapter for repeated calls.
        fold: whether to fold the decomposition tree (Theorem 7 compression).
    """
    tree = tree if tree is not None else bfs_spanning_tree(graph)
    if clique_sum_view is None:
        if decomposition is None:
            decomposition = greedy_tree_decomposition(graph)
        clique_sum_view = decomposition_from_tree_decomposition(
            graph, decomposition.tree, decomposition.width
        )
    shortcut = clique_sum_shortcut(
        graph,
        tree,
        parts,
        decomposition=clique_sum_view,
        local_shortcutter=_tiny_bag_shortcutter,
        fold=fold,
    )
    shortcut.constructor = "treewidth(theorem5)"
    return shortcut
