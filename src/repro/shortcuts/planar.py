"""Planar shortcut construction (Theorem 4, Ghaffari--Haeupler SODA'16).

Theorem 4 states that planar graphs admit tree-restricted shortcuts with
block parameter ``O(log d_T)`` and congestion ``O(d_T log d_T)``.  The
original GH16 construction works on a planar embedding; HIZ16a later showed
that an embedding-oblivious construction achieves comparable quality on any
graph that admits good shortcuts.  Following the latter (and the paper's own
emphasis that the algorithm never inspects the structure), our planar
constructor is the oblivious congestion-capped search *seeded with the
Theorem 4 target budgets*, plus a planarity check so that misuse is caught
early.  Experiment E1 compares its measured block/congestion against the
``O(log d)`` / ``O(d log d)`` targets.
"""

from __future__ import annotations

import math
from typing import Sequence

import networkx as nx

from ..errors import InvalidGraphError
from ..structure.spanning import RootedTree, bfs_spanning_tree
from .congestion_capped import oblivious_shortcut
from .shortcut import Shortcut


def planar_shortcut(
    graph: nx.Graph,
    tree: RootedTree | None = None,
    parts: Sequence[frozenset] = (),
    require_planar: bool = True,
) -> Shortcut:
    """Construct a tree-restricted shortcut for a planar graph.

    Args:
        graph: the (planar) network graph.
        tree: the spanning tree ``T``; defaults to a BFS tree.
        parts: the parts to serve.
        require_planar: if True (default), raise :class:`InvalidGraphError`
            when the graph is not planar, so callers never silently apply
            the planar quality targets to the wrong family.

    The searched congestion budgets are geared to the Theorem 4 shape: the
    construction first tries ``Theta(log d)`` and ``Theta(d log d)`` and the
    powers of two in between, then keeps the best measured quality.
    """
    if require_planar:
        planar, _ = nx.check_planarity(graph)
        if not planar:
            raise InvalidGraphError(
                "planar_shortcut called on a non-planar graph; use apex_shortcut or "
                "minor_free_shortcut for perturbed/augmented planar networks"
            )
    tree = tree if tree is not None else bfs_spanning_tree(graph)
    d = max(1, tree.diameter())
    log_d = max(1, math.ceil(math.log2(d + 1)))
    budgets = sorted(
        {
            1,
            log_d,
            2 * log_d,
            d,
            d * log_d,
            *(2**i for i in range(0, max(1, int(math.log2(max(2, len(parts))) + 1)))),
        }
    )
    shortcut = oblivious_shortcut(graph, tree, parts, budgets=budgets)
    shortcut.constructor = "planar(theorem4)"
    return shortcut


def planar_quality_bounds(tree_diameter: int) -> dict[str, float]:
    """Return the Theorem 4 asymptotic targets for annotation in experiments."""
    log_d = math.log2(tree_diameter + 2)
    return {
        "block": log_d,
        "congestion": tree_diameter * log_d,
        "quality": tree_diameter * log_d,
    }
