"""Structure-oblivious shortcut construction with a congestion cap.

Haeupler, Izumi and Zuzic [HIZ16a] show that near-optimal *tree-restricted*
shortcuts can be constructed distributively without looking at the graph
structure at all: essentially, every part tries to acquire the tree edges of
its Steiner tree, and over-congested edges are dropped, trading congestion
for extra blocks.  The paper leans on this fact (Theorem 1's algorithm
"does not look at any structure in the network graph"): the structural
results (Theorems 4-8) only certify that a good assignment *exists*, which
guarantees that the oblivious construction -- searched over its congestion
budget -- finds one of comparable quality.

This module implements that oblivious constructor:

* :func:`congestion_capped_shortcut` prunes the Steiner-tree shortcut down to
  a given congestion budget, dropping each over-budget tree edge from the
  parts that benefit from it least (fewest part vertices behind the edge);
* :func:`oblivious_shortcut` performs the doubling search over the budget and
  returns the best-quality result, which is the constructor the distributed
  algorithms in :mod:`repro.algorithms` use by default.

Both run on the array-native :class:`~repro.shortcuts.engine.ConstructionEngine`
(Euler-tour benefits, Steiner edge ids computed once per sweep, incremental
per-budget quality) unless the ``networkx`` reference paths are forced via
:func:`repro.core.networkx_reference_paths`, in which case the preserved
seed implementation runs -- the differential tests pin the two paths
edge-set-for-edge-set equal on every graph family.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import networkx as nx

from ..core import core_enabled, view_of
from ..structure.spanning import RootedTree, bfs_spanning_tree
from ..utils import canonical_edge
from .engine import ConstructionEngine
from .parts import validate_parts
from .shortcut import Shortcut


def _spanning_tree(graph: nx.Graph) -> RootedTree:
    """Default spanning tree; CSR BFS when the fast paths are active."""
    if core_enabled():
        return bfs_spanning_tree(view_of(graph))
    return bfs_spanning_tree(graph)


def _edge_benefit(
    tree: RootedTree, part: frozenset, steiner_edges: frozenset
) -> dict[tuple, int]:
    """For every Steiner edge, count the part vertices in the subtree below it.

    When an edge must be dropped from some parts, dropping it from the parts
    with the smallest "behind the edge" population severs the fewest part
    vertices from the rest of the Steiner tree, which keeps the number of
    extra blocks small.

    This is the preserved reference benefit (one O(n) subtree set per edge);
    the fast engine computes the same numbers in one Euler-tour accumulation
    pass per part.
    """
    benefit: dict[tuple, int] = {}
    for u, v in steiner_edges:
        child = u if tree.parent.get(u) == v else v
        below = tree.subtree_nodes(child)
        benefit[canonical_edge(u, v)] = len(below & part)
    return benefit


def _congestion_capped_reference(
    graph: nx.Graph,
    tree: RootedTree,
    parts: Sequence[frozenset],
    congestion_budget: int,
) -> Shortcut:
    """The preserved seed implementation (label-keyed networkx sets)."""
    steiner: list[frozenset] = [frozenset(tree.steiner_tree_edges(part)) for part in parts]
    requests: dict[tuple, list[int]] = {}
    for index, edges in enumerate(steiner):
        for edge in edges:
            requests.setdefault(edge, []).append(index)

    benefits: list[dict[tuple, int]] = [
        _edge_benefit(tree, parts[index], steiner[index]) for index in range(len(parts))
    ]

    keep: list[set[tuple]] = [set(edges) for edges in steiner]
    for edge, owners in requests.items():
        if len(owners) <= congestion_budget:
            continue
        ranked = sorted(owners, key=lambda i: (-benefits[i].get(edge, 0), i))
        for loser in ranked[congestion_budget:]:
            keep[loser].discard(edge)

    return Shortcut(
        graph=graph,
        tree=tree,
        parts=parts,
        edge_sets=[frozenset(edges) for edges in keep],
        constructor=f"congestion_capped(c={congestion_budget})",
    )


def congestion_capped_shortcut(
    graph: nx.Graph,
    tree: RootedTree | None = None,
    parts: Sequence[frozenset] = (),
    congestion_budget: int = 8,
    validate: bool = True,
) -> Shortcut:
    """Prune the Steiner-tree shortcut to respect a congestion budget.

    Every part starts with its full Steiner tree in ``T``.  For every tree
    edge requested by more than ``congestion_budget`` parts, only the
    ``congestion_budget`` parts with the largest benefit (number of their
    vertices behind the edge) keep it; the others lose the edge, which may
    split their shortcut into more blocks.  The result is always a valid
    T-restricted shortcut with congestion at most ``congestion_budget``.

    ``validate=False`` skips the Definition 9 part validation; callers that
    already validated the same parts (the :func:`oblivious_shortcut` sweep
    validates once instead of once per budget) opt out.
    """
    tree = tree if tree is not None else _spanning_tree(graph)
    if validate:
        validate_parts(graph, parts)
    if congestion_budget < 0:
        congestion_budget = 0
    if core_enabled():
        return ConstructionEngine(graph, tree, parts).build_shortcut(congestion_budget)
    return _congestion_capped_reference(graph, tree, parts, congestion_budget)


def default_budget_schedule(num_parts: int) -> list[int]:
    """The doubling budget schedule: powers of two up to the number of parts.

    The doubling stops strictly below ``num_parts``, so appending the final
    budget (``num_parts``, beyond which the Steiner shortcut is returned
    unpruned) never prices a budget twice -- the schedule is strictly
    increasing by construction.
    """
    budgets: list[int] = []
    budget = 1
    while budget < num_parts:
        budgets.append(budget)
        budget *= 2
    budgets.append(num_parts)
    return budgets


def oblivious_sweep(
    engine: ConstructionEngine, budgets: Sequence[int] | None = None
) -> Shortcut:
    """Run the doubling budget search on a prebuilt engine; return the winner.

    This is the engine core of :func:`oblivious_shortcut`, split out so the
    array-native Boruvka loop (:mod:`repro.algorithms.mst`) can drive it
    with a per-phase :class:`~repro.core.PartSet` and a shared
    :class:`~repro.shortcuts.engine.EngineScratch` without re-validating
    parts it constructed itself.  The winner records both ``chosen_budget``
    and ``chosen_quality`` (the sweep already priced it; re-measuring would
    repeat the work).
    """
    if budgets is None:
        budgets = default_budget_schedule(engine.num_parts)
    qualities = engine.quality_sweep(budgets)
    best_budget: int | None = None
    best_quality: int | None = None
    for budget in budgets:
        quality = qualities[max(0, int(budget))]
        if best_quality is None or quality < best_quality:
            best_budget, best_quality = budget, quality
    assert best_budget is not None
    best = engine.build_shortcut(best_budget)
    best.constructor = "oblivious"
    best.chosen_budget = best_budget
    best.chosen_quality = best_quality
    return best


def oblivious_shortcut(
    graph: nx.Graph,
    tree: RootedTree | None = None,
    parts: Sequence[frozenset] = (),
    budgets: Sequence[int] | None = None,
) -> Shortcut:
    """Doubling search over the congestion budget; return the best quality found.

    This mirrors how the distributed construction of HIZ16a is used in
    practice: the algorithm does not know the right congestion/block
    trade-off in advance, so it tries geometrically increasing budgets and
    keeps the best.  The searched budgets default to powers of two up to the
    number of parts (beyond which the Steiner shortcut is returned
    unpruned).

    Parts are validated once for the whole sweep, and on the fast path the
    engine prices every budget incrementally from the previous one (keep
    sets only grow with the budget) instead of building and measuring a
    fresh candidate per budget.  The returned shortcut records the winning
    budget in ``chosen_budget`` and its priced quality in
    ``chosen_quality``.
    """
    tree = tree if tree is not None else _spanning_tree(graph)
    validate_parts(graph, parts)
    if not parts:
        return Shortcut(graph=graph, tree=tree, parts=[], edge_sets=[], constructor="oblivious")
    if budgets is None:
        budgets = default_budget_schedule(len(parts))

    if core_enabled():
        return oblivious_sweep(ConstructionEngine(graph, tree, parts), budgets)
    best = None
    best_budget = None
    best_quality = None
    for budget in budgets:
        candidate = congestion_capped_shortcut(
            graph, tree, parts, congestion_budget=budget, validate=False
        )
        quality = candidate.quality()
        if best_quality is None or quality < best_quality:
            best, best_budget, best_quality = candidate, budget, quality
    assert best is not None
    best.constructor = "oblivious"
    best.chosen_budget = best_budget
    best.chosen_quality = best_quality
    return best
