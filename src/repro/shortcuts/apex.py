"""Shortcuts for apex graphs (Lemmas 9 and 10, Theorem 8).

The hard part of the almost-embeddable case is the apices: adding a single
apex can collapse the graph diameter (cycle -> wheel), so the shortcut must
become dramatically better even though the graph barely changed.  The
construction:

1. parts containing an apex simply receive the whole spanning tree (there
   are at most ``q`` of them, adding ``q`` to the congestion);
2. removing the apices from ``T`` splits it into *cells* -- subtrees of
   diameter at most the tree diameter (Definition 14 / Lemma 9);
3. cells containing a vortex are merged into *special* cells (Lemma 10);
4. the cell-assignment relation ``R`` of Definition 15 (computed by the
   peeling of Lemma 5/6) decides, for every part, which cells help it
   *globally*: for each related cell the part receives the cell's whole
   subtree plus its uplink edge to the apex;
5. for the at-most-two normal cells (plus special cells) a part intersects
   but is not related to, *local* shortcuts inside the cell are built by the
   family shortcutter of the cell (planar / Genus+Vortex), restricted to the
   cell's subtree of ``T``.

Multiple apices are handled exactly as in Theorem 8's proof: the cells are
the components of ``T`` minus *all* apices, and an apex-containing part gets
the whole tree.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Sequence

import networkx as nx

from ..errors import InvalidShortcutError
from ..graphs.apex_vortex import AlmostEmbeddableGraph
from ..structure.cell_assignment import compute_cell_assignment
from ..structure.cells import CellPartition, cells_from_tree_without_apices, merge_cells_touching
from ..structure.spanning import RootedTree, bfs_spanning_tree
from ..utils import canonical_edge
from .congestion_capped import oblivious_shortcut
from .parts import validate_parts
from .shortcut import Shortcut

Edge = tuple[Hashable, Hashable]

# Per-cell local shortcutter: (cell graph, cell subtree of T, sub-parts) -> Shortcut.
CellShortcutter = Callable[[nx.Graph, RootedTree, Sequence[frozenset]], Shortcut]


def _cell_subtree(tree: RootedTree, cell: frozenset) -> RootedTree:
    """Return the subtree of ``T`` induced on a cell, as a rooted tree.

    Cells are, by construction, connected subtrees of ``T`` (components of
    ``T`` minus the apices, possibly merged with other components through a
    vortex -- in which case the induced forest is reconnected by contracting
    through the missing apices, i.e. we fall back to the generic
    ``contract_to`` minor, which stays within tree edges wherever they exist).
    """
    induced = nx.Graph()
    induced.add_nodes_from(cell)
    for u, v in tree.edges():
        if u in cell and v in cell:
            induced.add_edge(u, v)
    if nx.is_connected(induced):
        root = min(cell, key=repr)
        parent: dict[Hashable, Hashable | None] = {root: None}
        stack = [root]
        while stack:
            node = stack.pop()
            for neighbour in induced.neighbors(node):
                if neighbour not in parent:
                    parent[neighbour] = node
                    stack.append(neighbour)
        return RootedTree(parent, root)
    return tree.contract_to(cell)


def _uplink_edges(tree: RootedTree, cell: frozenset, apices: set) -> set[Edge]:
    """Return the tree edges connecting the cell to an apex (the "uplinks")."""
    uplinks: set[Edge] = set()
    for vertex in cell:
        parent = tree.parent.get(vertex)
        if parent is not None and parent in apices:
            uplinks.add(canonical_edge(vertex, parent))
        for child in tree.children.get(vertex, []):
            if child in apices:
                uplinks.add(canonical_edge(vertex, child))
    return uplinks


def default_cell_shortcutter(
    cell_graph: nx.Graph, cell_tree: RootedTree, subparts: Sequence[frozenset]
) -> Shortcut:
    """Default per-cell local shortcutter: the oblivious congestion-capped search.

    Lemma 9 uses the planar shortcutter (Theorem 4) here and Lemma 10 the
    treewidth-based one; both are *existence* arguments, and the oblivious
    search is the constructor the distributed algorithm would actually run
    inside a cell (see the discussion in :mod:`repro.shortcuts.congestion_capped`).
    Callers with a structural witness can pass a family-specific shortcutter.
    """
    return oblivious_shortcut(cell_graph, cell_tree, subparts)


def apex_shortcut(
    graph: nx.Graph,
    tree: RootedTree | None = None,
    parts: Sequence[frozenset] = (),
    apices: Iterable[Hashable] = (),
    vortex_node_groups: Sequence[Iterable[Hashable]] = (),
    cell_shortcutter: CellShortcutter | None = None,
) -> Shortcut:
    """Construct a tree-restricted shortcut for an apex graph (Lemma 9/10, Thm 8).

    Args:
        graph: the network graph (surface part + vortices + apices).
        tree: spanning tree ``T`` of ``graph`` (defaults to BFS).
        parts: the parts to serve.
        apices: the apex vertices ``q`` of the witness.
        vortex_node_groups: for every vortex, the set of vertices it touches
            (boundary plus internal nodes); cells meeting a vortex are merged
            into special cells exactly as Lemma 10 prescribes.
        cell_shortcutter: local shortcutter run inside skipped cells.

    Returns:
        A T-restricted :class:`Shortcut` covering every part.
    """
    tree = tree if tree is not None else bfs_spanning_tree(graph)
    validate_parts(graph, parts)
    apex_set = set(apices)
    shortcutter = cell_shortcutter if cell_shortcutter is not None else default_cell_shortcutter
    for apex in apex_set:
        if apex not in graph:
            raise InvalidShortcutError(f"apex {apex} is not a graph vertex")

    tree_edges = set(tree.edge_set())
    edge_sets: list[set[Edge]] = [set() for _ in parts]

    if not apex_set:
        # Degenerate case: no apices means the whole graph is one "cell";
        # serve every part with the oblivious constructor directly.
        fallback = shortcutter(graph, tree, parts)
        fallback.constructor = "apex(no-apices)"
        return fallback

    # Step 1: parts containing an apex get the whole tree.
    apex_parts = [i for i, part in enumerate(parts) if set(part) & apex_set]
    for index in apex_parts:
        edge_sets[index] = set(tree_edges)

    surface_part_indices = [i for i in range(len(parts)) if i not in set(apex_parts)]

    # Step 2/3: cells from T minus apices, vortices merged into special cells.
    partition = cells_from_tree_without_apices(tree, apex_set)
    if vortex_node_groups:
        partition = merge_cells_touching(partition, list(vortex_node_groups))

    # Step 4: cell assignment (Lemma 5/6 peeling) for the non-apex parts.
    surface_parts = [parts[i] for i in surface_part_indices]
    assignment = compute_cell_assignment(surface_parts, partition)

    cell_list = partition.cells
    for local_index, part_index in enumerate(surface_part_indices):
        for cell_index in assignment.related_cells[local_index]:
            cell = cell_list[cell_index]
            cell_edges = {
                edge for edge in tree_edges if edge[0] in cell and edge[1] in cell
            }
            edge_sets[part_index] |= cell_edges
            edge_sets[part_index] |= _uplink_edges(tree, cell, apex_set)

    # Step 5: local shortcuts inside skipped cells and special cells.
    skipped_by_cell: dict[int, list[int]] = {}
    special_indices = set(partition.special)
    cell_vertex_sets = [set(cell) for cell in cell_list]
    for local_index, part_index in enumerate(surface_part_indices):
        part_set = set(parts[part_index])
        related = assignment.related_cells[local_index]
        for cell_index, cell_vertices in enumerate(cell_vertex_sets):
            if cell_index in related:
                continue
            if cell_index in special_indices or cell_index in assignment.skipped_cells[local_index]:
                if cell_vertices & part_set:
                    skipped_by_cell.setdefault(cell_index, []).append(part_index)

    for cell_index, part_indices in skipped_by_cell.items():
        cell = cell_list[cell_index]
        cell_vertices = cell_vertex_sets[cell_index]
        cell_tree = _cell_subtree(tree, cell)
        cell_graph = graph.subgraph(cell).copy()
        for u, v in cell_tree.edges():
            cell_graph.add_edge(u, v)
        subparts: list[frozenset] = []
        owners: list[int] = []
        for part_index in part_indices:
            restricted = set(parts[part_index]) & cell_vertices
            if not restricted:
                continue
            for component in nx.connected_components(cell_graph.subgraph(restricted)):
                subparts.append(frozenset(component))
                owners.append(part_index)
        if not subparts:
            continue
        local = shortcutter(cell_graph, cell_tree, subparts)
        for sub_index, owner in enumerate(owners):
            kept = {edge for edge in local.edge_sets[sub_index] if edge in tree_edges}
            edge_sets[owner] |= kept

    shortcut = Shortcut(
        graph=graph,
        tree=tree,
        parts=parts,
        edge_sets=[frozenset(edges) for edges in edge_sets],
        constructor="apex(theorem8)",
    )
    return shortcut


def apex_shortcut_from_witness(
    witness: AlmostEmbeddableGraph,
    tree: RootedTree | None = None,
    parts: Sequence[frozenset] = (),
    cell_shortcutter: CellShortcutter | None = None,
) -> Shortcut:
    """Convenience wrapper: read apices and vortices off an almost-embeddable witness."""
    return apex_shortcut(
        witness.graph,
        tree,
        parts,
        apices=witness.apices,
        vortex_node_groups=[vortex.all_nodes() for vortex in witness.vortices],
        cell_shortcutter=cell_shortcutter,
    )
