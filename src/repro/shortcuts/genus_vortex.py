"""Shortcuts for Genus+Vortex graphs (Theorem 9 / Corollary 3, via Lemma 2/3).

The paper's warm-up (Section 2.3.1) handles ``(0, g, k, l)``-almost-embeddable
graphs -- bounded genus plus vortices, no apices -- by showing they have
treewidth ``O((g + 1) k l D)`` (Lemma 3) and then invoking the
treewidth-based shortcut construction (Theorem 5).  The constructor here
replays that chain: build the Lemma 2/3 tree decomposition (star-replace the
vortices, decompose, re-insert the vortex nodes) and hand it to
:func:`repro.shortcuts.treewidth.treewidth_shortcut`.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from ..errors import InvalidGraphError
from ..graphs.apex_vortex import AlmostEmbeddableGraph
from ..structure.spanning import RootedTree, bfs_spanning_tree
from ..structure.tree_decomposition import genus_vortex_decomposition, greedy_tree_decomposition
from .shortcut import Shortcut
from .treewidth import treewidth_shortcut


def genus_vortex_shortcut(
    almost_embeddable: AlmostEmbeddableGraph,
    tree: RootedTree | None = None,
    parts: Sequence[frozenset] = (),
    fold: bool = True,
) -> Shortcut:
    """Construct shortcuts for the apex-free part of an almost-embeddable graph.

    Args:
        almost_embeddable: the construction witness; must have **no apices**
            (apices are the business of Lemma 9/10 -- use
            :func:`repro.shortcuts.apex.apex_shortcut` for graphs that have
            them).
        tree: spanning tree of the apex-free graph (defaults to BFS).
        parts: the parts to serve.
        fold: passed through to the underlying clique-sum composition.
    """
    if almost_embeddable.apices:
        raise InvalidGraphError(
            "genus_vortex_shortcut handles only the (0, g, k, l) case; this witness "
            "has apices -- use apex_shortcut instead"
        )
    graph = almost_embeddable.graph
    tree = tree if tree is not None else bfs_spanning_tree(graph)
    if almost_embeddable.vortices:
        decomposition = genus_vortex_decomposition(almost_embeddable)
    else:
        decomposition = greedy_tree_decomposition(graph)
    shortcut = treewidth_shortcut(
        graph, tree, parts, decomposition=decomposition, fold=fold
    )
    shortcut.constructor = "genus_vortex(theorem9)"
    return shortcut


def genus_vortex_quality_bounds(
    almost_embeddable: AlmostEmbeddableGraph, diameter: int, num_nodes: int
) -> dict[str, float]:
    """Return the Theorem 9 asymptotic targets for experiment annotation."""
    import math

    _q, g, k, l = almost_embeddable.parameters
    block = (g + 1) * max(1, k) * max(1, l) * diameter
    congestion = block * math.log2(num_nodes + 2)
    return {"block": block, "congestion": congestion, "quality": block * diameter + congestion}
