"""Quality measurement sweeps and the best-of portfolio constructor.

The experiments repeatedly need to (a) run several shortcut constructors on
the same (graph, tree, parts) instance and tabulate their measured
congestion / block / quality, and (b) pick the best available construction
for a given instance when driving the distributed algorithms.  Both helpers
live here so that benchmark files stay declarative.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import networkx as nx

from ..structure.spanning import RootedTree, bfs_spanning_tree
from .baseline import empty_shortcut, steiner_shortcut, whole_tree_shortcut
from .congestion_capped import oblivious_shortcut
from .shortcut import Shortcut, ShortcutQuality

Constructor = Callable[[nx.Graph, RootedTree, Sequence[frozenset]], Shortcut]


def default_constructors() -> dict[str, Constructor]:
    """Return the family-agnostic constructors every experiment can run."""
    return {
        "empty": empty_shortcut,
        "whole_tree": whole_tree_shortcut,
        "steiner": steiner_shortcut,
        "oblivious": oblivious_shortcut,
    }


def measure_constructors(
    graph: nx.Graph,
    parts: Sequence[frozenset],
    constructors: Mapping[str, Constructor] | None = None,
    tree: RootedTree | None = None,
    validate: bool = True,
) -> dict[str, ShortcutQuality]:
    """Run every constructor on the instance and return its measured quality.

    Args:
        graph: the network graph.
        parts: the parts to serve.
        constructors: name -> constructor mapping; defaults to
            :func:`default_constructors`.
        tree: the spanning tree (shared across constructors so the comparison
            is apples-to-apples); defaults to a BFS tree.
        validate: whether to validate each produced shortcut (T-restriction
            and structural sanity) before measuring it.
    """
    tree = tree if tree is not None else bfs_spanning_tree(graph)
    constructors = constructors if constructors is not None else default_constructors()
    results: dict[str, ShortcutQuality] = {}
    for name, constructor in constructors.items():
        shortcut = constructor(graph, tree, parts)
        if validate:
            shortcut.validate()
        results[name] = shortcut.measure()
    return results


def best_shortcut(
    graph: nx.Graph,
    parts: Sequence[frozenset],
    constructors: Mapping[str, Constructor] | None = None,
    tree: RootedTree | None = None,
) -> Shortcut:
    """Return the lowest-quality (i.e. best) shortcut among the constructors.

    Used by the distributed algorithms when the caller has no structural
    witness: quality is a worst-case surrogate for the aggregation round
    count, so minimising it minimises the simulated rounds.
    """
    tree = tree if tree is not None else bfs_spanning_tree(graph)
    constructors = constructors if constructors is not None else default_constructors()
    best: Shortcut | None = None
    best_quality: int | None = None
    for _name, constructor in sorted(constructors.items()):
        candidate = constructor(graph, tree, parts)
        quality = candidate.quality()
        if best_quality is None or quality < best_quality:
            best, best_quality = candidate, quality
    assert best is not None
    return best
