"""Shortcuts in k-clique-sum graphs (Theorem 7 and Lemma 1).

Given a graph ``G`` composed as a k-clique-sum of bags drawn from a family
``F`` that admits good shortcuts, Theorem 7 constructs shortcuts for ``G``
from two ingredients:

* **global shortcuts**: a part ``P`` is granted all tree edges lying in the
  decomposition-tree subtrees hanging off its "highest" bag ``h_P`` (the LCA
  of the bags it touches), minus the edges inside ``h_P`` itself (Figure 2);
* **local shortcuts**: inside ``h_P``, the part is served by the family
  shortcutter of the bag, run against the *repaired* tree ``T^2_h`` -- the
  minor of ``T`` contracted onto the bag's vertices (Figure 3) -- and pruned
  back to real tree edges afterwards.

The congestion of the global shortcut pays a factor of the decomposition
tree depth (Lemma 1); folding the tree with the heavy-light scheme of
:mod:`repro.structure.heavy_light` reduces the depth to ``O(log^2 n)``, which
is the difference between Lemma 1 and Theorem 7 and is exposed here through
the ``fold`` flag so experiment E3 can measure both arms.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

import networkx as nx

from ..errors import InvalidShortcutError
from ..graphs.clique_sum import Bag, CliqueSumDecomposition
from ..structure.heavy_light import (
    FoldedDecompositionTree,
    fold_decomposition_tree,
    identity_folding,
)
from ..structure.spanning import RootedTree, bfs_spanning_tree
from ..utils import canonical_edge
from .congestion_capped import oblivious_shortcut
from .parts import validate_parts
from .shortcut import Shortcut

Edge = tuple[Hashable, Hashable]

# A bag-local shortcutter: (bag graph B^0_h, repaired tree T^2_h, sub-parts, bag)
# -> Shortcut on the bag graph.  The returned shortcut's edges are later
# intersected with the true tree edges, so the shortcutter is free to use the
# repaired tree's virtual edges.
LocalShortcutter = Callable[[nx.Graph, RootedTree, Sequence[frozenset], Bag], Shortcut]


def default_local_shortcutter(
    bag_graph: nx.Graph,
    bag_tree: RootedTree,
    subparts: Sequence[frozenset],
    bag: Bag,
) -> Shortcut:
    """Family shortcutter used when the caller does not supply one.

    The oblivious congestion-capped search is a safe default for any bag
    family; the minor-free pipeline overrides it with family-specific
    constructors (planar / apex / treewidth) chosen by the bag's ``kind``.
    """
    return oblivious_shortcut(bag_graph, bag_tree, subparts)


def _descendant_vertex_sets(
    folded: FoldedDecompositionTree,
) -> tuple[dict[int, int | None], dict[int, set], dict[int, set]]:
    """Return (parent map, per-group vertex set, per-group descendant vertex set)."""
    tree = folded.tree
    root = folded.root
    parent: dict[int, int | None] = {root: None}
    order: list[int] = []
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        for neighbour in tree.neighbors(node):
            if neighbour not in parent:
                parent[neighbour] = node
                stack.append(neighbour)
    group_vertices = {group: set(folded.group_vertices(group)) for group in tree.nodes()}
    descendant_vertices: dict[int, set] = {group: set(group_vertices[group]) for group in tree.nodes()}
    for node in reversed(order):
        if parent[node] is not None:
            descendant_vertices[parent[node]] |= descendant_vertices[node]
    return parent, group_vertices, descendant_vertices


def _tree_edges_within(tree_edges: set[Edge], vertices: set) -> set[Edge]:
    """Return the tree edges with both endpoints inside ``vertices``."""
    return {edge for edge in tree_edges if edge[0] in vertices and edge[1] in vertices}


def _parent_clique_vertices(
    decomposition: CliqueSumDecomposition,
    folded: FoldedDecompositionTree,
    parent: dict[int, int | None],
    group: int,
) -> set:
    """Vertices of the partial cliques connecting ``group`` to its parent group.

    With folding these are the "double edge" cliques of the proof: up to two
    partial cliques may cross a single folded-tree edge.  Local shortcut edges
    lying entirely inside these cliques are discarded (the paper's discard
    step), so that such edges are only charged at the bag where they are the
    LCA bag.
    """
    parent_group = parent.get(group)
    if parent_group is None:
        return set()
    own_bags = set(folded.member_bags(group))
    parent_bags = set(folded.member_bags(parent_group))
    vertices: set = set()
    for tree_edge, clique in decomposition.partial_cliques.items():
        a, b = tuple(tree_edge)
        if (a in own_bags and b in parent_bags) or (b in own_bags and a in parent_bags):
            vertices |= set(clique)
    return vertices


def clique_sum_shortcut(
    graph: nx.Graph,
    tree: RootedTree | None = None,
    parts: Sequence[frozenset] = (),
    decomposition: CliqueSumDecomposition | None = None,
    local_shortcutter: LocalShortcutter | None = None,
    fold: bool = True,
) -> Shortcut:
    """Construct a tree-restricted shortcut for a clique-sum graph (Theorem 7).

    Args:
        graph: the composed graph ``G``.
        tree: the spanning tree ``T`` (defaults to a BFS tree of ``G``).
        parts: the parts to serve.
        decomposition: the clique-sum decomposition witness recorded by the
            generator; required (the paper's existence proof also consumes
            it, see DESIGN.md).
        local_shortcutter: per-bag family shortcutter (defaults to the
            oblivious constructor).
        fold: whether to heavy-light-fold the decomposition tree to depth
            ``O(log^2 n)`` (Theorem 7) or keep it as-is (Lemma 1); the
            ablation experiment E3 runs both.

    Returns:
        A validated T-restricted :class:`Shortcut`.
    """
    if decomposition is None:
        raise InvalidShortcutError(
            "clique_sum_shortcut needs the CliqueSumDecomposition witness"
        )
    tree = tree if tree is not None else bfs_spanning_tree(graph)
    validate_parts(graph, parts)
    shortcutter = local_shortcutter if local_shortcutter is not None else default_local_shortcutter

    folded = fold_decomposition_tree(decomposition) if fold else identity_folding(decomposition)
    parent, group_vertices, descendant_vertices = _descendant_vertex_sets(folded)
    tree_edges = set(tree.edge_set())

    # Precompute per-group tree edge sets.
    edges_in_group = {g: _tree_edges_within(tree_edges, vs) for g, vs in group_vertices.items()}
    edges_in_descendants = {
        g: _tree_edges_within(tree_edges, vs) for g, vs in descendant_vertices.items()
    }
    children: dict[int, list[int]] = {g: [] for g in folded.tree.nodes()}
    for node, par in parent.items():
        if par is not None:
            children[par].append(node)

    # Group assignments of parts: which groups a part touches, and its LCA group.
    depth: dict[int, int] = {folded.root: 0}
    order = [folded.root]
    index = 0
    while index < len(order):
        node = order[index]
        index += 1
        for child in children[node]:
            depth[child] = depth[node] + 1
            order.append(child)

    def group_lca(groups: set[int]) -> int:
        current = set(groups)
        if not current:
            return folded.root
        while len(current) > 1:
            deepest = max(current, key=lambda g: depth[g])
            current.discard(deepest)
            par = parent[deepest]
            if par is not None:
                current.add(par)
            else:
                return folded.root
        return next(iter(current))

    edge_sets: list[set[Edge]] = [set() for _ in parts]
    home_group: list[int] = []
    for part_index, part in enumerate(parts):
        part_set = set(part)
        touched = {g for g, vs in group_vertices.items() if vs & part_set}
        h = group_lca(touched)
        home_group.append(h)
        # Global shortcut: descendants of h's children that the part reaches.
        for child in children[h]:
            if descendant_vertices[child] & part_set:
                edge_sets[part_index] |= edges_in_descendants[child] - edges_in_group[h]

    # Local shortcuts, one pass per group over the parts homed there.
    parts_by_group: dict[int, list[int]] = {}
    for part_index, h in enumerate(home_group):
        parts_by_group.setdefault(h, []).append(part_index)

    for group, part_indices in parts_by_group.items():
        discard_vertices = _parent_clique_vertices(decomposition, folded, parent, group)
        for bag_index in folded.member_bags(group):
            bag = decomposition.bags[bag_index]
            bag_vertices = set(bag.nodes)
            # Sub-parts: connected components (in the completed bag graph) of
            # each homed part restricted to the bag.
            completed = decomposition.completed_bag_graph(bag_index)
            subparts: list[frozenset] = []
            owner_of_subpart: list[int] = []
            for part_index in part_indices:
                restricted = set(parts[part_index]) & bag_vertices
                if not restricted:
                    continue
                for component in nx.connected_components(completed.subgraph(restricted)):
                    subparts.append(frozenset(component))
                    owner_of_subpart.append(part_index)
            if not subparts:
                continue
            # Repaired tree T^2_h: the minor of T contracted onto the bag.
            bag_tree = tree.contract_to(bag_vertices)
            # The local shortcutter needs a host graph containing both the
            # completed bag edges and the repaired tree's (possibly virtual)
            # edges; virtual edges are discarded after construction anyway.
            local_graph = completed.copy()
            for u, v in bag_tree.edges():
                local_graph.add_edge(u, v)
            local = shortcutter(local_graph, bag_tree, subparts, bag)
            for sub_index, owner in enumerate(owner_of_subpart):
                kept = {
                    edge
                    for edge in local.edge_sets[sub_index]
                    if edge in tree_edges
                    and not (edge[0] in discard_vertices and edge[1] in discard_vertices)
                }
                edge_sets[owner] |= kept

    shortcut = Shortcut(
        graph=graph,
        tree=tree,
        parts=parts,
        edge_sets=[frozenset(edges) for edges in edge_sets],
        constructor=f"clique_sum(fold={fold})",
    )
    return shortcut
