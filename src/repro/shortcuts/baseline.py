"""Trivial shortcut constructions used as baselines and building blocks.

Three extremes bracket the design space:

* the **empty shortcut** gives every part nothing: congestion 0, but the
  block parameter equals the largest part size (every part vertex is its own
  block), which is the "aggregate inside your own part" strategy the paper's
  introduction describes as the naive solution;
* the **whole-tree shortcut** gives every part the entire spanning tree:
  block parameter 1, but congestion equal to the number of parts;
* the **Steiner shortcut** gives every part the minimal subtree of ``T``
  spanning it: block parameter 1, congestion equal to the maximum number of
  part Steiner trees sharing a tree edge -- usually much better than the
  whole tree, and the starting point the congestion-capped constructor prunes.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from ..structure.spanning import RootedTree, bfs_spanning_tree
from .parts import validate_parts
from .shortcut import Shortcut


def empty_shortcut(
    graph: nx.Graph,
    tree: RootedTree | None = None,
    parts: Sequence[frozenset] = (),
) -> Shortcut:
    """Return the shortcut that assigns no edges to any part (the naive baseline)."""
    tree = tree if tree is not None else bfs_spanning_tree(graph)
    validate_parts(graph, parts)
    return Shortcut(
        graph=graph,
        tree=tree,
        parts=parts,
        edge_sets=[frozenset() for _ in parts],
        constructor="empty",
    )


def whole_tree_shortcut(
    graph: nx.Graph,
    tree: RootedTree | None = None,
    parts: Sequence[frozenset] = (),
) -> Shortcut:
    """Return the shortcut that gives every part the entire spanning tree.

    Block parameter is 1 for every part, but every tree edge is used by every
    part, so the congestion equals the number of parts -- acceptable only
    when there are few parts (e.g. the final Boruvka phases).
    """
    tree = tree if tree is not None else bfs_spanning_tree(graph)
    validate_parts(graph, parts)
    all_edges = tree.edge_set()
    return Shortcut(
        graph=graph,
        tree=tree,
        parts=parts,
        edge_sets=[all_edges for _ in parts],
        constructor="whole_tree",
    )


def steiner_shortcut(
    graph: nx.Graph,
    tree: RootedTree | None = None,
    parts: Sequence[frozenset] = (),
) -> Shortcut:
    """Give every part the minimal subtree of ``T`` spanning its vertices.

    This is the natural "greedy" tree-restricted shortcut: each part gets a
    single block (its Steiner tree is connected and touches the part), and
    the congestion of a tree edge equals the number of parts whose Steiner
    tree crosses it.  On a path-shaped tree with nested parts this congestion
    can be as large as the number of parts, which is exactly the failure mode
    the congestion-capped constructor repairs.
    """
    tree = tree if tree is not None else bfs_spanning_tree(graph)
    validate_parts(graph, parts)
    edge_sets = [frozenset(tree.steiner_tree_edges(part)) for part in parts]
    return Shortcut(
        graph=graph,
        tree=tree,
        parts=parts,
        edge_sets=edge_sets,
        constructor="steiner",
    )
