"""Shortcuts for excluded-minor graphs (Theorem 6): the full pipeline.

Theorem 6 combines the two halves of the proof: by the Graph Structure
Theorem the input is (contained in) a k-clique-sum of k-almost-embeddable
bags; Theorem 8 provides shortcuts inside every bag, and Theorem 7 composes
them across the clique-sum.  The :func:`minor_free_shortcut` constructor
replays exactly that composition on the construction witness recorded by
:func:`repro.graphs.minor_free.sample_lk_graph`:

* almost-embeddable bags are served by the apex construction of Theorem 8
  (which internally handles the genus/vortex part through cells);
* planar / treewidth / generic bags are served by the oblivious constructor
  (their structural theorems guarantee good shortcuts exist, and the
  oblivious search finds ones of comparable measured quality);
* the per-bag shortcuts are stitched together by the clique-sum construction
  with heavy-light folding.

The expected measured shape, which experiment E5 reports, is block
``O(d_T)`` and congestion ``O(d_T log n + log^2 n)``, i.e. quality
``~ d_T^2`` up to logarithmic factors.
"""

from __future__ import annotations

import math
from typing import Sequence

import networkx as nx

from ..graphs.apex_vortex import AlmostEmbeddableGraph
from ..graphs.clique_sum import Bag
from ..graphs.minor_free import MinorFreeGraph
from ..structure.spanning import RootedTree, bfs_spanning_tree
from .apex import apex_shortcut
from .clique_sum import clique_sum_shortcut
from .congestion_capped import oblivious_shortcut
from .shortcut import Shortcut


def _bag_shortcutter(
    bag_graph: nx.Graph,
    bag_tree: RootedTree,
    subparts: Sequence[frozenset],
    bag: Bag,
) -> Shortcut:
    """Dispatch the per-bag construction on the bag's family tag."""
    witness = bag.witness
    if bag.kind == "almost_embeddable" and isinstance(witness, AlmostEmbeddableGraph):
        bag_nodes = set(bag_graph.nodes())
        apices = [apex for apex in witness.apices if apex in bag_nodes]
        vortex_groups = []
        for vortex in witness.vortices:
            group = [node for node in vortex.all_nodes() if node in bag_nodes]
            if group:
                vortex_groups.append(group)
        return apex_shortcut(
            bag_graph,
            bag_tree,
            subparts,
            apices=apices,
            vortex_node_groups=vortex_groups,
        )
    # Planar, treewidth and generic bags: their family theorems (4 and 5)
    # guarantee good shortcuts exist; the oblivious search constructs them
    # without needing the (label-translated) witness.
    return oblivious_shortcut(bag_graph, bag_tree, subparts)


def minor_free_shortcut(
    minor_free: MinorFreeGraph,
    tree: RootedTree | None = None,
    parts: Sequence[frozenset] = (),
    fold: bool = True,
) -> Shortcut:
    """Construct a tree-restricted shortcut for a sampled L_k graph (Theorem 6).

    Args:
        minor_free: the sampled graph together with its clique-sum witness.
        tree: spanning tree of the composed graph (defaults to BFS).
        parts: the parts to serve.
        fold: whether to heavy-light fold the decomposition tree (Theorem 7).
    """
    graph = minor_free.graph
    tree = tree if tree is not None else bfs_spanning_tree(graph)
    shortcut = clique_sum_shortcut(
        graph,
        tree,
        parts,
        decomposition=minor_free.decomposition,
        local_shortcutter=_bag_shortcutter,
        fold=fold,
    )
    shortcut.constructor = "minor_free(theorem6)"
    return shortcut


def minor_free_quality_bounds(tree_diameter: int, num_nodes: int) -> dict[str, float]:
    """Return the Theorem 6 asymptotic targets for experiment annotation.

    block = O(d), congestion = O(d log n + log^2 n), quality = O~(d^2).
    """
    log_n = math.log2(num_nodes + 2)
    return {
        "block": float(tree_diameter),
        "congestion": tree_diameter * log_n + log_n**2,
        "quality": tree_diameter * (tree_diameter + log_n) + log_n**2,
    }
