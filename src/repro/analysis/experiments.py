"""One function per experiment of the reproduction (see DESIGN.md, Section 3).

Every function returns a plain dict (JSON-friendly) containing the measured
quantities and the paper's corresponding target, so that the benchmark
drivers can simply print them and EXPERIMENTS.md can quote them.  The
instance sizes default to values that run in a couple of seconds on a laptop;
the benchmark files pass larger sizes where useful.

The experiments are ported onto the scenario engine
(:mod:`repro.scenarios`): instances come from the family registry and
shortcuts from the constructor registry, so every experiment exercises the
same code paths as a declarative scenario sweep (and the golden-record
regression test pins the outputs so engine refactors cannot silently drift).
Bespoke set-ups with no registry counterpart -- the adversarial wheel, the
perturbed planar graph of E8, the Figure 1 constructions -- remain direct.
"""

from __future__ import annotations

import math
import time
from typing import Sequence

import networkx as nx

from ..algorithms.mincut import approximate_min_cut
from ..algorithms.mst import boruvka_mst, native_mst_weight, reference_mst_weight
from ..algorithms.mst_baselines import (
    gkp_reference_rounds,
    no_shortcut_builder,
    paper_reference_rounds,
)
from ..congest.faults import FaultModel
from ..congest.primitives import broadcast_value, distributed_bfs_tree
from ..congest.reference import ReferenceSimulator
from ..congest.runtime import RuntimeSimulator
from ..congest.simulator import CongestSimulator
from ..core import networkx_reference_paths, nx_materializations, view_of
from ..graphs.apex_vortex import build_almost_embeddable
from ..graphs.clique_sum import clique_sum_compose
from ..graphs.minor_free import perturbed_planar_graph
from ..graphs.planar import grid_graph, is_planar, wheel_graph
from ..scenarios.engine import Scenario, build_instance, run_matrix, run_scenario, scenario_matrix
from ..scenarios.instances import InstanceCache
from ..scenarios.registry import constructor as scenario_constructor
from ..graphs.weights import assign_adversarial_weights
from ..shortcuts.apex import apex_shortcut, apex_shortcut_from_witness
from ..shortcuts.baseline import empty_shortcut, steiner_shortcut
from ..shortcuts.clique_sum import clique_sum_shortcut
from ..shortcuts.congestion_capped import oblivious_shortcut
from ..shortcuts.engine import ConstructionEngine
from ..shortcuts.minor_free import minor_free_quality_bounds
from ..shortcuts.parts import path_parts
from ..shortcuts.planar import planar_quality_bounds
from ..structure.cell_assignment import compute_cell_assignment
from ..structure.cells import cells_from_tree_without_apices
from ..structure.gates import planar_gates, trivial_gates, validate_gates
from ..structure.spanning import bfs_spanning_tree, graph_diameter
from ..structure.tree_decomposition import genus_vortex_decomposition
from .quality import fit_growth_exponent


def experiment_planar_quality(sides: Sequence[int] = (6, 10, 14, 18)) -> dict:
    """E1 -- Theorem 4: planar shortcut quality versus diameter.

    Sweeps square grids (diameter ``2(side-1)``), measures the planar
    constructor's block/congestion/quality on path-shaped parts, and fits the
    growth exponent of quality versus tree diameter (target: ~1 up to logs).
    """
    planar = scenario_constructor("planar")
    rows = []
    diameters = []
    qualities = []
    for side in sides:
        instance = build_instance("planar", {"side": side})
        parts = instance.parts("path")
        shortcut = planar.build(instance, instance.tree, parts)
        measure = shortcut.measure()
        bounds = planar_quality_bounds(measure.tree_diameter)
        rows.append(
            {
                "side": side,
                "n": instance.graph.number_of_nodes(),
                "tree_diameter": measure.tree_diameter,
                "block": measure.block,
                "congestion": measure.congestion,
                "quality": measure.quality,
                "target_quality": bounds["quality"],
            }
        )
        diameters.append(measure.tree_diameter)
        qualities.append(measure.quality)
    return {
        "experiment": "E1-planar-quality",
        "rows": rows,
        "quality_vs_diameter_exponent": fit_growth_exponent(diameters, qualities),
        "paper_target_exponent": 1.0,
    }


def experiment_treewidth_quality(
    widths: Sequence[int] = (2, 3, 4), n: int = 60, seed: int = 7
) -> dict:
    """E2 -- Theorem 5: treewidth-k shortcut quality versus k."""
    treewidth = scenario_constructor("treewidth")
    rows = []
    for width in widths:
        instance = build_instance("treewidth", {"n": n, "k": width}, seed=seed + width)
        parts = instance.parts("tree_fragments", num_parts=8, seed=seed + width)
        shortcut = treewidth.build(instance, instance.tree, parts)
        measure = shortcut.measure()
        log_n = math.log2(instance.graph.number_of_nodes() + 2)
        rows.append(
            {
                "k": width,
                "n": instance.graph.number_of_nodes(),
                "block": measure.block,
                "congestion": measure.congestion,
                "quality": measure.quality,
                "target_block": float(width + 1),
                "target_congestion": (width + 1) * log_n**2,
            }
        )
    return {"experiment": "E2-treewidth-quality", "rows": rows}


def experiment_clique_sum(
    num_bags: int = 8, bag_side: int = 5, k: int = 3, seed: int = 11
) -> dict:
    """E3 -- Theorem 7: clique-sum composition with and without folding.

    Builds a deliberately path-shaped decomposition tree (worst case for the
    depth-dependent Lemma 1 congestion) and compares the folded and unfolded
    constructions, plus the per-bag quality for reference.
    """
    instance = build_instance(
        "clique_sum",
        {"num_bags": num_bags, "bag_side": bag_side, "k": k, "tree_shape": "path"},
        seed=seed,
    )
    decomposition = instance.witness
    tree = instance.tree
    parts = instance.parts("tree_fragments", num_parts=10, seed=seed)
    folded = scenario_constructor("clique_sum").build(instance, tree, parts)
    unfolded = clique_sum_shortcut(
        instance.graph, tree, parts, decomposition=decomposition, fold=False
    )
    baseline = scenario_constructor("oblivious").build(instance, tree, parts)
    return {
        "experiment": "E3-clique-sum",
        "decomposition_depth": decomposition.depth(),
        "num_bags": num_bags,
        "folded": folded.measure().as_row(),
        "unfolded": unfolded.measure().as_row(),
        "oblivious_baseline": baseline.measure().as_row(),
    }


def experiment_apex(cycle_size: int = 64, grid_side: int = 10, seed: int = 13) -> dict:
    """E4 -- Lemma 9 / Theorem 8: the apex collapses the diameter, shortcuts adapt.

    Two instances: the wheel (cycle plus hub, the paper's running example)
    with the outer cycle as a single part, and a grid plus apex with
    path-shaped parts.  Reports the naive (empty-shortcut) quality, the apex
    construction's quality, and the diameter before/after adding the apex.
    """
    wheel = wheel_graph(cycle_size)
    hub = max(wheel.nodes(), key=lambda v: wheel.degree(v))
    tree = bfs_spanning_tree(wheel, root=hub)
    outer = frozenset(set(wheel.nodes()) - {hub})
    apex = apex_shortcut(wheel, tree, [outer], apices=[hub])
    naive = empty_shortcut(wheel, tree, [outer])

    instance = build_instance(
        "apex", {"rows": grid_side, "cols": grid_side, "apices": 1}, seed=seed
    )
    witness = instance.witness
    grid_tree = instance.tree
    parts = instance.parts("path")
    grid_apex = scenario_constructor("apex").build(instance, grid_tree, parts)
    cells = cells_from_tree_without_apices(grid_tree, witness.apices)
    assignment = compute_cell_assignment(parts, cells)
    return {
        "experiment": "E4-apex",
        "wheel": {
            "cycle_size": cycle_size,
            "diameter_without_apex": cycle_size // 2,
            "diameter_with_apex": graph_diameter(wheel),
            "naive_quality": naive.quality(),
            "apex_quality": apex.quality(),
        },
        "grid_plus_apex": {
            "n": instance.graph.number_of_nodes(),
            "quality": grid_apex.measure().as_row(),
            "num_cells": len(cells),
            "cell_assignment_beta": assignment.beta,
            "cell_assignment_max_skipped": assignment.max_skipped,
        },
    }


def experiment_minor_free_quality(
    bag_counts: Sequence[int] = (3, 5, 7), k: int = 3, bag_size: int = 25, seed: int = 17
) -> dict:
    """E5 -- Theorem 6: quality on sampled L_k graphs versus the O~(d^2) target."""
    minor_free = scenario_constructor("minor_free")
    rows = []
    diameters = []
    qualities = []
    for num_bags in bag_counts:
        instance = build_instance(
            "minor_free",
            {"num_bags": num_bags, "k": k, "bag_size": bag_size},
            seed=seed + num_bags,
        )
        sample = instance.witness
        parts = instance.parts("tree_fragments", num_parts=2 * num_bags, seed=seed)
        shortcut = minor_free.build(instance, instance.tree, parts)
        measure = shortcut.measure()
        bounds = minor_free_quality_bounds(measure.tree_diameter, sample.number_of_nodes)
        rows.append(
            {
                "num_bags": num_bags,
                "n": sample.number_of_nodes,
                "tree_diameter": measure.tree_diameter,
                "block": measure.block,
                "congestion": measure.congestion,
                "quality": measure.quality,
                "target_block": bounds["block"],
                "target_congestion": bounds["congestion"],
                "target_quality": bounds["quality"],
            }
        )
        diameters.append(measure.tree_diameter)
        qualities.append(measure.quality)
    return {
        "experiment": "E5-minor-free-quality",
        "rows": rows,
        "quality_vs_diameter_exponent": fit_growth_exponent(diameters, qualities),
        "paper_target_exponent_upper": 2.0,
    }


def experiment_mst_rounds(
    grid_side: int = 10,
    lower_bound_paths: int = 8,
    lower_bound_length: int = 8,
    seed: int = 19,
) -> dict:
    """E6 -- Corollary 1: MST rounds on excluded-minor versus general graphs.

    Compares (i) a planar+apex network (excluded minor, tiny diameter) under
    the shortcut-accelerated MST and the no-shortcut baseline, and (ii) the
    lower-bound-style graph where any strategy degrades towards sqrt(n).
    Also reports the analytic reference curves the paper compares against.
    """
    instance = build_instance(
        "apex", {"rows": grid_side, "cols": grid_side, "apices": 1}, seed=seed
    )
    graph = instance.weighted_graph(seed)
    tree = instance.tree
    diameter = graph_diameter(graph)

    apex_builder = scenario_constructor("apex").builder_for(instance)
    accelerated = boruvka_mst(graph, shortcut_builder=apex_builder, tree=tree)
    naive = boruvka_mst(graph, shortcut_builder=no_shortcut_builder, tree=tree)
    reference_weight = reference_mst_weight(graph)

    hard_instance = build_instance(
        "lower_bound", {"num_paths": lower_bound_paths, "path_length": lower_bound_length}
    )
    hard_graph = hard_instance.weighted_graph(seed + 1)
    hard_diameter = graph_diameter(hard_graph)
    hard_run = boruvka_mst(hard_graph, shortcut_builder=no_shortcut_builder)

    # The separation is most visible when MST fragments are much longer than
    # the graph diameter: the wheel with adversarial weights (Section 1.3.3).
    wheel = wheel_graph(6 * grid_side)
    hub = max(wheel.nodes(), key=lambda v: wheel.degree(v))
    spine = sorted(set(wheel.nodes()) - {hub})
    assign_adversarial_weights(wheel, spine=spine, seed=seed)
    wheel_tree = bfs_spanning_tree(wheel, root=hub)

    def wheel_builder(g, t, parts):
        return apex_shortcut(g, t, parts, apices=[hub])

    wheel_accelerated = boruvka_mst(wheel, shortcut_builder=wheel_builder, tree=wheel_tree)
    wheel_naive = boruvka_mst(wheel, shortcut_builder=no_shortcut_builder, tree=wheel_tree)

    return {
        "experiment": "E6-mst-rounds",
        "wheel_adversarial": {
            "n": wheel.number_of_nodes(),
            "diameter": 2,
            "accelerated_rounds": wheel_accelerated.rounds,
            "naive_rounds": wheel_naive.rounds,
            "accelerated_wins": wheel_accelerated.rounds < wheel_naive.rounds,
        },
        "planar_plus_apex": {
            "n": graph.number_of_nodes(),
            "diameter": diameter,
            "accelerated_rounds": accelerated.rounds,
            "naive_rounds": naive.rounds,
            "weight_matches_reference": abs(accelerated.weight - reference_weight) < 1e-6,
            "paper_reference_D2": paper_reference_rounds(diameter, graph.number_of_nodes()),
            "general_graph_reference_sqrt_n": gkp_reference_rounds(
                graph.number_of_nodes(), diameter
            ),
        },
        "lower_bound_graph": {
            "n": hard_graph.number_of_nodes(),
            "diameter": hard_diameter,
            "rounds": hard_run.rounds,
            "general_graph_reference_sqrt_n": gkp_reference_rounds(
                hard_graph.number_of_nodes(), hard_diameter
            ),
        },
    }


def experiment_mincut(grid_side: int = 8, epsilon: float = 1.0, seed: int = 23) -> dict:
    """E7 -- Corollary 1: (1+eps)-approximate min-cut accuracy and rounds."""
    instance = build_instance(
        "apex", {"rows": grid_side, "cols": grid_side, "apices": 1}, seed=seed
    )
    graph = instance.weighted_graph(seed, low=1, high=10)
    result = approximate_min_cut(
        graph,
        epsilon=epsilon,
        shortcut_builder=scenario_constructor("apex").builder_for(instance),
        tree=instance.tree,
    )
    return {
        "experiment": "E7-mincut",
        "n": graph.number_of_nodes(),
        "epsilon": epsilon,
        "approx_value": result.value,
        "exact_value": result.exact_value,
        "approximation_ratio": result.approximation_ratio,
        "rounds": result.rounds,
        "num_trees": result.num_trees,
    }


def experiment_robustness(grid_side: int = 9, extra_edges: int = 4, seed: int = 29) -> dict:
    """E8 -- Robustness: perturbed planar graphs stay excluded-minor-friendly.

    A planar grid with a few random edges and an apex is generally not planar
    (so Theorem 4 machinery is inapplicable), yet the apex/minor-free
    construction still produces good shortcuts -- which is the introduction's
    argument for studying excluded minors rather than planarity.
    """
    graph, witness = perturbed_planar_graph(
        grid_side, grid_side, extra_edges=extra_edges, extra_apices=1, seed=seed
    )
    tree = bfs_spanning_tree(graph)
    parts = path_parts(graph, tree)
    still_planar = is_planar(graph)
    apex = apex_shortcut_from_witness(witness, tree, parts)
    fallback = steiner_shortcut(graph, tree, parts)
    return {
        "experiment": "E8-robustness",
        "n": graph.number_of_nodes(),
        "still_planar": still_planar,
        "planar_construction_applicable": still_planar,
        "apex_quality": apex.measure().as_row(),
        "steiner_quality": fallback.measure().as_row(),
    }


def experiment_fault_degradation(
    side: int = 7,
    rates: Sequence[float] = (0.0, 0.01, 0.05),
    kinds: Sequence[str] = ("drop", "delay", "crash"),
    seed: int = 41,
    fault_seed: int = 7,
) -> dict:
    """E8 -- graceful degradation: the simulated MST phases under seeded faults.

    Sweeps every built-in fault ``kind`` over the fault ``rates`` on the
    planar MST scenario (BFS build + announcement run as genuine node
    programs; see :func:`repro.scenarios.registry._run_mst`).  Two contracts
    are asserted, not just measured:

    * **rate 0 is free**: a null model is normalised away, so the rate-0
      cell must reproduce the fail-free record byte-for-byte;
    * **mode independence**: for the highest rate of each kind the record
      is re-computed under the full-scan reference and vectorized runtime
      simulators and must match the active-set record exactly (the fault
      layer's three-mode equality contract).

    The returned rows form the degradation trajectory the E8 benchmark
    appends to ``benchmarks/BENCH_E8.json``: message overhead (retries),
    repaired tree edges and announcement coverage as the fault rate grows.
    """
    scenario = Scenario(
        name="fault-degradation",
        family="planar",
        constructor="steiner",
        algorithm="mst",
        params={"side": side},
        seed=seed,
    )
    cache = InstanceCache()

    def record_for(model: FaultModel | None, simulator_cls=CongestSimulator) -> dict:
        record = run_scenario(
            scenario,
            cache=cache,
            simulator_cls=simulator_cls,
            faults=model,
            fault_seed=fault_seed,
        ).as_dict()
        record["result"].pop("sim_seconds", None)  # wall-clock is not contractual
        return record

    baseline = record_for(None)
    n = baseline["instance"]["n"]
    rate_zero_ok = True
    three_mode_ok = True
    rows = []
    for kind in kinds:
        for rate in rates:
            model = FaultModel.preset(kind, rate=rate)
            record = record_for(model)
            if model.is_null:
                rate_zero_ok = rate_zero_ok and record == baseline
            elif rate == max(rates):
                for other_cls in (ReferenceSimulator, RuntimeSimulator):
                    three_mode_ok = three_mode_ok and record_for(model, other_cls) == record
            result = record["result"]
            rows.append({
                "kind": kind,
                "rate": rate,
                "sim_rounds": result["sim_rounds"],
                "sim_messages": result["sim_messages"],
                "message_overhead": result["sim_messages"] / baseline["result"]["sim_messages"],
                "dropped": result.get("sim_dropped", 0),
                "delayed": result.get("sim_delayed", 0),
                "duplicated": result.get("sim_duplicated", 0),
                "crashed_nodes": result.get("sim_crashed_nodes", 0),
                "bfs_repaired": result.get("bfs_repaired", 0),
                "announce_reached": result.get("announce_reached", n),
                "weight_matches_reference": result["weight_matches_reference"],
                "matches_fail_free": result == baseline["result"],
            })
    return {
        "experiment": "E8-fault-degradation",
        "n": n,
        "rates": list(rates),
        "kinds": list(kinds),
        "fault_seed": fault_seed,
        "baseline_sim_messages": baseline["result"]["sim_messages"],
        "baseline_sim_rounds": baseline["result"]["sim_rounds"],
        "rate_zero_matches_fail_free": rate_zero_ok,
        "three_mode_equal": three_mode_ok,
        "rows": rows,
    }


def experiment_genus_vortex_treewidth(
    sides: Sequence[int] = (5, 7, 9), genus: int = 1, depth: int = 2, vortices: int = 1, seed: int = 31
) -> dict:
    """E9 -- Lemma 2/3: Genus+Vortex treewidth scales with (g+1) k l D."""
    rows = []
    for side in sides:
        instance = build_instance(
            "genus",
            {"g": genus, "depth": depth, "vortices": vortices, "side": side},
            seed=seed + side,
        )
        witness = instance.witness
        decomposition = genus_vortex_decomposition(witness)
        graph = witness.non_apex_graph()
        diameter = graph_diameter(graph)
        target = (genus + 1) * depth * max(1, vortices) * diameter
        rows.append(
            {
                "side": side,
                "n": graph.number_of_nodes(),
                "diameter": diameter,
                "measured_width": decomposition.width,
                "target_width": target,
                "within_target": decomposition.width <= target,
            }
        )
    return {"experiment": "E9-genus-vortex-treewidth", "rows": rows}


def experiment_cells_and_gates(grid_side: int = 10, seed: int = 37) -> dict:
    """E10 -- Lemmas 4-7: cell assignment beta and combinatorial gate size."""
    instance = build_instance(
        "apex", {"rows": grid_side, "cols": grid_side, "apices": 1}, seed=seed
    )
    witness = instance.witness
    tree = instance.tree
    surface = witness.non_apex_graph()
    cells = cells_from_tree_without_apices(tree, witness.apices)
    parts = path_parts(surface)
    assignment = compute_cell_assignment(parts, cells)
    trivial = trivial_gates(surface, cells)
    s_trivial = validate_gates(surface, trivial)
    refined = planar_gates(surface, cells)
    s_refined = validate_gates(surface, refined)
    cell_diameter = max(cells.measured_diameters(surface), default=0)
    return {
        "experiment": "E10-cells-gates",
        "num_cells": len(cells),
        "num_parts": len(parts),
        "cell_diameter": cell_diameter,
        "beta": assignment.beta,
        "beta_target_O_d": cell_diameter,
        "max_skipped": assignment.max_skipped,
        "gate_s_trivial": s_trivial,
        "gate_s_refined": s_refined,
        "gate_s_target_O_d": 36 * max(1, cell_diameter),
    }


def experiment_constructions(seed: int = 41) -> dict:
    """F1 -- Figure 1: apex, vortex and clique-sum constructions as illustrated."""
    almost = build_almost_embeddable(q=1, g=0, k=2, l=1, base_rows=6, base_cols=6, seed=seed)
    grid_a = grid_graph(4, 4)
    grid_b = grid_graph(4, 4)
    composition = clique_sum_compose([grid_a, grid_b], k=3, seed=seed)
    q, g, k, l = almost.parameters
    return {
        "experiment": "F1-constructions",
        "almost_embeddable": {
            "q": q,
            "g": g,
            "k": k,
            "l": l,
            "n": almost.graph.number_of_nodes(),
            "apices": len(almost.apices),
            "vortex_internal_nodes": len(almost.vortex_nodes()),
        },
        "clique_sum": {
            "bags": len(composition.bags),
            "shared_clique_size": composition.max_partial_clique_size(),
            "n": composition.graph.number_of_nodes(),
        },
    }


def experiment_scenario_matrix(
    size: str = "tiny",
    algorithm: str = "quality",
    seed: int = 0,
    families: Sequence[str] | None = None,
    constructors: Sequence[str] | None = None,
    num_parts: int = 6,
) -> dict:
    """S1 -- the full scenario matrix: every family x applicable constructor.

    This is the "as many scenarios as you can imagine" sweep of the ROADMAP,
    run through one declarative entry point; the benchmark smoke runs it on
    tiny sizes, and ``python -m repro.scenarios`` exposes the same sweep on
    the command line.
    """
    cache = InstanceCache()
    scenarios = scenario_matrix(
        families=families,
        constructors=constructors,
        algorithm_name=algorithm,
        size=size,
        seed=seed,
        parts={"kind": "tree_fragments", "num_parts": num_parts},
        cache=cache,
    )
    records = run_matrix(scenarios, cache=cache)
    per_family: dict[str, int] = {}
    for record in records:
        if record["applicable"]:
            per_family[record["family"]] = per_family.get(record["family"], 0) + 1
    return {
        "experiment": "S1-scenario-matrix",
        "size": size,
        "algorithm": algorithm,
        "num_records": len(records),
        "constructors_per_family": dict(sorted(per_family.items())),
        "instance_cache": {"instances": len(cache), "hits": cache.hits, "misses": cache.misses},
        "records": records,
    }


def _best_of(function, repeats: int):
    """Run ``function`` ``repeats`` times; return (best wall-clock, last result).

    Best-of timing is the protocol every S-series speedup experiment uses:
    it keeps the measured ratios stable on noisy shared runners.
    """
    times = []
    result = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = function()
        times.append(time.perf_counter() - started)
    return min(times), result


def experiment_core_speedup(
    mst_side: int = 45,
    quality_side: int = 30,
    seed: int = 19,
    quality_constructor: str = "whole_tree",
    mst_constructor: str = "steiner",
    repeats: int = 3,
) -> dict:
    """S3 -- CoreGraph paths versus the pre-refactor networkx paths.

    Two timed comparisons, both against the preserved ``networkx``
    reference implementations (forced via
    :func:`repro.core.networkx_reference_paths`):

    * **quality measurement**: ``Shortcut.measure()`` (flat Counter
      congestion + epoch union-find blocks over the shared
      :class:`~repro.core.GraphView`) versus ``measure_reference()``
      (per-part ``nx.Graph`` + ``connected_components``) on a
      ``quality_side x quality_side`` grid with path parts and the
      ``quality_constructor`` shortcut (default ``whole_tree``: every part
      carries the full spanning tree, the heaviest measurement shape);
    * **the simulated MST run**: the full ``mst`` scenario (core-mode
      simulator phases, CSR aggregation trees, CSR part validation, fast
      quality per Boruvka phase) versus the same scenario inside the
      reference context, on an ``mst_side x mst_side`` grid.

    Both arms must agree on every measured quantity; wall-clock is best of
    ``repeats``.  ``benchmarks/bench_core_speedup.py`` gates both ratios at
    >=2x.
    """
    cache = InstanceCache()
    # --- quality measurement -------------------------------------------
    quality_instance = build_instance("planar", {"side": quality_side}, seed=seed, cache=cache)
    quality_instance.view  # warm the shared conversion (one per sweep)
    parts = quality_instance.parts("path")
    shortcut = scenario_constructor(quality_constructor).build(
        quality_instance, quality_instance.tree, parts
    )

    fast_seconds, fast_measure = _best_of(shortcut.measure, repeats)
    reference_seconds, reference_measure = _best_of(shortcut.measure_reference, repeats)
    quality_agree = fast_measure == reference_measure

    # --- the simulated MST run -----------------------------------------
    warm = build_instance("planar", {"side": mst_side}, seed=seed, cache=cache)
    warm.weighted_graph(seed)
    warm.view
    warm.tree  # the shared spanning tree is cache-warm for both arms
    scenario = Scenario(
        name=f"planar/{mst_constructor}/mst",
        family="planar",
        constructor=mst_constructor,
        algorithm="mst",
        params={"side": mst_side},
        seed=seed,
    )

    def run_mst() -> dict:
        return dict(run_scenario(scenario, cache=cache).as_dict()["result"])

    core_seconds, core_result = _best_of(run_mst, repeats)
    with networkx_reference_paths():
        pre_seconds, pre_result = _best_of(run_mst, repeats)
    mst_agree = all(
        core_result[key] == pre_result[key]
        for key in ("mst_rounds", "mst_phases", "mst_weight", "sim_rounds", "sim_messages", "sim_words")
    )
    return {
        "experiment": "S3-core-speedup",
        "quality": {
            "n": quality_side * quality_side,
            "num_parts": len(parts),
            "constructor": quality_constructor,
            "core_seconds": fast_seconds,
            "reference_seconds": reference_seconds,
            "speedup": reference_seconds / max(fast_seconds, 1e-9),
            "results_agree": quality_agree,
            "measure": fast_measure.as_row(),
        },
        "mst": {
            "n": mst_side * mst_side,
            "constructor": mst_constructor,
            "core_seconds": core_seconds,
            "reference_seconds": pre_seconds,
            "speedup": pre_seconds / max(core_seconds, 1e-9),
            "sim_speedup": pre_result["sim_seconds"] / max(core_result["sim_seconds"], 1e-9),
            "results_agree": mst_agree,
            "mst_rounds": core_result["mst_rounds"],
        },
    }


def experiment_simulator_speedup(
    side: int = 45, seed: int = 19, constructor: str = "empty"
) -> dict:
    """S2 -- active-set versus full-scan simulator on a grid MST scenario.

    Runs the same MST scenario (simulated BFS-tree construction, Boruvka
    phases, simulated result broadcast) on a ``side x side`` grid twice:
    once under the active-set :class:`CongestSimulator` and once under the
    seed-faithful full-scan :class:`ReferenceSimulator`.  Both must agree on
    every measured quantity; the record reports the wall-clock ratio of the
    simulator-driven phases (``sim_seconds``), which the benchmark asserts
    to be at least 2x.
    """
    cache = InstanceCache()
    # Warm the shared cache (instance, spanning tree, weighted copy) so
    # neither timed run pays for one-off derivations the other gets free.
    warm = build_instance("planar", {"side": side}, seed=seed, cache=cache)
    warm.weighted_graph(seed)

    def run(simulator_cls) -> dict:
        scenario = Scenario(
            name=f"planar/{constructor}/mst",
            family="planar",
            constructor=constructor,
            algorithm="mst",
            params={"side": side},
            seed=seed,
        )
        started = time.perf_counter()
        record = run_scenario(scenario, cache=cache, simulator_cls=simulator_cls)
        total = time.perf_counter() - started
        result = dict(record.as_dict()["result"])
        result["total_seconds"] = total
        return result

    active = run(CongestSimulator)
    reference = run(ReferenceSimulator)
    agree = all(
        active[key] == reference[key]
        for key in ("mst_rounds", "mst_phases", "mst_weight", "sim_rounds", "sim_messages")
    )
    return {
        "experiment": "S2-simulator-speedup",
        "n": side * side,
        "constructor": constructor,
        "active_set": {k: active[k] for k in ("mst_rounds", "sim_rounds", "sim_seconds", "total_seconds")},
        "full_scan": {k: reference[k] for k in ("mst_rounds", "sim_rounds", "sim_seconds", "total_seconds")},
        "results_agree": agree,
        "sim_speedup": reference["sim_seconds"] / max(active["sim_seconds"], 1e-9),
        "total_speedup": reference["total_seconds"] / max(active["total_seconds"], 1e-9),
    }


def experiment_runtime_speedup(
    side: int = 30, seed: int = 19, constructor: str = "empty", repeats: int = 3
) -> dict:
    """S6 -- vectorized runtime versus the per-node core mode on a grid MST.

    Runs the same MST scenario (simulated BFS-tree construction, Boruvka
    phases, simulated result broadcast) on a ``side x side`` grid twice:
    once under the per-node active-set :class:`CongestSimulator` in core
    mode (the previous fastest mode) and once under the vectorized
    :class:`~repro.congest.runtime.RuntimeSimulator`, whose compiled batch
    programs advance whole frontiers per round on flat arrays.  Both arms
    must agree on *every* measured quantity -- MST rounds/phases/weight and
    the full simulated-phase telemetry (rounds, messages, words, peak
    active nodes, active-node-rounds) -- and the record reports the
    wall-clock ratio of the end-to-end simulated phases (``sim_seconds``,
    best of ``repeats`` per arm), which
    ``benchmarks/bench_runtime_speedup.py`` gates at >=3x.
    """
    cache = InstanceCache()
    # Warm the shared cache (instance, spanning tree, weighted copy and its
    # GraphView) so neither timed arm pays for one-off derivations.
    warm = build_instance("planar", {"side": side}, seed=seed, cache=cache)
    view_of(warm.weighted_graph(seed))
    scenario = Scenario(
        name=f"planar/{constructor}/mst",
        family="planar",
        constructor=constructor,
        algorithm="mst",
        params={"side": side},
        seed=seed,
    )

    def run(simulator_cls) -> dict:
        best: dict | None = None
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            record = run_scenario(scenario, cache=cache, simulator_cls=simulator_cls)
            total = time.perf_counter() - started
            result = dict(record.as_dict()["result"])
            result["total_seconds"] = total
            if best is None or result["sim_seconds"] < best["sim_seconds"]:
                best = result
        return best

    core = run(CongestSimulator)
    runtime = run(RuntimeSimulator)
    telemetry_keys = (
        "mst_rounds",
        "mst_phases",
        "mst_weight",
        "sim_rounds",
        "sim_messages",
        "sim_words",
        "sim_peak_active_nodes",
        "sim_active_node_rounds",
    )
    agree = all(core[key] == runtime[key] for key in telemetry_keys)
    report_keys = ("mst_rounds", "sim_rounds", "sim_seconds", "total_seconds")
    return {
        "experiment": "S6-runtime-speedup",
        "n": side * side,
        "constructor": constructor,
        "runtime": {key: runtime[key] for key in report_keys},
        "core": {key: core[key] for key in report_keys},
        "results_agree": agree,
        "sim_speedup": core["sim_seconds"] / max(runtime["sim_seconds"], 1e-9),
        "total_speedup": core["total_seconds"] / max(runtime["total_seconds"], 1e-9),
    }


def experiment_algorithms_speedup(
    side: int = 30,
    seed: int = 23,
    epsilon: float = 1.0,
    repeats: int = 3,
) -> dict:
    """S5 -- the array-native algorithm layer versus the networkx reference.

    Times the paper's end-to-end workload (Corollary 1) -- one distributed
    Boruvka MST plus one (1+eps)-approximate min-cut via tree packing -- on
    a ``side x side`` planar grid twice: once on the array-native fast paths
    (flat union-find fragments, CSR MWOE scans, engine-driven per-phase
    shortcuts, indexed aggregation, Euler-interval respecting-cut sweeps)
    and once with the preserved seed implementations forced via
    :func:`repro.core.networkx_reference_paths`.  Both arms must agree
    exactly -- MST edges/weight/rounds/phases/qualities and cut
    value/side/edges/rounds -- and ``benchmarks/bench_algorithms_speedup.py``
    gates the wall-clock ratio at >=3x.  The centralised Stoer--Wagner
    oracle is skipped (``compute_exact=False``): it is identical dead
    weight in both arms and no part of the distributed algorithm.  Timing
    is best of ``repeats``.
    """
    cache = InstanceCache()
    instance = build_instance("planar", {"side": side}, seed=seed, cache=cache)
    instance.view  # warm the shared conversion (one per sweep)
    tree = instance.tree
    weighted = instance.weighted_graph(seed, low=1, high=10)

    def run_workload():
        mst = boruvka_mst(weighted, tree=tree)
        cut = approximate_min_cut(
            weighted, epsilon=epsilon, tree=tree, compute_exact=False
        )
        return mst, cut

    fast_seconds, (fast_mst, fast_cut) = _best_of(run_workload, repeats)
    with networkx_reference_paths():
        reference_seconds, (reference_mst, reference_cut) = _best_of(run_workload, repeats)
    agree = (
        fast_mst.edges == reference_mst.edges
        and fast_mst.weight == reference_mst.weight
        and fast_mst.rounds == reference_mst.rounds
        and fast_mst.phase_rounds == reference_mst.phase_rounds
        and fast_mst.phase_qualities == reference_mst.phase_qualities
        and fast_cut.value == reference_cut.value
        and fast_cut.side == reference_cut.side
        and fast_cut.cut_edges == reference_cut.cut_edges
        and fast_cut.rounds == reference_cut.rounds
        and fast_cut.tree_rounds == reference_cut.tree_rounds
    )
    return {
        "experiment": "S5-algorithms-speedup",
        "n": side * side,
        "epsilon": epsilon,
        "mst_rounds": fast_mst.rounds,
        "mst_phases": fast_mst.phases,
        "mincut_value": fast_cut.value,
        "mincut_rounds": fast_cut.rounds,
        "num_trees": fast_cut.num_trees,
        "fast_seconds": fast_seconds,
        "reference_seconds": reference_seconds,
        "speedup": reference_seconds / max(fast_seconds, 1e-9),
        "results_agree": agree,
    }


def experiment_construction_speedup(
    side: int = 30,
    seed: int = 23,
    parts_kind: str = "path",
    repeats: int = 3,
) -> dict:
    """S4 -- the array-native construction engine versus the networkx reference.

    Times the full ``oblivious_shortcut`` budget sweep on a ``side x side``
    planar grid twice: once on the :class:`~repro.shortcuts.ConstructionEngine`
    fast path (Euler-tour benefits, Steiner edge ids computed once per sweep,
    incremental per-budget quality) and once with the preserved seed
    implementation forced via :func:`repro.core.networkx_reference_paths`
    (per-budget Steiner re-derivation, O(n) subtree sets per Steiner edge per
    part, fresh quality measurement per candidate).  Both arms must produce
    the identical shortcut -- edge sets, chosen budget and measured quality
    -- and ``benchmarks/bench_construction_speedup.py`` gates the wall-clock
    ratio at >=3x.  Timing is best of ``repeats``.
    """
    cache = InstanceCache()
    instance = build_instance("planar", {"side": side}, seed=seed, cache=cache)
    instance.view  # warm the shared conversion (one per sweep)
    tree = instance.tree
    parts = instance.parts(parts_kind)
    instance.part_set(parts_kind)  # warm the int-indexed family next to the view
    graph = instance.graph

    def construct():
        return oblivious_shortcut(graph, tree, parts)

    fast_seconds, fast_shortcut = _best_of(construct, repeats)
    with networkx_reference_paths():
        reference_seconds, reference_shortcut = _best_of(construct, repeats)
    agree = (
        fast_shortcut.edge_sets == reference_shortcut.edge_sets
        and fast_shortcut.chosen_budget == reference_shortcut.chosen_budget
        and fast_shortcut.measure() == reference_shortcut.measure()
    )
    return {
        "experiment": "S4-construction-speedup",
        "n": side * side,
        "parts_kind": parts_kind,
        "num_parts": len(parts),
        "chosen_budget": fast_shortcut.chosen_budget,
        "engine_seconds": fast_seconds,
        "reference_seconds": reference_seconds,
        "speedup": reference_seconds / max(fast_seconds, 1e-9),
        "results_agree": agree,
        "measure": fast_shortcut.measure().as_row(),
    }


def experiment_native_scale(
    side: int = 1000,
    seed: int = 7,
    num_parts: int = 64,
    shortcut_budget: int = 16,
) -> dict:
    """S7 -- the CSR-native instance pipeline at million-node scale, nx-free.

    Builds a ``side x side`` grid straight into CSR form through the scenario
    registry's native builder (``build_instance(..., native=True)``), then
    pushes the one instance through every layer the engine composes: BFS
    spanning tree, tree-fragment parts, :class:`ConstructionEngine` quality
    sweep + shortcut build, hashed-weight engine MST checked against the
    scipy oracle, and the vectorized-runtime BFS + broadcast simulation.
    No ``nx.Graph`` may ever materialise -- the record carries the adapter's
    materialisation delta so ``benchmarks/bench_s7_scale.py`` can gate it at
    zero alongside the wall-clock and peak-RSS budgets.  Every row carries
    ``schema`` so the trajectory file can shed rows from older layouts.
    """
    import resource

    nx_before = nx_materializations()
    started = time.perf_counter()

    t0 = time.perf_counter()
    instance = build_instance("planar", {"side": side}, seed=seed, native=True)
    view = instance.view
    build_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    tree = instance.tree
    tree_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    part_set = instance.part_set("tree_fragments", num_parts=num_parts, seed=seed)
    parts_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    engine = ConstructionEngine(view, tree, part_set=part_set)
    quality = engine.quality_sweep([shortcut_budget])[shortcut_budget]
    engine.build_shortcut(shortcut_budget)
    shortcut_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    weighted = instance.weighted_graph(seed)
    mst = boruvka_mst(weighted, tree=tree)
    mst_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    oracle = native_mst_weight(weighted)
    oracle_seconds = time.perf_counter() - t0

    root = min(view.nodes, key=repr)
    t0 = time.perf_counter()
    bfs_tree, bfs_stats = distributed_bfs_tree(
        view, root, simulator_cls=RuntimeSimulator
    )
    bfs_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    broadcast_stats = broadcast_value(
        view, root, round(mst.weight, 6), simulator_cls=RuntimeSimulator
    )
    broadcast_seconds = time.perf_counter() - t0

    peak_rss_mib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return {
        "schema": "s7-native-scale/1",
        "experiment": "S7-native-scale",
        "side": side,
        "n": view.core.num_nodes,
        "m": view.core.num_edges,
        "seed": seed,
        "num_parts": num_parts,
        "shortcut_budget": shortcut_budget,
        "build_seconds": build_seconds,
        "tree_seconds": tree_seconds,
        "tree_height": tree.height,
        "parts_seconds": parts_seconds,
        "shortcut_seconds": shortcut_seconds,
        "shortcut_quality": quality,
        "mst_seconds": mst_seconds,
        "mst_rounds": mst.rounds,
        "mst_phases": mst.phases,
        "mst_weight": mst.weight,
        "mst_weight_matches_oracle": bool(
            abs(mst.weight - oracle) <= 1e-9 * max(1.0, abs(oracle))
        ),
        "oracle_seconds": oracle_seconds,
        "bfs_seconds": bfs_seconds,
        "bfs_rounds": bfs_stats.rounds,
        "bfs_tree_height": bfs_tree.height,
        "broadcast_seconds": broadcast_seconds,
        "broadcast_rounds": broadcast_stats.rounds,
        "nx_materializations": nx_materializations() - nx_before,
        "peak_rss_mib": peak_rss_mib,
        "total_seconds": time.perf_counter() - started,
    }
