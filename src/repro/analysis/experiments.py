"""One function per experiment of the reproduction (see DESIGN.md, Section 3).

Every function returns a plain dict (JSON-friendly) containing the measured
quantities and the paper's corresponding target, so that the benchmark
drivers can simply print them and EXPERIMENTS.md can quote them.  The
instance sizes default to values that run in a couple of seconds on a laptop;
the benchmark files pass larger sizes where useful.
"""

from __future__ import annotations

import math
from typing import Sequence

import networkx as nx

from ..algorithms.mincut import approximate_min_cut
from ..algorithms.mst import boruvka_mst, reference_mst_weight
from ..algorithms.mst_baselines import (
    gkp_reference_rounds,
    no_shortcut_builder,
    paper_reference_rounds,
)
from ..graphs.apex_vortex import build_almost_embeddable
from ..graphs.clique_sum import clique_sum_compose
from ..graphs.lower_bound import lower_bound_graph
from ..graphs.minor_free import perturbed_planar_graph, planar_plus_apex, sample_lk_graph
from ..graphs.planar import grid_graph, is_planar, random_delaunay_triangulation, wheel_graph
from ..graphs.treewidth import random_partial_ktree
from ..graphs.weights import assign_random_weights
from ..shortcuts.apex import apex_shortcut, apex_shortcut_from_witness
from ..shortcuts.baseline import empty_shortcut, steiner_shortcut
from ..shortcuts.clique_sum import clique_sum_shortcut
from ..shortcuts.congestion_capped import oblivious_shortcut
from ..shortcuts.genus_vortex import genus_vortex_shortcut
from ..shortcuts.minor_free import minor_free_quality_bounds, minor_free_shortcut
from ..shortcuts.parts import boruvka_parts, path_parts, tree_fragment_parts
from ..shortcuts.planar import planar_quality_bounds, planar_shortcut
from ..shortcuts.treewidth import treewidth_shortcut
from ..structure.cell_assignment import compute_cell_assignment
from ..structure.cells import cells_from_tree_without_apices
from ..structure.gates import planar_gates, trivial_gates, validate_gates
from ..structure.spanning import bfs_spanning_tree, graph_diameter
from ..structure.tree_decomposition import genus_vortex_decomposition
from .quality import fit_growth_exponent


def experiment_planar_quality(sides: Sequence[int] = (6, 10, 14, 18)) -> dict:
    """E1 -- Theorem 4: planar shortcut quality versus diameter.

    Sweeps square grids (diameter ``2(side-1)``), measures the planar
    constructor's block/congestion/quality on path-shaped parts, and fits the
    growth exponent of quality versus tree diameter (target: ~1 up to logs).
    """
    rows = []
    diameters = []
    qualities = []
    for side in sides:
        graph = grid_graph(side, side)
        tree = bfs_spanning_tree(graph)
        parts = path_parts(graph, tree)
        shortcut = planar_shortcut(graph, tree, parts)
        measure = shortcut.measure()
        bounds = planar_quality_bounds(measure.tree_diameter)
        rows.append(
            {
                "side": side,
                "n": graph.number_of_nodes(),
                "tree_diameter": measure.tree_diameter,
                "block": measure.block,
                "congestion": measure.congestion,
                "quality": measure.quality,
                "target_quality": bounds["quality"],
            }
        )
        diameters.append(measure.tree_diameter)
        qualities.append(measure.quality)
    return {
        "experiment": "E1-planar-quality",
        "rows": rows,
        "quality_vs_diameter_exponent": fit_growth_exponent(diameters, qualities),
        "paper_target_exponent": 1.0,
    }


def experiment_treewidth_quality(
    widths: Sequence[int] = (2, 3, 4), n: int = 60, seed: int = 7
) -> dict:
    """E2 -- Theorem 5: treewidth-k shortcut quality versus k."""
    rows = []
    for width in widths:
        witness = random_partial_ktree(n, width, seed=seed + width)
        graph = witness.graph
        tree = bfs_spanning_tree(graph)
        parts = tree_fragment_parts(graph, tree, num_parts=8, seed=seed + width)
        shortcut = treewidth_shortcut(graph, tree, parts)
        measure = shortcut.measure()
        log_n = math.log2(graph.number_of_nodes() + 2)
        rows.append(
            {
                "k": width,
                "n": graph.number_of_nodes(),
                "block": measure.block,
                "congestion": measure.congestion,
                "quality": measure.quality,
                "target_block": float(width + 1),
                "target_congestion": (width + 1) * log_n**2,
            }
        )
    return {"experiment": "E2-treewidth-quality", "rows": rows}


def experiment_clique_sum(
    num_bags: int = 8, bag_side: int = 5, k: int = 3, seed: int = 11
) -> dict:
    """E3 -- Theorem 7: clique-sum composition with and without folding.

    Builds a deliberately path-shaped decomposition tree (worst case for the
    depth-dependent Lemma 1 congestion) and compares the folded and unfolded
    constructions, plus the per-bag quality for reference.
    """
    components = [grid_graph(bag_side, bag_side) for _ in range(num_bags)]
    decomposition = clique_sum_compose(components, k=k, seed=seed, tree_shape="path")
    graph = decomposition.graph
    tree = bfs_spanning_tree(graph)
    parts = tree_fragment_parts(graph, tree, num_parts=10, seed=seed)
    folded = clique_sum_shortcut(graph, tree, parts, decomposition=decomposition, fold=True)
    unfolded = clique_sum_shortcut(graph, tree, parts, decomposition=decomposition, fold=False)
    baseline = oblivious_shortcut(graph, tree, parts)
    return {
        "experiment": "E3-clique-sum",
        "decomposition_depth": decomposition.depth(),
        "num_bags": num_bags,
        "folded": folded.measure().as_row(),
        "unfolded": unfolded.measure().as_row(),
        "oblivious_baseline": baseline.measure().as_row(),
    }


def experiment_apex(cycle_size: int = 64, grid_side: int = 10, seed: int = 13) -> dict:
    """E4 -- Lemma 9 / Theorem 8: the apex collapses the diameter, shortcuts adapt.

    Two instances: the wheel (cycle plus hub, the paper's running example)
    with the outer cycle as a single part, and a grid plus apex with
    path-shaped parts.  Reports the naive (empty-shortcut) quality, the apex
    construction's quality, and the diameter before/after adding the apex.
    """
    wheel = wheel_graph(cycle_size)
    hub = max(wheel.nodes(), key=lambda v: wheel.degree(v))
    tree = bfs_spanning_tree(wheel, root=hub)
    outer = frozenset(set(wheel.nodes()) - {hub})
    apex = apex_shortcut(wheel, tree, [outer], apices=[hub])
    naive = empty_shortcut(wheel, tree, [outer])

    witness = planar_plus_apex(grid_side, grid_side, apices=1, seed=seed)
    grid_tree = bfs_spanning_tree(witness.graph)
    parts = path_parts(witness.graph, grid_tree)
    grid_apex = apex_shortcut_from_witness(witness, grid_tree, parts)
    cells = cells_from_tree_without_apices(grid_tree, witness.apices)
    assignment = compute_cell_assignment(parts, cells)
    return {
        "experiment": "E4-apex",
        "wheel": {
            "cycle_size": cycle_size,
            "diameter_without_apex": cycle_size // 2,
            "diameter_with_apex": graph_diameter(wheel),
            "naive_quality": naive.quality(),
            "apex_quality": apex.quality(),
        },
        "grid_plus_apex": {
            "n": witness.graph.number_of_nodes(),
            "quality": grid_apex.measure().as_row(),
            "num_cells": len(cells),
            "cell_assignment_beta": assignment.beta,
            "cell_assignment_max_skipped": assignment.max_skipped,
        },
    }


def experiment_minor_free_quality(
    bag_counts: Sequence[int] = (3, 5, 7), k: int = 3, bag_size: int = 25, seed: int = 17
) -> dict:
    """E5 -- Theorem 6: quality on sampled L_k graphs versus the O~(d^2) target."""
    rows = []
    diameters = []
    qualities = []
    for num_bags in bag_counts:
        sample = sample_lk_graph(num_bags=num_bags, k=k, bag_size=bag_size, seed=seed + num_bags)
        tree = bfs_spanning_tree(sample.graph)
        parts = tree_fragment_parts(sample.graph, tree, num_parts=2 * num_bags, seed=seed)
        shortcut = minor_free_shortcut(sample, tree, parts)
        measure = shortcut.measure()
        bounds = minor_free_quality_bounds(measure.tree_diameter, sample.number_of_nodes)
        rows.append(
            {
                "num_bags": num_bags,
                "n": sample.number_of_nodes,
                "tree_diameter": measure.tree_diameter,
                "block": measure.block,
                "congestion": measure.congestion,
                "quality": measure.quality,
                "target_block": bounds["block"],
                "target_congestion": bounds["congestion"],
                "target_quality": bounds["quality"],
            }
        )
        diameters.append(measure.tree_diameter)
        qualities.append(measure.quality)
    return {
        "experiment": "E5-minor-free-quality",
        "rows": rows,
        "quality_vs_diameter_exponent": fit_growth_exponent(diameters, qualities),
        "paper_target_exponent_upper": 2.0,
    }


def experiment_mst_rounds(
    grid_side: int = 10,
    lower_bound_paths: int = 8,
    lower_bound_length: int = 8,
    seed: int = 19,
) -> dict:
    """E6 -- Corollary 1: MST rounds on excluded-minor versus general graphs.

    Compares (i) a planar+apex network (excluded minor, tiny diameter) under
    the shortcut-accelerated MST and the no-shortcut baseline, and (ii) the
    lower-bound-style graph where any strategy degrades towards sqrt(n).
    Also reports the analytic reference curves the paper compares against.
    """
    witness = planar_plus_apex(grid_side, grid_side, apices=1, seed=seed)
    graph = witness.graph
    assign_random_weights(graph, seed=seed, integer=True)
    tree = bfs_spanning_tree(graph)
    diameter = graph_diameter(graph)

    def apex_builder(g, t, parts):
        return apex_shortcut_from_witness(witness, t, parts)

    accelerated = boruvka_mst(graph, shortcut_builder=apex_builder, tree=tree)
    naive = boruvka_mst(graph, shortcut_builder=no_shortcut_builder, tree=tree)
    reference_weight = reference_mst_weight(graph)

    hard = lower_bound_graph(lower_bound_paths, lower_bound_length)
    assign_random_weights(hard.graph, seed=seed + 1, integer=True)
    hard_diameter = graph_diameter(hard.graph)
    hard_run = boruvka_mst(hard.graph, shortcut_builder=no_shortcut_builder)

    # The separation is most visible when MST fragments are much longer than
    # the graph diameter: the wheel with adversarial weights (Section 1.3.3).
    from ..graphs.planar import wheel_graph
    from ..graphs.weights import assign_adversarial_weights

    wheel = wheel_graph(6 * grid_side)
    hub = max(wheel.nodes(), key=lambda v: wheel.degree(v))
    spine = sorted(set(wheel.nodes()) - {hub})
    assign_adversarial_weights(wheel, spine=spine)
    wheel_tree = bfs_spanning_tree(wheel, root=hub)

    def wheel_builder(g, t, parts):
        return apex_shortcut(g, t, parts, apices=[hub])

    wheel_accelerated = boruvka_mst(wheel, shortcut_builder=wheel_builder, tree=wheel_tree)
    wheel_naive = boruvka_mst(wheel, shortcut_builder=no_shortcut_builder, tree=wheel_tree)

    return {
        "experiment": "E6-mst-rounds",
        "wheel_adversarial": {
            "n": wheel.number_of_nodes(),
            "diameter": 2,
            "accelerated_rounds": wheel_accelerated.rounds,
            "naive_rounds": wheel_naive.rounds,
            "accelerated_wins": wheel_accelerated.rounds < wheel_naive.rounds,
        },
        "planar_plus_apex": {
            "n": graph.number_of_nodes(),
            "diameter": diameter,
            "accelerated_rounds": accelerated.rounds,
            "naive_rounds": naive.rounds,
            "weight_matches_reference": abs(accelerated.weight - reference_weight) < 1e-6,
            "paper_reference_D2": paper_reference_rounds(diameter, graph.number_of_nodes()),
            "general_graph_reference_sqrt_n": gkp_reference_rounds(
                graph.number_of_nodes(), diameter
            ),
        },
        "lower_bound_graph": {
            "n": hard.graph.number_of_nodes(),
            "diameter": hard_diameter,
            "rounds": hard_run.rounds,
            "general_graph_reference_sqrt_n": gkp_reference_rounds(
                hard.graph.number_of_nodes(), hard_diameter
            ),
        },
    }


def experiment_mincut(grid_side: int = 8, epsilon: float = 1.0, seed: int = 23) -> dict:
    """E7 -- Corollary 1: (1+eps)-approximate min-cut accuracy and rounds."""
    witness = planar_plus_apex(grid_side, grid_side, apices=1, seed=seed)
    graph = witness.graph
    assign_random_weights(graph, low=1, high=10, seed=seed, integer=True)
    tree = bfs_spanning_tree(graph)

    def apex_builder(g, t, parts):
        return apex_shortcut_from_witness(witness, t, parts)

    result = approximate_min_cut(
        graph, epsilon=epsilon, shortcut_builder=apex_builder, tree=tree
    )
    return {
        "experiment": "E7-mincut",
        "n": graph.number_of_nodes(),
        "epsilon": epsilon,
        "approx_value": result.value,
        "exact_value": result.exact_value,
        "approximation_ratio": result.approximation_ratio,
        "rounds": result.rounds,
        "num_trees": result.num_trees,
    }


def experiment_robustness(grid_side: int = 9, extra_edges: int = 4, seed: int = 29) -> dict:
    """E8 -- Robustness: perturbed planar graphs stay excluded-minor-friendly.

    A planar grid with a few random edges and an apex is generally not planar
    (so Theorem 4 machinery is inapplicable), yet the apex/minor-free
    construction still produces good shortcuts -- which is the introduction's
    argument for studying excluded minors rather than planarity.
    """
    graph, witness = perturbed_planar_graph(
        grid_side, grid_side, extra_edges=extra_edges, extra_apices=1, seed=seed
    )
    tree = bfs_spanning_tree(graph)
    parts = path_parts(graph, tree)
    still_planar = is_planar(graph)
    apex = apex_shortcut_from_witness(witness, tree, parts)
    fallback = steiner_shortcut(graph, tree, parts)
    return {
        "experiment": "E8-robustness",
        "n": graph.number_of_nodes(),
        "still_planar": still_planar,
        "planar_construction_applicable": still_planar,
        "apex_quality": apex.measure().as_row(),
        "steiner_quality": fallback.measure().as_row(),
    }


def experiment_genus_vortex_treewidth(
    sides: Sequence[int] = (5, 7, 9), genus: int = 1, depth: int = 2, vortices: int = 1, seed: int = 31
) -> dict:
    """E9 -- Lemma 2/3: Genus+Vortex treewidth scales with (g+1) k l D."""
    rows = []
    for side in sides:
        witness = build_almost_embeddable(
            q=0, g=genus, k=depth, l=vortices, base_rows=side, base_cols=side, seed=seed + side
        )
        decomposition = genus_vortex_decomposition(witness)
        graph = witness.non_apex_graph()
        diameter = graph_diameter(graph)
        target = (genus + 1) * depth * max(1, vortices) * diameter
        rows.append(
            {
                "side": side,
                "n": graph.number_of_nodes(),
                "diameter": diameter,
                "measured_width": decomposition.width,
                "target_width": target,
                "within_target": decomposition.width <= target,
            }
        )
    return {"experiment": "E9-genus-vortex-treewidth", "rows": rows}


def experiment_cells_and_gates(grid_side: int = 10, seed: int = 37) -> dict:
    """E10 -- Lemmas 4-7: cell assignment beta and combinatorial gate size."""
    witness = planar_plus_apex(grid_side, grid_side, apices=1, seed=seed)
    tree = bfs_spanning_tree(witness.graph)
    surface = witness.non_apex_graph()
    cells = cells_from_tree_without_apices(tree, witness.apices)
    parts = path_parts(surface)
    assignment = compute_cell_assignment(parts, cells)
    trivial = trivial_gates(surface, cells)
    s_trivial = validate_gates(surface, trivial)
    refined = planar_gates(surface, cells)
    s_refined = validate_gates(surface, refined)
    cell_diameter = max(cells.measured_diameters(surface), default=0)
    return {
        "experiment": "E10-cells-gates",
        "num_cells": len(cells),
        "num_parts": len(parts),
        "cell_diameter": cell_diameter,
        "beta": assignment.beta,
        "beta_target_O_d": cell_diameter,
        "max_skipped": assignment.max_skipped,
        "gate_s_trivial": s_trivial,
        "gate_s_refined": s_refined,
        "gate_s_target_O_d": 36 * max(1, cell_diameter),
    }


def experiment_constructions(seed: int = 41) -> dict:
    """F1 -- Figure 1: apex, vortex and clique-sum constructions as illustrated."""
    almost = build_almost_embeddable(q=1, g=0, k=2, l=1, base_rows=6, base_cols=6, seed=seed)
    grid_a = grid_graph(4, 4)
    grid_b = grid_graph(4, 4)
    composition = clique_sum_compose([grid_a, grid_b], k=3, seed=seed)
    q, g, k, l = almost.parameters
    return {
        "experiment": "F1-constructions",
        "almost_embeddable": {
            "q": q,
            "g": g,
            "k": k,
            "l": l,
            "n": almost.graph.number_of_nodes(),
            "apices": len(almost.apices),
            "vortex_internal_nodes": len(almost.vortex_nodes()),
        },
        "clique_sum": {
            "bags": len(composition.bags),
            "shared_clique_size": composition.max_partial_clique_size(),
            "n": composition.graph.number_of_nodes(),
        },
    }
