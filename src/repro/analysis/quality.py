"""Quality sweeps and growth-rate fitting helpers."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Iterable, Mapping, Sequence

import math

import networkx as nx
import numpy as np

from ..shortcuts.search import Constructor, measure_constructors
from ..shortcuts.shortcut import ShortcutQuality
from ..structure.spanning import bfs_spanning_tree, graph_diameter


@dataclass
class QualityRow:
    """One row of a quality table: an instance plus one constructor's measurement.

    Attributes:
        family: name of the graph family ("planar-grid", "L_k", ...).
        constructor: name of the shortcut constructor.
        num_nodes, num_edges, diameter, tree_diameter, num_parts: instance stats.
        block, congestion, quality: measured shortcut parameters.
        target: the paper's asymptotic target for this quantity, if any.
    """

    family: str
    constructor: str
    num_nodes: int
    num_edges: int
    diameter: int
    tree_diameter: int
    num_parts: int
    block: int
    congestion: int
    quality: int
    target: float | None = None

    def as_dict(self) -> dict:
        return asdict(self)


def quality_sweep(
    instances: Iterable[tuple[str, nx.Graph, Sequence[frozenset]]],
    constructors: Mapping[str, Constructor],
    targets: Callable[[str, int, int], dict[str, float]] | None = None,
) -> list[QualityRow]:
    """Measure every constructor on every instance; return one row per pair.

    Args:
        instances: iterable of ``(family, graph, parts)`` triples.
        constructors: name -> constructor mapping.
        targets: optional callback ``(constructor_name, tree_diameter, n) ->
            {"quality": float}`` providing the paper's target for annotation.
    """
    rows: list[QualityRow] = []
    for family, graph, parts in instances:
        tree = bfs_spanning_tree(graph)
        diameter = graph_diameter(graph)
        tree_diameter = tree.diameter()
        measures = measure_constructors(graph, parts, constructors, tree=tree)
        for name, quality in measures.items():
            target = None
            if targets is not None:
                target = targets(name, tree_diameter, graph.number_of_nodes()).get("quality")
            rows.append(
                QualityRow(
                    family=family,
                    constructor=name,
                    num_nodes=graph.number_of_nodes(),
                    num_edges=graph.number_of_edges(),
                    diameter=diameter,
                    tree_diameter=tree_diameter,
                    num_parts=len(parts),
                    block=quality.block,
                    congestion=quality.congestion,
                    quality=quality.quality,
                    target=target,
                )
            )
    return rows


def fit_growth_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Fit ``y ~ x^alpha`` by least squares on log-log scale and return alpha.

    Used to check statements like "quality grows roughly like d^2 on
    excluded-minor inputs but like sqrt(n) on the lower-bound instance": the
    experiments report the fitted exponent next to the claim.
    """
    xs_arr = np.asarray(xs, dtype=float)
    ys_arr = np.asarray(ys, dtype=float)
    mask = (xs_arr > 0) & (ys_arr > 0)
    if mask.sum() < 2:
        return float("nan")
    slope, _intercept = np.polyfit(np.log(xs_arr[mask]), np.log(ys_arr[mask]), 1)
    return float(slope)


def summarize_rows(rows: Sequence[QualityRow]) -> dict[str, dict[str, float]]:
    """Aggregate rows by constructor: mean block/congestion/quality and the fit.

    Returns a mapping ``constructor -> summary`` where the summary includes
    the fitted exponent of quality versus tree diameter across the sweep.
    """
    by_constructor: dict[str, list[QualityRow]] = {}
    for row in rows:
        by_constructor.setdefault(row.constructor, []).append(row)
    summary: dict[str, dict[str, float]] = {}
    for name, group in by_constructor.items():
        diameters = [row.tree_diameter for row in group]
        qualities = [row.quality for row in group]
        summary[name] = {
            "mean_block": float(np.mean([row.block for row in group])),
            "mean_congestion": float(np.mean([row.congestion for row in group])),
            "mean_quality": float(np.mean(qualities)),
            "max_quality": float(np.max(qualities)),
            "quality_vs_diameter_exponent": fit_growth_exponent(diameters, qualities),
            "rows": float(len(group)),
        }
    return summary


def format_table(rows: Sequence[QualityRow]) -> str:
    """Render rows as a fixed-width text table (what the bench targets print)."""
    header = (
        f"{'family':<18} {'constructor':<22} {'n':>5} {'D':>4} {'dT':>4} "
        f"{'parts':>5} {'block':>6} {'cong':>6} {'quality':>8} {'target':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        target = f"{row.target:10.1f}" if row.target is not None else f"{'-':>10}"
        lines.append(
            f"{row.family:<18} {row.constructor:<22} {row.num_nodes:>5} {row.diameter:>4} "
            f"{row.tree_diameter:>4} {row.num_parts:>5} {row.block:>6} {row.congestion:>6} "
            f"{row.quality:>8} {target}"
        )
    return "\n".join(lines)
