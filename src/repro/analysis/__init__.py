"""Experiment harness: quality sweeps, growth-rate fits and experiment records.

Because the paper is a theory paper, its "tables and figures" are asymptotic
claims; each experiment (E1-E10, F1-F2 in DESIGN.md) measures the claimed
quantity over a parameter sweep and reports it next to the paper's bound.
The benchmark files under ``benchmarks/`` are thin wrappers that call the
functions here and print the resulting rows.
"""

from .quality import QualityRow, fit_growth_exponent, quality_sweep, summarize_rows
from .experiments import (
    experiment_apex,
    experiment_cells_and_gates,
    experiment_clique_sum,
    experiment_constructions,
    experiment_fault_degradation,
    experiment_genus_vortex_treewidth,
    experiment_mincut,
    experiment_minor_free_quality,
    experiment_mst_rounds,
    experiment_planar_quality,
    experiment_robustness,
    experiment_scenario_matrix,
    experiment_simulator_speedup,
    experiment_treewidth_quality,
)

__all__ = [
    "QualityRow",
    "experiment_apex",
    "experiment_cells_and_gates",
    "experiment_clique_sum",
    "experiment_constructions",
    "experiment_fault_degradation",
    "experiment_genus_vortex_treewidth",
    "experiment_mincut",
    "experiment_minor_free_quality",
    "experiment_mst_rounds",
    "experiment_planar_quality",
    "experiment_robustness",
    "experiment_scenario_matrix",
    "experiment_simulator_speedup",
    "experiment_treewidth_quality",
    "fit_growth_exponent",
    "quality_sweep",
    "summarize_rows",
]
