"""The CSR graph kernel: :class:`CoreGraph`.

A :class:`CoreGraph` is an immutable undirected graph over the integer
vertex set ``0 .. n-1`` stored in compressed-sparse-row form: three flat
arrays ``indptr`` (length ``n + 1``), ``indices`` (length ``2 m``) and
``weights`` (length ``2 m``).  The neighbours of vertex ``u`` are
``indices[indptr[u]:indptr[u + 1]]`` and the weight of the edge to each of
them sits at the same offset in ``weights``.

This is the substrate every hot path of the reproduction runs on: BFS
spanning trees, eccentricities and diameters, connectivity checks, and the
CONGEST simulator's neighbour iteration.  The arrays are stored as flat
Python lists of ints/floats -- indexing a Python list is substantially
faster than item-reading a numpy array element by element, and graph
traversal is exactly that access pattern -- with numpy ``int64``/
``float64`` views available on demand through the ``indptr`` / ``indices``
/ ``weights`` properties for vectorised consumers.

Label management -- mapping an arbitrary ``networkx`` graph's hashable node
labels onto ``0 .. n-1`` and back -- is the job of
:class:`repro.core.view.GraphView`; :class:`CoreGraph` itself never sees a
label.
"""

from __future__ import annotations

import bisect
from typing import Iterable

import numpy as np

from ..errors import InvalidGraphError


class CoreGraph:
    """An immutable int-indexed undirected graph in CSR form.

    Args:
        num_nodes: number of vertices; the vertex set is ``0 .. n-1``.
        edges: iterable of ``(u, v)`` or ``(u, v, weight)`` tuples with
            ``0 <= u, v < n``; each undirected edge appears once.  Self-loops
            are rejected (the CONGEST model has none); parallel edges are
            merged (last weight wins), matching ``nx.Graph`` semantics.
        sort_neighbours: store each adjacency slice in ascending index
            order (the canonical layout; required by :meth:`has_edge`'s
            binary search and by deterministic BFS).  Pass ``False`` to
            preserve the insertion order of ``edges`` instead, for callers
            that need to mirror a specific ``networkx`` iteration order.
    """

    __slots__ = (
        "num_nodes",
        "num_edges",
        "sorted_adjacency",
        "_indptr_list",
        "_indices_list",
        "_weights_list",
    )

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[tuple],
        sort_neighbours: bool = True,
    ) -> None:
        if num_nodes < 0:
            raise InvalidGraphError("CoreGraph needs a non-negative vertex count")
        adjacency: list[dict[int, float]] = [dict() for _ in range(num_nodes)]
        for edge in edges:
            u, v = edge[0], edge[1]
            weight = float(edge[2]) if len(edge) > 2 else 1.0
            if u == v:
                raise InvalidGraphError(f"CoreGraph rejects self-loop ({u}, {v})")
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise InvalidGraphError(f"edge ({u}, {v}) out of range for n={num_nodes}")
            adjacency[u][v] = weight
            adjacency[v][u] = weight

        indptr = [0] * (num_nodes + 1)
        indices: list[int] = []
        weights: list[float] = []
        for u in range(num_nodes):
            items = sorted(adjacency[u].items()) if sort_neighbours else adjacency[u].items()
            for v, weight in items:
                indices.append(v)
                weights.append(weight)
            indptr[u + 1] = len(indices)

        self.num_nodes = num_nodes
        self.num_edges = len(indices) // 2
        self.sorted_adjacency = sort_neighbours
        self._indptr_list = indptr
        self._indices_list = indices
        self._weights_list = weights

    @classmethod
    def from_csr(
        cls,
        indptr,
        indices,
        weights=None,
        sort_neighbours: bool = True,
    ) -> "CoreGraph":
        """Build a :class:`CoreGraph` directly from prebuilt CSR arrays.

        This is the fast constructor behind the native generators
        (:mod:`repro.graphs.native`): assembling a million-node grid
        through :meth:`__init__`'s dict-of-dicts path costs tens of
        seconds, while adopting already-symmetric arrays is a copy.

        Args:
            indptr: row pointers, length ``n + 1``, ``indptr[0] == 0`` and
                non-decreasing.
            indices: column indices, length ``indptr[-1]``; the arrays must
                already be symmetric (every edge present in both rows) with
                no self-loops, and each row ascending when
                ``sort_neighbours`` is ``True``.  Only cheap O(1) shape
                checks run here -- the vectorised generators guarantee the
                invariants, and the property tests re-verify them.
            weights: optional weight array parallel to ``indices``
                (defaults to unit weights).
            sort_neighbours: whether the supplied rows are in ascending
                index order (the canonical layout).

        Accepts numpy arrays or Python lists; the arrays are stored as
        flat Python lists (``tolist()``), matching :meth:`__init__`.
        """
        indptr_list = indptr.tolist() if isinstance(indptr, np.ndarray) else list(indptr)
        indices_list = indices.tolist() if isinstance(indices, np.ndarray) else list(indices)
        if weights is None:
            weights_list = [1.0] * len(indices_list)
        else:
            weights_list = (
                weights.tolist() if isinstance(weights, np.ndarray) else list(weights)
            )
        num_nodes = len(indptr_list) - 1
        if num_nodes < 0:
            raise InvalidGraphError("from_csr needs an indptr of length >= 1")
        if indptr_list and (indptr_list[0] != 0 or indptr_list[-1] != len(indices_list)):
            raise InvalidGraphError("from_csr: indptr does not span the indices array")
        if len(weights_list) != len(indices_list):
            raise InvalidGraphError("from_csr: weights not parallel to indices")
        if len(indices_list) % 2:
            raise InvalidGraphError("from_csr: odd directed-edge count (not symmetric)")
        graph = cls.__new__(cls)
        graph.num_nodes = num_nodes
        graph.num_edges = len(indices_list) // 2
        graph.sorted_adjacency = sort_neighbours
        graph._indptr_list = indptr_list
        graph._indices_list = indices_list
        graph._weights_list = weights_list
        return graph

    # -- accessors ---------------------------------------------------------

    @property
    def indptr(self) -> np.ndarray:
        """The CSR row-pointer array as ``int64`` (derived on demand)."""
        return np.asarray(self._indptr_list, dtype=np.int64)

    @property
    def indices(self) -> np.ndarray:
        """The CSR column-index array as ``int64`` (derived on demand)."""
        return np.asarray(self._indices_list, dtype=np.int64)

    @property
    def weights(self) -> np.ndarray:
        """The CSR edge-weight array as ``float64`` (derived on demand)."""
        return np.asarray(self._weights_list, dtype=np.float64)

    def __len__(self) -> int:
        return self.num_nodes

    def degree(self, u: int) -> int:
        return self._indptr_list[u + 1] - self._indptr_list[u]

    def neighbor_slice(self, u: int) -> tuple[int, int]:
        """Return the ``(start, end)`` offsets of ``u``'s adjacency slice."""
        return self._indptr_list[u], self._indptr_list[u + 1]

    def neighbors(self, u: int) -> list[int]:
        """Return ``u``'s neighbours as a list of Python ints."""
        start, end = self._indptr_list[u], self._indptr_list[u + 1]
        return self._indices_list[start:end]

    def neighbor_weights(self, u: int) -> list[float]:
        """Return the weights parallel to :meth:`neighbors`."""
        start, end = self._indptr_list[u], self._indptr_list[u + 1]
        return self._weights_list[start:end]

    def has_edge(self, u: int, v: int) -> bool:
        if not (isinstance(u, int) and isinstance(v, int)):
            return False
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            return False
        start, end = self._indptr_list[u], self._indptr_list[u + 1]
        if self.sorted_adjacency:
            position = bisect.bisect_left(self._indices_list, v, start, end)
            return position < end and self._indices_list[position] == v
        return v in self._indices_list[start:end]

    def edge_weight(self, u: int, v: int, default: float = 1.0) -> float:
        start, end = self._indptr_list[u], self._indptr_list[u + 1]
        row = self._indices_list[start:end]
        try:
            offset = row.index(v)
        except ValueError:
            return default
        return self._weights_list[start + offset]

    def edges(self) -> Iterable[tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, weight)`` with ``u < v``."""
        indptr, indices, weights = self._indptr_list, self._indices_list, self._weights_list
        for u in range(self.num_nodes):
            for offset in range(indptr[u], indptr[u + 1]):
                v = indices[offset]
                if u < v:
                    yield u, v, weights[offset]

    # -- traversal ---------------------------------------------------------

    def bfs_parents(self, root: int) -> tuple[list[int], list[int]]:
        """Breadth-first search from ``root`` over the CSR adjacency.

        Returns ``(parents, order)`` where ``parents[v]`` is the BFS parent
        of ``v`` (``-1`` for the root, ``-2`` for unreached vertices) and
        ``order`` is the discovery order starting with ``root``.  With the
        canonical sorted adjacency this is exactly the tree
        ``bfs_spanning_tree`` built on the ``networkx`` side, because index
        order coincides with the repr order used there for tie-breaking.
        """
        if not 0 <= root < self.num_nodes:
            raise InvalidGraphError(f"BFS root {root} out of range for n={self.num_nodes}")
        indptr, indices = self._indptr_list, self._indices_list
        parents = [-2] * self.num_nodes
        parents[root] = -1
        order = [root]
        head = 0
        while head < len(order):
            u = order[head]
            head += 1
            for offset in range(indptr[u], indptr[u + 1]):
                v = indices[offset]
                if parents[v] == -2:
                    parents[v] = u
                    order.append(v)
        return parents, order

    def bfs_depths(self, root: int) -> list[int]:
        """Return hop distances from ``root`` (``-1`` for unreached vertices)."""
        indptr, indices = self._indptr_list, self._indices_list
        depths = [-1] * self.num_nodes
        depths[root] = 0
        frontier = [root]
        while frontier:
            next_frontier = []
            for u in frontier:
                du = depths[u] + 1
                for offset in range(indptr[u], indptr[u + 1]):
                    v = indices[offset]
                    if depths[v] < 0:
                        depths[v] = du
                        next_frontier.append(v)
            frontier = next_frontier
        return depths

    def eccentricity(self, root: int) -> int:
        """Return ``max_v dist(root, v)``; raises if the graph is disconnected."""
        depths = self.bfs_depths(root)
        lowest = min(depths) if depths else 0
        if lowest < 0:
            raise InvalidGraphError("eccentricity undefined on a disconnected graph")
        return max(depths, default=0)

    def is_connected(self) -> bool:
        if self.num_nodes == 0:
            return False
        return min(self.bfs_depths(0)) >= 0

    def exact_diameter(self) -> int:
        """Return the exact diameter by running one BFS per vertex."""
        if self.num_nodes <= 1:
            return 0
        return max(self.eccentricity(u) for u in range(self.num_nodes))

    def double_sweep_diameter(self) -> int:
        """Return the double-BFS diameter lower bound (exact on trees).

        Standard practice for experiment bookkeeping at scale: BFS from
        vertex 0, then BFS again from a farthest vertex; the second
        eccentricity is within a factor 2 of the true diameter.
        """
        if self.num_nodes <= 1:
            return 0
        depths = self.bfs_depths(0)
        if min(depths) < 0:
            raise InvalidGraphError("diameter undefined on a disconnected graph")
        far = depths.index(max(depths))
        return self.eccentricity(far)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"CoreGraph(n={self.num_nodes}, m={self.num_edges})"
