"""``repro.core``: the CSR-backed graph kernel under the whole reproduction.

Three classes and two caches:

* :class:`CoreGraph` -- immutable int-indexed CSR adjacency (flat
  ``indptr`` / ``indices`` / ``weights`` arrays) with BFS, eccentricity,
  diameter and connectivity primitives;
* :class:`GraphView` -- the label <-> index adapter that converts an
  ``nx.Graph`` once at the construction boundary and can round-trip back;
* :class:`PartSet` -- the int-indexed view of a part/cell family (flat
  member/offset arrays, owner array, CSR connectivity, per-part sorted
  Euler-tour ``tin`` views);
* :func:`view_of` / :func:`part_set_of` -- the memoised conversions every
  layer shares (one per graph, one per (view, part family)).

The traversal layer (``repro.structure``), the quality measurements
(``repro.shortcuts.shortcut``), the shortcut construction engine
(``repro.shortcuts.engine``) and the CONGEST simulator
(``repro.congest.simulator``) all accept a :class:`GraphView` and run on
the CSR arrays; ``networkx`` remains the generator/witness frontend.
"""

from contextlib import contextmanager

from .graph import CoreGraph
from .partset import PartSet, part_connected, part_set_of
from .view import GraphView, nx_materializations, view_of

_CORE_ENABLED = True


def core_enabled() -> bool:
    """True when the CSR fast paths are active (the default)."""
    return _CORE_ENABLED


@contextmanager
def networkx_reference_paths():
    """Force every dual-path function down its preserved ``networkx`` branch.

    The pre-CoreGraph implementations are kept alongside the CSR fast paths
    as differential oracles (the same pattern as
    :class:`repro.congest.ReferenceSimulator`).  Inside this context the
    shortcut quality measurement, part validation, part-wise aggregation and
    the scenario engine's simulator wiring all run the ``networkx``
    dict-of-dict code: ``benchmarks/bench_core_speedup.py`` uses it as the
    baseline arm of the >=2x gate, and the differential tests assert that
    records computed inside and outside the context are identical.
    """
    global _CORE_ENABLED
    previous = _CORE_ENABLED
    _CORE_ENABLED = False
    try:
        yield
    finally:
        _CORE_ENABLED = previous


__all__ = [
    "CoreGraph",
    "GraphView",
    "PartSet",
    "core_enabled",
    "networkx_reference_paths",
    "nx_materializations",
    "part_connected",
    "part_set_of",
    "view_of",
]
