"""The :class:`PartSet` adapter: an int-indexed view of a part family.

Parts (Definition 9) and cells (Definition 14) are handed around the package
as collections of label ``frozenset``\\ s, which is the right interface for
generators and witnesses but a poor substrate for hot loops: every
measurement or validation pass used to re-map each member label through the
:class:`~repro.core.view.GraphView` bijection, one dict lookup per vertex
per pass.

A :class:`PartSet` performs that mapping **once**: the member indices of all
parts live in one flat ``members`` array sliced by ``offsets`` (the same CSR
idiom as :class:`~repro.core.graph.CoreGraph`), with derived structures --
an owner array (vertex index -> part index), per-part CSR connectivity
checks, and per-part member views sorted by Euler-tour ``tin`` -- computed
on demand and cached.  :func:`part_set_of` memoises part sets per
``(GraphView, parts)`` pair (weakly in the view, by value in the parts), so
a budget sweep, a quality measurement and a validation pass over the same
part family all share one conversion.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import InvalidPartitionError
from .view import GraphView, view_of


class PartSet:
    """Flat int-indexed view of a part family over one :class:`GraphView`.

    Attributes:
        view: the graph view the member indices refer to.
        parts: the original label frozensets (kept for round-tripping).
        offsets: CSR row pointers into ``members`` (length ``num_parts + 1``).
        members: concatenated member indices, each part's slice sorted
            ascending (index order == canonical repr order).
    """

    __slots__ = (
        "view",
        "_parts",
        "offsets",
        "members",
        "_owner",
        "_tin_key",
        "_tin_views",
        "_member_stamp",
        "_seen_stamp",
        "_epoch",
        "__weakref__",
    )

    def __init__(self, view: GraphView, parts: Sequence[frozenset]) -> None:
        self.view = view
        self._parts: list[frozenset] | None = [
            part if isinstance(part, frozenset) else frozenset(part) for part in parts
        ]
        index_of = view.index_of
        offsets = [0]
        members: list[int] = []
        for part in self._parts:
            try:
                members.extend(sorted(index_of(node) for node in part))
            except KeyError as error:
                raise InvalidPartitionError(
                    f"part {len(offsets) - 1} contains non-graph vertex {error.args[0]!r}"
                ) from None
            offsets.append(len(members))
        self.offsets = offsets
        self.members = members
        self._owner: list[int] | None = None
        self._tin_key: object | None = None
        self._tin_views: list[list[int]] | None = None
        # Epoch-stamped scratch arrays for the per-part connectivity BFS,
        # allocated on first use: part sets are cached per view for its whole
        # lifetime, and many families (e.g. the per-phase Boruvka fragments)
        # never ask for connectivity.
        self._member_stamp: list[int] | None = None
        self._seen_stamp: list[int] | None = None
        self._epoch = 0

    @classmethod
    def from_member_lists(
        cls, view: GraphView, member_lists: Sequence[Sequence[int]]
    ) -> "PartSet":
        """Build a part set directly from per-part vertex *index* lists.

        This is the construction boundary of the array-native algorithm
        layer: the Boruvka fast path keeps its fragments as flat index lists
        and never owns label frozensets -- the label :attr:`parts` of the
        returned set are derived lazily (:meth:`label_parts`) and only if a
        label-space consumer (a structural shortcut constructor, a
        validator) actually asks.  Each member list is sorted in place of
        the label path's ``sorted(index_of(node) ...)``; indices must be
        valid for ``view`` (the caller's contract -- no validation pass).
        """
        part_set = cls.__new__(cls)
        part_set.view = view
        part_set._parts = None
        offsets = [0]
        members: list[int] = []
        for member_list in member_lists:
            members.extend(sorted(member_list))
            offsets.append(len(members))
        part_set.offsets = offsets
        part_set.members = members
        part_set._owner = None
        part_set._tin_key = None
        part_set._tin_views = None
        part_set._member_stamp = None
        part_set._seen_stamp = None
        part_set._epoch = 0
        return part_set

    # -- basic accessors ---------------------------------------------------

    @property
    def parts(self) -> list[frozenset]:
        """The label frozensets of the family (derived lazily from indices)."""
        return self.label_parts()

    def label_parts(self) -> list[frozenset]:
        """Return (and cache) the parts as label frozensets.

        For part sets built from label parts this is the original input; for
        :meth:`from_member_lists` sets the labels are materialised on first
        call -- the array-native algorithm layer never triggers it on its
        hot path.
        """
        if self._parts is None:
            node_of = self.view.nodes
            self._parts = [
                frozenset(node_of[member] for member in members)
                for _, members in self.iter_members()
            ]
        return self._parts

    @property
    def num_parts(self) -> int:
        return len(self.offsets) - 1

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def size_of(self, part_index: int) -> int:
        return self.offsets[part_index + 1] - self.offsets[part_index]

    def members_of(self, part_index: int) -> list[int]:
        """Return the member indices of one part (ascending)."""
        return self.members[self.offsets[part_index] : self.offsets[part_index + 1]]

    def iter_members(self) -> Iterable[tuple[int, list[int]]]:
        """Yield ``(part_index, member_indices)`` for every part."""
        for part_index in range(len(self.offsets) - 1):
            yield part_index, self.members_of(part_index)

    # -- derived structures ------------------------------------------------

    def owner_array(self) -> list[int]:
        """Return the vertex-index -> part-index map (``-1`` for uncovered).

        For overlapping inputs the highest part index wins; disjointness is
        the caller's contract (``validate_parts`` / ``CellPartition.validate``
        check it in label space, where the error message can name vertices).
        """
        if self._owner is None:
            owner = [-1] * len(self.view)
            for part_index, members in self.iter_members():
                for member in members:
                    owner[member] = part_index
            self._owner = owner
        return self._owner

    def members_by_tin(self, euler) -> list[list[int]]:
        """Return per-part member index lists sorted by Euler-tour ``tin``.

        ``euler`` is an Euler-tour index of a spanning tree over the same
        view (see :meth:`repro.structure.spanning.RootedTree.euler_index`);
        only its ``tin`` array is read, so any object with a compatible
        ``tin`` attribute works.  Cached per euler-index identity: a budget
        sweep asking repeatedly gets the sorted views for free.
        """
        if self._tin_views is None or self._tin_key is not euler:
            tin = euler.tin
            self._tin_views = [
                sorted(members, key=tin.__getitem__) for _, members in self.iter_members()
            ]
            self._tin_key = euler
        return self._tin_views

    def connected(self, part_index: int) -> bool:
        """Return True iff the part induces a connected subgraph (CSR BFS).

        Runs on the flat adjacency of the underlying :class:`CoreGraph`,
        restricted to the part via an epoch-stamped membership array -- no
        per-part set or subgraph is materialised.
        """
        members = self.members_of(part_index)
        if not members:
            return True
        if self._member_stamp is None:
            self._member_stamp = [0] * len(self.view)
            self._seen_stamp = [0] * len(self.view)
        self._epoch += 1
        epoch = self._epoch
        member_stamp, seen_stamp = self._member_stamp, self._seen_stamp
        for member in members:
            member_stamp[member] = epoch
        core = self.view.core
        indptr, indices = core._indptr_list, core._indices_list
        start = members[0]
        seen_stamp[start] = epoch
        stack = [start]
        reached = 1
        while stack:
            u = stack.pop()
            for offset in range(indptr[u], indptr[u + 1]):
                v = indices[offset]
                if member_stamp[v] == epoch and seen_stamp[v] != epoch:
                    seen_stamp[v] = epoch
                    stack.append(v)
                    reached += 1
        return reached == len(members)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"PartSet(parts={self.num_parts}, members={len(self.members)})"


def part_connected(view: GraphView, part: frozenset) -> bool:
    """Connectivity of ``graph[part]`` via a CSR BFS over an ad-hoc index set.

    Standalone fallback for the validators when the family-wide
    :class:`PartSet` cannot be built (a *later* part of the family contains
    non-graph vertices): the checks must still run part by part in order so
    that the first violation reported matches the ``networkx`` reference
    path.
    """
    index_of = view.index_of
    members = {index_of(node) for node in part}
    neighbors = view.core.neighbors
    start = next(iter(members))
    reached = {start}
    stack = [start]
    while stack:
        for v in neighbors(stack.pop()):
            if v in members and v not in reached:
                reached.add(v)
                stack.append(v)
    return len(reached) == len(members)


def part_set_of(graph, parts: Sequence[frozenset]) -> PartSet:
    """Return the memoised :class:`PartSet` of ``parts`` over ``graph``.

    ``graph`` may be an ``nx.Graph`` or a :class:`GraphView`; the view is
    resolved through :func:`view_of` so everything shares one conversion.

    The memo lives *on the view* (``GraphView._part_sets``), keyed by the
    part family's value (tuple of frozensets; frozensets cache their hash,
    so repeat lookups are cheap and families that are equal but not
    identical -- e.g. parts rebuilt per Boruvka phase from the same
    fragments -- still share one conversion).  Dropping the view therefore
    drops its part sets; a global cache keyed by the view would pin the
    view (and its CSR arrays) for the process lifetime, since every
    :class:`PartSet` references its view.
    """
    view = view_of(graph)
    per_view = view._part_sets
    key = tuple(part if isinstance(part, frozenset) else frozenset(part) for part in parts)
    part_set = per_view.get(key)
    if part_set is None:
        part_set = per_view[key] = PartSet(view, key)
    return part_set
