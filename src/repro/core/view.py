"""The :class:`GraphView` adapter: labels on the outside, CSR on the inside.

Every algorithm in the reproduction historically consumed ``nx.Graph``
objects with arbitrary hashable node labels (grid coordinates, strings,
tuples).  :class:`GraphView` performs that conversion **once** at the
construction boundary: it relabels the nodes to ``0 .. n-1`` (in the
package-wide canonical order, sorted by ``repr``), builds the CSR
:class:`~repro.core.graph.CoreGraph`, and keeps the ``node_of`` /
``index_of`` bijection so results computed on indices can be handed back in
label form.  :func:`to_networkx` round-trips the view back into a
standalone ``nx.Graph`` with the original labels and edge weights.

:func:`view_of` memoises views per ``nx.Graph`` object -- the view is
stored on the graph itself, so graph and view share one lifetime and
neither outlives the other: a scenario sweep running several constructors
and algorithms over one instance pays for a single conversion, and
dropping the graph frees the view (and its CSR arrays) with it.

The canonical repr-sorted order is load-bearing: index order then coincides
with the ``sorted(..., key=repr)`` tie-breaking used throughout the
``networkx`` code paths, which is what lets the CSR fast paths reproduce
their results *exactly* (the differential tests in
``tests/test_core_graphview.py`` pin this).
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from ..errors import InvalidGraphError
from ..graphs.weights import WEIGHT
from .graph import CoreGraph


class GraphView:
    """A one-time conversion of an ``nx.Graph`` into an int-indexed CSR kernel.

    Attributes:
        graph: the source ``nx.Graph`` (kept by reference, never copied).
        core: the :class:`CoreGraph` over indices ``0 .. n-1``.
        nodes: the label of every index, i.e. ``nodes[i]`` is the node whose
            index is ``i``; sorted by ``repr`` so that index order equals
            the package's canonical node order.
    """

    __slots__ = (
        "graph",
        "core",
        "nodes",
        "_index",
        "_has_weights",
        "_part_sets",
        "__weakref__",
    )

    def __init__(self, graph: nx.Graph, sort_neighbours: bool = True) -> None:
        labels = sorted(graph.nodes(), key=repr)
        index: dict[Hashable, int] = {label: i for i, label in enumerate(labels)}
        if len(index) != len(labels):
            raise InvalidGraphError("graph has duplicate node labels")
        has_weights = False
        edges = []
        for u, v, data in graph.edges(data=True):
            if u == v:
                raise InvalidGraphError(f"GraphView rejects self-loop ({u}, {v})")
            weight = data.get(WEIGHT)
            if weight is None:
                weight = 1.0
            else:
                has_weights = True
            edges.append((index[u], index[v], weight))
        self.graph = graph
        self.nodes = labels
        self._index = index
        self._has_weights = has_weights
        # Per-view memo of int-indexed part families, managed by
        # repro.core.partset.part_set_of.  Living on the view (rather than in
        # a global cache keyed by it) ties each PartSet's lifetime to its
        # view's: a cache entry referencing the view would keep a weakly-keyed
        # view alive forever.
        self._part_sets: dict = {}
        self.core = CoreGraph(len(labels), edges, sort_neighbours=sort_neighbours)

    # -- the bijection -----------------------------------------------------

    def index_of(self, node: Hashable) -> int:
        """Return the index of a node label (raises ``KeyError`` if absent)."""
        return self._index[node]

    def node_of(self, index: int) -> Hashable:
        """Return the label of an index."""
        return self.nodes[index]

    def __contains__(self, node: Hashable) -> bool:
        return node in self._index

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def number_of_nodes(self) -> int:
        return self.core.num_nodes

    @property
    def number_of_edges(self) -> int:
        return self.core.num_edges

    # -- round trip --------------------------------------------------------

    def to_networkx(self) -> nx.Graph:
        """Rebuild a standalone ``nx.Graph`` from the arrays.

        Labels come back verbatim; edge weights are re-attached whenever the
        source graph carried any explicit ``weight`` attribute (a graph that
        had none round-trips to a graph with none, so unit-weight semantics
        are preserved either way).
        """
        rebuilt = nx.Graph()
        rebuilt.add_nodes_from(self.nodes)
        node_of = self.nodes
        if self._has_weights:
            rebuilt.add_weighted_edges_from(
                (node_of[u], node_of[v], weight) for u, v, weight in self.core.edges()
            )
        else:
            rebuilt.add_edges_from(
                (node_of[u], node_of[v]) for u, v, _weight in self.core.edges()
            )
        return rebuilt

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"GraphView(n={self.number_of_nodes}, m={self.number_of_edges})"


# One shared conversion per nx.Graph object.  The memo lives *on the graph
# itself* (a plain instance attribute): the earlier weakly-keyed module cache
# leaked every entry, because its value (the GraphView) strongly references
# its key (the graph), so no viewed graph was ever collected.  Storing the
# view on the graph makes the pair a plain reference cycle that the garbage
# collector reclaims as one unit when the graph is dropped -- the same
# lifetime discipline as ``GraphView._part_sets``.  Graphs are treated as
# frozen once viewed -- every caller in this package mutates weights *before*
# deriving structures, and the scenario layer documents the convention.
_VIEW_ATTR = "_repro_graph_view"


def view_of(graph: nx.Graph | GraphView) -> GraphView:
    """Return the memoised :class:`GraphView` of ``graph`` (build it once).

    Accepts an existing view and returns it unchanged, so code that wants
    "a view of whatever I was given" can call this unconditionally.
    """
    if isinstance(graph, GraphView):
        return graph
    view = getattr(graph, _VIEW_ATTR, None)
    if view is None:
        view = GraphView(graph)
        setattr(graph, _VIEW_ATTR, view)
    return view
