"""The :class:`GraphView` adapter: labels on the outside, CSR on the inside.

Every algorithm in the reproduction historically consumed ``nx.Graph``
objects with arbitrary hashable node labels (grid coordinates, strings,
tuples).  :class:`GraphView` performs that conversion **once** at the
construction boundary: it relabels the nodes to ``0 .. n-1`` (in the
package-wide canonical order, sorted by ``repr``), builds the CSR
:class:`~repro.core.graph.CoreGraph`, and keeps the ``node_of`` /
``index_of`` bijection so results computed on indices can be handed back in
label form.  :func:`to_networkx` round-trips the view back into a
standalone ``nx.Graph`` with the original labels and edge weights.

:func:`view_of` memoises views per ``nx.Graph`` object -- the view is
stored on the graph itself, so graph and view share one lifetime and
neither outlives the other: a scenario sweep running several constructors
and algorithms over one instance pays for a single conversion, and
dropping the graph frees the view (and its CSR arrays) with it.

The canonical repr-sorted order is load-bearing: index order then coincides
with the ``sorted(..., key=repr)`` tie-breaking used throughout the
``networkx`` code paths, which is what lets the CSR fast paths reproduce
their results *exactly* (the differential tests in
``tests/test_core_graphview.py`` pin this).
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from ..errors import InvalidGraphError
from .graph import CoreGraph

# The edge-weight attribute name, kept in sync with
# ``repro.graphs.weights.WEIGHT``.  Imported lazily in ``__init__`` rather
# than at module level: ``repro.graphs`` imports ``repro.core`` (for the
# native generators), so a module-level import here would be circular.


class GraphView:
    """A one-time conversion of an ``nx.Graph`` into an int-indexed CSR kernel.

    Attributes:
        graph: the source ``nx.Graph``.  For views built from an existing
            graph this is that graph (kept by reference, never copied); for
            views built natively via :meth:`from_core` it is a *lazy
            adapter* -- the ``nx.Graph`` is materialised on first access
            (and counted, see :func:`nx_materializations`), so CSR-native
            pipelines that never touch ``.graph`` never build one.
        core: the :class:`CoreGraph` over indices ``0 .. n-1``.
        nodes: the label of every index, i.e. ``nodes[i]`` is the node whose
            index is ``i``; sorted by ``repr`` so that index order equals
            the package's canonical node order.
    """

    __slots__ = (
        "_graph",
        "core",
        "nodes",
        "_index",
        "_has_weights",
        "_part_sets",
        "__weakref__",
    )

    def __init__(self, graph: nx.Graph, sort_neighbours: bool = True) -> None:
        from ..graphs.weights import WEIGHT

        labels = sorted(graph.nodes(), key=repr)
        index: dict[Hashable, int] = {label: i for i, label in enumerate(labels)}
        if len(index) != len(labels):
            raise InvalidGraphError("graph has duplicate node labels")
        has_weights = False
        edges = []
        for u, v, data in graph.edges(data=True):
            if u == v:
                raise InvalidGraphError(f"GraphView rejects self-loop ({u}, {v})")
            weight = data.get(WEIGHT)
            if weight is None:
                weight = 1.0
            else:
                has_weights = True
            edges.append((index[u], index[v], weight))
        self._graph = graph
        self.nodes = labels
        self._index = index
        self._has_weights = has_weights
        # Per-view memo of int-indexed part families, managed by
        # repro.core.partset.part_set_of.  Living on the view (rather than in
        # a global cache keyed by it) ties each PartSet's lifetime to its
        # view's: a cache entry referencing the view would keep a weakly-keyed
        # view alive forever.
        self._part_sets: dict = {}
        self.core = CoreGraph(len(labels), edges, sort_neighbours=sort_neighbours)

    @classmethod
    def from_core(
        cls,
        core: CoreGraph,
        nodes: list[Hashable] | None = None,
        has_weights: bool = False,
    ) -> "GraphView":
        """Wrap an already-built :class:`CoreGraph` in a view, nx-free.

        This is the native-generator entry point: the CSR arrays are the
        *primary* representation and ``networkx`` becomes an on-demand
        adapter -- ``view.graph`` materialises an ``nx.Graph`` lazily on
        first access (incrementing :func:`nx_materializations`).

        Args:
            core: the CSR graph over indices ``0 .. n-1``.
            nodes: the label of every index, already in the package-wide
                canonical order (sorted by ``repr``); defaults to
                ``list(range(n))`` *only when that is canonical* (n <= 10,
                where integer order and repr order coincide) -- native
                generators at scale must supply the permuted labels.
            has_weights: whether the weights are explicit (round-tripped to
                ``weight`` attributes on materialisation) or implicit units.
        """
        if nodes is None:
            if core.num_nodes > 10:
                raise InvalidGraphError(
                    "from_core needs explicit labels for n > 10 (repr order "
                    "of integers differs from numeric order)"
                )
            nodes = list(range(core.num_nodes))
        if len(nodes) != core.num_nodes:
            raise InvalidGraphError("from_core: label list does not match vertex count")
        view = cls.__new__(cls)
        view._graph = None
        view.core = core
        view.nodes = list(nodes)
        view._index = {label: i for i, label in enumerate(view.nodes)}
        if len(view._index) != len(view.nodes):
            raise InvalidGraphError("from_core: duplicate node labels")
        view._has_weights = has_weights
        view._part_sets = {}
        return view

    @property
    def graph(self) -> nx.Graph:
        """The ``nx.Graph`` behind the view, materialised on demand.

        Views built from an ``nx.Graph`` return it unchanged; native views
        build it (once) through :meth:`to_networkx` and memoise it, wiring
        the ``view_of`` back-pointer so ``view_of(view.graph) is view``.
        """
        if self._graph is None:
            rebuilt = self.to_networkx()
            setattr(rebuilt, _VIEW_ATTR, self)
            self._graph = rebuilt
        return self._graph

    @property
    def has_weights(self) -> bool:
        """Whether the edges carry explicit weights (vs. implicit units)."""
        return self._has_weights

    # -- the bijection -----------------------------------------------------

    def index_of(self, node: Hashable) -> int:
        """Return the index of a node label (raises ``KeyError`` if absent)."""
        return self._index[node]

    def node_of(self, index: int) -> Hashable:
        """Return the label of an index."""
        return self.nodes[index]

    def __contains__(self, node: Hashable) -> bool:
        return node in self._index

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def number_of_nodes(self) -> int:
        return self.core.num_nodes

    @property
    def number_of_edges(self) -> int:
        return self.core.num_edges

    # -- round trip --------------------------------------------------------

    def to_networkx(self) -> nx.Graph:
        """Rebuild a standalone ``nx.Graph`` from the arrays.

        Labels come back verbatim; edge weights are re-attached whenever the
        source graph carried any explicit ``weight`` attribute (a graph that
        had none round-trips to a graph with none, so unit-weight semantics
        are preserved either way).

        Every call increments the package-wide materialisation counter
        (:func:`nx_materializations`): the scale tests assert the counter
        stays flat across the native million-node pipeline, which is the
        executable form of the "nx is an on-demand adapter" contract.
        """
        global _NX_MATERIALIZATIONS
        _NX_MATERIALIZATIONS += 1
        rebuilt = nx.Graph()
        rebuilt.add_nodes_from(self.nodes)
        node_of = self.nodes
        if self._has_weights:
            rebuilt.add_weighted_edges_from(
                (node_of[u], node_of[v], weight) for u, v, weight in self.core.edges()
            )
        else:
            rebuilt.add_edges_from(
                (node_of[u], node_of[v]) for u, v, _weight in self.core.edges()
            )
        return rebuilt

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"GraphView(n={self.number_of_nodes}, m={self.number_of_edges})"


# One shared conversion per nx.Graph object.  The memo lives *on the graph
# itself* (a plain instance attribute): the earlier weakly-keyed module cache
# leaked every entry, because its value (the GraphView) strongly references
# its key (the graph), so no viewed graph was ever collected.  Storing the
# view on the graph makes the pair a plain reference cycle that the garbage
# collector reclaims as one unit when the graph is dropped -- the same
# lifetime discipline as ``GraphView._part_sets``.  Graphs are treated as
# frozen once viewed -- every caller in this package mutates weights *before*
# deriving structures, and the scenario layer documents the convention.
_VIEW_ATTR = "_repro_graph_view"

# Running count of nx.Graph materialisations performed by the adapter
# (GraphView.to_networkx, including lazy ``view.graph`` accesses).  The
# tier-1 scale smoke test and the S7 gate take a delta around the native
# pipeline and assert it is zero.
_NX_MATERIALIZATIONS = 0


def nx_materializations() -> int:
    """Return the number of ``nx.Graph``s built by the adapter so far.

    A monotone counter; callers interested in "did *this* code path touch
    networkx?" record the value before and after and compare deltas.
    """
    return _NX_MATERIALIZATIONS


def view_of(graph: nx.Graph | GraphView) -> GraphView:
    """Return the memoised :class:`GraphView` of ``graph`` (build it once).

    Accepts an existing view and returns it unchanged, so code that wants
    "a view of whatever I was given" can call this unconditionally.
    """
    if isinstance(graph, GraphView):
        return graph
    view = getattr(graph, _VIEW_ATTR, None)
    if view is None:
        view = GraphView(graph)
        setattr(graph, _VIEW_ATTR, view)
    return view
