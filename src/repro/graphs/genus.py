"""Bounded-genus graph generators.

A graph has genus ``g`` if it embeds on an orientable surface with ``g``
handles (Definition 3).  Genus-``g`` graphs are the ``(0, g, 0, 0)``-almost-
embeddable graphs of Definition 5 and form the "surface part" of the Graph
Structure Theorem.

We do not implement general 2-cell embeddings on arbitrary surfaces (see
DESIGN.md, Section 4): instead every generator here builds its graph
*constructively* so that an upper bound on the genus is known by
construction, and returns a :class:`GenusGraph` wrapper recording that bound.
The downstream constructions only ever consume the genus as a number -- the
Genus+Vortex shortcut path goes through the treewidth bound of Lemma 3 --
so a certified upper bound is exactly what is needed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import networkx as nx

from ..errors import InvalidGraphError
from ..utils import ensure_rng, relabel_to_integers
from .planar import grid_graph, is_planar


@dataclass(frozen=True)
class GenusGraph:
    """A graph together with a constructive upper bound on its genus.

    Attributes:
        graph: the underlying :class:`networkx.Graph` (integer labels).
        genus: an upper bound on the orientable genus, certified by the way
            the graph was constructed (0 for planar graphs, 1 for the torus
            grid, ``g`` for a grid with ``g`` added handles).
        handles: the list of handle edge sets that were added on top of a
            planar base graph, one frozenset of edges per handle.  Empty for
            natively planar or toroidal constructions.
    """

    graph: nx.Graph
    genus: int
    handles: tuple[frozenset[tuple[int, int]], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.genus < 0:
            raise InvalidGraphError("genus must be non-negative")

    @property
    def number_of_nodes(self) -> int:
        return self.graph.number_of_nodes()


def toroidal_grid(rows: int, cols: int) -> GenusGraph:
    """Return the ``rows x cols`` torus grid (genus at most 1).

    Both the rows and the columns wrap around, so the graph is vertex
    transitive, 4-regular, has diameter ``floor(rows/2) + floor(cols/2)``, and
    embeds on the torus (genus 1).  For ``rows, cols >= 3`` and at least one
    dimension ``>= 5`` the graph is non-planar, which the tests verify.
    """
    if rows < 3 or cols < 3:
        raise InvalidGraphError("toroidal grid needs both dimensions >= 3")
    graph = nx.Graph()
    for r in range(rows):
        for c in range(cols):
            graph.add_node((r, c))
    for r in range(rows):
        for c in range(cols):
            graph.add_edge((r, c), (r, (c + 1) % cols))
            graph.add_edge((r, c), ((r + 1) % rows, c))
    genus = 0 if is_planar(graph) else 1
    return GenusGraph(graph=relabel_to_integers(graph), genus=genus)


def genus_grid(
    rows: int,
    cols: int,
    genus: int,
    seed: int | random.Random | None = None,
) -> GenusGraph:
    """Return a planar grid with ``genus`` handles added.

    Each handle connects two far-apart grid vertices by a new edge; adding a
    single edge to a graph of genus ``g`` yields a graph of genus at most
    ``g + 1``, so the result has genus at most ``genus``.  The handle
    endpoints are chosen uniformly among vertex pairs at grid distance at
    least ``(rows + cols) / 2`` so that the handles genuinely change the
    topology rather than duplicating short-range connectivity.

    This mirrors the robustness discussion of the paper's introduction: a
    planar network with a few long-range links is no longer planar, but it is
    still an excluded-minor graph, and every added edge is accounted for as a
    handle (or can be absorbed by an apex/vortex in richer constructions).
    """
    if genus < 0:
        raise InvalidGraphError("genus must be non-negative")
    rng = ensure_rng(seed)
    base = grid_graph(rows, cols)
    graph = base.copy()
    coords = sorted((r, c) for r in range(rows) for c in range(cols))
    index = {coord: i for i, coord in enumerate(coords)}
    min_distance = max(2, (rows + cols) // 2)
    handles: list[frozenset[tuple[int, int]]] = []
    attempts = 0
    while len(handles) < genus and attempts < 100 * (genus + 1):
        attempts += 1
        (r1, c1), (r2, c2) = rng.sample(coords, 2)
        if abs(r1 - r2) + abs(c1 - c2) < min_distance:
            continue
        u, v = index[(r1, c1)], index[(r2, c2)]
        if graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        handles.append(frozenset({(min(u, v), max(u, v))}))
    if len(handles) < genus:
        raise InvalidGraphError(
            f"could not place {genus} handles on a {rows}x{cols} grid; "
            "increase the grid size"
        )
    return GenusGraph(graph=graph, genus=genus, handles=tuple(handles))


def genus_upper_bound_from_euler(graph: nx.Graph) -> int:
    """Return the Euler-formula genus upper bound ``ceil((m - 3n + 6) / 6)``.

    For a simple connected graph embedded on an orientable surface of genus
    ``g`` with all faces of length at least 3, Euler's formula gives
    ``m <= 3n - 6 + 6g``.  Rearranging yields a crude but certified lower
    bound on the genus from edge counts, which the tests use as a sanity
    check against the constructive genus bounds (the constructive bound must
    never be smaller than this combinatorial lower bound... note this helper
    actually returns the *lower* bound implied by edge density; planar graphs
    return 0).
    """
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    if n < 3:
        return 0
    slack = m - (3 * n - 6)
    if slack <= 0:
        return 0
    return (slack + 5) // 6
