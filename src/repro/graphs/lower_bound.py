"""The Omega~(sqrt n) lower-bound style graph used as the hard baseline instance.

Das Sarma et al. [SHK+12] (and earlier Elkin [Elk06]) prove that MST,
min-cut and related problems require ``Omega~(sqrt n + D)`` rounds in CONGEST
even on graphs of very small diameter.  Their hard instances have a common
shape: many long vertex-disjoint paths, bridged by a shallow tree that keeps
the diameter tiny while forcing any part-wise aggregation to squeeze
information through a narrow "waist".

We use this topology (not the full lower-bound argument) as the *general
graph* workload on which shortcut quality and MST round counts degrade
towards ``sqrt n``, providing the contrast curve for experiments E5/E6: the
lower-bound graph contains large clique minors (the paths plus tree provide
many disjoint connected pieces that are pairwise linked through the tree), so
it does not belong to any fixed excluded-minor family once the parameters
grow.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..errors import InvalidGraphError


@dataclass(frozen=True)
class LowerBoundGraph:
    """The hard instance together with its structural bookkeeping.

    Attributes:
        graph: the network graph.
        path_starts: first node of each long path (these are natural
            "sources" for hard MST/aggregation instances).
        path_ends: last node of each long path.
        tree_nodes: the nodes of the shallow bridging tree.
        num_paths: number of parallel paths.
        path_length: number of nodes per path.
    """

    graph: nx.Graph
    path_starts: tuple[int, ...]
    path_ends: tuple[int, ...]
    tree_nodes: tuple[int, ...]
    num_paths: int
    path_length: int


def lower_bound_graph(num_paths: int, path_length: int) -> LowerBoundGraph:
    """Construct the Das-Sarma-style hard instance ``Gamma(num_paths, path_length)``.

    The construction:

    * ``num_paths`` vertex-disjoint paths, each with ``path_length`` nodes,
      laid out as rows;
    * a complete binary tree whose leaves are identified with "column
      connectors": leaf ``j`` is attached to the ``j``-th node of *every*
      path, so any two columns are within ``O(log path_length)`` hops of each
      other through the tree.

    The resulting diameter is ``O(log path_length)`` while the natural
    parts -- the individual paths -- have diameter ``path_length``; any
    tree-restricted shortcut must route all paths' traffic through the tree,
    whose edges near the root become congestion bottlenecks.  With
    ``num_paths ~ path_length ~ sqrt(n)`` this exhibits the
    ``Omega~(sqrt n)`` behaviour the paper's introduction cites.
    """
    if num_paths < 1 or path_length < 2:
        raise InvalidGraphError("need at least 1 path with at least 2 nodes")
    graph = nx.Graph()
    path_starts: list[int] = []
    path_ends: list[int] = []
    label = 0
    path_node = [[0] * path_length for _ in range(num_paths)]
    for p in range(num_paths):
        previous = None
        for j in range(path_length):
            path_node[p][j] = label
            graph.add_node(label)
            if previous is not None:
                graph.add_edge(previous, label)
            previous = label
            label += 1
        path_starts.append(path_node[p][0])
        path_ends.append(path_node[p][path_length - 1])

    # Complete binary tree over the columns: leaves are new nodes, one per
    # column, internal nodes added on top.
    leaves = []
    for j in range(path_length):
        leaf = label
        label += 1
        graph.add_node(leaf)
        leaves.append(leaf)
        for p in range(num_paths):
            graph.add_edge(leaf, path_node[p][j])
    tree_nodes = list(leaves)
    level = leaves
    while len(level) > 1:
        next_level = []
        for i in range(0, len(level), 2):
            parent = label
            label += 1
            graph.add_node(parent)
            tree_nodes.append(parent)
            graph.add_edge(parent, level[i])
            if i + 1 < len(level):
                graph.add_edge(parent, level[i + 1])
            next_level.append(parent)
        level = next_level

    return LowerBoundGraph(
        graph=graph,
        path_starts=tuple(path_starts),
        path_ends=tuple(path_ends),
        tree_nodes=tuple(tree_nodes),
        num_paths=num_paths,
        path_length=path_length,
    )
