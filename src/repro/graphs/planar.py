"""Planar graph generators and helpers.

Planar graphs are the simplest non-trivial excluded-minor family (they exclude
``K_5`` and ``K_{3,3}``) and are the base case of the paper's construction:
they are precisely the ``(0, 0, 0, 0)``-almost-embeddable graphs, and
Theorem 4 (Ghaffari--Haeupler, SODA'16) gives them tree-restricted shortcuts
with block parameter ``O(log d)`` and congestion ``O(d log d)``.

Generators in this module produce connected planar graphs with integer node
labels; several of them (grids, wheels, cylinders) have a well-understood
diameter, which the experiments use to sweep the diameter ``D`` independently
of the size ``n``.
"""

from __future__ import annotations

import random
from typing import Sequence

import networkx as nx
import numpy as np

from ..errors import InvalidGraphError
from ..utils import ensure_rng, relabel_to_integers, require_connected


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """Return the ``rows x cols`` grid graph with integer labels.

    The grid has ``rows * cols`` nodes and diameter ``rows + cols - 2``; it is
    the canonical planar graph whose diameter can be tuned independently of
    size (square grids have ``D = Theta(sqrt(n))``, thin grids ``D = Theta(n)``).
    """
    if rows < 1 or cols < 1:
        raise InvalidGraphError("grid dimensions must be positive")
    graph = nx.grid_2d_graph(rows, cols)
    return relabel_to_integers(graph)


def cycle_graph(n: int) -> nx.Graph:
    """Return the cycle on ``n >= 3`` nodes (diameter ``floor(n/2)``)."""
    if n < 3:
        raise InvalidGraphError("a cycle needs at least 3 nodes")
    return nx.cycle_graph(n)


def star_graph(n: int) -> nx.Graph:
    """Return the star with one centre and ``n`` leaves (diameter 2)."""
    if n < 1:
        raise InvalidGraphError("a star needs at least one leaf")
    return nx.star_graph(n)


def wheel_graph(n: int) -> nx.Graph:
    """Return the wheel graph: a cycle on ``n`` nodes plus a universal hub.

    The wheel is the paper's running example (Section 1.3.3 and 2.3.2): the
    outer cycle alone needs ``Theta(n)`` rounds to aggregate, but the hub --
    an apex -- collapses the diameter to 2, and good shortcuts must exploit it.
    """
    if n < 3:
        raise InvalidGraphError("a wheel needs a cycle of at least 3 nodes")
    return nx.wheel_graph(n + 1)


def cylinder_graph(rows: int, cols: int) -> nx.Graph:
    """Return a cylindrical grid: a ``rows x cols`` grid wrapped along columns.

    Cylinders are planar (unlike the torus) and provide planar instances with
    many vertex-disjoint cycles, a harder workload for shortcut construction
    than plain grids.
    """
    if rows < 1 or cols < 3:
        raise InvalidGraphError("a cylinder needs at least 1 row and 3 columns")
    graph = nx.Graph()
    for r in range(rows):
        for c in range(cols):
            graph.add_node((r, c))
    for r in range(rows):
        for c in range(cols):
            graph.add_edge((r, c), (r, (c + 1) % cols))
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c))
    return relabel_to_integers(graph)


def random_delaunay_triangulation(n: int, seed: int | random.Random | None = None) -> nx.Graph:
    """Return the Delaunay triangulation of ``n`` random points in the unit square.

    Delaunay triangulations are planar, connected, and have small diameter
    (``~sqrt(n)`` hops for uniform points), which makes them a realistic
    "two-dimensional map" workload -- the kind of network the introduction of
    the paper motivates planar graphs with.
    """
    if n < 3:
        raise InvalidGraphError("a triangulation needs at least 3 points")
    rng = ensure_rng(seed)
    # scipy's Delaunay requires a numpy RNG; derive it from our seed for determinism.
    np_rng = np.random.default_rng(rng.randrange(2**32))
    points = np_rng.random((n, 2))
    from scipy.spatial import Delaunay  # deferred import: scipy is heavy

    triangulation = Delaunay(points)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for simplex in triangulation.simplices:
        a, b, c = (int(x) for x in simplex)
        graph.add_edge(a, b)
        graph.add_edge(b, c)
        graph.add_edge(a, c)
    require_connected(graph, "Delaunay triangulation")
    return graph


def random_outerplanar_graph(n: int, seed: int | random.Random | None = None) -> nx.Graph:
    """Return a random maximal outerplanar graph on ``n`` nodes.

    A maximal outerplanar graph is a triangulated polygon: the ``n``-cycle
    ``0, 1, ..., n-1`` plus a random set of non-crossing chords forming a
    triangulation of its interior.  Outerplanar graphs exclude ``K_4`` and
    ``K_{2,3}`` as minors and have treewidth 2, so they exercise both the
    planar and the bounded-treewidth shortcut constructions.
    """
    if n < 3:
        raise InvalidGraphError("an outerplanar graph needs at least 3 nodes")
    rng = ensure_rng(seed)
    graph = nx.cycle_graph(n)

    def triangulate(lo: int, hi: int) -> None:
        """Triangulate the polygon ear spanned by boundary vertices lo..hi."""
        if hi - lo < 2:
            return
        pivot = rng.randrange(lo + 1, hi)
        if pivot - lo >= 2:
            graph.add_edge(lo, pivot)
        if hi - pivot >= 2:
            graph.add_edge(pivot, hi)
        triangulate(lo, pivot)
        triangulate(pivot, hi)

    triangulate(0, n - 1)
    return graph


def random_series_parallel_graph(n: int, seed: int | random.Random | None = None) -> nx.Graph:
    """Return a random series-parallel graph on ``n`` nodes.

    Series-parallel graphs exclude ``K_4`` as a minor and "capture many
    network backbones" (introduction of the paper).  The generator starts
    from a single edge and repeatedly applies random series (subdivide an
    edge by a new node) and parallel-then-series expansions, which keeps the
    graph simple while covering the whole family.
    """
    if n < 2:
        raise InvalidGraphError("a series-parallel graph needs at least 2 nodes")
    rng = ensure_rng(seed)
    graph = nx.Graph()
    graph.add_edge(0, 1)
    next_node = 2
    while next_node < n:
        u, v = rng.choice(list(graph.edges()))
        new = next_node
        next_node += 1
        if rng.random() < 0.5:
            # Series operation: subdivide edge (u, v) with the new node.
            graph.remove_edge(u, v)
            graph.add_edge(u, new)
            graph.add_edge(new, v)
        else:
            # "Diamond" operation: add a parallel path u - new - v, which is a
            # parallel composition of the edge (u, v) with a 2-edge path.
            graph.add_edge(u, new)
            graph.add_edge(new, v)
    require_connected(graph, "series-parallel graph")
    return graph


def is_planar(graph: nx.Graph) -> bool:
    """Return True iff ``graph`` is planar (Kuratowski/Boyer-Myrvold check)."""
    planar, _ = nx.check_planarity(graph)
    return planar


def planar_embedding(graph: nx.Graph) -> nx.PlanarEmbedding:
    """Return a combinatorial planar embedding of ``graph``.

    Raises :class:`InvalidGraphError` if the graph is not planar.  The
    embedding is used by the combinatorial-gate construction (Lemma 7), which
    needs a consistent cyclic order of edges around each vertex.
    """
    planar, embedding = nx.check_planarity(graph)
    if not planar:
        raise InvalidGraphError("graph is not planar")
    return embedding


def embedding_faces(embedding: nx.PlanarEmbedding) -> list[tuple]:
    """Enumerate the faces of a planar embedding as tuples of vertices.

    Each face is traversed once; the returned list covers every directed edge
    exactly once across all faces (Euler's formula ``n - m + f = 2`` holds for
    connected embeddings, which the tests verify).
    """
    faces: list[tuple] = []
    seen: set[tuple] = set()
    for u, v in embedding.edges():
        if (u, v) in seen:
            continue
        face = embedding.traverse_face(u, v, mark_half_edges=seen)
        faces.append(tuple(face))
    return faces


def planar_quality_targets(diameter: int) -> dict[str, float]:
    """Return the Theorem 4 target bounds for a given spanning-tree diameter.

    Used by the experiment harness to annotate measured planar shortcut
    quality with the asymptotic bound the paper cites:
    block ``O(log d)``, congestion ``O(d log d)``, quality ``O(d log d)``.
    """
    import math

    log_d = math.log2(diameter + 2)
    return {
        "block_target": log_d,
        "congestion_target": diameter * log_d,
        "quality_target": diameter * log_d,
    }


def boundary_cycle(rows: int, cols: int, graph: nx.Graph | None = None) -> Sequence[int]:
    """Return the outer boundary cycle of a ``rows x cols`` grid, as node labels.

    The vortex construction (Definition 4) attaches a vortex to a facial
    cycle; for grid-based generators the outer boundary is the natural face
    to use, and this helper returns it in cyclic order.  If ``graph`` is
    given it must be the graph returned by :func:`grid_graph` for the same
    dimensions (the labelling convention of :func:`relabel_to_integers` sorts
    ``(r, c)`` pairs lexicographically, which this function reproduces).
    """
    coords = sorted((r, c) for r in range(rows) for c in range(cols))
    index = {coord: i for i, coord in enumerate(coords)}
    path: list[int] = []
    # top row left->right, right column top->bottom, bottom row right->left,
    # left column bottom->top.
    for c in range(cols):
        path.append(index[(0, c)])
    for r in range(1, rows):
        path.append(index[(r, cols - 1)])
    for c in range(cols - 2, -1, -1):
        path.append(index[(rows - 1, c)])
    for r in range(rows - 2, 0, -1):
        path.append(index[(r, 0)])
    if graph is not None:
        for a, b in zip(path, path[1:] + path[:1]):
            if not graph.has_edge(a, b) and len(path) > 1:
                raise InvalidGraphError(
                    "boundary_cycle: supplied graph does not match grid dimensions"
                )
    return path
