"""Graph substrates: generators for every graph family the paper manipulates.

The paper's result concerns graphs that exclude a fixed minor ``H``.  The
Robertson--Seymour Graph Structure Theorem (Theorem 3) states that every such
graph is a ``k``-clique-sum of ``k``-almost-embeddable graphs, which in turn
are built from bounded-genus graphs by adding vortices and apices.  This
subpackage provides constructive generators for each ingredient:

* :mod:`repro.graphs.planar`      -- planar graphs (grids, triangulations, ...)
* :mod:`repro.graphs.genus`       -- bounded-genus graphs (toroidal grids, handles)
* :mod:`repro.graphs.treewidth`   -- bounded-treewidth graphs (k-trees)
* :mod:`repro.graphs.apex_vortex` -- apices (Def. 2), vortices (Def. 4) and
  almost-embeddable graphs (Def. 5) with explicit construction witnesses
* :mod:`repro.graphs.clique_sum`  -- k-clique-sums (Def. 1) and clique-sum
  decomposition trees (Def. 8)
* :mod:`repro.graphs.minor_free`  -- samplers for the family L_k (Def. 6)
* :mod:`repro.graphs.minors`      -- minor containment testing for small minors
* :mod:`repro.graphs.lower_bound` -- the Omega(sqrt n) hard instance used as the
  general-graph baseline workload
* :mod:`repro.graphs.weights`     -- edge weight assignment helpers
* :mod:`repro.graphs.native`      -- CSR-native generators that emit
  :class:`~repro.core.CoreGraph` directly (million-node instances; each is
  pinned exactly equal to its preserved ``nx`` twin)
"""

from .planar import (
    cycle_graph,
    grid_graph,
    is_planar,
    planar_embedding,
    random_delaunay_triangulation,
    random_outerplanar_graph,
    random_series_parallel_graph,
    star_graph,
    wheel_graph,
)
from .genus import GenusGraph, genus_grid, toroidal_grid
from .treewidth import random_ktree, random_partial_ktree
from .apex_vortex import (
    AlmostEmbeddableGraph,
    VortexWitness,
    add_apices,
    add_vortex,
    build_almost_embeddable,
)
from .clique_sum import Bag, CliqueSumDecomposition, clique_sum_compose
from .minor_free import MinorFreeGraph, planar_plus_apex, sample_lk_graph
from .minors import excludes_minor, has_minor
from .lower_bound import lower_bound_graph
from .weights import (
    assign_adversarial_weights,
    assign_hashed_weights,
    assign_random_weights,
    assign_unit_weights,
    hashed_edge_weight,
    hashed_weights_array,
)
from .native import (
    NATIVE_GENERATORS,
    clique_sum_chain_reference,
    ktree_chain_reference,
    native_clique_sum_chain,
    native_cycle,
    native_cylinder,
    native_delaunay,
    native_grid,
    native_ktree_chain,
    native_star,
    native_wheel,
    string_argsort,
)

__all__ = [
    "NATIVE_GENERATORS",
    "AlmostEmbeddableGraph",
    "Bag",
    "CliqueSumDecomposition",
    "GenusGraph",
    "MinorFreeGraph",
    "VortexWitness",
    "add_apices",
    "add_vortex",
    "assign_adversarial_weights",
    "assign_hashed_weights",
    "assign_random_weights",
    "assign_unit_weights",
    "build_almost_embeddable",
    "clique_sum_chain_reference",
    "clique_sum_compose",
    "cycle_graph",
    "excludes_minor",
    "genus_grid",
    "grid_graph",
    "has_minor",
    "hashed_edge_weight",
    "hashed_weights_array",
    "is_planar",
    "ktree_chain_reference",
    "lower_bound_graph",
    "native_clique_sum_chain",
    "native_cycle",
    "native_cylinder",
    "native_delaunay",
    "native_grid",
    "native_ktree_chain",
    "native_star",
    "native_wheel",
    "planar_embedding",
    "planar_plus_apex",
    "random_delaunay_triangulation",
    "random_ktree",
    "random_outerplanar_graph",
    "random_partial_ktree",
    "random_series_parallel_graph",
    "sample_lk_graph",
    "star_graph",
    "string_argsort",
    "toroidal_grid",
    "wheel_graph",
]
