"""k-clique-sums and clique-sum decomposition trees (Definitions 1 and 8).

The Graph Structure Theorem expresses every ``H``-free graph as a
``k``-clique-sum of ``k``-almost-embeddable graphs.  The paper never computes
this decomposition for an arbitrary input graph (no efficient distributed --
or even sub-cubic centralised -- algorithm is known); instead it only needs
the decomposition to *exist*.  We mirror that stance: the generator in this
module **composes** graphs by k-clique-sums and records the decomposition
tree as it goes, so every generated graph comes with a certified witness that
the structure-aware shortcut constructors of Section 2.2 can consume.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Sequence

import networkx as nx

from ..errors import InvalidDecompositionError, InvalidGraphError
from ..utils import ensure_rng, pairs
from .apex_vortex import AlmostEmbeddableGraph, VortexWitness


@dataclass(frozen=True)
class Bag:
    """One bag ``B_i`` of a clique-sum decomposition tree.

    Attributes:
        index: the bag's identifier (a node of the decomposition tree).
        nodes: the vertices of the final composed graph belonging to this bag.
        kind: a tag describing which graph family the bag was drawn from
            (``"planar"``, ``"treewidth"``, ``"almost_embeddable"``, ...);
            the minor-free shortcut pipeline dispatches on this tag.
        witness: optional family-specific construction witness, already
            relabelled into the final graph's vertex labels (for example an
            :class:`AlmostEmbeddableGraph` recording apices and vortices).
    """

    index: int
    nodes: frozenset[int]
    kind: str = "generic"
    witness: object | None = None


@dataclass
class CliqueSumDecomposition:
    """A graph together with its k-clique-sum decomposition tree (Definition 8).

    Attributes:
        graph: the composed graph ``G``.
        tree: the decomposition tree ``DT``; its nodes are bag indices.
        bags: mapping from bag index to :class:`Bag`.
        partial_cliques: mapping from a tree edge (frozenset of the two bag
            indices) to the set of vertices shared by the two bags -- the
            partial clique ``C_f`` of Definition 8.
        k: the clique-sum order (every partial clique has at most ``k``
            vertices).
    """

    graph: nx.Graph
    tree: nx.Graph
    bags: dict[int, Bag]
    partial_cliques: dict[frozenset[int], frozenset[int]]
    k: int

    def bag_subgraph(self, index: int) -> nx.Graph:
        """Return the bag ``B_i`` as the induced subgraph ``G[V(B_i)]``."""
        return self.graph.subgraph(self.bags[index].nodes).copy()

    def completed_bag_graph(self, index: int) -> nx.Graph:
        """Return ``B^0_i``: the bag with all incident partial cliques completed.

        This is the graph the paper feeds to the family shortcutter in the
        local-shortcut step (Figure 3): the vertices are the bag's vertices,
        the edges are the bag's edges plus a clique on every partial clique
        incident to the bag in the decomposition tree.
        """
        completed = self.bag_subgraph(index)
        for tree_edge in self.tree.edges(index):
            key = frozenset(tree_edge)
            clique = self.partial_cliques.get(key, frozenset())
            for u, v in pairs(sorted(clique)):
                completed.add_edge(u, v)
        return completed

    def bags_containing(self, vertex: Hashable) -> set[int]:
        """Return the indices of all bags that contain ``vertex``."""
        return {index for index, bag in self.bags.items() if vertex in bag.nodes}

    def max_partial_clique_size(self) -> int:
        """Return the size of the largest partial clique (0 for a single bag)."""
        return max((len(c) for c in self.partial_cliques.values()), default=0)

    def depth(self, root: int | None = None) -> int:
        """Return the depth of the decomposition tree rooted at ``root``."""
        if self.tree.number_of_nodes() <= 1:
            return 0
        root = root if root is not None else min(self.tree.nodes())
        lengths = nx.single_source_shortest_path_length(self.tree, root)
        return max(lengths.values())

    def validate(self) -> None:
        """Check the five axioms of Definition 8; raise on any violation."""
        if set(self.tree.nodes()) != set(self.bags.keys()):
            raise InvalidDecompositionError("tree nodes and bag indices differ")
        if self.tree.number_of_nodes() > 0 and not nx.is_tree(self.tree):
            raise InvalidDecompositionError("decomposition tree is not a tree")

        # Axiom 1: bags cover all vertices.
        covered: set[int] = set()
        for bag in self.bags.values():
            covered |= bag.nodes
        if covered != set(self.graph.nodes()):
            raise InvalidDecompositionError("bags do not cover the vertex set exactly")

        # Axiom 3: intersections along tree edges equal the partial cliques,
        # and partial cliques have at most k vertices.
        for i, j in self.tree.edges():
            key = frozenset((i, j))
            if key not in self.partial_cliques:
                raise InvalidDecompositionError(f"missing partial clique for tree edge {key}")
            clique = self.partial_cliques[key]
            if len(clique) > self.k:
                raise InvalidDecompositionError(
                    f"partial clique {sorted(clique)} exceeds the clique-sum order k={self.k}"
                )
            intersection = self.bags[i].nodes & self.bags[j].nodes
            if intersection != clique:
                raise InvalidDecompositionError(
                    f"bag intersection {sorted(intersection)} differs from the recorded "
                    f"partial clique {sorted(clique)} on tree edge {key}"
                )

        # Axiom 4: the bags containing any vertex form a connected subtree.
        for vertex in self.graph.nodes():
            holders = self.bags_containing(vertex)
            if not holders:
                raise InvalidDecompositionError(f"vertex {vertex} is in no bag")
            if len(holders) > 1 and not nx.is_connected(self.tree.subgraph(holders)):
                raise InvalidDecompositionError(
                    f"bags containing vertex {vertex} are not connected in the tree"
                )

        # Axiom 5: every edge lives inside some bag.
        for u, v in self.graph.edges():
            if not any(u in bag.nodes and v in bag.nodes for bag in self.bags.values()):
                raise InvalidDecompositionError(f"edge ({u}, {v}) is not contained in any bag")


def _find_clique(graph: nx.Graph, size: int, rng: random.Random, attempts: int = 50) -> list[int]:
    """Find a clique of exactly ``size`` vertices in ``graph``, or a smaller one.

    The search is randomised and greedy: grow a clique from a random vertex by
    repeatedly adding a common neighbour.  If no clique of the requested size
    is found within ``attempts`` trials, the largest clique found is returned
    (always at least a single vertex, so a 1-clique-sum remains possible).
    """
    if graph.number_of_nodes() == 0:
        raise InvalidGraphError("cannot find a clique in an empty graph")
    nodes = sorted(graph.nodes())
    best: list[int] = [rng.choice(nodes)]
    for _ in range(attempts):
        start = rng.choice(nodes)
        clique = [start]
        candidates = set(graph.neighbors(start))
        while candidates and len(clique) < size:
            nxt = rng.choice(sorted(candidates))
            clique.append(nxt)
            candidates &= set(graph.neighbors(nxt))
        if len(clique) > len(best):
            best = clique
        if len(best) >= size:
            return best[:size]
    return best


def _relabel_witness(witness: object | None, mapping: dict[int, int]) -> object | None:
    """Relabel a per-bag construction witness into the composed graph's labels."""
    if witness is None:
        return None
    if isinstance(witness, AlmostEmbeddableGraph):
        relabelled_vortices = tuple(
            VortexWitness(
                boundary=tuple(mapping[v] for v in vortex.boundary),
                internal_nodes=tuple(mapping[v] for v in vortex.internal_nodes),
                arcs={
                    mapping[node]: tuple(mapping[v] for v in arc)
                    for node, arc in vortex.arcs.items()
                },
                depth=vortex.depth,
            )
            for vortex in witness.vortices
        )
        return AlmostEmbeddableGraph(
            graph=nx.relabel_nodes(witness.graph, mapping, copy=True),
            genus=witness.genus,
            apices=tuple(mapping[a] for a in witness.apices),
            vortices=relabelled_vortices,
            surface_nodes=frozenset(mapping[v] for v in witness.surface_nodes),
        )
    # Unknown witness types are passed through untouched; callers that attach
    # custom witnesses are responsible for relabelling them via `mapping`,
    # which is also stored on the bag via the returned decomposition.
    return witness


def clique_sum_compose(
    components: Sequence[nx.Graph | tuple[nx.Graph, str, object | None]],
    k: int,
    seed: int | random.Random | None = None,
    tree_shape: str = "random",
    delete_probability: float = 0.0,
) -> CliqueSumDecomposition:
    """Compose graphs by iterated k-clique-sums (Definition 1) and record Def. 8.

    Args:
        components: the graphs ``G_1, ..., G_l`` to glue together.  Each entry
            is either a bare graph or a ``(graph, kind, witness)`` triple; the
            kind/witness are stored on the resulting bag (witnesses of type
            :class:`AlmostEmbeddableGraph` are relabelled automatically).
        k: the clique-sum order; every gluing uses a clique of at most ``k``
            vertices.
        seed: RNG seed.
        tree_shape: ``"random"`` attaches each new component to a uniformly
            random existing bag (shallow, O(log l) expected depth),
            ``"path"`` always attaches to the previously added bag (depth
            ``l - 1``, the worst case that Theorem 7's heavy-light folding is
            designed to fix), ``"star"`` always attaches to the first bag.
        delete_probability: probability of deleting each identified clique
            edge after gluing (Definition 1 allows deleting any subset);
            deletions that would disconnect the graph are skipped.

    Returns:
        A validated :class:`CliqueSumDecomposition`.
    """
    if k < 1:
        raise InvalidGraphError("clique-sum order k must be at least 1")
    if not components:
        raise InvalidGraphError("need at least one component to compose")
    if tree_shape not in {"random", "path", "star"}:
        raise InvalidGraphError(f"unknown tree_shape {tree_shape!r}")
    rng = ensure_rng(seed)

    normalised: list[tuple[nx.Graph, str, object | None]] = []
    for entry in components:
        if isinstance(entry, tuple):
            graph, kind, witness = entry
        else:
            graph, kind, witness = entry, "generic", None
        if graph.number_of_nodes() == 0:
            raise InvalidGraphError("components must be non-empty")
        if not nx.is_connected(graph):
            raise InvalidGraphError("components must be connected")
        normalised.append((graph, kind, witness))

    composed = nx.Graph()
    tree = nx.Graph()
    bags: dict[int, Bag] = {}
    partial_cliques: dict[frozenset[int], frozenset[int]] = {}

    # First component: copied verbatim with labels 0..n0-1 (deterministic).
    first_graph, first_kind, first_witness = normalised[0]
    mapping0 = {node: i for i, node in enumerate(sorted(first_graph.nodes(), key=repr))}
    composed = nx.relabel_nodes(first_graph, mapping0, copy=True)
    bags[0] = Bag(
        index=0,
        nodes=frozenset(mapping0.values()),
        kind=first_kind,
        witness=_relabel_witness(first_witness, mapping0),
    )
    tree.add_node(0)
    next_label = composed.number_of_nodes()

    for bag_index, (graph, kind, witness) in enumerate(normalised[1:], start=1):
        if tree_shape == "random":
            target = rng.choice(sorted(bags.keys()))
        elif tree_shape == "path":
            target = bag_index - 1
        else:  # star
            target = 0
        target_bag = bags[target]
        target_subgraph = composed.subgraph(target_bag.nodes)

        clique_size = rng.randint(1, k)
        host_clique = _find_clique(target_subgraph, clique_size, rng)
        guest_clique = _find_clique(graph, len(host_clique), rng)
        size = min(len(host_clique), len(guest_clique))
        host_clique, guest_clique = host_clique[:size], guest_clique[:size]

        # Relabel the new component: guest clique vertices are identified with
        # the host clique vertices; everything else receives fresh labels.
        mapping: dict[Hashable, int] = {}
        for guest, host in zip(guest_clique, host_clique):
            mapping[guest] = host
        for node in sorted(graph.nodes(), key=repr):
            if node not in mapping:
                mapping[node] = next_label
                next_label += 1
        for node in graph.nodes():
            composed.add_node(mapping[node])
        for u, v in graph.edges():
            if mapping[u] != mapping[v]:
                composed.add_edge(mapping[u], mapping[v])

        shared = frozenset(host_clique)
        # Definition 1 allows deleting any subset of edges inside the
        # identified clique; do so randomly but never disconnect the network.
        if delete_probability > 0.0:
            for u, v in pairs(sorted(shared)):
                if composed.has_edge(u, v) and rng.random() < delete_probability:
                    composed.remove_edge(u, v)
                    if not nx.is_connected(composed):
                        composed.add_edge(u, v)

        bags[bag_index] = Bag(
            index=bag_index,
            nodes=frozenset(mapping.values()),
            kind=kind,
            witness=_relabel_witness(witness, {n: mapping[n] for n in graph.nodes()}),
        )
        tree.add_edge(target, bag_index)
        partial_cliques[frozenset((target, bag_index))] = shared

    decomposition = CliqueSumDecomposition(
        graph=composed, tree=tree, bags=bags, partial_cliques=partial_cliques, k=k
    )
    decomposition.validate()
    return decomposition


def decomposition_from_tree_decomposition(
    graph: nx.Graph,
    tree_decomposition: nx.Graph,
    width: int,
) -> CliqueSumDecomposition:
    """View a treewidth decomposition as a (width+1)-clique-sum decomposition.

    A tree decomposition of width ``k`` presents the graph as bags of at most
    ``k + 1`` vertices glued along their intersections -- structurally the
    same object as Definition 8 with partial cliques of size at most
    ``k + 1``.  The treewidth-based shortcut constructor (Theorem 5) reuses
    the clique-sum machinery of Theorem 7 through this adapter, with each
    tiny bag shortcut being trivial (see DESIGN.md).

    The adapter prunes redundant bags (bags fully contained in a neighbour)
    to keep intersections strictly smaller than either endpoint where
    possible, and validates the result.
    """
    if tree_decomposition.number_of_nodes() == 0:
        raise InvalidDecompositionError("empty tree decomposition")
    # Copy, as we may contract away redundant bags.
    td = nx.Graph()
    td.add_nodes_from(tree_decomposition.nodes())
    td.add_edges_from(tree_decomposition.edges())

    # Contract bags that are subsets of a neighbouring bag.
    changed = True
    while changed and td.number_of_nodes() > 1:
        changed = False
        for bag in list(td.nodes()):
            for neighbour in list(td.neighbors(bag)):
                if set(bag) <= set(neighbour):
                    for other in list(td.neighbors(bag)):
                        if other != neighbour:
                            td.add_edge(neighbour, other)
                    td.remove_node(bag)
                    changed = True
                    break
            if changed:
                break

    # Bags may carry placeholder elements that are not graph vertices (for
    # example the duplicate-disambiguation sentinels of
    # `genus_vortex_decomposition`); they are stripped here so the clique-sum
    # view only ever talks about real vertices.
    vertices = set(graph.nodes())
    bag_list = sorted(td.nodes(), key=lambda bag: sorted(bag, key=repr))
    index_of = {bag: i for i, bag in enumerate(bag_list)}
    bags = {
        i: Bag(index=i, nodes=frozenset(bag) & vertices, kind="treewidth_bag", witness=None)
        for bag, i in index_of.items()
    }
    tree = nx.Graph()
    tree.add_nodes_from(bags.keys())
    partial_cliques: dict[frozenset[int], frozenset[int]] = {}
    for a, b in td.edges():
        i, j = index_of[a], index_of[b]
        tree.add_edge(i, j)
        partial_cliques[frozenset((i, j))] = frozenset(set(a) & set(b) & vertices)

    decomposition = CliqueSumDecomposition(
        graph=graph, tree=tree, bags=bags, partial_cliques=partial_cliques, k=width + 1
    )
    decomposition.validate()
    return decomposition
