"""Samplers for the family L_k (Definition 6) and friendly named families.

``L_k`` is the family of graphs representable as k-clique-sums of k-almost-
embeddable graphs; by the Graph Structure Theorem (Theorem 3) every family
excluding a fixed minor ``H`` is contained in ``L_k`` for ``k = k(H)``.
Because no practical algorithm exists to *decompose* an arbitrary H-free
graph, we sample L_k members constructively: draw almost-embeddable bags,
glue them by k-clique-sums, and return the graph together with its witness
(see DESIGN.md Section 4).  This is exactly the class of inputs on which
Theorem 6 promises shortcuts of quality ``~ d^2``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx

from ..errors import InvalidGraphError
from ..utils import ensure_rng
from .apex_vortex import AlmostEmbeddableGraph, add_apices, build_almost_embeddable
from .clique_sum import Bag, CliqueSumDecomposition, clique_sum_compose
from .planar import grid_graph, random_delaunay_triangulation, random_outerplanar_graph
from .treewidth import random_partial_ktree


@dataclass(frozen=True)
class MinorFreeGraph:
    """A sampled member of ``L_k`` with its full construction witness.

    Attributes:
        graph: the composed network graph ``G``.
        decomposition: the clique-sum decomposition tree (Definition 8); each
            bag carries its family tag and, for almost-embeddable bags, the
            relabelled :class:`AlmostEmbeddableGraph` witness.
        k: the clique-sum order / almost-embeddability parameter.
    """

    graph: nx.Graph
    decomposition: CliqueSumDecomposition
    k: int

    @property
    def number_of_nodes(self) -> int:
        return self.graph.number_of_nodes()

    def bag_witnesses(self) -> dict[int, object | None]:
        """Return the per-bag construction witnesses keyed by bag index."""
        return {index: bag.witness for index, bag in self.decomposition.bags.items()}


def planar_plus_apex(
    rows: int = 12,
    cols: int = 12,
    apices: int = 1,
    attach_probability: float = 0.3,
    seed: int | random.Random | None = None,
) -> AlmostEmbeddableGraph:
    """Return a grid with ``apices`` universal-ish vertices attached.

    This is the paper's flagship motivating example: "a planar graph with an
    added vertex attached to every other node" has tiny diameter but defeats
    planar-only algorithms, while excluded-minor shortcuts still apply (the
    graph is (apices, 0, 0, 0)-almost-embeddable).
    """
    base = grid_graph(rows, cols)
    surface_nodes = frozenset(base.nodes())
    graph, apex_nodes = add_apices(
        base, apices, attach_probability=attach_probability, seed=seed
    )
    result = AlmostEmbeddableGraph(
        graph=graph,
        genus=0,
        apices=apex_nodes,
        vortices=(),
        surface_nodes=surface_nodes,
    )
    result.validate()
    return result


def _sample_bag(
    kind: str,
    k: int,
    size_hint: int,
    rng: random.Random,
) -> tuple[nx.Graph, str, object | None]:
    """Sample one bag graph of the requested kind for :func:`sample_lk_graph`."""
    side = max(3, int(round(size_hint**0.5)))
    if kind == "planar":
        if rng.random() < 0.5:
            return grid_graph(side, side), "planar", None
        return (
            random_delaunay_triangulation(max(8, size_hint), seed=rng),
            "planar",
            None,
        )
    if kind == "outerplanar":
        return random_outerplanar_graph(max(4, size_hint), seed=rng), "planar", None
    if kind == "treewidth":
        width = max(1, min(k, 4))
        witness = random_partial_ktree(max(width + 2, size_hint), width, seed=rng)
        return witness.graph, "treewidth", witness
    if kind == "almost_embeddable":
        witness = build_almost_embeddable(
            q=rng.randint(0, max(0, min(k, 2))),
            g=rng.randint(0, 1),
            k=rng.randint(1, max(1, min(k, 2))),
            l=rng.randint(0, 1),
            base_rows=side,
            base_cols=side,
            seed=rng,
        )
        return witness.graph, "almost_embeddable", witness
    raise InvalidGraphError(f"unknown bag kind {kind!r}")


def sample_lk_graph(
    num_bags: int = 4,
    k: int = 3,
    bag_size: int = 30,
    bag_kinds: tuple[str, ...] = ("planar", "almost_embeddable", "treewidth"),
    tree_shape: str = "random",
    seed: int | random.Random | None = None,
) -> MinorFreeGraph:
    """Sample a random member of ``L_k`` (Definition 6) with its witness.

    Args:
        num_bags: how many almost-embeddable bags to glue together.
        k: clique-sum order and almost-embeddability parameter.
        bag_size: approximate number of vertices per bag.
        bag_kinds: the pool of bag families to draw from; drawing planar or
            bounded-treewidth bags is allowed because both are special cases
            of k-almost-embeddable graphs.
        tree_shape: decomposition tree shape passed to
            :func:`clique_sum_compose` (``"random"``, ``"path"``, ``"star"``).
        seed: RNG seed.

    Returns:
        A :class:`MinorFreeGraph` whose ``decomposition`` witnesses membership
        in ``L_k``.
    """
    if num_bags < 1:
        raise InvalidGraphError("need at least one bag")
    rng = ensure_rng(seed)
    components = [
        _sample_bag(rng.choice(list(bag_kinds)), k, bag_size, rng) for _ in range(num_bags)
    ]
    decomposition = clique_sum_compose(
        components, k=k, seed=rng, tree_shape=tree_shape
    )
    return MinorFreeGraph(graph=decomposition.graph, decomposition=decomposition, k=k)


def perturbed_planar_graph(
    rows: int = 12,
    cols: int = 12,
    extra_edges: int = 3,
    extra_apices: int = 1,
    seed: int | random.Random | None = None,
) -> tuple[nx.Graph, AlmostEmbeddableGraph]:
    """Return a planar grid perturbed by a few random edges plus apices.

    Used by the robustness experiment (E8): the perturbed graph is generally
    *not* planar any more -- so planar-only machinery is inapplicable -- but
    it is still an excluded-minor graph: random extra edges can be charged to
    the genus (each one adds at most one handle) and the apices to the apex
    budget, so the graph is ``(extra_apices, extra_edges, 0, 0)``-almost-
    embeddable.  The returned witness records exactly that accounting.
    """
    rng = ensure_rng(seed)
    base = grid_graph(rows, cols)
    nodes = sorted(base.nodes())
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 100 * (extra_edges + 1):
        attempts += 1
        u, v = rng.sample(nodes, 2)
        if not base.has_edge(u, v):
            base.add_edge(u, v)
            added += 1
    surface_nodes = frozenset(base.nodes())
    graph, apex_nodes = add_apices(base, extra_apices, attach_probability=0.3, seed=rng)
    witness = AlmostEmbeddableGraph(
        graph=graph,
        genus=added,
        apices=apex_nodes,
        vortices=(),
        surface_nodes=surface_nodes,
    )
    witness.validate()
    return graph, witness
