"""Bounded-treewidth graph generators.

Graphs of treewidth at most ``k`` admit tree-restricted shortcuts with block
parameter ``O(k)`` and congestion ``O(k log n)`` (Theorem 5, HIZ16b), and the
treewidth bound of Lemma 2/3 is the route through which the paper handles the
Genus+Vortex part of almost-embeddable graphs.  This module generates
``k``-trees and partial ``k``-trees together with an explicit witness tree
decomposition, so that the treewidth-based shortcut constructor never has to
*search* for a decomposition (matching the paper's existence-only use).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx

from ..errors import InvalidGraphError
from ..utils import ensure_rng


@dataclass(frozen=True)
class TreewidthWitness:
    """A graph with a certified tree decomposition of known width.

    Attributes:
        graph: the generated graph.
        width: the width of ``decomposition`` (max bag size minus one).
        decomposition: a tree whose nodes are frozensets of graph vertices
            (bags) satisfying the tree-decomposition axioms.
    """

    graph: nx.Graph
    width: int
    decomposition: nx.Graph


def random_ktree(n: int, k: int, seed: int | random.Random | None = None) -> TreewidthWitness:
    """Return a random ``k``-tree on ``n`` nodes with its tree decomposition.

    A ``k``-tree is built by starting from a ``(k+1)``-clique and repeatedly
    attaching a new vertex to all vertices of an existing ``k``-clique.
    ``k``-trees are exactly the maximal graphs of treewidth ``k`` and exclude
    ``K_{k+2}`` as a minor.
    """
    if k < 1:
        raise InvalidGraphError("k must be at least 1")
    if n < k + 1:
        raise InvalidGraphError(f"a {k}-tree needs at least {k + 1} nodes")
    rng = ensure_rng(seed)
    graph = nx.complete_graph(k + 1)
    # Cliques that new vertices may attach to, each a tuple of k vertices.
    cliques: list[tuple[int, ...]] = [
        tuple(sorted(set(range(k + 1)) - {dropped})) for dropped in range(k + 1)
    ]
    decomposition = nx.Graph()
    root_bag = frozenset(range(k + 1))
    decomposition.add_node(root_bag)
    bag_of_clique: dict[tuple[int, ...], frozenset[int]] = {
        clique: root_bag for clique in cliques
    }
    for new in range(k + 1, n):
        clique = rng.choice(cliques)
        for v in clique:
            graph.add_edge(new, v)
        new_bag = frozenset(clique) | {new}
        decomposition.add_node(new_bag)
        decomposition.add_edge(new_bag, bag_of_clique[clique])
        new_cliques = [
            tuple(sorted((set(clique) - {dropped}) | {new})) for dropped in clique
        ] + [tuple(sorted(clique))]
        for nc in new_cliques:
            cliques.append(nc)
            bag_of_clique[nc] = new_bag
    return TreewidthWitness(graph=graph, width=k, decomposition=decomposition)


def random_partial_ktree(
    n: int,
    k: int,
    keep_probability: float = 0.7,
    seed: int | random.Random | None = None,
) -> TreewidthWitness:
    """Return a random partial ``k``-tree (treewidth <= k) on ``n`` nodes.

    The generator samples a random ``k``-tree and then deletes each edge
    independently with probability ``1 - keep_probability``, re-adding a
    spanning set of edges if the deletion disconnected the graph (so that the
    result remains a connected network).  Subgraphs of ``k``-trees are exactly
    the graphs of treewidth at most ``k``; the witness decomposition of the
    parent ``k``-tree remains valid for the subgraph.
    """
    if not 0.0 <= keep_probability <= 1.0:
        raise InvalidGraphError("keep_probability must lie in [0, 1]")
    rng = ensure_rng(seed)
    witness = random_ktree(n, k, seed=rng)
    graph = witness.graph.copy()
    removable = list(graph.edges())
    rng.shuffle(removable)
    for u, v in removable:
        if rng.random() < keep_probability:
            continue
        graph.remove_edge(u, v)
        # Keep the network connected: undo deletions that disconnect it.
        if not nx.has_path(graph, u, v):
            graph.add_edge(u, v)
    return TreewidthWitness(graph=graph, width=k, decomposition=witness.decomposition)


def random_caterpillar_tree(n: int, seed: int | random.Random | None = None) -> nx.Graph:
    """Return a random caterpillar tree (treewidth 1, diameter close to n).

    Trees exclude ``K_3`` as a minor and are the extreme case where the
    spanning tree *is* the whole graph; they stress the block-parameter side
    of the shortcut quality rather than the congestion side.
    """
    if n < 2:
        raise InvalidGraphError("a tree needs at least 2 nodes")
    rng = ensure_rng(seed)
    spine_length = max(2, n // 2)
    graph = nx.path_graph(spine_length)
    for leaf in range(spine_length, n):
        graph.add_edge(leaf, rng.randrange(spine_length))
    return graph
