"""Minor containment testing for small excluded minors.

A graph ``H`` is a minor of ``G`` if ``H`` can be obtained from ``G`` by
deleting vertices/edges and contracting edges; equivalently, ``G`` contains a
*branch-set model* of ``H``: disjoint connected vertex sets, one per vertex of
``H``, with an edge of ``G`` between every pair of sets corresponding to an
edge of ``H``.

Minor testing for a fixed ``H`` is polynomial (Robertson--Seymour), but the
known algorithms have galactic constants, so -- like the paper, which never
tests minors algorithmically -- we only need this module for *validation* of
our generators on small instances: planar generators must exclude ``K_5``,
series-parallel generators ``K_4``, partial ``k``-trees ``K_{k+2}``, and so
on.  The implementation is an exact branch-and-bound search over branch-set
models, suitable for graphs up to a few dozen vertices and minors up to
``K_6``/``K_{3,3}``.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Sequence

import networkx as nx

from ..errors import InvalidGraphError


def _quick_negative(graph: nx.Graph, minor: nx.Graph) -> bool:
    """Return True if easy counting arguments already rule the minor out."""
    if graph.number_of_nodes() < minor.number_of_nodes():
        return True
    if graph.number_of_edges() < minor.number_of_edges():
        return True
    # A minor model needs `h` branch sets whose contracted degrees cover H's
    # degrees; if G has max degree < min degree of H and H is connected with
    # more vertices than... keep only the safe check: if H has a vertex of
    # degree d, G must have at least d vertices of degree >= 1 -- too weak to
    # bother.  The planarity shortcut below is the main fast path.
    return False


def _quick_positive(graph: nx.Graph, minor: nx.Graph) -> bool:
    """Return True if the minor is trivially present (subgraph check on cliques)."""
    h = minor.number_of_nodes()
    if minor.number_of_edges() == h * (h - 1) // 2:
        # H is a complete graph; any clique of size h in G certifies the minor.
        try:
            clique = next(
                c for c in nx.find_cliques(graph) if len(c) >= h
            )
            return clique is not None
        except StopIteration:
            return False
    return False


def has_minor(graph: nx.Graph, minor: nx.Graph, node_limit: int = 60) -> bool:
    """Return True iff ``minor`` is a minor of ``graph`` (exact, exponential).

    Args:
        graph: host graph (must have at most ``node_limit`` nodes, since the
            search is exponential in the worst case).
        minor: the pattern graph ``H``.
        node_limit: guard against accidentally running the exact search on a
            large host graph.

    The search assigns to every vertex of ``H`` (in decreasing degree order) a
    connected branch set of ``graph``, maintaining disjointness and the
    adjacency requirements towards already-placed branch sets.  Branch sets
    are grown lazily: a vertex of ``H`` first gets a single-vertex branch set,
    which may later be *extended* by unused neighbouring vertices when an
    adjacency requirement cannot be met otherwise.
    """
    if graph.number_of_nodes() > node_limit:
        raise InvalidGraphError(
            f"exact minor test limited to {node_limit} nodes; got "
            f"{graph.number_of_nodes()} (raise node_limit explicitly if intended)"
        )
    if minor.number_of_nodes() == 0:
        return True
    if _quick_negative(graph, minor):
        return False
    if not nx.is_connected(minor):
        # Each component must be a minor of G using disjoint territory; for
        # the small minors we care about (K_t, K_{3,3}) this never triggers,
        # so handle it by the simple (sound but possibly slow) reduction of
        # testing the components one by one on the same host -- correct
        # whenever the host is much larger than the pattern, which the
        # callers' usage guarantees.
        return all(
            has_minor(graph, minor.subgraph(component).copy(), node_limit=node_limit)
            for component in nx.connected_components(minor)
        )
    if _quick_positive(graph, minor):
        return True

    h_nodes = sorted(minor.nodes(), key=lambda v: -minor.degree(v))
    g_nodes = sorted(graph.nodes(), key=lambda v: -graph.degree(v))
    adjacency = {v: set(graph.neighbors(v)) for v in graph.nodes()}

    # branch[i] is the current branch set (a set of G-vertices) of h_nodes[i].
    branch: list[set[Hashable]] = []
    used: set[Hashable] = set()

    def branch_adjacent(i: int, j: int) -> bool:
        """Are the branch sets of h_nodes[i] and h_nodes[j] adjacent in G?"""
        smaller, larger = (branch[i], branch[j]) if len(branch[i]) <= len(branch[j]) else (
            branch[j],
            branch[i],
        )
        return any(adjacency[v] & larger for v in smaller)

    def requirements_satisfiable(i: int) -> bool:
        """Check adjacency of the newly completed branch i towards earlier ones."""
        for j in range(i):
            if minor.has_edge(h_nodes[i], h_nodes[j]) and not branch_adjacent(i, j):
                return False
        return True

    def extend_to_meet(i: int, j: int, budget: int) -> list[Hashable] | None:
        """Try to extend branch i with unused vertices so it touches branch j.

        Performs a BFS from branch i through unused vertices, stopping as soon
        as a vertex adjacent to branch j is reachable; returns the added
        vertices or None.  ``budget`` caps the extension length to keep the
        search bounded.
        """
        frontier = list(branch[i])
        parents: dict[Hashable, Hashable | None] = {v: None for v in branch[i]}
        target_adjacent = set()
        for v in branch[j]:
            target_adjacent |= adjacency[v]
        depth = 0
        while frontier and depth < budget:
            depth += 1
            next_frontier: list[Hashable] = []
            for v in frontier:
                for w in adjacency[v]:
                    if w in used or w in parents:
                        continue
                    parents[w] = v
                    if w in target_adjacent:
                        path = [w]
                        cur = v
                        while cur is not None and cur not in branch[i]:
                            path.append(cur)
                            cur = parents[cur]
                        return path
                    next_frontier.append(w)
            frontier = next_frontier
        return None

    def place(i: int) -> bool:
        if i == len(h_nodes):
            return True
        for candidate in g_nodes:
            if candidate in used:
                continue
            branch.append({candidate})
            used.add(candidate)
            added_extra: list[Hashable] = []
            feasible = True
            for j in range(i):
                if not minor.has_edge(h_nodes[i], h_nodes[j]):
                    continue
                if branch_adjacent(i, j):
                    continue
                extension = extend_to_meet(i, j, budget=graph.number_of_nodes())
                if extension is None:
                    feasible = False
                    break
                for v in extension:
                    branch[i].add(v)
                    used.add(v)
                    added_extra.append(v)
            if feasible and requirements_satisfiable(i) and place(i + 1):
                return True
            for v in added_extra:
                used.discard(v)
            used.discard(candidate)
            branch.pop()
        return False

    return place(0)


def excludes_minor(graph: nx.Graph, minor: nx.Graph, node_limit: int = 60) -> bool:
    """Return True iff ``minor`` is *not* a minor of ``graph`` (exact)."""
    return not has_minor(graph, minor, node_limit=node_limit)


def complete_graph_minor(t: int) -> nx.Graph:
    """Return ``K_t`` (convenience for the common excluded minors)."""
    return nx.complete_graph(t)


def complete_bipartite_minor(a: int, b: int) -> nx.Graph:
    """Return ``K_{a,b}`` (``K_{3,3}`` is the other Kuratowski minor)."""
    return nx.complete_bipartite_graph(a, b)


def verify_family_exclusion(
    graphs: Sequence[nx.Graph], minor: nx.Graph, node_limit: int = 60
) -> bool:
    """Return True iff every graph in ``graphs`` excludes ``minor``.

    Convenience wrapper used by the generator validation tests: a generator
    for an excluded-minor family must never emit a graph containing the
    forbidden minor.
    """
    return all(excludes_minor(graph, minor, node_limit=node_limit) for graph in graphs)
