"""Apices, vortices and almost-embeddable graphs (Definitions 2, 4, 5, 7).

An ``(q, g, k, l)``-almost-embeddable graph is built in three steps:

1. start from a graph embedded on a surface of genus at most ``g``;
2. add at most ``l`` vortices of depth at most ``k`` to selected faces;
3. add at most ``q`` apices connected arbitrarily.

Every constructor in this module records *how* the graph was built -- which
vertices are apices, which are internal vortex nodes, what the vortex
decomposition map ``P(v_A) = A`` is -- because the structure-aware shortcut
constructors of Section 2.3 consume exactly this witness (the paper's
algorithm never computes it, but its existence proof does, and we reproduce
the existence proof constructively).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

import networkx as nx

from ..errors import InvalidGraphError
from ..utils import ensure_rng
from .genus import GenusGraph, genus_grid
from .planar import boundary_cycle, grid_graph


@dataclass(frozen=True)
class VortexWitness:
    """Bookkeeping for a single vortex added to a facial cycle (Def. 4 / 7).

    Attributes:
        boundary: the vertices of the facial cycle ``C`` the vortex was added
            to, in cyclic order (the *vortex boundary*).
        internal_nodes: the newly created internal vortex nodes ``v_A``, one
            per arc.
        arcs: the vortex decomposition map ``P``: for each internal node, the
            tuple of consecutive boundary vertices forming its arc.
        depth: the vortex depth ``k`` -- every boundary vertex lies on at most
            ``depth`` arcs.
    """

    boundary: tuple[int, ...]
    internal_nodes: tuple[int, ...]
    arcs: dict[int, tuple[int, ...]]
    depth: int

    def all_nodes(self) -> frozenset[int]:
        """Return boundary plus internal nodes (everything the vortex touches)."""
        return frozenset(self.boundary) | frozenset(self.internal_nodes)

    def validate(self, graph: nx.Graph) -> None:
        """Check the Definition 4 constraints against ``graph``.

        Raises :class:`InvalidGraphError` if an internal node is adjacent to a
        boundary vertex outside its arc, if two internal nodes are adjacent
        without sharing a boundary vertex, or if some boundary vertex lies on
        more than ``depth`` arcs.
        """
        arc_sets = {node: set(arc) for node, arc in self.arcs.items()}
        for node in self.internal_nodes:
            if node not in graph:
                raise InvalidGraphError(f"internal vortex node {node} missing from graph")
            for neighbour in graph.neighbors(node):
                if neighbour in self.internal_nodes:
                    if not (arc_sets[node] & arc_sets[neighbour]):
                        raise InvalidGraphError(
                            "adjacent internal vortex nodes must share a boundary vertex"
                        )
                elif neighbour not in arc_sets[node]:
                    raise InvalidGraphError(
                        f"internal vortex node {node} is adjacent to {neighbour}, "
                        "which is outside its arc"
                    )
        load: dict[int, int] = {v: 0 for v in self.boundary}
        for arc in self.arcs.values():
            for v in arc:
                load[v] += 1
        worst = max(load.values(), default=0)
        if worst > self.depth:
            raise InvalidGraphError(
                f"vortex depth violated: a boundary vertex lies on {worst} arcs "
                f"but the declared depth is {self.depth}"
            )


@dataclass(frozen=True)
class AlmostEmbeddableGraph:
    """An ``(q, g, k, l)``-almost-embeddable graph with its construction witness.

    Attributes:
        graph: the final graph (surface part + vortices + apices).
        genus: upper bound on the genus of the surface part.
        apices: the apex vertices added in step (iii).
        vortices: one :class:`VortexWitness` per added vortex.
        surface_nodes: the vertices of the step-(i) surface-embedded graph
            (i.e. everything that is neither an apex nor an internal vortex
            node).
    """

    graph: nx.Graph
    genus: int
    apices: tuple[int, ...]
    vortices: tuple[VortexWitness, ...] = field(default_factory=tuple)
    surface_nodes: frozenset[int] = field(default_factory=frozenset)

    @property
    def parameters(self) -> tuple[int, int, int, int]:
        """Return the ``(q, g, k, l)`` parameter tuple of Definition 5."""
        depth = max((v.depth for v in self.vortices), default=0)
        return (len(self.apices), self.genus, depth, len(self.vortices))

    def vortex_nodes(self) -> frozenset[int]:
        """Return the union of all internal vortex nodes."""
        nodes: set[int] = set()
        for vortex in self.vortices:
            nodes.update(vortex.internal_nodes)
        return frozenset(nodes)

    def non_apex_graph(self) -> nx.Graph:
        """Return a copy of the graph with all apices removed (``G - apices``)."""
        graph = self.graph.copy()
        graph.remove_nodes_from(self.apices)
        return graph

    def validate(self) -> None:
        """Validate the recorded witness against the stored graph."""
        # Vortices are validated against the apex-free graph: apices may
        # legitimately attach to internal vortex nodes (Definition 5 (iii)
        # allows apices to connect to *any* vertex of G''), which would
        # otherwise trip the arc-adjacency check of Definition 4.
        apex_free = self.non_apex_graph()
        for vortex in self.vortices:
            vortex.validate(apex_free)
        for apex in self.apices:
            if apex not in self.graph:
                raise InvalidGraphError(f"apex {apex} missing from graph")
        declared = set(self.surface_nodes) | set(self.apices) | set(self.vortex_nodes())
        if declared != set(self.graph.nodes()):
            raise InvalidGraphError(
                "surface nodes, apices and vortex nodes do not cover the graph exactly"
            )


def add_apices(
    graph: nx.Graph,
    count: int,
    attach_probability: float = 0.3,
    min_attachments: int = 1,
    seed: int | random.Random | None = None,
    interconnect: bool = True,
) -> tuple[nx.Graph, tuple[int, ...]]:
    """Add ``count`` apex vertices to a copy of ``graph`` (Definition 2).

    Each apex is connected to every existing vertex independently with
    probability ``attach_probability`` (but to at least ``min_attachments``
    vertices so the graph stays connected), and -- if ``interconnect`` is
    true -- to all previously added apices, matching Definition 5 (iii) which
    allows apices to connect "to each other".

    Returns the new graph and the tuple of apex labels.
    """
    if count < 0:
        raise InvalidGraphError("apex count must be non-negative")
    if not 0.0 <= attach_probability <= 1.0:
        raise InvalidGraphError("attach_probability must lie in [0, 1]")
    rng = ensure_rng(seed)
    result = graph.copy()
    base_nodes = sorted(graph.nodes())
    next_label = (max(base_nodes) + 1) if base_nodes else 0
    apices: list[int] = []
    for _ in range(count):
        apex = next_label
        next_label += 1
        result.add_node(apex)
        attached = [v for v in base_nodes if rng.random() < attach_probability]
        if len(attached) < min_attachments:
            attached = rng.sample(base_nodes, min(min_attachments, len(base_nodes)))
        for v in attached:
            result.add_edge(apex, v)
        if interconnect:
            for other in apices:
                result.add_edge(apex, other)
        apices.append(apex)
    return result, tuple(apices)


def add_vortex(
    graph: nx.Graph,
    cycle: Sequence[int],
    depth: int,
    num_arcs: int | None = None,
    seed: int | random.Random | None = None,
) -> tuple[nx.Graph, VortexWitness]:
    """Add a vortex of depth ``depth`` to the facial cycle ``cycle`` (Definition 4).

    The function selects a family of arcs (contiguous intervals of ``cycle``)
    such that every cycle vertex lies on at most ``depth`` arcs, creates one
    internal vortex node per arc connected to a subset of its arc, and adds
    edges between internal nodes of overlapping arcs.

    Args:
        graph: host graph; ``cycle`` must be a cycle in it.
        cycle: the boundary cycle, in cyclic order.
        depth: maximum number of arcs covering any single boundary vertex.
        num_arcs: how many arcs (hence internal nodes) to create; defaults to
            ``len(cycle) * depth // arc_length`` which saturates the depth
            budget.
        seed: RNG seed.

    Returns the new graph and the :class:`VortexWitness`.
    """
    if depth < 1:
        raise InvalidGraphError("vortex depth must be at least 1")
    cycle = list(cycle)
    if len(cycle) < 3:
        raise InvalidGraphError("a vortex boundary needs at least 3 vertices")
    for v in cycle:
        if v not in graph:
            raise InvalidGraphError(f"cycle vertex {v} is not in the graph")
    for a, b in zip(cycle, cycle[1:] + cycle[:1]):
        if not graph.has_edge(a, b):
            raise InvalidGraphError(f"cycle edge ({a}, {b}) is missing from the graph")

    rng = ensure_rng(seed)
    n_cycle = len(cycle)
    # Choose an arc length so that `depth` overlapping layers of arcs cover the
    # cycle: with arcs of length L starting every L // depth positions, each
    # vertex is covered by at most `depth` arcs.
    arc_length = max(2, min(n_cycle, 2 * depth))
    stride = max(1, arc_length // depth)
    if num_arcs is None:
        num_arcs = max(1, n_cycle // stride)
    num_arcs = min(num_arcs, max(1, n_cycle // stride))

    result = graph.copy()
    next_label = max(result.nodes()) + 1
    internal_nodes: list[int] = []
    arcs: dict[int, tuple[int, ...]] = {}
    for i in range(num_arcs):
        start = (i * stride) % n_cycle
        arc = tuple(cycle[(start + j) % n_cycle] for j in range(arc_length))
        node = next_label
        next_label += 1
        result.add_node(node)
        # Connect the internal node to a non-empty random subset of its arc.
        subset = [v for v in arc if rng.random() < 0.7]
        if not subset:
            subset = [arc[0]]
        for v in subset:
            result.add_edge(node, v)
        internal_nodes.append(node)
        arcs[node] = arc
    # Edges between internal nodes whose arcs share a boundary vertex.
    for i, a in enumerate(internal_nodes):
        for b in internal_nodes[i + 1 :]:
            if set(arcs[a]) & set(arcs[b]) and rng.random() < 0.5:
                result.add_edge(a, b)

    # The layered-arc scheme may cover some vertex with more than `depth`
    # arcs when num_arcs wraps past the cycle end; measure the true depth.
    load: dict[int, int] = {v: 0 for v in cycle}
    for arc in arcs.values():
        for v in arc:
            load[v] += 1
    true_depth = max(load.values(), default=1)
    witness = VortexWitness(
        boundary=tuple(cycle),
        internal_nodes=tuple(internal_nodes),
        arcs=arcs,
        depth=max(depth, true_depth),
    )
    witness.validate(result)
    return result, witness


def build_almost_embeddable(
    q: int = 1,
    g: int = 0,
    k: int = 2,
    l: int = 1,
    base_rows: int = 8,
    base_cols: int = 8,
    apex_attach_probability: float = 0.25,
    seed: int | random.Random | None = None,
) -> AlmostEmbeddableGraph:
    """Construct a random ``(q, g, k, l)``-almost-embeddable graph (Definition 5).

    Step (i) uses a ``base_rows x base_cols`` grid with ``g`` handles as the
    surface-embedded graph, step (ii) adds ``l`` vortices of depth ``k`` to
    the outer boundary cycle (split into ``l`` disjoint sub-cycles of the
    boundary when ``l > 1``), and step (iii) adds ``q`` apices.

    The returned witness records every ingredient so that the shortcut
    constructors of Section 2.3 can replay the paper's proof on it.
    """
    if min(base_rows, base_cols) < 3:
        raise InvalidGraphError("base grid must be at least 3x3")
    if l < 0 or q < 0 or k < 0 or g < 0:
        raise InvalidGraphError("almost-embeddable parameters must be non-negative")
    rng = ensure_rng(seed)
    if g == 0:
        surface: GenusGraph = GenusGraph(graph=grid_graph(base_rows, base_cols), genus=0)
    else:
        surface = genus_grid(base_rows, base_cols, g, seed=rng)
    graph = surface.graph.copy()
    surface_nodes = frozenset(graph.nodes())

    boundary = list(boundary_cycle(base_rows, base_cols))
    vortices: list[VortexWitness] = []
    if l > 0 and k > 0:
        # Every vortex is attached to the outer boundary cycle, but successive
        # vortices see the cycle rotated by a different offset so their arcs
        # concentrate on different stretches of the boundary.  (Definition 5
        # technically attaches each vortex to its own face; using the same
        # facial cycle with rotated arc families preserves every property the
        # downstream constructions rely on -- bounded depth, arcs being
        # contiguous intervals -- while keeping the generator simple.)
        segment = max(4, len(boundary) // max(1, l))
        for i in range(l):
            offset = (i * segment) % len(boundary)
            rotated = boundary[offset:] + boundary[:offset]
            graph, witness = add_vortex(
                graph,
                rotated,
                depth=k,
                num_arcs=max(1, segment // 2),
                seed=rng,
            )
            vortices.append(witness)

    apices: tuple[int, ...] = ()
    if q > 0:
        graph, apices = add_apices(
            graph, q, attach_probability=apex_attach_probability, seed=rng
        )
    result = AlmostEmbeddableGraph(
        graph=graph,
        genus=surface.genus,
        apices=apices,
        vortices=tuple(vortices),
        surface_nodes=surface_nodes,
    )
    result.validate()
    return result
