"""CSR-native graph generators: million-node instances without ``networkx``.

Every generator in :mod:`repro.graphs.planar` (and friends) builds an
``nx.Graph`` first and converts through :class:`~repro.core.GraphView`,
which caps practical instance sizes near ``10^4`` nodes.  This module
inverts that direction: the generators here emit flat edge arrays with a
vectorised numpy pipeline, assemble the CSR :class:`~repro.core.CoreGraph`
directly, and wrap it in a *lazy* view
(:meth:`~repro.core.GraphView.from_core`) whose ``nx.Graph`` is only ever
materialised if a reference path or validator asks for it.

The native output is pinned **exactly equal** to the preserved ``nx``
generator converted via ``GraphView`` -- same canonical node ordering, same
edge set, same weights (``tests/test_graphs_native.py``).  Exactness is
non-trivial because the package's canonical node order is *sorted by
``repr``*, in two layers:

* :func:`repro.utils.relabel_to_integers` (used by ``grid_graph`` /
  ``cylinder_graph``) orders the ``(r, c)`` coordinate tuples by the string
  order of their ``repr``, which for ``rows, cols >= 11`` differs from
  numeric order (``"(0, 10)" < "(0, 2)"``); and
* :class:`~repro.core.GraphView` orders the resulting integer labels by
  *their* ``repr``, i.e. decimal-string order (``"10" < "2"``).

Both permutations are computed here vectorised (:func:`string_argsort`):
the repr order of a tuple ``(r, c)`` equals the lexicographic order of the
pair of decimal-string ranks, and decimal-string order of ``0 .. n-1`` is
an argsort over the digit-left-aligned key ``(x * 10**(maxd - digits(x)),
digits(x))``.

Weights are drawn by the order-independent hashed scheme
(:func:`repro.graphs.weights.hashed_weights_array`) so the vectorised draw
and the per-edge ``nx`` twin produce bit-for-bit identical floats.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..core import CoreGraph, GraphView
from ..errors import InvalidGraphError
from ..utils import ensure_rng
from .weights import hashed_weights_array

__all__ = [
    "string_argsort",
    "native_grid",
    "native_cylinder",
    "native_cycle",
    "native_star",
    "native_wheel",
    "native_delaunay",
    "native_ktree_chain",
    "native_clique_sum_chain",
    "ktree_chain_reference",
    "clique_sum_chain_reference",
    "with_hashed_weights",
    "NATIVE_GENERATORS",
]


# ---------------------------------------------------------------------------
# Canonical-order machinery
# ---------------------------------------------------------------------------


def string_argsort(n: int) -> np.ndarray:
    """Return ``0 .. n-1`` permuted into decimal-string (``repr``) order.

    ``perm[i]`` is the integer whose decimal string has rank ``i``, i.e.
    ``perm.tolist() == sorted(range(n), key=repr)``.  Lexicographic order of
    decimal strings is an argsort over ``(x * 10**(maxd - digits(x)),
    digits(x))``: left-aligning the digits makes the numeric comparison
    agree with the string comparison, and the digit count breaks the
    remaining ties (a shorter string that is a prefix of a longer one sorts
    first).
    """
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    x = np.arange(n, dtype=np.int64)
    digits = np.ones(n, dtype=np.int64)
    threshold = 10
    while threshold < n:
        digits += x >= threshold
        threshold *= 10
    key = x * 10 ** (digits.max() - digits)
    return np.lexsort((digits, key)).astype(np.int64)


def _string_rank(n: int) -> np.ndarray:
    """Return ``rank[x]`` = position of ``x`` in decimal-string order."""
    perm = string_argsort(n)
    rank = np.empty(n, dtype=np.int64)
    rank[perm] = np.arange(n, dtype=np.int64)
    return rank


def _assemble_view(
    num_nodes: int,
    label_u: np.ndarray,
    label_v: np.ndarray,
    weight_seed: int | None,
    low: float,
    high: float,
    integer: bool,
) -> GraphView:
    """Assemble a lazy :class:`GraphView` from edge arrays in *label* space.

    Canonicalises and deduplicates the edges, draws hashed weights on the
    label pairs (matching the ``nx`` twin), bakes in the repr-rank
    permutation so that CSR index order equals the canonical node order,
    and builds the symmetric sorted CSR arrays in one vectorised pass.
    """
    label_u = np.asarray(label_u, dtype=np.int64)
    label_v = np.asarray(label_v, dtype=np.int64)
    if label_u.size and (
        label_u.min() < 0
        or label_v.min() < 0
        or label_u.max() >= num_nodes
        or label_v.max() >= num_nodes
    ):
        raise InvalidGraphError(f"edge endpoint out of range for n={num_nodes}")
    if np.any(label_u == label_v):
        raise InvalidGraphError("native generator produced a self-loop")
    a = np.minimum(label_u, label_v)
    b = np.maximum(label_u, label_v)
    keys = np.unique(a * np.int64(num_nodes) + b)
    a = keys // num_nodes
    b = keys % num_nodes
    if weight_seed is None:
        edge_weights = None
    else:
        edge_weights = hashed_weights_array(
            a, b, weight_seed, low=low, high=high, integer=integer
        )
    rank = _string_rank(num_nodes)
    iu, iv = rank[a], rank[b]
    src = np.concatenate([iu, iv])
    dst = np.concatenate([iv, iu])
    order = np.lexsort((dst, src))
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=num_nodes), out=indptr[1:])
    weights = None
    if edge_weights is not None:
        weights = np.concatenate([edge_weights, edge_weights])[order]
    core = CoreGraph.from_csr(indptr, dst[order], weights)
    perm = string_argsort(num_nodes)
    return GraphView.from_core(
        core, nodes=perm.tolist(), has_weights=weight_seed is not None
    )


def with_hashed_weights(
    view: GraphView,
    seed: int,
    low: float = 1.0,
    high: float = 100.0,
    integer: bool = False,
) -> GraphView:
    """Return a weighted copy of a native view, sharing its CSR structure.

    Weights are drawn by :func:`~repro.graphs.weights.hashed_weights_array`
    on the *label* pairs, so the result is exactly the view of the ``nx``
    twin graph after ``assign_hashed_weights(graph, seed, ...)``.  Requires
    integer node labels (every native generator emits them); the structure
    arrays are reused, only the weight array is new.
    """
    core = view.core
    try:
        labels = np.asarray(view.nodes, dtype=np.int64)
    except (TypeError, ValueError):
        raise InvalidGraphError(
            "with_hashed_weights needs integer node labels"
        ) from None
    indptr = core.indptr
    indices = core.indices
    u = np.repeat(labels, np.diff(indptr))
    v = labels[indices]
    weights = hashed_weights_array(u, v, seed, low=low, high=high, integer=integer)
    weighted_core = CoreGraph.from_csr(
        indptr, indices, weights, sort_neighbours=core.sorted_adjacency
    )
    return GraphView.from_core(weighted_core, nodes=view.nodes, has_weights=True)


# ---------------------------------------------------------------------------
# Native generators (each pinned equal to its nx twin by the differential
# suite; weight_seed=None gives the unweighted twin, otherwise the twin is
# the generator followed by assign_hashed_weights with the same arguments)
# ---------------------------------------------------------------------------


def native_grid(
    rows: int,
    cols: int,
    weight_seed: int | None = None,
    low: float = 1.0,
    high: float = 100.0,
    integer: bool = False,
) -> GraphView:
    """CSR-native twin of :func:`repro.graphs.planar.grid_graph`."""
    if rows < 1 or cols < 1:
        raise InvalidGraphError("grid dimensions must be positive")
    # relabel_to_integers orders (r, c) by repr == lexicographic on the
    # string ranks of the coordinates, so label(r, c) = srank(r)*cols + srank(c).
    labels = _string_rank(rows)[:, None] * np.int64(cols) + _string_rank(cols)[None, :]
    label_u = np.concatenate([labels[:, :-1].ravel(), labels[:-1, :].ravel()])
    label_v = np.concatenate([labels[:, 1:].ravel(), labels[1:, :].ravel()])
    return _assemble_view(rows * cols, label_u, label_v, weight_seed, low, high, integer)


def native_cylinder(
    rows: int,
    cols: int,
    weight_seed: int | None = None,
    low: float = 1.0,
    high: float = 100.0,
    integer: bool = False,
) -> GraphView:
    """CSR-native twin of :func:`repro.graphs.planar.cylinder_graph`."""
    if rows < 1 or cols < 3:
        raise InvalidGraphError("a cylinder needs at least 1 row and 3 columns")
    labels = _string_rank(rows)[:, None] * np.int64(cols) + _string_rank(cols)[None, :]
    wrapped = np.roll(labels, -1, axis=1)
    label_u = np.concatenate([labels.ravel(), labels[:-1, :].ravel()])
    label_v = np.concatenate([wrapped.ravel(), labels[1:, :].ravel()])
    return _assemble_view(rows * cols, label_u, label_v, weight_seed, low, high, integer)


def native_cycle(
    n: int,
    weight_seed: int | None = None,
    low: float = 1.0,
    high: float = 100.0,
    integer: bool = False,
) -> GraphView:
    """CSR-native twin of :func:`repro.graphs.planar.cycle_graph`."""
    if n < 3:
        raise InvalidGraphError("a cycle needs at least 3 nodes")
    label_u = np.arange(n, dtype=np.int64)
    label_v = (label_u + 1) % n
    return _assemble_view(n, label_u, label_v, weight_seed, low, high, integer)


def native_star(
    n: int,
    weight_seed: int | None = None,
    low: float = 1.0,
    high: float = 100.0,
    integer: bool = False,
) -> GraphView:
    """CSR-native twin of :func:`repro.graphs.planar.star_graph` (n leaves)."""
    if n < 1:
        raise InvalidGraphError("a star needs at least one leaf")
    label_v = np.arange(1, n + 1, dtype=np.int64)
    label_u = np.zeros(n, dtype=np.int64)
    return _assemble_view(n + 1, label_u, label_v, weight_seed, low, high, integer)


def native_wheel(
    n: int,
    weight_seed: int | None = None,
    low: float = 1.0,
    high: float = 100.0,
    integer: bool = False,
) -> GraphView:
    """CSR-native twin of :func:`repro.graphs.planar.wheel_graph` (n-cycle + hub)."""
    if n < 3:
        raise InvalidGraphError("a wheel needs a cycle of at least 3 nodes")
    rim = np.arange(1, n + 1, dtype=np.int64)
    rim_next = np.roll(rim, -1)
    label_u = np.concatenate([np.zeros(n, dtype=np.int64), rim])
    label_v = np.concatenate([rim, rim_next])
    return _assemble_view(n + 1, label_u, label_v, weight_seed, low, high, integer)


def native_delaunay(
    n: int,
    seed: int | None = None,
    weight_seed: int | None = None,
    low: float = 1.0,
    high: float = 100.0,
    integer: bool = False,
) -> GraphView:
    """CSR-native twin of :func:`repro.graphs.planar.random_delaunay_triangulation`.

    Runs the identical seeded point draw and scipy triangulation, then
    extracts the edge set from the simplex array vectorised instead of
    inserting triangles into an ``nx.Graph`` one at a time.
    """
    if n < 3:
        raise InvalidGraphError("a triangulation needs at least 3 points")
    rng = ensure_rng(seed)
    np_rng = np.random.default_rng(rng.randrange(2**32))
    points = np_rng.random((n, 2))
    from scipy.spatial import Delaunay  # deferred import: scipy is heavy

    simplices = Delaunay(points).simplices.astype(np.int64)
    pairs = np.concatenate(
        [simplices[:, [0, 1]], simplices[:, [1, 2]], simplices[:, [0, 2]]]
    )
    view = _assemble_view(
        n, pairs[:, 0], pairs[:, 1], weight_seed, low, high, integer
    )
    if not view.core.is_connected():
        raise InvalidGraphError("Delaunay triangulation is not connected")
    return view


def ktree_chain_reference(n: int, k: int) -> nx.Graph:
    """The preserved ``nx`` twin of :func:`native_ktree_chain`.

    A deterministic interval ``k``-tree: vertex ``i`` is adjacent to the
    ``min(i, k)`` preceding vertices, so the bags ``{i-k, ..., i}`` form a
    path decomposition of width ``k`` (a bounded-treewidth chain -- the
    shape the scale experiments use because its treewidth is independent
    of ``n``).
    """
    if k < 1:
        raise InvalidGraphError("k must be at least 1")
    if n < k + 1:
        raise InvalidGraphError(f"a {k}-tree chain needs at least {k + 1} nodes")
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for i in range(1, n):
        for j in range(max(0, i - k), i):
            graph.add_edge(j, i)
    return graph


def native_ktree_chain(
    n: int,
    k: int,
    weight_seed: int | None = None,
    low: float = 1.0,
    high: float = 100.0,
    integer: bool = False,
) -> GraphView:
    """CSR-native twin of :func:`ktree_chain_reference`."""
    if k < 1:
        raise InvalidGraphError("k must be at least 1")
    if n < k + 1:
        raise InvalidGraphError(f"a {k}-tree chain needs at least {k + 1} nodes")
    label_u = np.concatenate(
        [np.arange(n - j, dtype=np.int64) for j in range(1, k + 1)]
    )
    label_v = np.concatenate(
        [np.arange(j, n, dtype=np.int64) for j in range(1, k + 1)]
    )
    return _assemble_view(n, label_u, label_v, weight_seed, low, high, integer)


def clique_sum_chain_reference(num_bags: int, bag_side: int, k: int) -> nx.Graph:
    """The preserved ``nx`` twin of :func:`native_clique_sum_chain`.

    A deterministic ``k``-clique-sum of ``num_bags`` grid blocks: block
    ``t`` is a ``bag_side x bag_side`` grid on the label interval starting
    at ``t * (bag_side**2 - k)`` (cell ``(r, c)`` at offset ``r*bag_side +
    c``), each junction's ``k`` shared vertices -- the last ``k`` cells of
    one block and the first ``k`` of the next -- completed into a clique,
    which is the set the two blocks are glued on.
    """
    if num_bags < 1 or k < 1:
        raise InvalidGraphError("need at least one bag and k >= 1")
    if bag_side * bag_side < 2 * k:
        raise InvalidGraphError("bag too small for the junction cliques")
    size = bag_side * bag_side
    graph = nx.Graph()
    for t in range(num_bags):
        base = t * (size - k)
        for r in range(bag_side):
            for c in range(bag_side):
                node = base + r * bag_side + c
                if c + 1 < bag_side:
                    graph.add_edge(node, node + 1)
                if r + 1 < bag_side:
                    graph.add_edge(node, node + bag_side)
    for t in range(num_bags - 1):
        shared = [t * (size - k) + size - k + i for i in range(k)]
        for i in range(k):
            for j in range(i + 1, k):
                graph.add_edge(shared[i], shared[j])
    return graph


def native_clique_sum_chain(
    num_bags: int,
    bag_side: int,
    k: int,
    weight_seed: int | None = None,
    low: float = 1.0,
    high: float = 100.0,
    integer: bool = False,
) -> GraphView:
    """CSR-native twin of :func:`clique_sum_chain_reference` (index-space glue)."""
    if num_bags < 1 or k < 1:
        raise InvalidGraphError("need at least one bag and k >= 1")
    if bag_side * bag_side < 2 * k:
        raise InvalidGraphError("bag too small for the junction cliques")
    size = bag_side * bag_side
    num_nodes = num_bags * (size - k) + k
    cells = np.arange(size, dtype=np.int64)
    right = cells[(cells % bag_side) + 1 < bag_side]
    down = cells[cells // bag_side + 1 < bag_side]
    block_u = np.concatenate([right, down])
    block_v = np.concatenate([right + 1, down + bag_side])
    bases = (np.arange(num_bags, dtype=np.int64) * (size - k))[:, None]
    label_u = (bases + block_u[None, :]).ravel()
    label_v = (bases + block_v[None, :]).ravel()
    if num_bags > 1 and k > 1:
        i, j = np.triu_indices(k, 1)
        junctions = (np.arange(num_bags - 1, dtype=np.int64) * (size - k) + size - k)[
            :, None
        ]
        label_u = np.concatenate([label_u, (junctions + i[None, :]).ravel()])
        label_v = np.concatenate([label_v, (junctions + j[None, :]).ravel()])
    return _assemble_view(num_nodes, label_u, label_v, weight_seed, low, high, integer)


# Registry of (native, nx-twin) pairs for the differential and property
# suites: family name -> (native callable, twin callable, list of kwargs
# dicts exercised by the tests).  Twins take the same positional shape
# parameters; weight arguments apply to the native side only (the twin is
# weighted separately via assign_hashed_weights).
def _grid_twin(rows, cols):
    from .planar import grid_graph

    return grid_graph(rows, cols)


def _cylinder_twin(rows, cols):
    from .planar import cylinder_graph

    return cylinder_graph(rows, cols)


def _cycle_twin(n):
    from .planar import cycle_graph

    return cycle_graph(n)


def _star_twin(n):
    from .planar import star_graph

    return star_graph(n)


def _wheel_twin(n):
    from .planar import wheel_graph

    return wheel_graph(n)


def _delaunay_twin(n, seed=None):
    from .planar import random_delaunay_triangulation

    return random_delaunay_triangulation(n, seed=seed)


NATIVE_GENERATORS: dict[str, tuple] = {
    "grid": (native_grid, _grid_twin, [{"rows": 4, "cols": 7}, {"rows": 13, "cols": 12}, {"rows": 1, "cols": 30}]),
    "cylinder": (native_cylinder, _cylinder_twin, [{"rows": 3, "cols": 5}, {"rows": 11, "cols": 14}]),
    "cycle": (native_cycle, _cycle_twin, [{"n": 3}, {"n": 41}]),
    "star": (native_star, _star_twin, [{"n": 1}, {"n": 27}]),
    "wheel": (native_wheel, _wheel_twin, [{"n": 3}, {"n": 23}]),
    "delaunay": (native_delaunay, _delaunay_twin, [{"n": 30, "seed": 3}, {"n": 150, "seed": 11}]),
    "ktree_chain": (native_ktree_chain, ktree_chain_reference, [{"n": 12, "k": 1}, {"n": 40, "k": 4}]),
    "clique_sum_chain": (
        native_clique_sum_chain,
        clique_sum_chain_reference,
        [{"num_bags": 2, "bag_side": 3, "k": 2}, {"num_bags": 5, "bag_side": 4, "k": 3}],
    ),
}
