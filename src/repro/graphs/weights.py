"""Edge-weight assignment helpers for MST / min-cut workloads.

The shortcut framework itself is oblivious to edge weights -- shortcuts are a
purely topological construction -- but the *algorithms* built on top (MST,
approximate min-cut) need weighted instances, and the choice of weights
changes which instances are hard:

* unit weights make every spanning tree an MST (useful for correctness tests
  where only connectivity matters);
* IID random weights are the classical average-case model (and the model
  under which Khan--Pandurangan obtained their restricted O~(D) result cited
  in Related Work);
* adversarial weights force Boruvka fragments to grow along prescribed
  long, skinny shapes, which is the worst case for part-wise aggregation.
"""

from __future__ import annotations

import random

import networkx as nx

from ..utils import ensure_rng

WEIGHT = "weight"


def assign_unit_weights(graph: nx.Graph) -> nx.Graph:
    """Set every edge weight to 1 (in place) and return the graph."""
    for u, v in graph.edges():
        graph[u][v][WEIGHT] = 1.0
    return graph


def assign_random_weights(
    graph: nx.Graph,
    low: float = 1.0,
    high: float = 100.0,
    seed: int | random.Random | None = None,
    integer: bool = False,
) -> nx.Graph:
    """Assign IID uniform random weights in ``[low, high]`` (in place).

    With ``integer=True`` the weights are drawn from the integers in the
    range, plus a tiny index-dependent tie-breaker so that the MST is unique
    (uniqueness simplifies the distributed-vs-reference comparison tests).
    """
    rng = ensure_rng(seed)
    for index, (u, v) in enumerate(sorted(graph.edges(), key=repr)):
        if integer:
            weight = float(rng.randint(int(low), int(high))) + index * 1e-9
        else:
            weight = rng.uniform(low, high)
        graph[u][v][WEIGHT] = weight
    return graph


def assign_adversarial_weights(
    graph: nx.Graph,
    spine: list | None = None,
    seed: int | random.Random | None = None,
) -> nx.Graph:
    """Assign weights that force MST fragments to grow along a long path.

    Edges along ``spine`` (a list of nodes forming a path; defaults to a
    longest-ish path found by double BFS) get tiny increasing weights, every
    other edge gets a large random weight.  Early Boruvka phases then merge
    fragments into one long chain -- exactly the "long and skinny parts"
    regime where shortcuts matter most (wheel-graph discussion, Section 1.3.3).
    """
    rng = ensure_rng(seed)
    if spine is None:
        # Double BFS gives a path between two far-apart nodes.
        start = next(iter(sorted(graph.nodes(), key=repr)))
        far = max(nx.single_source_shortest_path_length(graph, start).items(), key=lambda kv: kv[1])[0]
        farther = max(
            nx.single_source_shortest_path_length(graph, far).items(), key=lambda kv: kv[1]
        )[0]
        spine = nx.shortest_path(graph, far, farther)
    spine_edges = set()
    for a, b in zip(spine, spine[1:]):
        spine_edges.add(frozenset((a, b)))
    light = 1.0
    for u, v in sorted(graph.edges(), key=repr):
        if frozenset((u, v)) in spine_edges:
            graph[u][v][WEIGHT] = light
            light += 1e-3
        else:
            graph[u][v][WEIGHT] = 1000.0 + rng.uniform(0.0, 1000.0)
    return graph


def total_weight(graph: nx.Graph, edges=None) -> float:
    """Return the total weight of ``edges`` (default: all edges of the graph)."""
    if edges is None:
        edges = graph.edges()
    return sum(graph[u][v].get(WEIGHT, 1.0) for u, v in edges)
