"""Edge-weight assignment helpers for MST / min-cut workloads.

The shortcut framework itself is oblivious to edge weights -- shortcuts are a
purely topological construction -- but the *algorithms* built on top (MST,
approximate min-cut) need weighted instances, and the choice of weights
changes which instances are hard:

* unit weights make every spanning tree an MST (useful for correctness tests
  where only connectivity matters);
* IID random weights are the classical average-case model (and the model
  under which Khan--Pandurangan obtained their restricted O~(D) result cited
  in Related Work);
* adversarial weights force Boruvka fragments to grow along prescribed
  long, skinny shapes, which is the worst case for part-wise aggregation.
"""

from __future__ import annotations

import random

import networkx as nx

from ..utils import ensure_rng

WEIGHT = "weight"


def assign_unit_weights(graph: nx.Graph) -> nx.Graph:
    """Set every edge weight to 1 (in place) and return the graph."""
    for u, v in graph.edges():
        graph[u][v][WEIGHT] = 1.0
    return graph


def assign_random_weights(
    graph: nx.Graph,
    low: float = 1.0,
    high: float = 100.0,
    seed: int | random.Random | None = None,
    integer: bool = False,
) -> nx.Graph:
    """Assign IID uniform random weights in ``[low, high]`` (in place).

    With ``integer=True`` the weights are drawn from the integers in the
    range, plus a tiny index-dependent tie-breaker so that the MST is unique
    (uniqueness simplifies the distributed-vs-reference comparison tests).
    """
    rng = ensure_rng(seed)
    for index, (u, v) in enumerate(sorted(graph.edges(), key=repr)):
        if integer:
            weight = float(rng.randint(int(low), int(high))) + index * 1e-9
        else:
            weight = rng.uniform(low, high)
        graph[u][v][WEIGHT] = weight
    return graph


# ---------------------------------------------------------------------------
# Hash-based weights: the order-independent scheme behind the native path.
#
# ``assign_random_weights`` draws from a *sequential* RNG over the repr-sorted
# edge list, which cannot be reproduced by a vectorised draw into a flat
# array.  The hashed scheme instead derives each weight from a splitmix64-style
# mix of ``(seed, min(u, v), max(u, v))`` over integer node labels, so the
# same float comes out whether it is computed one edge at a time on an
# ``nx.Graph`` (:func:`assign_hashed_weights`, the reference twin) or for two
# million edges at once into a numpy array
# (:func:`hashed_weights_array`, used by :mod:`repro.graphs.native`).  The
# differential tests pin the two paths bit-for-bit equal.
# ---------------------------------------------------------------------------

_MASK64 = (1 << 64) - 1
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB
_SEED_C = 0x9E3779B97F4A7C15
_U_C = 0xD1B54A32D192ED03
_V_C = 0x8CB92BA72F3D8DD7


def hashed_edge_weight(
    u: int,
    v: int,
    seed: int,
    low: float = 1.0,
    high: float = 100.0,
    integer: bool = False,
) -> float:
    """Return the seeded hash weight of edge ``(u, v)`` (scalar reference path).

    ``u`` and ``v`` are integer node labels; the value is symmetric in the
    endpoints.  Float mode maps 53 hash bits uniformly onto ``[low, high)``;
    integer mode returns ``float`` integers uniform on ``int(low) ..
    int(high)`` (ties are possible, which the MST tie-breaking on canonical
    edge keys already handles).
    """
    a, b = (u, v) if u <= v else (v, u)
    z = (seed * _SEED_C + a * _U_C + b * _V_C) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX_A) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX_B) & _MASK64
    z ^= z >> 31
    if integer:
        span = int(high) - int(low) + 1
        return float(int(low) + z % span)
    return low + (high - low) * (float(z >> 11) * 2.0**-53)


def hashed_weights_array(
    u,
    v,
    seed: int,
    low: float = 1.0,
    high: float = 100.0,
    integer: bool = False,
):
    """Vectorised :func:`hashed_edge_weight` over parallel label arrays.

    ``u`` / ``v`` are integer numpy arrays of endpoint labels; returns a
    ``float64`` array bit-for-bit equal to calling the scalar twin per edge.
    """
    import numpy as np

    a = np.minimum(u, v).astype(np.uint64)
    b = np.maximum(u, v).astype(np.uint64)
    z = np.uint64((seed * _SEED_C) & _MASK64)
    z = z + a * np.uint64(_U_C) + b * np.uint64(_V_C)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX_A)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX_B)
    z = z ^ (z >> np.uint64(31))
    if integer:
        span = np.uint64(int(high) - int(low) + 1)
        return float(int(low)) + (z % span).astype(np.float64)
    return low + (high - low) * ((z >> np.uint64(11)).astype(np.float64) * 2.0**-53)


def assign_hashed_weights(
    graph: nx.Graph,
    seed: int,
    low: float = 1.0,
    high: float = 100.0,
    integer: bool = False,
) -> nx.Graph:
    """Assign order-independent hashed weights (in place) and return the graph.

    The ``nx`` twin of the native generators' vectorised weight draw: node
    labels must be integers (every generator in this package emits them).
    """
    for u, v in graph.edges():
        graph[u][v][WEIGHT] = hashed_edge_weight(u, v, seed, low=low, high=high, integer=integer)
    return graph


def assign_adversarial_weights(
    graph: nx.Graph,
    spine: list | None = None,
    seed: int | random.Random | None = None,
) -> nx.Graph:
    """Assign weights that force MST fragments to grow along a long path.

    Edges along ``spine`` (a list of nodes forming a path; defaults to a
    longest-ish path found by double BFS) get tiny increasing weights, every
    other edge gets a large random weight.  Early Boruvka phases then merge
    fragments into one long chain -- exactly the "long and skinny parts"
    regime where shortcuts matter most (wheel-graph discussion, Section 1.3.3).
    """
    rng = ensure_rng(seed)
    if spine is None:
        # Double BFS gives a path between two far-apart nodes.
        start = next(iter(sorted(graph.nodes(), key=repr)))
        far = max(nx.single_source_shortest_path_length(graph, start).items(), key=lambda kv: kv[1])[0]
        farther = max(
            nx.single_source_shortest_path_length(graph, far).items(), key=lambda kv: kv[1]
        )[0]
        spine = nx.shortest_path(graph, far, farther)
    spine_edges = set()
    for a, b in zip(spine, spine[1:]):
        spine_edges.add(frozenset((a, b)))
    light = 1.0
    for u, v in sorted(graph.edges(), key=repr):
        if frozenset((u, v)) in spine_edges:
            graph[u][v][WEIGHT] = light
            light += 1e-3
        else:
            graph[u][v][WEIGHT] = 1000.0 + rng.uniform(0.0, 1000.0)
    return graph


def total_weight(graph: nx.Graph, edges=None) -> float:
    """Return the total weight of ``edges`` (default: all edges of the graph)."""
    if edges is None:
        edges = graph.edges()
    return sum(graph[u][v].get(WEIGHT, 1.0) for u, v in edges)
