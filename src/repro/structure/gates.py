"""s-combinatorial gates (Definition 17) and their validation.

A combinatorial gate is a collection of (fence, gate) vertex-set pairs that
"covers" every inter-cell edge while keeping the total fence size small
(property 6: ``sum |F| <= s * |cells|``).  Lemma 4 turns a gate into the
degree dichotomy that drives the cell-assignment peeling, and Lemma 7 /
Lemma 8 construct gates of size ``s = O(d)`` (planar) and ``O((g+1) k d)``
(Genus+Vortex) respectively.

This module provides:

* :func:`validate_gates` -- an exact checker for properties (1)-(5) of
  Definition 17 that also *measures* the ``s`` of property (6);
* :func:`trivial_gates` -- a generic construction (one gate per adjacent cell
  pair consisting of the endpoints of their inter-cell edges) that satisfies
  properties (1)-(5) on any graph; its measured ``s`` is what experiment E10
  reports;
* :func:`planar_gates` -- the refinement used for planar graphs: the gate of
  an adjacent cell pair additionally includes the two cells' spanning-tree
  paths between the extremal attachment points, mirroring the
  ``cyc(e_L, e_R)`` construction of Lemma 7 at the level of fences.  The full
  laminar-region argument of Lemma 7 (which needs a concrete planar embedding
  and region bookkeeping) is what guarantees ``s = O(d)`` in the paper; here
  the refinement is constructive and properties (1)-(5) are validated
  exactly, while property (6) is measured and compared against the ``O(d)``
  target (see DESIGN.md section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import networkx as nx

from ..core import core_enabled, view_of
from ..errors import InvalidPartitionError
from .cells import CellPartition
from .spanning import bfs_spanning_tree


@dataclass(frozen=True)
class CombinatorialGate:
    """A single (fence, gate) pair of Definition 17."""

    fence: frozenset
    gate: frozenset

    def __post_init__(self) -> None:
        if not self.fence <= self.gate:
            raise InvalidPartitionError("fence must be a subset of its gate (property 1)")


@dataclass
class GateCollection:
    """A collection of gates plus the cell partition it refers to."""

    gates: list[CombinatorialGate]
    partition: CellPartition

    def total_fence_size(self) -> int:
        return sum(len(gate.fence) for gate in self.gates)

    def measured_s(self) -> float:
        """Return the measured ``s`` of property (6): total fence size / #cells."""
        if len(self.partition) == 0:
            return 0.0
        return self.total_fence_size() / len(self.partition)


def validate_gates(graph: nx.Graph, collection: GateCollection) -> float:
    """Validate properties (1)-(5) of Definition 17 and return the measured ``s``.

    Raises :class:`InvalidPartitionError` on any violation.  Property (6) is
    not a yes/no property (it defines ``s``), so it is returned as a number.

    The properties run on int-indexed flat arrays (the cells'
    :class:`~repro.core.PartSet` owner array, CSR adjacency slices and
    per-vertex gate-id lists) unless the networkx reference paths are
    forced, in which case the original label-keyed checks run; both modes
    accept and reject exactly the same collections.
    """
    if core_enabled():
        return _validate_gates_core(graph, collection)
    partition = collection.partition
    cell_of = partition.cell_of()

    for index, gate_pair in enumerate(collection.gates):
        fence, gate = gate_pair.fence, gate_pair.gate
        # Property 1 is enforced by the CombinatorialGate constructor.
        # Property 2: the boundary of the gate is contained in the fence.
        for vertex in gate:
            if vertex not in graph:
                raise InvalidPartitionError(f"gate {index} contains non-graph vertex {vertex}")
            on_boundary = any(neighbour not in gate for neighbour in graph.neighbors(vertex))
            if on_boundary and vertex not in fence:
                raise InvalidPartitionError(
                    f"gate {index}: boundary vertex {vertex} is not in the fence (property 2)"
                )
        # Property 4: the gate intersects at most two cells.
        touched = {cell_of[v] for v in gate if v in cell_of}
        if len(touched) > 2:
            raise InvalidPartitionError(
                f"gate {index} intersects {len(touched)} cells (property 4 allows 2)"
            )

    # Property 3: every inter-cell edge is covered by some gate.
    for u, v in graph.edges():
        cu, cv = cell_of.get(u), cell_of.get(v)
        if cu is None or cv is None or cu == cv:
            continue
        if not any(u in gate.gate and v in gate.gate for gate in collection.gates):
            raise InvalidPartitionError(
                f"inter-cell edge ({u}, {v}) is covered by no gate (property 3)"
            )

    # Property 5: non-fence gate vertices are globally disjoint.
    owner: dict[Hashable, int] = {}
    for index, gate_pair in enumerate(collection.gates):
        for vertex in gate_pair.gate - gate_pair.fence:
            if vertex in owner:
                raise InvalidPartitionError(
                    f"vertex {vertex} is a non-fence member of gates {owner[vertex]} and "
                    f"{index} (property 5)"
                )
            owner[vertex] = index

    return collection.measured_s()


def _validate_gates_core(graph: nx.Graph, collection: GateCollection) -> float:
    """The array-native Definition 17 checker (same verdicts as the nx path).

    Gate membership becomes one epoch-stamped array, the cell lookup one
    owner-array read and property 3 one pass over the CSR edges with
    per-vertex gate-id lists -- the label path's ``any(... for gate in
    collection.gates)`` per inter-cell edge made validation quadratic in
    the gate count.
    """
    partition = collection.partition
    view = view_of(graph)
    index_of = view.index_of
    node_of = view.nodes
    core = view.core
    n = len(view)
    try:
        owner = partition.part_set(graph).owner_array()
    except InvalidPartitionError:
        # A cell contains non-graph vertices.  The label path's cell_of()
        # silently ignores such vertices (they can never meet a gate or an
        # edge endpoint), so mirror that here rather than rejecting a
        # collection the reference path accepts.
        owner = [-1] * n
        for cell_index, cell in enumerate(partition.cells):
            for vertex in cell:
                if vertex in view:
                    owner[index_of(vertex)] = cell_index

    gate_stamp = [0] * n
    gate_indices: list[list[int]] = []
    gates_at: list[list[int]] = [[] for _ in range(n)]
    for index, gate_pair in enumerate(collection.gates):
        members: list[int] = []
        for vertex in gate_pair.gate:
            try:
                member = index_of(vertex)
            except KeyError:
                raise InvalidPartitionError(
                    f"gate {index} contains non-graph vertex {vertex}"
                ) from None
            members.append(member)
            gates_at[member].append(index)
        gate_indices.append(members)

    epoch = 0
    for index, gate_pair in enumerate(collection.gates):
        members = gate_indices[index]
        epoch += 1
        for member in members:
            gate_stamp[member] = epoch
        fence = gate_pair.fence
        touched: set[int] = set()
        for member in members:
            start, end = core.neighbor_slice(member)
            neighbours = core._indices_list[start:end]
            # Property 2: the boundary of the gate is contained in the fence.
            if any(gate_stamp[v] != epoch for v in neighbours):
                if node_of[member] not in fence:
                    raise InvalidPartitionError(
                        f"gate {index}: boundary vertex {node_of[member]} is not in the "
                        "fence (property 2)"
                    )
            if owner[member] >= 0:
                touched.add(owner[member])
        # Property 4: the gate intersects at most two cells.
        if len(touched) > 2:
            raise InvalidPartitionError(
                f"gate {index} intersects {len(touched)} cells (property 4 allows 2)"
            )

    # Property 3: every inter-cell edge is covered by some gate.
    for u, v, _weight in core.edges():
        cu, cv = owner[u], owner[v]
        if cu < 0 or cv < 0 or cu == cv:
            continue
        gates_u = gates_at[u]
        if not gates_u or not any(index in gates_u for index in gates_at[v]):
            raise InvalidPartitionError(
                f"inter-cell edge ({node_of[u]}, {node_of[v]}) is covered by no gate "
                "(property 3)"
            )

    # Property 5: non-fence gate vertices are globally disjoint.
    non_fence_owner = [-1] * n
    for index, gate_pair in enumerate(collection.gates):
        fence = gate_pair.fence
        for member in gate_indices[index]:
            if node_of[member] in fence:
                continue
            if non_fence_owner[member] >= 0:
                raise InvalidPartitionError(
                    f"vertex {node_of[member]} is a non-fence member of gates "
                    f"{non_fence_owner[member]} and {index} (property 5)"
                )
            non_fence_owner[member] = index

    return collection.measured_s()


def _inter_cell_edges(
    graph: nx.Graph, partition: CellPartition
) -> dict[frozenset, list[tuple[Hashable, Hashable]]]:
    """Group the edges running between two different cells by the cell pair."""
    cell_of = partition.cell_of()
    grouped: dict[frozenset, list[tuple[Hashable, Hashable]]] = {}
    for u, v in graph.edges():
        cu, cv = cell_of.get(u), cell_of.get(v)
        if cu is None or cv is None or cu == cv:
            continue
        grouped.setdefault(frozenset((cu, cv)), []).append((u, v))
    return grouped


def trivial_gates(graph: nx.Graph, partition: CellPartition) -> GateCollection:
    """Build one gate per adjacent cell pair from its inter-cell edge endpoints.

    The gate (and fence) of the pair ``(C_i, C_j)`` is simply the set of
    endpoints of all ``(C_i, C_j)``-inter-cell edges.  All five structural
    properties hold by construction on *any* graph; the measured ``s`` equals
    ``2 * #inter-cell edges / #cells`` in the worst case, which is what the
    extremal-edge refinement of Lemma 7 improves to ``O(d)`` for planar
    graphs.
    """
    gates: list[CombinatorialGate] = []
    for _pair, edges in sorted(_inter_cell_edges(graph, partition).items(), key=repr):
        vertices = frozenset(endpoint for edge in edges for endpoint in edge)
        gates.append(CombinatorialGate(fence=vertices, gate=vertices))
    return GateCollection(gates=gates, partition=partition)


def planar_gates(graph: nx.Graph, partition: CellPartition) -> GateCollection:
    """Build gates for a planar graph following the spirit of Lemma 7.

    For every adjacent cell pair ``(C_i, C_j)`` the construction

    1. builds a BFS spanning tree of each cell (the trees ``T_i`` of the
       lemma, diameter at most twice the cell diameter);
    2. picks the two *extremal* inter-cell edges -- here, the pair of
       inter-cell edges whose tree-path closure is largest, playing the role
       of ``e_L`` and ``e_R``;
    3. takes the cycle ``cyc(e_L, e_R)`` (the two extremal edges plus the two
       tree paths between their endpoints) together with all inter-cell edge
       endpoints as both the fence and the gate.

    The result always satisfies properties (1)-(5) -- with fence equal to
    gate, properties (2) and (5) hold vacuously.  The paper's full Lemma 7
    additionally uses the laminar enclosed-region argument (which needs an
    explicit planar embedding) to shrink the *fence* to the ``4d + 2`` cycle
    vertices alone while keeping all endpoints inside the gate's interior;
    that refinement is what guarantees ``s = O(d)``.  Here property (6) is
    *measured* and reported by experiment E10 against that target (see
    DESIGN.md section 4 for the substitution note).
    """
    cell_of = partition.cell_of()
    trees = {}
    for index, cell in enumerate(partition.cells):
        subgraph = graph.subgraph(cell)
        trees[index] = bfs_spanning_tree(subgraph)

    gates: list[CombinatorialGate] = []
    for pair, edges in sorted(_inter_cell_edges(graph, partition).items(), key=repr):
        i, j = sorted(pair)
        endpoints = frozenset(endpoint for edge in edges for endpoint in edge)
        if len(edges) == 1:
            fence = frozenset(edges[0])
            gates.append(CombinatorialGate(fence=fence, gate=fence | endpoints))
            continue
        # Extremal edges: the two inter-cell edges whose endpoints are
        # furthest apart inside the two cell trees.
        def edge_key(edge: tuple[Hashable, Hashable]) -> tuple[int, int]:
            u, v = edge
            ui, vj = (u, v) if cell_of[u] == i else (v, u)
            return (trees[i].depth[ui], trees[j].depth[vj])

        ordered = sorted(edges, key=edge_key)
        e_left, e_right = ordered[0], ordered[-1]
        left_i, left_j = (e_left if cell_of[e_left[0]] == i else (e_left[1], e_left[0]))
        right_i, right_j = (e_right if cell_of[e_right[0]] == i else (e_right[1], e_right[0]))
        fence_vertices: set[Hashable] = set(e_left) | set(e_right)
        fence_vertices |= set(trees[i].tree_path(left_i, right_i))
        fence_vertices |= set(trees[j].tree_path(left_j, right_j))
        fence_vertices |= endpoints
        fence = frozenset(fence_vertices)
        gates.append(CombinatorialGate(fence=fence, gate=fence))
    return GateCollection(gates=gates, partition=partition)
