"""Treewidth decompositions, including the diameter-based bound of Lemma 2/3.

Two kinds of decompositions are needed by the reproduction:

* generic heuristic decompositions (min-degree / min-fill-in) used to
  *measure* treewidth upper bounds in experiment E9 and to drive the
  treewidth-based shortcut constructor (Theorem 5) on graphs for which no
  witness decomposition was recorded at generation time;
* the Lemma 2/3 construction for Genus+Vortex graphs: decompose the graph
  with the vortices replaced by star vertices, then re-insert every internal
  vortex node into all bags that meet its arc.  The width of the result is
  ``O((g + 1) k l D)``, which is what Theorem 9 / Lemma 10 consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

import networkx as nx
from networkx.algorithms.approximation import treewidth_min_degree, treewidth_min_fill_in

from ..errors import InvalidDecompositionError, InvalidGraphError
from ..graphs.apex_vortex import AlmostEmbeddableGraph, VortexWitness


@dataclass
class TreeDecomposition:
    """A tree decomposition: a tree whose nodes are bags (frozensets of vertices).

    Attributes:
        tree: the decomposition tree; every node is a ``frozenset`` of graph
            vertices.
        width: maximum bag size minus one.
    """

    tree: nx.Graph
    width: int

    @classmethod
    def from_bag_tree(cls, tree: nx.Graph) -> "TreeDecomposition":
        width = max((len(bag) for bag in tree.nodes()), default=1) - 1
        return cls(tree=tree, width=width)

    def bags(self) -> list[frozenset]:
        return list(self.tree.nodes())

    def bags_containing(self, vertex: Hashable) -> list[frozenset]:
        return [bag for bag in self.tree.nodes() if vertex in bag]

    def validate(self, graph: nx.Graph) -> None:
        """Check the three tree-decomposition axioms against ``graph``."""
        validate_tree_decomposition(graph, self.tree)


def validate_tree_decomposition(graph: nx.Graph, decomposition: nx.Graph) -> None:
    """Raise :class:`InvalidDecompositionError` unless ``decomposition`` is valid.

    The three axioms checked are (i) every vertex appears in some bag,
    (ii) for every edge some bag contains both endpoints, and (iii) for every
    vertex the set of bags containing it induces a connected subtree.
    """
    if decomposition.number_of_nodes() == 0:
        raise InvalidDecompositionError("tree decomposition has no bags")
    if not nx.is_tree(decomposition):
        raise InvalidDecompositionError("tree decomposition is not a tree")
    covered: set[Hashable] = set()
    for bag in decomposition.nodes():
        covered |= set(bag)
    missing = set(graph.nodes()) - covered
    if missing:
        raise InvalidDecompositionError(
            f"vertices {sorted(missing, key=repr)[:5]} appear in no bag"
        )
    for u, v in graph.edges():
        if not any(u in bag and v in bag for bag in decomposition.nodes()):
            raise InvalidDecompositionError(f"edge ({u}, {v}) is covered by no bag")
    for vertex in graph.nodes():
        holders = [bag for bag in decomposition.nodes() if vertex in bag]
        if len(holders) > 1 and not nx.is_connected(decomposition.subgraph(holders)):
            raise InvalidDecompositionError(
                f"bags containing vertex {vertex} do not form a connected subtree"
            )


def greedy_tree_decomposition(graph: nx.Graph, method: str = "min_degree") -> TreeDecomposition:
    """Return a heuristic tree decomposition of ``graph``.

    Args:
        graph: a connected graph.
        method: ``"min_degree"`` (fast, default) or ``"min_fill"`` (slower,
            often slightly narrower).

    The returned width is an upper bound on the true treewidth; that is all
    the downstream uses require (quality bounds are monotone in the width).
    """
    if graph.number_of_nodes() == 0:
        raise InvalidGraphError("cannot decompose an empty graph")
    if graph.number_of_nodes() == 1:
        tree = nx.Graph()
        tree.add_node(frozenset(graph.nodes()))
        return TreeDecomposition(tree=tree, width=0)
    if method == "min_degree":
        width, decomposition = treewidth_min_degree(graph)
    elif method == "min_fill":
        width, decomposition = treewidth_min_fill_in(graph)
    else:
        raise InvalidGraphError(f"unknown tree decomposition method {method!r}")
    return TreeDecomposition(tree=decomposition, width=width)


def _star_replaced_graph(
    almost_embeddable: AlmostEmbeddableGraph,
) -> tuple[nx.Graph, dict[int, VortexWitness]]:
    """Return ``G'`` of Lemma 2: vortices replaced by per-vortex star vertices.

    The star vertex of each vortex is connected to every vertex of the vortex
    boundary; internal vortex nodes are removed.  Returns the new graph and a
    map from star-vertex label to the vortex it replaced.
    """
    graph = almost_embeddable.non_apex_graph()
    star_of: dict[int, VortexWitness] = {}
    next_label = max(graph.nodes(), default=-1) + 1
    for vortex in almost_embeddable.vortices:
        graph.remove_nodes_from(vortex.internal_nodes)
        star = next_label
        next_label += 1
        graph.add_node(star)
        for boundary_vertex in vortex.boundary:
            graph.add_edge(star, boundary_vertex)
        star_of[star] = vortex
    return graph, star_of


def genus_vortex_decomposition(
    almost_embeddable: AlmostEmbeddableGraph,
    method: str = "min_degree",
) -> TreeDecomposition:
    """Tree decomposition of the apex-free part of an almost-embeddable graph.

    Implements the proof of Lemma 2 / Lemma 3 constructively:

    1. remove the apices (they are handled separately by Lemma 9/10);
    2. replace every vortex by a star vertex attached to its boundary,
       obtaining a genus-``g`` graph ``G'`` whose diameter grew by at most 1;
    3. tree-decompose ``G'`` (the paper cites Eppstein's ``O((g+1)D)`` bound;
       we use a heuristic decomposition, whose measured width experiment E9
       compares against that bound);
    4. delete the star vertices from all bags and re-insert every internal
       vortex node ``v`` into every bag that intersects its arc ``P(v)``.

    The resulting decomposition is valid for ``G - apices`` and its width is
    ``O((g+1) k l D)`` (Lemma 3), which the tests and experiment E9 verify in
    measured form.
    """
    graph = almost_embeddable.non_apex_graph()
    if graph.number_of_nodes() == 0:
        raise InvalidGraphError("almost-embeddable graph has no non-apex vertices")
    star_graph, star_of = _star_replaced_graph(almost_embeddable)
    base = greedy_tree_decomposition(star_graph, method=method)

    star_labels = set(star_of.keys())
    # Build the re-inserted decomposition: same tree shape, modified bags.
    old_to_new: dict[frozenset, set] = {}
    for bag in base.tree.nodes():
        old_to_new[bag] = set(bag) - star_labels
    for vortex in almost_embeddable.vortices:
        for internal, arc in vortex.arcs.items():
            arc_set = set(arc)
            for bag in base.tree.nodes():
                if set(bag) & arc_set:
                    old_to_new[bag].add(internal)
    # Two original bags may collapse to the same frozenset after the rewrite;
    # keep them distinct by indexing, then relabel to frozensets via a proxy
    # graph whose nodes are (index, frozenset) pairs -- but downstream code
    # expects plain frozenset bags, so instead we merge duplicates (merging
    # adjacent equal bags preserves all three axioms).
    new_tree = nx.Graph()
    bag_index = {bag: i for i, bag in enumerate(base.tree.nodes())}
    for bag in base.tree.nodes():
        new_tree.add_node((bag_index[bag], frozenset(old_to_new[bag])))
    for a, b in base.tree.edges():
        new_tree.add_edge(
            (bag_index[a], frozenset(old_to_new[a])), (bag_index[b], frozenset(old_to_new[b]))
        )
    collapsed = _collapse_indexed_bags(new_tree)
    decomposition = TreeDecomposition.from_bag_tree(collapsed)
    decomposition.validate(graph)
    return decomposition


def _collapse_indexed_bags(indexed_tree: nx.Graph) -> nx.Graph:
    """Convert a tree over ``(index, bag)`` nodes into a tree over plain bags.

    Equal bags that would collide are merged: merging two *adjacent* equal
    bags of a tree decomposition is always valid, and non-adjacent equal bags
    are first made adjacent by re-routing through the tree path between them
    -- which we avoid entirely by merging along tree edges only, iterating
    until no adjacent duplicates remain, and then disambiguating any remaining
    equal-but-distant bags by keeping them as separate tree nodes via a tiny
    sentinel: a frozenset is augmented with a unique negative placeholder
    only if a true collision would otherwise occur.  In practice (and in all
    tests) collisions only happen between adjacent bags, so the sentinel path
    is exercised rarely.
    """
    # Step 1: merge adjacent equal bags.
    tree = indexed_tree.copy()
    changed = True
    while changed:
        changed = False
        for (ia, bag_a), (ib, bag_b) in list(tree.edges()):
            if bag_a == bag_b:
                keep, drop = (ia, bag_a), (ib, bag_b)
                for neighbour in list(tree.neighbors(drop)):
                    if neighbour != keep:
                        tree.add_edge(keep, neighbour)
                tree.remove_node(drop)
                changed = True
                break
    # Step 2: relabel to plain frozensets, keeping accidental duplicates apart.
    seen: dict[frozenset, int] = {}
    mapping: dict[tuple, frozenset] = {}
    for index, bag in tree.nodes():
        if bag not in seen:
            seen[bag] = 0
            mapping[(index, bag)] = bag
        else:
            seen[bag] += 1
            # Unique placeholder that cannot collide with graph vertices.
            mapping[(index, bag)] = bag | {("__dup__", index, seen[bag])}
    plain = nx.Graph()
    for node in tree.nodes():
        plain.add_node(mapping[node])
    for a, b in tree.edges():
        plain.add_edge(mapping[a], mapping[b])
    return plain


def treewidth_upper_bound(graph: nx.Graph, method: str = "min_degree") -> int:
    """Return a heuristic upper bound on the treewidth of ``graph``."""
    return greedy_tree_decomposition(graph, method=method).width


def decomposition_for_parts(
    decomposition: TreeDecomposition, vertices: Iterable[Hashable]
) -> list[frozenset]:
    """Return the bags intersecting ``vertices`` (helper for diagnostics)."""
    vertex_set = set(vertices)
    return [bag for bag in decomposition.tree.nodes() if set(bag) & vertex_set]
