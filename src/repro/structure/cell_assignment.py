"""beta-cell-assignment (Definition 15) via the peeling procedure of Lemmas 5/6.

A graph is *beta-cell-assignable* if for every family of parts and every cell
partition there is a relation ``R`` between cells and parts such that

(i)  every part is related to all cells it intersects except at most two
     (plus, in the special-cell variant of Lemma 6, the at most ``l`` special
     cells), and
(ii) every cell is related to at most ``beta`` parts.

Lemma 5 proves existence by induction: by the combinatorial-gate bound
(Lemma 4) there is always either a part intersecting at most two cells
(peel the part, assigning it nothing) or a cell intersecting at most ``2s``
parts (assign the cell to all its parts and peel the cell).  Our
implementation runs exactly this peeling, but instead of invoking the gate
bound it simply *picks the cell of minimum degree* when no light part exists
-- this can only produce a smaller measured ``beta`` than the existence proof
guarantees, and it works on any graph, so the experiments can report the
measured ``beta`` against the paper's ``O(d)`` target (E4/E10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from ..errors import InvalidPartitionError
from .cells import CellPartition


@dataclass
class CellAssignment:
    """The relation ``R`` between cells and parts plus its measured parameters.

    Attributes:
        related_cells: for every part index, the set of cell indices related
            to it in ``R``.
        skipped_cells: for every part index, the cell indices the part
            intersects but is *not* related to (Definition 15 allows at most
            two of these, plus special cells in the Lemma 6 variant).
        beta: the measured maximum number of parts any single cell is related
            to (property (ii)).
        max_skipped: the measured maximum number of skipped *normal* cells of
            any part (property (i); must be at most 2).
    """

    related_cells: dict[int, set[int]]
    skipped_cells: dict[int, set[int]]
    beta: int
    max_skipped: int

    def validate(self, allow_skipped: int = 2) -> None:
        """Check Definition 15 property (i) with the given skip allowance."""
        if self.max_skipped > allow_skipped:
            raise InvalidPartitionError(
                f"a part skipped {self.max_skipped} normal cells, more than the "
                f"allowed {allow_skipped}"
            )


def compute_cell_assignment(
    parts: Sequence[frozenset],
    partition: CellPartition,
) -> CellAssignment:
    """Compute a cell assignment by the peeling procedure of Lemmas 5 and 6.

    Args:
        parts: the parts (disjoint connected vertex sets, Definition 9).
        partition: the cell partition; special cells are never assigned (they
            are handled separately by Lemma 10's special-cell shortcut) and do
            not count towards a part's skip allowance.

    Returns:
        A :class:`CellAssignment` with measured ``beta`` and skip counts.

    The peeling loop maintains the bipartite incidence between *remaining*
    parts and *remaining* normal cells:

    * if some remaining part currently intersects at most two remaining
      normal cells, remove the part (it will reach those cells through its
      own local shortcuts);
    * otherwise remove the remaining normal cell with the fewest incident
      remaining parts, assigning it to every one of them.

    Every part therefore misses only the (at most two) normal cells that were
    still unassigned when the part itself was peeled, which is exactly
    property (i); the measured ``beta`` is reported rather than bounded.
    """
    normal_indices = [i for i in range(len(partition.cells)) if i not in partition.special]
    cell_vertex_sets = {i: set(partition.cells[i]) for i in range(len(partition.cells))}

    # Incidence between parts and normal cells.
    part_to_cells: dict[int, set[int]] = {}
    cell_to_parts: dict[int, set[int]] = {i: set() for i in normal_indices}
    for part_index, part in enumerate(parts):
        part_set = set(part)
        incident = {
            cell_index
            for cell_index in normal_indices
            if cell_vertex_sets[cell_index] & part_set
        }
        part_to_cells[part_index] = incident
        for cell_index in incident:
            cell_to_parts[cell_index].add(part_index)

    related_cells: dict[int, set[int]] = {i: set() for i in range(len(parts))}
    skipped_cells: dict[int, set[int]] = {i: set() for i in range(len(parts))}

    remaining_parts = set(part_to_cells.keys())
    remaining_cells = set(normal_indices)
    # Working copies of the incidence restricted to remaining elements.
    live_part_to_cells = {p: set(cs) for p, cs in part_to_cells.items()}
    live_cell_to_parts = {c: set(ps) for c, ps in cell_to_parts.items()}

    while remaining_parts and remaining_cells:
        light_part = next(
            (p for p in sorted(remaining_parts) if len(live_part_to_cells[p]) <= 2), None
        )
        if light_part is not None:
            skipped_cells[light_part] |= live_part_to_cells[light_part]
            for cell_index in live_part_to_cells[light_part]:
                live_cell_to_parts[cell_index].discard(light_part)
            remaining_parts.discard(light_part)
            continue
        # No light part: peel the minimum-degree remaining cell.
        chosen_cell = min(
            sorted(remaining_cells), key=lambda c: (len(live_cell_to_parts[c]), c)
        )
        for part_index in live_cell_to_parts[chosen_cell]:
            related_cells[part_index].add(chosen_cell)
            live_part_to_cells[part_index].discard(chosen_cell)
        remaining_cells.discard(chosen_cell)
        live_cell_to_parts[chosen_cell] = set()

    # Any parts remaining when the cells ran out intersect only already-
    # assigned cells (so nothing is skipped); any cells remaining when the
    # parts ran out have no incident parts left, so assigning them is a
    # no-op.  Record skip counts for the parts peeled above.
    beta = 0
    for cell_index in normal_indices:
        count = sum(1 for p in range(len(parts)) if cell_index in related_cells[p])
        beta = max(beta, count)
    max_skipped = max((len(s) for s in skipped_cells.values()), default=0)
    return CellAssignment(
        related_cells=related_cells,
        skipped_cells=skipped_cells,
        beta=beta,
        max_skipped=max_skipped,
    )
