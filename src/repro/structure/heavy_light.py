"""Heavy-light decomposition and decomposition-tree folding (Theorem 7).

The global-shortcut congestion of the clique-sum construction (Lemma 1) pays
a factor equal to the *depth* of the clique-sum decomposition tree ``DT``.
Theorem 7 removes this dependence by compressing ``DT`` to depth
``O(log^2 n)``:

1. compute a heavy-light decomposition of ``DT`` (Harel--Tarjan), splitting
   it into vertex-disjoint *heavy chains* such that any root-to-leaf path
   meets ``O(log n)`` chains;
2. *fold* each chain like a balanced binary search tree: the chain's first,
   middle and last bags become one node of the new tree, and the two halves
   are folded recursively (Figure 4 of the paper).

The folded tree's nodes are therefore *groups* of up to three original bags,
and an edge of the folded tree can carry up to two partial cliques (the
"double edges" discussed in the proof).  The clique-sum shortcut constructor
consumes the folded tree through the :class:`FoldedDecompositionTree`
interface, which deliberately mirrors what the proof needs: per-group vertex
sets, per-group member bags, and the partial cliques hanging off each group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

import networkx as nx

from ..errors import InvalidDecompositionError
from ..graphs.clique_sum import CliqueSumDecomposition


def _indexed_tree(tree: nx.Graph) -> tuple[list[Hashable], dict[Hashable, int], list[list[int]]]:
    """Map the tree onto ``0 .. n-1`` with flat per-node adjacency lists.

    Node indices follow ``tree.nodes()`` iteration order and each adjacency
    list follows ``tree.neighbors()`` iteration order, so traversals over the
    arrays visit nodes in exactly the order the old dict-of-dict walks did.
    """
    labels = list(tree.nodes())
    index = {label: i for i, label in enumerate(labels)}
    adjacency = [[index[v] for v in tree.adj[u]] for u in labels]
    return labels, index, adjacency


def _dfs_parent_order(adjacency: list[list[int]], root: int) -> tuple[list[int], list[int]]:
    """Iterative DFS over flat adjacency; returns ``(parents, preorder)``.

    ``parents[v]`` is ``-1`` for the root and ``-2`` for unreached vertices.
    """
    parents = [-2] * len(adjacency)
    parents[root] = -1
    order = []
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        for neighbour in adjacency[node]:
            if parents[neighbour] == -2:
                parents[neighbour] = node
                stack.append(neighbour)
    return parents, order


def heavy_light_chains(tree: nx.Graph, root: Hashable) -> list[list[Hashable]]:
    """Split a rooted tree into heavy chains (Harel--Tarjan heavy-light paths).

    Every non-leaf node is connected to the child with the largest subtree;
    maximal paths of such heavy edges form the chains.  Any root-to-leaf path
    intersects at most ``log2(n) + 1`` chains, the property the folding step
    relies on.  The returned chains are ordered root-to-leaf and partition
    the vertex set.

    The subtree-size bookkeeping runs on flat int arrays over an indexed copy
    of the tree (one conversion, no per-step dict-of-dict lookups); labels
    only resurface for the deterministic ``repr`` tie-break and the output.
    """
    if tree.number_of_nodes() == 0:
        return []
    if root not in tree:
        raise InvalidDecompositionError(f"root {root} is not a node of the tree")
    labels, index, adjacency = _indexed_tree(tree)
    parents, order = _dfs_parent_order(adjacency, index[root])
    size = [1] * len(labels)
    for node in reversed(order):
        if parents[node] >= 0:
            size[parents[node]] += size[node]

    heavy_child = [-1] * len(labels)
    for node in order:
        children = [c for c in adjacency[node] if parents[c] == node]
        if children:
            heavy_child[node] = max(children, key=lambda c: (size[c], repr(labels[c])))

    chains: list[list[Hashable]] = []
    in_chain = [False] * len(labels)
    for node in order:  # root first, so chain heads are discovered top-down
        if in_chain[node]:
            continue
        chain = [labels[node]]
        in_chain[node] = True
        current = node
        while heavy_child[current] >= 0:
            current = heavy_child[current]
            chain.append(labels[current])
            in_chain[current] = True
        chains.append(chain)
    return chains


@dataclass
class FoldedDecompositionTree:
    """A depth-compressed view of a clique-sum decomposition tree.

    Attributes:
        decomposition: the original :class:`CliqueSumDecomposition`.
        tree: the folded tree; its nodes are integers (group ids).
        groups: mapping group id -> tuple of original bag indices merged into
            that node (1 to 3 bags per group).
        root: the root group id.
    """

    decomposition: CliqueSumDecomposition
    tree: nx.Graph
    groups: dict[int, tuple[int, ...]]
    root: int

    # Caches, populated lazily.
    _group_vertices: dict[int, frozenset] = field(default_factory=dict, repr=False)
    _group_of_bag: dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for group, bags in self.groups.items():
            for bag in bags:
                self._group_of_bag[bag] = group

    def group_of_bag(self, bag_index: int) -> int:
        return self._group_of_bag[bag_index]

    def group_vertices(self, group: int) -> frozenset:
        """Return the union of the vertex sets of the group's member bags."""
        if group not in self._group_vertices:
            vertices: set = set()
            for bag_index in self.groups[group]:
                vertices |= self.decomposition.bags[bag_index].nodes
            self._group_vertices[group] = frozenset(vertices)
        return self._group_vertices[group]

    def depth(self) -> int:
        if self.tree.number_of_nodes() <= 1:
            return 0
        lengths = nx.single_source_shortest_path_length(self.tree, self.root)
        return max(lengths.values())

    def member_bags(self, group: int) -> tuple[int, ...]:
        return self.groups[group]

    def validate(self) -> None:
        """Check that the folding is a partition of the original bags into a tree."""
        if self.tree.number_of_nodes() > 0 and not nx.is_tree(self.tree):
            raise InvalidDecompositionError("folded decomposition is not a tree")
        seen: set[int] = set()
        for group, bags in self.groups.items():
            if group not in self.tree:
                raise InvalidDecompositionError(f"group {group} missing from folded tree")
            if not 1 <= len(bags) <= 3:
                raise InvalidDecompositionError(
                    f"group {group} merges {len(bags)} bags; folding only ever merges 1-3"
                )
            for bag in bags:
                if bag in seen:
                    raise InvalidDecompositionError(f"bag {bag} appears in two groups")
                seen.add(bag)
        if seen != set(self.decomposition.bags.keys()):
            raise InvalidDecompositionError("folded groups do not partition the bag set")


def _fold_chain(chain: Sequence[int]) -> tuple[list[tuple[int, ...]], list[tuple[int, int]], int]:
    """Fold a single heavy chain into a balanced binary structure.

    Returns ``(groups, edges, root_index)`` where ``groups`` is a list of bag
    tuples (each of size 1-3), ``edges`` connects group list indices, and
    ``root_index`` is the index of the group containing the chain's head.
    The construction follows the paper's Figure 4: the first, middle and last
    bag of the chain become one group; the two remaining sub-chains are
    folded recursively and attached below it.
    """
    groups: list[tuple[int, ...]] = []
    edges: list[tuple[int, int]] = []

    def fold(lo: int, hi: int) -> int | None:
        """Fold chain[lo..hi] inclusive; return the index of the root group."""
        if lo > hi:
            return None
        if hi - lo + 1 <= 3:
            groups.append(tuple(chain[lo : hi + 1]))
            return len(groups) - 1
        mid = (lo + hi) // 2
        groups.append((chain[lo], chain[mid], chain[hi]))
        root_index = len(groups) - 1
        left = fold(lo + 1, mid - 1)
        right = fold(mid + 1, hi - 1)
        if left is not None:
            edges.append((root_index, left))
        if right is not None:
            edges.append((root_index, right))
        return root_index

    root_index = fold(0, len(chain) - 1)
    assert root_index is not None
    return groups, edges, root_index


def fold_decomposition_tree(
    decomposition: CliqueSumDecomposition, root_bag: int | None = None
) -> FoldedDecompositionTree:
    """Compress a clique-sum decomposition tree to depth ``O(log^2 n)``.

    Implements Theorem 7's compression: heavy-light decompose the rooted
    decomposition tree, fold every chain, and re-attach each folded chain to
    the group containing its head's parent.  Each folded-tree node groups at
    most three original bags, each root-to-leaf path of the folded tree
    visits ``O(log)`` groups per chain and ``O(log)`` chains, giving
    ``O(log^2)`` depth overall.
    """
    tree = decomposition.tree
    if tree.number_of_nodes() == 0:
        raise InvalidDecompositionError("cannot fold an empty decomposition tree")
    root_bag = root_bag if root_bag is not None else min(tree.nodes())
    chains = heavy_light_chains(tree, root_bag)

    # Parent map of the original (rooted) decomposition tree, via the same
    # indexed DFS the chain computation used.
    labels, index, adjacency = _indexed_tree(tree)
    parent_indices, _order = _dfs_parent_order(adjacency, index[root_bag])
    parent: dict[int, int | None] = {
        label: (None if parent_indices[i] < 0 else labels[parent_indices[i]])
        for i, label in enumerate(labels)
        if parent_indices[i] != -2
    }

    folded = nx.Graph()
    groups: dict[int, tuple[int, ...]] = {}
    chain_root_group: dict[int, int] = {}  # chain head bag -> its folded root group id
    group_of_bag: dict[int, int] = {}
    next_group = 0

    for chain in chains:
        chain_groups, chain_edges, chain_root_index = _fold_chain(chain)
        offset = next_group
        for local_index, bags in enumerate(chain_groups):
            group_id = offset + local_index
            groups[group_id] = bags
            folded.add_node(group_id)
            for bag in bags:
                group_of_bag[bag] = group_id
        for a, b in chain_edges:
            folded.add_edge(offset + a, offset + b)
        chain_root_group[chain[0]] = offset + chain_root_index
        next_group += len(chain_groups)

    # Attach each chain's folded root below the group containing the chain
    # head's parent bag (for the root chain there is nothing to attach).
    for chain in chains:
        head = chain[0]
        head_parent = parent[head]
        if head_parent is None:
            continue
        folded.add_edge(chain_root_group[head], group_of_bag[head_parent])

    result = FoldedDecompositionTree(
        decomposition=decomposition,
        tree=folded,
        groups=groups,
        root=chain_root_group[chains[0][0]],
    )
    result.validate()
    return result


def identity_folding(decomposition: CliqueSumDecomposition, root_bag: int | None = None) -> FoldedDecompositionTree:
    """Return the trivial folding where every group is a single original bag.

    Used as the *ablation* arm of experiment E3: running the clique-sum
    shortcut construction on the unfolded tree exposes the ``k * depth(DT)``
    congestion term of Lemma 1 that the heavy-light folding removes.
    """
    tree = decomposition.tree
    root_bag = root_bag if root_bag is not None else min(tree.nodes())
    folded = nx.Graph()
    groups = {}
    for index, bag in enumerate(sorted(tree.nodes())):
        groups[index] = (bag,)
    bag_to_group = {bags[0]: g for g, bags in groups.items()}
    folded.add_nodes_from(groups.keys())
    for a, b in tree.edges():
        folded.add_edge(bag_to_group[a], bag_to_group[b])
    result = FoldedDecompositionTree(
        decomposition=decomposition,
        tree=folded,
        groups=groups,
        root=bag_to_group[root_bag],
    )
    result.validate()
    return result
