"""Rooted spanning trees and tree utilities (BFS trees, Steiner subtrees).

Tree-restricted shortcuts (Definition 10) are always stated with respect to a
spanning tree ``T``; Theorem 1 instantiates ``T`` as a BFS tree of the
network, whose depth is at most the network diameter ``D``.  This module
provides the :class:`RootedTree` wrapper that every shortcut constructor
works with: parent/child/depth maps, ancestor queries, tree paths, Steiner
subtrees of a terminal set, and the "contract-to-a-vertex-subset" minor used
by the clique-sum local shortcuts (the repaired tree ``T^2_h`` of Theorem 7).

The traversal entry points (:func:`bfs_spanning_tree`,
:func:`graph_diameter`) accept either an ``nx.Graph`` or a
:class:`repro.core.GraphView`; given a view they run on the CSR kernel,
producing byte-identical trees (index order equals the repr order used for
tie-breaking on the ``networkx`` path) several times faster.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Sequence

import networkx as nx

from ..core import GraphView
from ..errors import InvalidGraphError
from ..utils import canonical_edge, require_connected

Edge = tuple[Hashable, Hashable]


class RootedTree:
    """A rooted spanning tree with O(1) parent/depth lookups.

    The tree is stored as a parent map; edges are exposed in canonical
    (sorted-repr) form so that they can be compared against shortcut edge
    sets without worrying about orientation.
    """

    def __init__(self, parent: dict[Hashable, Hashable | None], root: Hashable) -> None:
        if parent.get(root, "missing") is not None:
            raise InvalidGraphError("the root must map to parent None")
        self.root = root
        self.parent: dict[Hashable, Hashable | None] = dict(parent)
        self.depth: dict[Hashable, int] = {}
        self.children: dict[Hashable, list[Hashable]] = {node: [] for node in parent}
        for node, par in parent.items():
            if par is not None:
                if par not in parent:
                    raise InvalidGraphError(f"parent {par} of {node} is not a tree node")
                self.children[par].append(node)
        self._compute_depths()
        self._euler: EulerTourIndex | None = None
        # Both caches are safe because the parent map is fixed after
        # construction; the Boruvka fast path re-reads both every phase.
        self._edge_set: frozenset[Edge] | None = None
        self._diameter: int | None = None

    def _compute_depths(self) -> None:
        self.depth[self.root] = 0
        queue: deque[Hashable] = deque([self.root])
        visited = 1
        while queue:
            node = queue.popleft()
            for child in self.children[node]:
                self.depth[child] = self.depth[node] + 1
                queue.append(child)
                visited += 1
        if visited != len(self.parent):
            raise InvalidGraphError("parent map does not describe a single rooted tree")

    # -- basic accessors ------------------------------------------------

    @property
    def nodes(self) -> set[Hashable]:
        return set(self.parent.keys())

    def edges(self) -> set[Edge]:
        """Return all tree edges in canonical form."""
        return {
            canonical_edge(node, par)
            for node, par in self.parent.items()
            if par is not None
        }

    def edge_set(self) -> frozenset[Edge]:
        """Return (and cache) the canonical tree edges as a frozenset."""
        if self._edge_set is None:
            self._edge_set = frozenset(self.edges())
        return self._edge_set

    @property
    def height(self) -> int:
        """Return the height (maximum depth) of the rooted tree."""
        return max(self.depth.values(), default=0)

    def _bfs_depths(self, start: Hashable) -> dict[Hashable, int]:
        """Hop distances from ``start`` over the tree's parent/children maps."""
        depths = {start: 0}
        queue: deque[Hashable] = deque([start])
        while queue:
            node = queue.popleft()
            next_depth = depths[node] + 1
            parent = self.parent[node]
            if parent is not None and parent not in depths:
                depths[parent] = next_depth
                queue.append(parent)
            for child in self.children[node]:
                if child not in depths:
                    depths[child] = next_depth
                    queue.append(child)
        return depths

    def diameter(self) -> int:
        """Return the diameter (in hops) of the tree, at most twice the height.

        Double BFS over the parent/children maps -- exact on trees -- without
        materialising an ``nx.Graph``.  Cached: every Boruvka phase prices
        its shortcut's quality against the same tree diameter.
        """
        if self._diameter is not None:
            return self._diameter
        if len(self.parent) <= 1:
            self._diameter = 0
            return 0
        depths = self._bfs_depths(next(iter(self.parent)))
        far = max(depths.items(), key=lambda kv: kv[1])[0]
        self._diameter = max(self._bfs_depths(far).values())
        return self._diameter

    def as_graph(self) -> nx.Graph:
        """Return the tree as a :class:`networkx.Graph`."""
        graph = nx.Graph()
        graph.add_nodes_from(self.parent.keys())
        for node, par in self.parent.items():
            if par is not None:
                graph.add_edge(node, par)
        return graph

    # -- paths and ancestors ---------------------------------------------

    def path_to_root(self, node: Hashable) -> list[Hashable]:
        """Return the node sequence from ``node`` up to the root (inclusive)."""
        path = [node]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])
        return path

    def lowest_common_ancestor(self, u: Hashable, v: Hashable) -> Hashable:
        """Return the LCA of ``u`` and ``v`` (linear-time walk, fine for our sizes)."""
        du, dv = self.depth[u], self.depth[v]
        while du > dv:
            u = self.parent[u]
            du -= 1
        while dv > du:
            v = self.parent[v]
            dv -= 1
        while u != v:
            u = self.parent[u]
            v = self.parent[v]
        return u

    def tree_path(self, u: Hashable, v: Hashable) -> list[Hashable]:
        """Return the unique tree path from ``u`` to ``v`` (inclusive of both)."""
        ancestor = self.lowest_common_ancestor(u, v)
        up: list[Hashable] = []
        node = u
        while node != ancestor:
            up.append(node)
            node = self.parent[node]
        down: list[Hashable] = []
        node = v
        while node != ancestor:
            down.append(node)
            node = self.parent[node]
        return up + [ancestor] + list(reversed(down))

    def path_edges(self, u: Hashable, v: Hashable) -> set[Edge]:
        """Return the canonical edges of the tree path between ``u`` and ``v``."""
        path = self.tree_path(u, v)
        return {canonical_edge(a, b) for a, b in zip(path, path[1:])}

    def subtree_nodes(self, node: Hashable) -> set[Hashable]:
        """Return all nodes in the subtree rooted at ``node`` (including it)."""
        result: set[Hashable] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            result.add(current)
            stack.extend(self.children[current])
        return result

    # -- derived structures ----------------------------------------------

    def euler_index(self, view: GraphView) -> "EulerTourIndex":
        """Return (and cache) the Euler-tour index of this tree over ``view``.

        The index stores flat arrays over the view's vertex indices:
        ``parent`` / ``depth``, the DFS pre-order ``order``, and the
        ``tin`` / ``tout`` interval of every subtree, so that "is ``v`` in
        the subtree below ``u``" is two integer comparisons and a part's
        benefit at every tree edge is one accumulation pass (see
        :mod:`repro.shortcuts.engine`).  Cached per view identity -- a
        budget sweep builds it once.
        """
        cached = self._euler
        if cached is None or cached.view is not view:
            cached = self._euler = EulerTourIndex(self, view)
        return cached

    def steiner_tree_edges(self, terminals: Iterable[Hashable]) -> set[Edge]:
        """Return the edges of the minimal subtree of T spanning ``terminals``.

        Computed by taking the union of root-paths of all terminals and then
        repeatedly pruning non-terminal leaves; linear in the size of the
        union, which is all the precision the shortcut constructors need.
        """
        terminal_set = set(terminals)
        if not terminal_set:
            return set()
        for t in terminal_set:
            if t not in self.parent:
                raise InvalidGraphError(f"terminal {t} is not a node of the tree")
        # Union of root paths.
        marked: set[Hashable] = set()
        for t in terminal_set:
            node = t
            while node is not None and node not in marked:
                marked.add(node)
                node = self.parent[node]
        # Prune non-terminal leaves of the marked subtree with a degree-count
        # worklist (linear in the marked set; the old per-pass nx.Graph scan
        # was quadratic in the worst case).
        degree: dict[Hashable, int] = {node: 0 for node in marked}
        for node in marked:
            par = self.parent[node]
            if par is not None and par in marked:
                degree[node] += 1
                degree[par] += 1
        removed: set[Hashable] = set()
        worklist = [
            node for node, deg in degree.items() if deg <= 1 and node not in terminal_set
        ]
        while worklist:
            node = worklist.pop()
            if node in removed or degree[node] > 1 or node in terminal_set:
                continue
            removed.add(node)
            par = self.parent[node]
            neighbours = [par] if par is not None and par in marked else []
            neighbours.extend(child for child in self.children[node] if child in marked)
            for neighbour in neighbours:
                if neighbour in removed:
                    continue
                degree[neighbour] -= 1
                if degree[neighbour] <= 1 and neighbour not in terminal_set:
                    worklist.append(neighbour)
        kept = marked - removed
        return {
            canonical_edge(node, self.parent[node])
            for node in kept
            if self.parent[node] is not None and self.parent[node] in kept
        }

    def contract_to(self, keep: Iterable[Hashable]) -> "RootedTree":
        """Return the minor of T on the vertex set ``keep`` (the repaired tree T^2).

        Every maximal connected component of discarded vertices is contracted
        into one arbitrary neighbouring kept vertex, which is exactly the
        construction of Theorem 7's local-shortcut step: the result is a tree
        on ``keep`` whose hop-diameter is at most the diameter of ``T``.
        """
        keep_set = set(keep)
        if not keep_set:
            raise InvalidGraphError("cannot contract a tree onto an empty vertex set")
        missing = keep_set - self.nodes
        if missing:
            raise InvalidGraphError(f"vertices {sorted(missing, key=repr)[:5]} are not tree nodes")
        tree_graph = self.as_graph()
        outside = self.nodes - keep_set
        # Map each outside component to a representative kept neighbour.
        component_of: dict[Hashable, int] = {}
        components: list[set[Hashable]] = []
        for node in outside:
            if node in component_of:
                continue
            component: set[Hashable] = set()
            stack = [node]
            while stack:
                current = stack.pop()
                if current in component or current not in outside:
                    continue
                component.add(current)
                component_of[current] = len(components)
                stack.extend(n for n in tree_graph.neighbors(current) if n in outside)
            components.append(component)

        quotient = nx.Graph()
        quotient.add_nodes_from(keep_set)
        component_anchor: dict[int, Hashable] = {}
        component_border: dict[int, set[Hashable]] = {i: set() for i in range(len(components))}
        for u, v in tree_graph.edges():
            u_in, v_in = u in keep_set, v in keep_set
            if u_in and v_in:
                quotient.add_edge(u, v)
            elif u_in and not v_in:
                component_border[component_of[v]].add(u)
            elif v_in and not u_in:
                component_border[component_of[u]].add(v)
        for index, border in component_border.items():
            if not border:
                continue
            anchor = min(border, key=repr)
            component_anchor[index] = anchor
            for other in border:
                if other != anchor:
                    quotient.add_edge(anchor, other)
        if not nx.is_connected(quotient):
            # This can only happen if T itself was not spanning/connected on
            # the kept vertices' closure, which validate() rules out.
            raise InvalidGraphError("contraction produced a disconnected quotient tree")
        root = min(keep_set, key=repr)
        return bfs_spanning_tree(quotient, root=root)

    def validate(self, graph: nx.Graph | GraphView | None = None) -> None:
        """Check that this is a spanning tree of ``graph`` (if provided).

        Passing a :class:`~repro.core.GraphView` runs the nx-free twin of
        the check (vertex-set equality, edge count, connectivity from the
        root, every tree edge a CSR edge) -- the million-node native
        pipeline validates its BFS trees without building any ``nx.Graph``.
        """
        if isinstance(graph, GraphView):
            self._validate_native(graph)
            return
        tree_graph = self.as_graph()
        if tree_graph.number_of_edges() != tree_graph.number_of_nodes() - 1:
            raise InvalidGraphError("rooted tree has the wrong number of edges")
        if not nx.is_connected(tree_graph):
            raise InvalidGraphError("rooted tree is not connected")
        if graph is not None:
            if set(tree_graph.nodes()) != set(graph.nodes()):
                raise InvalidGraphError("tree does not span the graph's vertex set")
            for u, v in tree_graph.edges():
                if not graph.has_edge(u, v):
                    raise InvalidGraphError(f"tree edge ({u}, {v}) is not a graph edge")

    def _validate_native(self, view: GraphView) -> None:
        """The :class:`GraphView` twin of :meth:`validate` (same error texts)."""
        parent = self.parent
        if set(parent) != set(view.nodes):
            raise InvalidGraphError("tree does not span the graph's vertex set")
        core = view.core
        index_of = view.index_of
        children: dict[Hashable, list[Hashable]] = {}
        edge_count = 0
        for node, par in parent.items():
            if par is None:
                continue
            edge_count += 1
            if not core.has_edge(index_of(node), index_of(par)):
                raise InvalidGraphError(f"tree edge ({node}, {par}) is not a graph edge")
            children.setdefault(par, []).append(node)
        if edge_count != len(parent) - 1:
            raise InvalidGraphError("rooted tree has the wrong number of edges")
        reached = 1
        stack = [self.root]
        while stack:
            for child in children.get(stack.pop(), ()):
                reached += 1
                stack.append(child)
        if reached != len(parent):
            raise InvalidGraphError("rooted tree is not connected")


class EulerTourIndex:
    """Flat-array Euler-tour (DFS interval) index of a :class:`RootedTree`.

    All arrays are indexed by the :class:`GraphView` vertex index:

    * ``parent[i]`` -- index of the tree parent (``-1`` for the root);
    * ``depth[i]`` -- hop depth below the root;
    * ``order`` -- the DFS pre-order as a list of indices;
    * ``tin[i]`` -- pre-order position of ``i``;
    * ``tout[i]`` -- the largest ``tin`` in the subtree below ``i``
      (inclusive), so ``v`` lies in the subtree of ``u`` iff
      ``tin[u] <= tin[v] <= tout[u]``.
    """

    __slots__ = ("view", "root", "parent", "depth", "order", "tin", "tout")

    def __init__(self, tree: RootedTree, view: GraphView) -> None:
        n = len(view)
        if len(tree.parent) != n:
            raise InvalidGraphError("tree does not span the graph view's vertex set")
        index_of = view.index_of
        parent = [-1] * n
        depth = [0] * n
        children: list[list[int]] = [[] for _ in range(n)]
        try:
            root = index_of(tree.root)
            for node, par in tree.parent.items():
                index = index_of(node)
                depth[index] = tree.depth[node]
                if par is not None:
                    par_index = index_of(par)
                    parent[index] = par_index
                    children[par_index].append(index)
        except KeyError as error:
            raise InvalidGraphError(
                f"tree node {error.args[0]!r} is not a vertex of the graph view"
            ) from None
        order: list[int] = []
        tin = [0] * n
        stack = [root]
        while stack:
            node = stack.pop()
            tin[node] = len(order)
            order.append(node)
            stack.extend(reversed(children[node]))
        tout = list(tin)
        for node in reversed(order):
            par = parent[node]
            if par >= 0 and tout[node] > tout[par]:
                tout[par] = tout[node]
        self.view = view
        self.root = root
        self.parent = parent
        self.depth = depth
        self.order = order
        self.tin = tin
        self.tout = tout

    def in_subtree(self, ancestor: int, node: int) -> bool:
        """Return True iff ``node`` lies in the subtree below ``ancestor``."""
        return self.tin[ancestor] <= self.tin[node] <= self.tout[ancestor]

    def lca(self, u: int, v: int) -> int:
        """Return the LCA of two indices (depth-walk, linear in the depth gap)."""
        parent, depth = self.parent, self.depth
        while depth[u] > depth[v]:
            u = parent[u]
        while depth[v] > depth[u]:
            v = parent[v]
        while u != v:
            u = parent[u]
            v = parent[v]
        return u


def bfs_spanning_tree(graph: nx.Graph | GraphView, root: Hashable | None = None) -> RootedTree:
    """Return a BFS spanning tree of ``graph`` rooted at ``root``.

    The BFS tree's height is at most the eccentricity of the root, hence at
    most the diameter ``D`` of the graph -- the property Theorem 1 relies on
    when it plugs ``D`` into the shortcut quality function.

    Accepts a :class:`GraphView` for the CSR fast path; the resulting tree is
    identical to the ``networkx`` one (index order is repr order, so the
    neighbour tie-breaking agrees) but label-keyed like always.
    """
    if isinstance(graph, GraphView):
        return _bfs_spanning_tree_core(graph, root)
    require_connected(graph, "graph")
    if root is None:
        root = min(graph.nodes(), key=repr)
    if root not in graph:
        raise InvalidGraphError(f"root {root} is not in the graph")
    parent: dict[Hashable, Hashable | None] = {root: None}
    queue: deque[Hashable] = deque([root])
    while queue:
        node = queue.popleft()
        for neighbour in sorted(graph.neighbors(node), key=repr):
            if neighbour not in parent:
                parent[neighbour] = node
                queue.append(neighbour)
    return RootedTree(parent, root)


def _bfs_spanning_tree_core(view: GraphView, root: Hashable | None = None) -> RootedTree:
    """CSR BFS spanning tree; same contract (and output) as the nx path."""
    if len(view) == 0:
        raise InvalidGraphError("graph is empty")
    root_index = 0 if root is None else None
    if root_index is None:
        try:
            root_index = view.index_of(root)
        except KeyError:
            raise InvalidGraphError(f"root {root} is not in the graph") from None
    parents, order = view.core.bfs_parents(root_index)
    if len(order) != len(view):
        raise InvalidGraphError("graph is not connected")
    node_of = view.nodes
    parent: dict[Hashable, Hashable | None] = {
        node_of[index]: (None if parents[index] < 0 else node_of[parents[index]])
        for index in order
    }
    return RootedTree(parent, node_of[root_index])


def center_root(graph: nx.Graph) -> Hashable:
    """Return an approximate centre of the graph (minimises BFS tree height).

    Found by double BFS: the midpoint of an approximately longest shortest
    path has eccentricity at most ``ceil(D / 2) + 1``; rooting the spanning
    tree there keeps ``d_T`` close to ``D`` rather than ``2 D``.
    """
    require_connected(graph, "graph")
    start = min(graph.nodes(), key=repr)
    far = max(nx.single_source_shortest_path_length(graph, start).items(), key=lambda kv: kv[1])[0]
    lengths = nx.single_source_shortest_path_length(graph, far)
    farther = max(lengths.items(), key=lambda kv: kv[1])[0]
    path = nx.shortest_path(graph, far, farther)
    return path[len(path) // 2]


def graph_diameter(graph: nx.Graph | GraphView, exact_threshold: int = 400) -> int:
    """Return the diameter of ``graph`` (exact for small graphs, 2-approx above).

    For graphs with more than ``exact_threshold`` nodes the double-BFS lower
    bound is returned, which is within a factor 2 of the true diameter and is
    standard practice for experiment bookkeeping at scale.  Given a
    :class:`GraphView` both regimes run on the CSR kernel.
    """
    if isinstance(graph, GraphView):
        core = graph.core
        if core.num_nodes == 0:
            raise InvalidGraphError("graph is empty")
        if not core.is_connected():
            raise InvalidGraphError("graph is not connected")
        if core.num_nodes <= exact_threshold:
            return core.exact_diameter()
        return core.double_sweep_diameter()
    require_connected(graph, "graph")
    if graph.number_of_nodes() <= exact_threshold:
        return nx.diameter(graph)
    start = min(graph.nodes(), key=repr)
    lengths = nx.single_source_shortest_path_length(graph, start)
    # Far-vertex tie-break: the repr-smallest vertex at maximum distance.
    # This is the same vertex the GraphView path picks (lowest index; index
    # order is repr order), so both regimes of both paths agree exactly --
    # the old "first max in BFS dict order" rule diverged from the CSR path
    # above the exact threshold (ROADMAP open item, pinned by the
    # differential test in tests/test_algorithms_core.py).
    eccentricity = max(lengths.values())
    far = min((v for v, d in lengths.items() if d == eccentricity), key=repr)
    return max(nx.single_source_shortest_path_length(graph, far).values())


def steiner_tree_edges(tree: RootedTree, terminals: Sequence[Hashable]) -> set[Edge]:
    """Module-level convenience wrapper around :meth:`RootedTree.steiner_tree_edges`."""
    return tree.steiner_tree_edges(terminals)
