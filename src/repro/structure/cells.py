"""Cell partitions (Definition 14).

A *cell partition* splits the vertex set into disjoint, connected,
low-diameter pieces.  The apex construction (Lemma 9/10) obtains its cells by
removing the apices from the spanning tree ``T``: every surviving subtree is
a cell of diameter at most ``2 d_T``.  Vortices complicate matters -- a cell
that touches a vortex must swallow the whole vortex and becomes a *special*
cell (Lemma 10) -- which :func:`merge_cells_touching` implements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

import networkx as nx

from ..core import PartSet, core_enabled, part_connected, part_set_of, view_of
from ..errors import InvalidPartitionError
from .spanning import RootedTree


@dataclass
class CellPartition:
    """A partition of (a subset of) the vertices into connected low-diameter cells.

    Attributes:
        cells: the list of cells, each a frozenset of vertices.
        special: indices of the *special* cells (those containing a vortex);
            Lemma 10 treats them separately because they may not be
            contracted when applying the minor-closure argument of Lemma 5.
        diameter_bound: the declared bound on the (strong, i.e. induced-
            subgraph) diameter of every normal cell; purely informational
            metadata recorded by the constructors and reported by the
            experiments.
    """

    cells: list[frozenset]
    special: set[int] = field(default_factory=set)
    diameter_bound: int | None = None

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    def normal_cells(self) -> list[frozenset]:
        return [cell for index, cell in enumerate(self.cells) if index not in self.special]

    def special_cells(self) -> list[frozenset]:
        return [cell for index, cell in enumerate(self.cells) if index in self.special]

    def cell_of(self) -> dict[Hashable, int]:
        """Return the vertex -> cell-index map."""
        mapping: dict[Hashable, int] = {}
        for index, cell in enumerate(self.cells):
            for vertex in cell:
                mapping[vertex] = index
        return mapping

    def part_set(self, graph: nx.Graph) -> PartSet:
        """Return the memoised int-indexed :class:`~repro.core.PartSet` of the cells.

        Cells are a part family in the Definition 9 sense (disjoint,
        connected vertex sets), so the gate validation and the cell-aware
        hot paths share the same flat member/owner arrays the shortcut
        engine uses for parts.
        """
        return part_set_of(view_of(graph), self.cells)

    def covered_vertices(self) -> frozenset:
        covered: set[Hashable] = set()
        for cell in self.cells:
            covered |= cell
        return frozenset(covered)

    def validate(self, graph: nx.Graph, require_cover: bool = False) -> None:
        """Check disjointness, connectivity and (optionally) coverage.

        ``require_cover=True`` additionally demands that every vertex of
        ``graph`` lies in some cell; the apex construction does *not* require
        this (the apices themselves are never in a cell).

        Connectivity runs on the cells' shared :class:`~repro.core.PartSet`
        (one flat-array BFS per cell) unless the networkx reference paths
        are forced.  Both modes report the same first violation: if the
        family-wide part set cannot be built because a later cell has
        non-graph vertices, the core path falls back to per-cell BFS so the
        per-cell check order is preserved.
        """
        part_set = None
        part_set_failed = False
        seen: set[Hashable] = set()
        for index, cell in enumerate(self.cells):
            if not cell:
                raise InvalidPartitionError(f"cell {index} is empty")
            overlap = seen & cell
            if overlap:
                raise InvalidPartitionError(
                    f"cells overlap on vertices {sorted(overlap, key=repr)[:5]}"
                )
            seen |= cell
            missing = cell - set(graph.nodes())
            if missing:
                raise InvalidPartitionError(
                    f"cell {index} contains non-graph vertices {sorted(missing, key=repr)[:5]}"
                )
            if core_enabled():
                if part_set is None and not part_set_failed:
                    try:
                        part_set = self.part_set(graph)
                    except InvalidPartitionError:
                        part_set_failed = True
                if part_set is not None:
                    connected = part_set.connected(index)
                else:
                    connected = part_connected(view_of(graph), cell)
            else:
                connected = nx.is_connected(graph.subgraph(cell))
            if not connected:
                raise InvalidPartitionError(f"cell {index} is not connected in the graph")
        if require_cover and seen != set(graph.nodes()):
            raise InvalidPartitionError("cells do not cover the vertex set")

    def measured_diameters(self, graph: nx.Graph) -> list[int]:
        """Return the induced-subgraph diameter of each cell (for experiments)."""
        diameters = []
        for cell in self.cells:
            subgraph = graph.subgraph(cell)
            diameters.append(nx.diameter(subgraph) if len(cell) > 1 else 0)
        return diameters


def cells_from_tree_without_apices(
    tree: RootedTree, apices: Iterable[Hashable]
) -> CellPartition:
    """Return the cell partition obtained by deleting ``apices`` from the tree.

    This is exactly the cell construction of Lemma 9: removing the apex
    breaks the spanning tree into subtrees; each subtree's vertex set becomes
    one cell.  Every cell is connected (it is a subtree) and has diameter at
    most the diameter of ``T``; the apices themselves belong to no cell.
    """
    apex_set = set(apices)
    forest = tree.as_graph()
    forest.remove_nodes_from(apex_set)
    cells = [frozenset(component) for component in nx.connected_components(forest)]
    cells.sort(key=lambda cell: min(map(repr, cell)))
    return CellPartition(cells=cells, diameter_bound=tree.diameter())


def cells_from_multisource_bfs(
    graph: nx.Graph, sources: Sequence[Hashable]
) -> CellPartition:
    """Partition the graph into cells by concurrent BFS from ``sources``.

    This is the "canonical example" of a cell partition given below
    Definition 14: start a concurrent BFS from every source (for apex graphs,
    the neighbours of the removed apex) and let every vertex join the source
    that reaches it first.  Cells built this way are connected and have
    diameter at most twice the BFS radius.
    """
    if not sources:
        raise InvalidPartitionError("need at least one BFS source")
    owner: dict[Hashable, int] = {}
    frontier: list[tuple[Hashable, int]] = []
    for index, source in enumerate(sources):
        if source not in graph:
            raise InvalidPartitionError(f"source {source} is not a graph vertex")
        if source not in owner:
            owner[source] = index
            frontier.append((source, index))
    while frontier:
        next_frontier: list[tuple[Hashable, int]] = []
        for vertex, index in frontier:
            for neighbour in sorted(graph.neighbors(vertex), key=repr):
                if neighbour not in owner:
                    owner[neighbour] = index
                    next_frontier.append((neighbour, index))
        frontier = next_frontier
    cells_by_index: dict[int, set[Hashable]] = {}
    for vertex, index in owner.items():
        cells_by_index.setdefault(index, set()).add(vertex)
    cells = [frozenset(cell) for _, cell in sorted(cells_by_index.items())]
    return CellPartition(cells=cells)


def merge_cells_touching(
    partition: CellPartition,
    vertex_groups: Sequence[Iterable[Hashable]],
) -> CellPartition:
    """Merge all cells that intersect each vertex group; mark results special.

    Lemma 10 requires that no vortex is split between cells: for every vortex
    we merge all cells intersecting it into one *special* cell.  A single
    special cell may end up containing several vortices (the lemma allows
    this), and the number of special cells is at most the number of groups.
    """
    cells = [set(cell) for cell in partition.cells]
    for group in vertex_groups:
        group_set = set(group)
        touching = [i for i, cell in enumerate(cells) if cell & group_set]
        if not touching:
            continue
        target = touching[0]
        for other in touching[1:]:
            cells[target] |= cells[other]
        for other in sorted(touching[1:], reverse=True):
            cells.pop(other)
    new_cells = [frozenset(cell) for cell in cells]
    # A cell is special iff it meets any of the vertex groups (a single
    # special cell may contain several groups, which Lemma 10 allows).
    special = {
        index
        for index, cell in enumerate(new_cells)
        if any(set(group) & cell for group in vertex_groups)
    }
    # Cells that were already special in the input stay special.
    previously_special_vertices: set[Hashable] = set()
    for index in partition.special:
        previously_special_vertices |= set(partition.cells[index])
    special |= {
        index for index, cell in enumerate(new_cells) if cell & previously_special_vertices
    }
    return CellPartition(
        cells=new_cells, special=special, diameter_bound=partition.diameter_bound
    )
