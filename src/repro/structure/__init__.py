"""Structural tools used by the shortcut constructions.

This subpackage hosts the combinatorial machinery of Sections 2.2 and 2.3
that is *not* itself a shortcut: rooted spanning trees and Steiner subtrees,
treewidth decompositions (Lemma 2/3), heavy-light decompositions and the
decomposition-tree folding of Theorem 7, cell partitions (Definition 14),
beta-cell-assignments (Definition 15, Lemmas 5/6), and s-combinatorial gates
(Definition 17, Lemma 7).
"""

from .spanning import RootedTree, bfs_spanning_tree, graph_diameter, steiner_tree_edges
from .tree_decomposition import (
    TreeDecomposition,
    genus_vortex_decomposition,
    greedy_tree_decomposition,
    validate_tree_decomposition,
)
from .heavy_light import FoldedDecompositionTree, fold_decomposition_tree, heavy_light_chains
from .cells import CellPartition, cells_from_tree_without_apices, merge_cells_touching
from .cell_assignment import CellAssignment, compute_cell_assignment
from .gates import CombinatorialGate, GateCollection, planar_gates, trivial_gates, validate_gates

__all__ = [
    "CellAssignment",
    "CellPartition",
    "CombinatorialGate",
    "FoldedDecompositionTree",
    "GateCollection",
    "RootedTree",
    "TreeDecomposition",
    "bfs_spanning_tree",
    "cells_from_tree_without_apices",
    "compute_cell_assignment",
    "fold_decomposition_tree",
    "genus_vortex_decomposition",
    "graph_diameter",
    "greedy_tree_decomposition",
    "heavy_light_chains",
    "merge_cells_touching",
    "planar_gates",
    "steiner_tree_edges",
    "trivial_gates",
    "validate_gates",
]
