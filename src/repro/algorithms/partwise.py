"""Convenience wrappers around the part-wise aggregation primitive.

These are the small "fragment subroutines" that the distributed algorithms
repeatedly need (and that Theorem 1's framework implements via shortcut
aggregation): letting every vertex learn its part's identifier, computing a
part-wise minimum/maximum/sum, and finding each fragment's minimum-weight
outgoing edge.  Each wrapper returns both the per-part answers and the
measured CONGEST rounds, so callers can account costs uniformly.

Every wrapper delegates to
:func:`repro.congest.aggregation.partwise_aggregate`, so each inherits the
aggregation primitive's dual-path guarantee: inside
:func:`repro.core.networkx_reference_paths` the preserved label-keyed
scheduler runs, outside it the index-space fast path runs, and the two are
round-, message- and value-identical on every input.  The wrappers
themselves stay in label space -- they are convenience API, not hot paths;
the Boruvka fast loop implements its MWOE step natively instead (see
:mod:`repro.algorithms.mst`).
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping

import networkx as nx

from ..congest.aggregation import AggregationResult, partwise_aggregate
from ..graphs.weights import WEIGHT
from ..shortcuts.shortcut import Shortcut
from ..utils import canonical_edge


def partwise_minimum(
    shortcut: Shortcut, values: Mapping[Hashable, float]
) -> AggregationResult:
    """Every part computes the minimum of its members' values."""
    return partwise_aggregate(shortcut, values, combine=min)


def partwise_maximum(
    shortcut: Shortcut, values: Mapping[Hashable, float]
) -> AggregationResult:
    """Every part computes the maximum of its members' values."""
    return partwise_aggregate(shortcut, values, combine=max)


def partwise_sum(shortcut: Shortcut, values: Mapping[Hashable, float]) -> AggregationResult:
    """Every part computes the sum of its members' values."""
    return partwise_aggregate(shortcut, values, combine=lambda a, b: a + b)


def partwise_component_ids(shortcut: Shortcut) -> tuple[dict[Hashable, int], int]:
    """Let every vertex learn a canonical identifier of its part.

    The identifier is the minimum vertex (by representation) of the part --
    computed by a part-wise min-aggregation followed by the broadcast the
    aggregation primitive already performs.  Returns the vertex -> part-id
    map together with the measured rounds.
    """
    values = {v: v for part in shortcut.parts for v in part}
    result = partwise_aggregate(shortcut, values, combine=lambda a, b: min(a, b, key=repr))
    mapping: dict[Hashable, int] = {}
    for index, part in enumerate(shortcut.parts):
        for vertex in part:
            mapping[vertex] = result.values[index]
    return mapping, result.rounds


def minimum_outgoing_edges(
    graph: nx.Graph, shortcut: Shortcut
) -> tuple[list[tuple[Hashable, Hashable] | None], int]:
    """Every part finds its minimum-weight outgoing edge (the Boruvka MWOE step).

    One round of neighbour exchange lets every vertex learn which incident
    edges leave its part; the per-part minimum is then a single aggregation.
    Returns one edge (or None for parts with no outgoing edge) per part and
    the total measured rounds (including the exchange round).
    """
    part_of: dict[Hashable, int] = {}
    for index, part in enumerate(shortcut.parts):
        for vertex in part:
            part_of[vertex] = index

    infinity = (float("inf"), "", None, None)
    candidates: dict[Hashable, tuple] = {}
    for part in shortcut.parts:
        for vertex in part:
            best = infinity
            for neighbour in graph.neighbors(vertex):
                if part_of.get(neighbour) == part_of.get(vertex):
                    continue
                weight = graph[vertex][neighbour].get(WEIGHT, 1.0)
                key = (weight, repr(canonical_edge(vertex, neighbour)), vertex, neighbour)
                if key[:2] < best[:2]:
                    best = key
            candidates[vertex] = best

    result = partwise_aggregate(
        shortcut, candidates, combine=lambda a, b: a if a[:2] <= b[:2] else b
    )
    edges: list[tuple[Hashable, Hashable] | None] = []
    for value in result.values:
        if value is None or value[2] is None or value[0] == float("inf"):
            edges.append(None)
        else:
            edges.append(canonical_edge(value[2], value[3]))
    return edges, result.rounds + 1
