"""Baselines against which the shortcut-accelerated MST is compared.

Two reference points frame the experiments (E6):

* **no-shortcut Boruvka** -- each fragment aggregates only inside its own
  induced subgraph (the ``H_i = empty`` shortcut), which is the naive
  strategy whose cost is governed by the fragment diameters; on long skinny
  fragments (cycles, paths, the outer wheel) this degrades to ``Theta(n)``;
* **the general-graph reference** ``O~(D + sqrt n)`` -- the best possible
  bound for general graphs (Garay--Kutten--Peleg upper bound, Das Sarma et
  al. lower bound).  We do not re-implement the GKP pipeline; the reference
  is an analytic round count used purely as the "general graph" line in the
  plots, which is what the paper itself compares against when it writes
  ``O~(D^2)`` versus ``Omega~(sqrt n)``.
"""

from __future__ import annotations

import math
from typing import Sequence

import networkx as nx

from ..shortcuts.baseline import empty_shortcut, whole_tree_shortcut
from ..shortcuts.shortcut import Shortcut
from ..structure.spanning import RootedTree


def no_shortcut_builder(
    graph: nx.Graph, tree: RootedTree, parts: Sequence[frozenset]
) -> Shortcut:
    """Builder for the naive baseline: every part gets no shortcut edges."""
    return empty_shortcut(graph, tree, parts)


def whole_tree_builder(
    graph: nx.Graph, tree: RootedTree, parts: Sequence[frozenset]
) -> Shortcut:
    """Builder that gives every part the whole spanning tree (congestion = #parts)."""
    return whole_tree_shortcut(graph, tree, parts)


def gkp_reference_rounds(num_nodes: int, diameter: int) -> float:
    """Analytic ``O~(D + sqrt n)`` reference round count for general graphs.

    The constant and the polylogarithmic factor are chosen to match the
    standard statement ``O((D + sqrt n) log* n)``; the experiments only use
    the *shape* of this curve (who wins, where the crossover falls), exactly
    as the paper compares asymptotics rather than constants.
    """
    log_star = 0
    value = float(max(2, num_nodes))
    while value > 2.0 and log_star < 10:
        value = math.log2(value)
        log_star += 1
    return (diameter + math.sqrt(num_nodes)) * max(1, log_star)


def paper_reference_rounds(diameter: int, num_nodes: int) -> float:
    """Analytic ``O~(D^2)`` reference (Corollary 1) for excluded-minor graphs."""
    return diameter * diameter * math.log2(num_nodes + 2)
