"""Distributed algorithms built on the shortcut framework (Theorem 1).

The shortcut framework's promise is that once good shortcuts exist, the
*same simple algorithm* solves the optimisation problems fast on any graph
family -- the structure only ever enters through the measured quality.  The
algorithms here are:

* :mod:`repro.algorithms.mst`      -- Boruvka's MST driven by part-wise
  aggregation over shortcuts, with exact CONGEST round accounting;
* :mod:`repro.algorithms.mst_baselines` -- the no-shortcut baseline and the
  ``O~(D + sqrt n)`` general-graph reference model;
* :mod:`repro.algorithms.mincut`   -- (1 + eps)-approximate minimum cut by
  greedy spanning-tree packing and 1-/2-respecting tree cuts;
* :mod:`repro.algorithms.partwise` -- label-space conveniences over the
  aggregation primitive.

This layer is **array-native**: by default :func:`boruvka_mst` and
:func:`approximate_min_cut` run on the CSR kernel
(:class:`~repro.core.GraphView` indices, flat union-find fragments,
engine-built per-phase shortcuts, Euler-interval cut sweeps), and the seed
implementations are preserved verbatim behind
:func:`repro.core.networkx_reference_paths` as differential oracles.  The
two paths return identical results on every field --
``tests/test_algorithms_core.py`` pins the equality per family, and
``benchmarks/bench_algorithms_speedup.py`` (S5) gates the speedup.  See
``docs/architecture.md`` for the dual-path contract and
``docs/paper_map.md`` for the statement-by-statement paper map.
"""

from .mst import MstResult, ShortcutBuilder, boruvka_mst, oblivious_builder, reference_mst_weight
from .mst_baselines import gkp_reference_rounds, no_shortcut_builder, whole_tree_builder
from .mincut import MinCutResult, approximate_min_cut, exact_min_cut
from .partwise import (
    minimum_outgoing_edges,
    partwise_component_ids,
    partwise_maximum,
    partwise_minimum,
    partwise_sum,
)

__all__ = [
    "MinCutResult",
    "MstResult",
    "ShortcutBuilder",
    "approximate_min_cut",
    "boruvka_mst",
    "exact_min_cut",
    "gkp_reference_rounds",
    "minimum_outgoing_edges",
    "no_shortcut_builder",
    "oblivious_builder",
    "partwise_component_ids",
    "partwise_maximum",
    "partwise_minimum",
    "partwise_sum",
    "reference_mst_weight",
    "whole_tree_builder",
]
