"""Distributed algorithms built on the shortcut framework (Theorem 1).

The shortcut framework's promise is that once good shortcuts exist, the
*same simple algorithm* solves the optimisation problems fast on any graph
family -- the structure only ever enters through the measured quality.  The
algorithms here are:

* :mod:`repro.algorithms.mst`      -- Boruvka's MST driven by part-wise
  aggregation over shortcuts, with exact CONGEST round accounting;
* :mod:`repro.algorithms.mst_baselines` -- the no-shortcut baseline and the
  ``O~(D + sqrt n)`` general-graph reference model;
* :mod:`repro.algorithms.mincut`   -- (1 + eps)-approximate minimum cut by
  greedy spanning-tree packing and 1-/2-respecting tree cuts.
"""

from .mst import MstResult, ShortcutBuilder, boruvka_mst, oblivious_builder, reference_mst_weight
from .mst_baselines import gkp_reference_rounds, no_shortcut_builder, whole_tree_builder
from .mincut import MinCutResult, approximate_min_cut, exact_min_cut
from .partwise import (
    minimum_outgoing_edges,
    partwise_component_ids,
    partwise_maximum,
    partwise_minimum,
    partwise_sum,
)

__all__ = [
    "MinCutResult",
    "MstResult",
    "ShortcutBuilder",
    "approximate_min_cut",
    "boruvka_mst",
    "exact_min_cut",
    "gkp_reference_rounds",
    "minimum_outgoing_edges",
    "no_shortcut_builder",
    "oblivious_builder",
    "partwise_component_ids",
    "partwise_maximum",
    "partwise_minimum",
    "partwise_sum",
    "reference_mst_weight",
    "whole_tree_builder",
]
