"""(1 + eps)-approximate minimum cut via greedy tree packing (Corollary 1).

The min-cut algorithm the shortcut framework accelerates (Ghaffari--Kuhn,
Nanongkai--Su) follows Karger's tree-packing paradigm:

1. pack ``O(log n / eps^2)`` spanning trees greedily with respect to edge
   loads (each tree is an MST under the current loads; after each tree the
   load of its edges increases);
2. for every packed tree, find the minimum cut that crosses the tree in one
   or two edges (1-/2-respecting cuts); Karger shows that for a sufficient
   packing some packed tree 2-respects a (1 + eps)-minimum cut.

Every tree computation is one distributed MST (whose cost we measure through
:func:`repro.algorithms.mst.boruvka_mst`), and every cut evaluation is a
constant number of subtree aggregations (charged at the measured aggregation
cost).  The 1-/2-respecting minimisation itself is evaluated centrally with a
vectorised all-pairs formula -- the distributed versions of this step in the
cited works are intricate but add only polylogarithmic factors, so the round
accounting charges them as aggregations (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Sequence

import networkx as nx
import numpy as np

from ..errors import InvalidGraphError
from ..graphs.weights import WEIGHT
from ..congest.aggregation import partwise_aggregate
from ..shortcuts.shortcut import Shortcut
from ..structure.spanning import RootedTree, bfs_spanning_tree
from .mst import ShortcutBuilder, boruvka_mst, oblivious_builder


@dataclass
class MinCutResult:
    """Result of one approximate min-cut execution.

    Attributes:
        value: the best (smallest) cut weight found.
        cut_edges: the edges crossing the reported cut.
        side: one side of the reported cut (vertex set).
        exact_value: the exact minimum cut (Stoer--Wagner), for reference.
        approximation_ratio: ``value / exact_value`` (>= 1).
        rounds: total CONGEST rounds charged.
        num_trees: how many trees were packed.
    """

    value: float
    cut_edges: frozenset[tuple[Hashable, Hashable]]
    side: frozenset
    exact_value: float
    approximation_ratio: float
    rounds: int
    num_trees: int
    tree_rounds: list[int] = field(default_factory=list)


def exact_min_cut(graph: nx.Graph) -> float:
    """Return the exact global minimum cut value (Stoer--Wagner reference)."""
    if graph.number_of_nodes() < 2:
        raise InvalidGraphError("min cut needs at least two vertices")
    value, _partition = nx.stoer_wagner(graph, weight=WEIGHT)
    return float(value)


def _respecting_cuts(
    graph: nx.Graph, tree: RootedTree
) -> tuple[float, frozenset, list[int]]:
    """Return the best 1- or 2-respecting cut of ``tree`` (value, side, charges).

    For every tree edge ``e`` let ``S_e`` be the vertex set of the subtree
    below ``e``.  A cut that 1-respects the tree is some ``S_e``; a cut that
    2-respects it is the symmetric difference ``S_e xor S_f`` for a pair of
    tree edges.  Both families are evaluated in one vectorised pass: with the
    indicator matrix ``X[edge, tree_edge] = [exactly one endpoint lies in the
    subtree]``, the cut value of the pair ``(i, j)`` is
    ``s_i + s_j - 2 * (X^T W X)_{ij}`` where ``s`` is the 1-respecting value
    vector.  The returned "charges" list records the number of aggregation-
    equivalent operations, which the caller converts to rounds.
    """
    tree_edges = sorted(tree.edges())
    if not tree_edges:
        return float("inf"), frozenset(), []
    node_list = sorted(graph.nodes(), key=repr)
    node_index = {node: i for i, node in enumerate(node_list)}

    # Subtree membership per tree edge.
    below: list[set] = []
    for u, v in tree_edges:
        child = u if tree.parent.get(u) == v else v
        below.append(tree.subtree_nodes(child))

    graph_edges = list(graph.edges())
    weights = np.array([graph[u][v].get(WEIGHT, 1.0) for u, v in graph_edges], dtype=float)
    # X[e, k] = 1 iff graph edge e crosses the subtree of tree edge k.
    X = np.zeros((len(graph_edges), len(tree_edges)), dtype=float)
    for k, subtree in enumerate(below):
        for e, (u, v) in enumerate(graph_edges):
            X[e, k] = 1.0 if (u in subtree) != (v in subtree) else 0.0

    ones_cut = weights @ X  # 1-respecting values s_k
    cross = X.T @ (X * weights[:, None])  # (X^T W X)
    pair_cut = ones_cut[:, None] + ones_cut[None, :] - 2.0 * cross
    np.fill_diagonal(pair_cut, np.inf)

    best_single = int(np.argmin(ones_cut))
    best_single_value = float(ones_cut[best_single])
    best_pair_flat = int(np.argmin(pair_cut))
    i, j = divmod(best_pair_flat, pair_cut.shape[1])
    best_pair_value = float(pair_cut[i, j])

    if best_single_value <= best_pair_value:
        side = frozenset(below[best_single])
        value = best_single_value
    else:
        side = frozenset(below[i] ^ below[j])
        value = best_pair_value
    # Charges: one subtree aggregation per tree edge batch (log n batches in
    # the distributed implementations); recorded as a single unit here and
    # converted by the caller.
    return value, side, [1]


def approximate_min_cut(
    graph: nx.Graph,
    epsilon: float = 1.0,
    shortcut_builder: ShortcutBuilder | None = None,
    tree: RootedTree | None = None,
    max_trees: int | None = None,
    seed: int = 0,
) -> MinCutResult:
    """Compute a (1 + eps)-approximate minimum cut with CONGEST round accounting.

    Args:
        graph: connected weighted network graph.
        epsilon: approximation slack; the number of packed trees grows as
            ``O(log n / eps^2)``.
        shortcut_builder: shortcut construction used by the underlying
            distributed MST runs; defaults to the oblivious constructor.
        tree: the global spanning tree for T-restriction (defaults to BFS).
        max_trees: optional cap on the packing size (keeps small experiments
            fast); the default cap is 12.
        seed: reserved for future randomised variants (the greedy packing is
            deterministic).

    Returns:
        A :class:`MinCutResult`; the tests assert ``approximation_ratio <=
        1 + epsilon`` on every workload.
    """
    if epsilon <= 0:
        raise InvalidGraphError("epsilon must be positive")
    builder = shortcut_builder if shortcut_builder is not None else oblivious_builder
    tree = tree if tree is not None else bfs_spanning_tree(graph)
    n = graph.number_of_nodes()
    target_trees = max(3, math.ceil(math.log2(n + 2) / (epsilon**2)))
    if max_trees is None:
        max_trees = 12
    num_trees = min(target_trees, max_trees)

    # Measure the distributed MST cost once; each packed tree is one MST
    # computation of the same shape (only the weights change), so each is
    # charged the measured cost of a representative run.
    representative = boruvka_mst(graph, shortcut_builder=builder, tree=tree)
    mst_rounds = representative.rounds

    loads: dict[tuple, float] = {}
    best_value = float("inf")
    best_side: frozenset = frozenset()
    total_rounds = 0
    tree_rounds: list[int] = []

    # One aggregation on the full-graph part gives the per-cut-evaluation charge.
    whole_part = [frozenset(graph.nodes())]
    whole_shortcut = Shortcut(
        graph=graph,
        tree=tree,
        parts=whole_part,
        edge_sets=[tree.edge_set()],
        constructor="mincut-charging",
    )
    probe = partwise_aggregate(whole_shortcut, {v: 1 for v in graph.nodes()}, combine=min)
    aggregation_rounds = probe.rounds
    log_n = max(1, math.ceil(math.log2(n + 2)))

    for _round in range(num_trees):
        # Greedy packing: MST under current loads (load-dominated weights).
        packed = nx.Graph()
        packed.add_nodes_from(graph.nodes())
        for u, v in graph.edges():
            base = graph[u][v].get(WEIGHT, 1.0)
            load = loads.get((min(u, v, key=repr), max(u, v, key=repr)), 0.0)
            packed.add_edge(u, v, **{WEIGHT: load + base / (graph.number_of_edges() + 1.0)})
        packing_tree_graph = nx.minimum_spanning_tree(packed, weight=WEIGHT)
        packing_tree = bfs_spanning_tree(packing_tree_graph, root=tree.root)
        for u, v in packing_tree.edges():
            key = (min(u, v, key=repr), max(u, v, key=repr))
            loads[key] = loads.get(key, 0.0) + 1.0

        value, side, charges = _respecting_cuts(graph, packing_tree)
        if value < best_value and 0 < len(side) < n:
            best_value, best_side = value, side
        rounds_this_tree = mst_rounds + len(charges) * aggregation_rounds * log_n
        total_rounds += rounds_this_tree
        tree_rounds.append(rounds_this_tree)

    cut_edges = frozenset(
        (u, v) for u, v in graph.edges() if (u in best_side) != (v in best_side)
    )
    exact = exact_min_cut(graph)
    ratio = best_value / exact if exact > 0 else 1.0
    return MinCutResult(
        value=best_value,
        cut_edges=cut_edges,
        side=best_side,
        exact_value=exact,
        approximation_ratio=ratio,
        rounds=total_rounds,
        num_trees=num_trees,
        tree_rounds=tree_rounds,
    )
