"""(1 + eps)-approximate minimum cut via greedy tree packing (Corollary 1).

The min-cut algorithm the shortcut framework accelerates (Ghaffari--Kuhn,
Nanongkai--Su) follows Karger's tree-packing paradigm:

1. pack ``O(log n / eps^2)`` spanning trees greedily with respect to edge
   loads (each tree is an MST under the current loads; after each tree the
   load of its edges increases);
2. for every packed tree, find the minimum cut that crosses the tree in one
   or two edges (1-/2-respecting cuts); Karger shows that for a sufficient
   packing some packed tree 2-respects a (1 + eps)-minimum cut.

Every tree computation is one distributed MST (whose cost we measure through
:func:`repro.algorithms.mst.boruvka_mst`), and every cut evaluation is a
constant number of subtree aggregations (charged at the measured aggregation
cost).  The 1-/2-respecting minimisation itself is evaluated centrally with a
vectorised all-pairs formula -- the distributed versions of this step in the
cited works are intricate but add only polylogarithmic factors, so the round
accounting charges them as aggregations (see DESIGN.md, substitutions).

Dual-path contract
------------------

:func:`approximate_min_cut` has two implementations behind one signature:

* the **array-native fast path** (default): the greedy packing runs in
  :class:`~repro.core.GraphView` index space (per-edge load array, stable
  argsort Kruskal reproducing ``nx.minimum_spanning_tree``'s tie-breaking,
  CSR-ordered BFS rooting), and the 1-/2-respecting sweep derives the
  edge-crossing indicator matrix from the packed tree's Euler-tour
  ``tin``/``tout`` intervals in one vectorised comparison instead of
  materialising a subtree vertex set per tree edge;
* the **preserved reference path**, the seed implementation verbatim
  (label-keyed load dicts, per-edge ``subtree_nodes`` sets, ``nx`` packing
  graphs), runs inside :func:`repro.core.networkx_reference_paths`.

Both build the identical indicator matrix in the identical row/column
order, so every downstream float (cut values, argmin tie-breaks, reported
sides) is bit-for-bit equal -- ``tests/test_algorithms_core.py`` pins cut
value, side, cut edges, rounds and per-tree rounds on every registered
graph family, and ``benchmarks/bench_algorithms_speedup.py`` (S5) gates the
end-to-end speedup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Sequence

import networkx as nx
import numpy as np

from ..core import core_enabled, view_of
from ..errors import InvalidGraphError
from ..graphs.weights import WEIGHT
from ..congest.aggregation import partwise_aggregate
from ..shortcuts.shortcut import Shortcut
from ..structure.spanning import RootedTree, bfs_spanning_tree
from ..utils import canonical_edge
from .mst import ShortcutBuilder, boruvka_mst, oblivious_builder


@dataclass
class MinCutResult:
    """Result of one approximate min-cut execution.

    Attributes:
        value: the best (smallest) cut weight found.
        cut_edges: the edges crossing the reported cut.
        side: one side of the reported cut (vertex set).
        exact_value: the exact minimum cut (Stoer--Wagner), for reference;
            ``nan`` when the run skipped the centralised oracle
            (``compute_exact=False``).
        approximation_ratio: ``value / exact_value`` (>= 1); ``nan`` when
            the oracle was skipped.
        rounds: total CONGEST rounds charged.
        num_trees: how many trees were packed.
    """

    value: float
    cut_edges: frozenset[tuple[Hashable, Hashable]]
    side: frozenset
    exact_value: float
    approximation_ratio: float
    rounds: int
    num_trees: int
    tree_rounds: list[int] = field(default_factory=list)


def exact_min_cut(graph: nx.Graph) -> float:
    """Return the exact global minimum cut value (Stoer--Wagner reference).

    This is the centralised ``networkx`` oracle used for the
    ``approximation_ratio`` bookkeeping; it is not part of the measured
    distributed algorithm and has no fast-path twin.
    """
    if graph.number_of_nodes() < 2:
        raise InvalidGraphError("min cut needs at least two vertices")
    value, _partition = nx.stoer_wagner(graph, weight=WEIGHT)
    return float(value)


def approximate_min_cut(
    graph: nx.Graph,
    epsilon: float = 1.0,
    shortcut_builder: ShortcutBuilder | None = None,
    tree: RootedTree | None = None,
    max_trees: int | None = None,
    seed: int = 0,
    compute_exact: bool = True,
) -> MinCutResult:
    """Compute a (1 + eps)-approximate minimum cut with CONGEST round accounting.

    Args:
        graph: connected weighted network graph.
        epsilon: approximation slack; the number of packed trees grows as
            ``O(log n / eps^2)``.
        shortcut_builder: shortcut construction used by the underlying
            distributed MST runs; defaults to the oblivious constructor.
        tree: the global spanning tree for T-restriction (defaults to BFS).
        max_trees: optional cap on the packing size (keeps small experiments
            fast); the default cap is 12.
        seed: reserved for future randomised variants (the greedy packing is
            deterministic).
        compute_exact: also run the centralised Stoer--Wagner oracle and
            report ``exact_value`` / ``approximation_ratio``.  Pass
            ``False`` to skip it (both fields come back as ``nan``) -- the
            S5 benchmark does, because the oracle is identical dead weight
            in both timing arms.

    Returns:
        A :class:`MinCutResult`; the tests assert ``approximation_ratio <=
        1 + epsilon`` on every workload.

    Reference path: inside :func:`repro.core.networkx_reference_paths` the
    preserved seed implementation runs; the array-native fast path returns
    bit-identical results on every field -- see the module docstring.
    """
    if core_enabled():
        return _approximate_min_cut_core(
            graph, epsilon, shortcut_builder, tree, max_trees, compute_exact
        )
    return _approximate_min_cut_reference(
        graph, epsilon, shortcut_builder, tree, max_trees, compute_exact
    )


def _packing_size(n: int, epsilon: float, max_trees: int | None) -> int:
    """Shared packing-size rule: ``O(log n / eps^2)`` capped at ``max_trees``."""
    target_trees = max(3, math.ceil(math.log2(n + 2) / (epsilon**2)))
    if max_trees is None:
        max_trees = 12
    return min(target_trees, max_trees)


def _charging_probe(graph: nx.Graph, tree: RootedTree) -> int:
    """Measured rounds of one whole-graph aggregation (the per-cut charge).

    One aggregation on the single full-vertex-set part, communicating over
    the spanning tree -- both paths charge every 1-/2-respecting evaluation
    batch at this measured cost.
    """
    whole_part = [frozenset(graph.nodes())]
    whole_shortcut = Shortcut(
        graph=graph,
        tree=tree,
        parts=whole_part,
        edge_sets=[tree.edge_set()],
        constructor="mincut-charging",
    )
    probe = partwise_aggregate(whole_shortcut, {v: 1 for v in graph.nodes()}, combine=min)
    return probe.rounds


# ---------------------------------------------------------------------------
# The array-native fast path
# ---------------------------------------------------------------------------


def _approximate_min_cut_core(
    graph: nx.Graph,
    epsilon: float,
    shortcut_builder: ShortcutBuilder | None,
    tree: RootedTree | None,
    max_trees: int | None,
    compute_exact: bool,
) -> MinCutResult:
    """Index-space packing + Euler-interval respecting-cut sweep."""
    if epsilon <= 0:
        raise InvalidGraphError("epsilon must be positive")
    builder = shortcut_builder if shortcut_builder is not None else oblivious_builder
    view = view_of(graph)
    tree = tree if tree is not None else bfs_spanning_tree(view)
    n = len(view)
    num_trees = _packing_size(n, epsilon, max_trees)
    index_of = view.index_of

    # Measure the distributed MST cost once; each packed tree is one MST
    # computation of the same shape (only the weights change), so each is
    # charged the measured cost of a representative run.
    representative = boruvka_mst(graph, shortcut_builder=builder, tree=tree)
    mst_rounds = representative.rounds

    # The packing state is flat and index-native: edges in the graph's own
    # iteration order (the order every float reduction below follows, which
    # is what keeps the sweep bit-identical to the reference), weights and
    # loads as parallel arrays.
    edges_nx = list(graph.edges())
    num_edges = len(edges_nx)
    edge_u = np.fromiter((index_of(u) for u, _v in edges_nx), dtype=np.int64, count=num_edges)
    edge_v = np.fromiter((index_of(v) for _u, v in edges_nx), dtype=np.int64, count=num_edges)
    base = np.fromiter(
        (data.get(WEIGHT, 1.0) for _u, _v, data in graph.edges(data=True)),
        dtype=np.float64,
        count=num_edges,
    )
    loads = np.zeros(num_edges, dtype=np.float64)
    load_unit = base / (num_edges + 1.0)
    edge_u_list = edge_u.tolist()
    edge_v_list = edge_v.tolist()

    best_value = float("inf")
    best_side: frozenset = frozenset()
    total_rounds = 0
    tree_rounds: list[int] = []

    aggregation_rounds = _charging_probe(graph, tree)
    log_n = max(1, math.ceil(math.log2(n + 2)))
    root_index = index_of(tree.root)

    for _round in range(num_trees):
        # Greedy packing: MST under current loads (load-dominated weights).
        # Stable argsort by packed weight reproduces nx.minimum_spanning_tree
        # exactly: Kruskal's tie-break is "first in graph edge order".
        packed = loads + load_unit
        order = np.argsort(packed, kind="stable").tolist()
        uf = list(range(n))

        def find(vertex: int) -> int:
            root = vertex
            while uf[root] != root:
                root = uf[root]
            while uf[vertex] != root:
                uf[vertex], vertex = root, uf[vertex]
            return root

        accepted: list[int] = []
        for edge_id in order:
            ru, rv = find(edge_u_list[edge_id]), find(edge_v_list[edge_id])
            if ru == rv:
                continue
            uf[rv] = ru
            accepted.append(edge_id)
            if len(accepted) == n - 1:
                break
        loads[accepted] += 1.0

        # Root the packed tree by BFS from the global root; ascending index
        # order is repr order, so this is the tree bfs_spanning_tree builds.
        adjacency: list[list[int]] = [[] for _ in range(n)]
        for edge_id in accepted:
            a, b = edge_u_list[edge_id], edge_v_list[edge_id]
            adjacency[a].append(b)
            adjacency[b].append(a)
        parent = [-2] * n
        parent[root_index] = -1
        queue = [root_index]
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            for neighbour in sorted(adjacency[node]):
                if parent[neighbour] == -2:
                    parent[neighbour] = node
                    queue.append(neighbour)

        value, side, charges = _respecting_cuts_core(
            view, base, edge_u, edge_v, parent
        )
        if value < best_value and 0 < len(side) < n:
            best_value, best_side = value, side
        rounds_this_tree = mst_rounds + len(charges) * aggregation_rounds * log_n
        total_rounds += rounds_this_tree
        tree_rounds.append(rounds_this_tree)

    cut_edges = frozenset(
        (u, v) for u, v in edges_nx if (u in best_side) != (v in best_side)
    )
    if compute_exact:
        exact = exact_min_cut(graph)
        ratio = best_value / exact if exact > 0 else 1.0
    else:
        exact = float("nan")
        ratio = float("nan")
    return MinCutResult(
        value=best_value,
        cut_edges=cut_edges,
        side=best_side,
        exact_value=exact,
        approximation_ratio=ratio,
        rounds=total_rounds,
        num_trees=num_trees,
        tree_rounds=tree_rounds,
    )


def _respecting_cuts_core(
    view, base: np.ndarray, edge_u: np.ndarray, edge_v: np.ndarray, parent: list[int]
) -> tuple[float, frozenset, list[int]]:
    """Best 1-/2-respecting cut of the tree given by ``parent`` (index space).

    The reference implementation materialises the subtree vertex set of
    every tree edge and asks a set-membership question per (graph edge,
    tree edge) pair.  Here a subtree is the Euler-tour interval
    ``[tin, tout]`` of the edge's child endpoint, so the whole indicator
    matrix ``X`` is two vectorised interval tests; because the rows follow
    the same graph-edge order and the columns the same sorted-tree-edge
    order as the reference, the downstream matrix algebra -- and therefore
    every argmin tie-break -- is bit-identical.
    """
    n = len(parent)
    node_of = view.nodes
    children_of: list[list[int]] = [[] for _ in range(n)]
    root = -1
    for node, par in enumerate(parent):
        if par >= 0:
            children_of[par].append(node)
        elif par == -1:
            root = node
    tin = [0] * n
    tout = [0] * n
    order: list[int] = []
    stack = [root]
    while stack:
        node = stack.pop()
        tin[node] = len(order)
        order.append(node)
        stack.extend(reversed(children_of[node]))
    for node in order:
        tout[node] = tin[node]
    for node in reversed(order):
        par = parent[node]
        if par >= 0 and tout[node] > tout[par]:
            tout[par] = tout[node]

    # Tree edges in the reference's order: canonical label pairs, sorted.
    entries = sorted(
        (canonical_edge(node_of[child], node_of[parent[child]]), child)
        for child in range(n)
        if parent[child] >= 0
    )
    if not entries:
        return float("inf"), frozenset(), []
    tin_arr = np.asarray(tin, dtype=np.int64)
    tout_arr = np.asarray(tout, dtype=np.int64)
    child_arr = np.fromiter((child for _edge, child in entries), dtype=np.int64, count=len(entries))
    low = tin_arr[child_arr][None, :]
    high = tout_arr[child_arr][None, :]
    tin_u = tin_arr[edge_u][:, None]
    tin_v = tin_arr[edge_v][:, None]
    in_u = (tin_u >= low) & (tin_u <= high)
    in_v = (tin_v >= low) & (tin_v <= high)
    X = (in_u != in_v).astype(np.float64)

    ones_cut = base @ X  # 1-respecting values s_k
    cross = X.T @ (X * base[:, None])  # (X^T W X)
    pair_cut = ones_cut[:, None] + ones_cut[None, :] - 2.0 * cross
    np.fill_diagonal(pair_cut, np.inf)

    best_single = int(np.argmin(ones_cut))
    best_single_value = float(ones_cut[best_single])
    best_pair_flat = int(np.argmin(pair_cut))
    i, j = divmod(best_pair_flat, pair_cut.shape[1])
    best_pair_value = float(pair_cut[i, j])

    def interval_side(*columns: int) -> frozenset:
        members = np.zeros(n, dtype=bool)
        for column in columns:
            child = int(child_arr[column])
            inside = (tin_arr >= tin[child]) & (tin_arr <= tout[child])
            members ^= inside
        return frozenset(node_of[index] for index in np.flatnonzero(members))

    if best_single_value <= best_pair_value:
        side = interval_side(best_single)
        value = best_single_value
    else:
        side = interval_side(i, j)
        value = best_pair_value
    # Charges: one subtree aggregation per tree edge batch (log n batches in
    # the distributed implementations); recorded as a single unit here and
    # converted by the caller.
    return value, side, [1]


# ---------------------------------------------------------------------------
# The preserved reference path (the seed implementation, verbatim)
# ---------------------------------------------------------------------------


def _respecting_cuts(
    graph: nx.Graph, tree: RootedTree
) -> tuple[float, frozenset, list[int]]:
    """Return the best 1- or 2-respecting cut of ``tree`` (value, side, charges).

    For every tree edge ``e`` let ``S_e`` be the vertex set of the subtree
    below ``e``.  A cut that 1-respects the tree is some ``S_e``; a cut that
    2-respects it is the symmetric difference ``S_e xor S_f`` for a pair of
    tree edges.  Both families are evaluated in one vectorised pass: with the
    indicator matrix ``X[edge, tree_edge] = [exactly one endpoint lies in the
    subtree]``, the cut value of the pair ``(i, j)`` is
    ``s_i + s_j - 2 * (X^T W X)_{ij}`` where ``s`` is the 1-respecting value
    vector.  The returned "charges" list records the number of aggregation-
    equivalent operations, which the caller converts to rounds.

    This is the preserved reference sweep (one ``subtree_nodes`` set per
    tree edge, a Python loop per matrix entry); the fast path derives the
    same matrix from Euler-tour intervals.
    """
    tree_edges = sorted(tree.edges())
    if not tree_edges:
        return float("inf"), frozenset(), []
    node_list = sorted(graph.nodes(), key=repr)
    node_index = {node: i for i, node in enumerate(node_list)}

    # Subtree membership per tree edge.
    below: list[set] = []
    for u, v in tree_edges:
        child = u if tree.parent.get(u) == v else v
        below.append(tree.subtree_nodes(child))

    graph_edges = list(graph.edges())
    weights = np.array([graph[u][v].get(WEIGHT, 1.0) for u, v in graph_edges], dtype=float)
    # X[e, k] = 1 iff graph edge e crosses the subtree of tree edge k.
    X = np.zeros((len(graph_edges), len(tree_edges)), dtype=float)
    for k, subtree in enumerate(below):
        for e, (u, v) in enumerate(graph_edges):
            X[e, k] = 1.0 if (u in subtree) != (v in subtree) else 0.0

    ones_cut = weights @ X  # 1-respecting values s_k
    cross = X.T @ (X * weights[:, None])  # (X^T W X)
    pair_cut = ones_cut[:, None] + ones_cut[None, :] - 2.0 * cross
    np.fill_diagonal(pair_cut, np.inf)

    best_single = int(np.argmin(ones_cut))
    best_single_value = float(ones_cut[best_single])
    best_pair_flat = int(np.argmin(pair_cut))
    i, j = divmod(best_pair_flat, pair_cut.shape[1])
    best_pair_value = float(pair_cut[i, j])

    if best_single_value <= best_pair_value:
        side = frozenset(below[best_single])
        value = best_single_value
    else:
        side = frozenset(below[i] ^ below[j])
        value = best_pair_value
    # Charges: one subtree aggregation per tree edge batch (log n batches in
    # the distributed implementations); recorded as a single unit here and
    # converted by the caller.
    return value, side, [1]


def _approximate_min_cut_reference(
    graph: nx.Graph,
    epsilon: float,
    shortcut_builder: ShortcutBuilder | None,
    tree: RootedTree | None,
    max_trees: int | None,
    compute_exact: bool,
) -> MinCutResult:
    """The preserved seed implementation (label-keyed networkx structures)."""
    if epsilon <= 0:
        raise InvalidGraphError("epsilon must be positive")
    builder = shortcut_builder if shortcut_builder is not None else oblivious_builder
    tree = tree if tree is not None else bfs_spanning_tree(graph)
    n = graph.number_of_nodes()
    num_trees = _packing_size(n, epsilon, max_trees)

    # Measure the distributed MST cost once; each packed tree is one MST
    # computation of the same shape (only the weights change), so each is
    # charged the measured cost of a representative run.
    representative = boruvka_mst(graph, shortcut_builder=builder, tree=tree)
    mst_rounds = representative.rounds

    loads: dict[tuple, float] = {}
    best_value = float("inf")
    best_side: frozenset = frozenset()
    total_rounds = 0
    tree_rounds: list[int] = []

    # One aggregation on the full-graph part gives the per-cut-evaluation charge.
    aggregation_rounds = _charging_probe(graph, tree)
    log_n = max(1, math.ceil(math.log2(n + 2)))

    for _round in range(num_trees):
        # Greedy packing: MST under current loads (load-dominated weights).
        packed = nx.Graph()
        packed.add_nodes_from(graph.nodes())
        for u, v in graph.edges():
            base = graph[u][v].get(WEIGHT, 1.0)
            load = loads.get((min(u, v, key=repr), max(u, v, key=repr)), 0.0)
            packed.add_edge(u, v, **{WEIGHT: load + base / (graph.number_of_edges() + 1.0)})
        packing_tree_graph = nx.minimum_spanning_tree(packed, weight=WEIGHT)
        packing_tree = bfs_spanning_tree(packing_tree_graph, root=tree.root)
        for u, v in packing_tree.edges():
            key = (min(u, v, key=repr), max(u, v, key=repr))
            loads[key] = loads.get(key, 0.0) + 1.0

        value, side, charges = _respecting_cuts(graph, packing_tree)
        if value < best_value and 0 < len(side) < n:
            best_value, best_side = value, side
        rounds_this_tree = mst_rounds + len(charges) * aggregation_rounds * log_n
        total_rounds += rounds_this_tree
        tree_rounds.append(rounds_this_tree)

    cut_edges = frozenset(
        (u, v) for u, v in graph.edges() if (u in best_side) != (v in best_side)
    )
    if compute_exact:
        exact = exact_min_cut(graph)
        ratio = best_value / exact if exact > 0 else 1.0
    else:
        exact = float("nan")
        ratio = float("nan")
    return MinCutResult(
        value=best_value,
        cut_edges=cut_edges,
        side=best_side,
        exact_value=exact,
        approximation_ratio=ratio,
        rounds=total_rounds,
        num_trees=num_trees,
        tree_rounds=tree_rounds,
    )
