"""Distributed MST via Boruvka phases over low-congestion shortcuts.

This is the algorithm behind Corollary 1: Boruvka's algorithm runs for
``O(log n)`` phases; in each phase every fragment must learn its
minimum-weight outgoing edge (MWOE), which is exactly a part-wise
min-aggregation with the fragments as parts.  Theorem 1 shows that with
shortcuts of quality ``q``, each phase costs ``O~(q(D))`` rounds; here the
phase cost is *measured* by actually scheduling the aggregation messages in
the CONGEST cost model (see :mod:`repro.congest.aggregation`).

Round accounting per phase:

* 1 round for neighbours to exchange fragment identifiers (each node must
  know which incident edges are outgoing);
* the measured rounds of two part-wise aggregations (one convergecast of
  candidate MWOEs -- including the broadcast of the winner back to the
  fragment, which the aggregation primitive already performs -- and one
  aggregation for merge coordination);
* the height of the global BFS tree for announcing the end of the phase
  (standard ``O(D)`` synchronisation).

The *construction* of the shortcut itself is not charged rounds: the
distributed construction of HIZ16a takes ``O~(q)`` rounds, the same order as
one aggregation, so charging it would only change constants; DESIGN.md
records this simplification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

import networkx as nx

from ..errors import ConvergenceError
from ..graphs.weights import WEIGHT
from ..congest.aggregation import partwise_aggregate
from ..shortcuts.congestion_capped import oblivious_shortcut
from ..shortcuts.shortcut import Shortcut
from ..structure.spanning import RootedTree, bfs_spanning_tree
from ..utils import canonical_edge

# A shortcut builder receives (graph, tree, parts) and returns a Shortcut; the
# distributed algorithm is oblivious to how the shortcut was obtained.
ShortcutBuilder = Callable[[nx.Graph, RootedTree, Sequence[frozenset]], Shortcut]


def oblivious_builder(graph: nx.Graph, tree: RootedTree, parts: Sequence[frozenset]) -> Shortcut:
    """Default shortcut builder: the structure-oblivious congestion-capped search."""
    return oblivious_shortcut(graph, tree, parts)


@dataclass
class MstResult:
    """Result of one distributed MST execution.

    Attributes:
        edges: the MST edges (canonical form).
        weight: their total weight.
        rounds: total simulated CONGEST rounds across all phases.
        phases: number of Boruvka phases executed.
        phase_rounds: rounds charged per phase.
        phase_qualities: measured shortcut quality per phase (for the
            quality-vs-rounds correlation the experiments report).
    """

    edges: frozenset[tuple[Hashable, Hashable]]
    weight: float
    rounds: int
    phases: int
    phase_rounds: list[int] = field(default_factory=list)
    phase_qualities: list[int] = field(default_factory=list)


def reference_mst_weight(graph: nx.Graph) -> float:
    """Return the weight of a reference (centralised) MST for validation."""
    tree = nx.minimum_spanning_tree(graph, weight=WEIGHT)
    return sum(graph[u][v].get(WEIGHT, 1.0) for u, v in tree.edges())


def _edge_weight(graph: nx.Graph, u: Hashable, v: Hashable) -> float:
    return graph[u][v].get(WEIGHT, 1.0)


def boruvka_mst(
    graph: nx.Graph,
    shortcut_builder: ShortcutBuilder | None = None,
    tree: RootedTree | None = None,
    max_phases: int | None = None,
    validate_shortcuts: bool = False,
) -> MstResult:
    """Compute the MST with Boruvka phases and measured CONGEST round costs.

    Args:
        graph: connected weighted network graph (``weight`` edge attribute;
            missing weights default to 1; ties are broken by edge identity so
            the algorithm is deterministic).
        shortcut_builder: how each phase obtains its shortcut; defaults to the
            structure-oblivious constructor.
        tree: the global spanning tree ``T`` used for T-restriction and for
            the end-of-phase synchronisation; defaults to a BFS tree.
        max_phases: optional safety cap (default ``2 + log2 n``).
        validate_shortcuts: validate every phase's shortcut (slower; the
            tests enable it).

    Returns:
        An :class:`MstResult`; ``result.weight`` always equals the reference
        MST weight (the tests assert this on every workload).
    """
    builder = shortcut_builder if shortcut_builder is not None else oblivious_builder
    tree = tree if tree is not None else bfs_spanning_tree(graph)
    nodes = sorted(graph.nodes(), key=repr)
    if max_phases is None:
        max_phases = 2 + max(1, len(nodes)).bit_length()

    fragment: dict[Hashable, int] = {node: index for index, node in enumerate(nodes)}
    mst_edges: set[tuple[Hashable, Hashable]] = set()
    total_rounds = 0
    phase_rounds: list[int] = []
    phase_qualities: list[int] = []
    sync_cost = max(1, tree.height)

    def fragments_as_parts() -> list[frozenset]:
        groups: dict[int, set[Hashable]] = {}
        for node, frag in fragment.items():
            groups.setdefault(frag, set()).add(node)
        return [frozenset(group) for _, group in sorted(groups.items())]

    for phase in range(max_phases):
        parts = fragments_as_parts()
        if len(parts) <= 1:
            break
        shortcut = builder(graph, tree, parts)
        if validate_shortcuts:
            shortcut.validate()
        phase_qualities.append(shortcut.quality())

        # Every node's best outgoing edge (1 round of neighbour exchange lets
        # every node learn its neighbours' fragment ids).
        infinity = (float("inf"), "", None, None)
        candidate: dict[Hashable, tuple[float, str, Hashable | None, Hashable | None]] = {}
        for node in nodes:
            best = infinity
            for neighbour in graph.neighbors(node):
                if fragment[neighbour] == fragment[node]:
                    continue
                weight = _edge_weight(graph, node, neighbour)
                key = (weight, repr(canonical_edge(node, neighbour)), node, neighbour)
                if key[:2] < best[:2]:
                    best = key
            candidate[node] = best

        aggregation = partwise_aggregate(
            shortcut,
            values=candidate,
            combine=lambda a, b: a if a[:2] <= b[:2] else b,
        )
        # Fragment leaders now know the MWOE; a second aggregation round trip
        # (merge coordination: agreeing on the merged fragment identifier) is
        # charged at the same measured cost.
        rounds_this_phase = 1 + 2 * aggregation.rounds + sync_cost
        total_rounds += rounds_this_phase
        phase_rounds.append(rounds_this_phase)

        # Apply the merges centrally (the simulation already charged the
        # communication); standard union-find with the MWOEs as merge edges.
        union: dict[int, int] = {frag: frag for frag in set(fragment.values())}

        def find(frag: int) -> int:
            while union[frag] != frag:
                union[frag] = union[union[frag]]
                frag = union[frag]
            return frag

        merged_any = False
        for part_index, part in enumerate(shortcut.parts):
            mwoe = aggregation.values[part_index]
            if mwoe is None or mwoe[2] is None:
                continue
            weight, _key, u, v = mwoe
            if weight == float("inf"):
                continue
            ru, rv = find(fragment[u]), find(fragment[v])
            if ru == rv:
                continue
            union[max(ru, rv)] = min(ru, rv)
            mst_edges.add(canonical_edge(u, v))
            merged_any = True
        if not merged_any:
            raise ConvergenceError("Boruvka phase made no progress; graph may be disconnected")
        fragment = {node: find(frag) for node, frag in fragment.items()}
    else:
        if len(set(fragment.values())) > 1:
            raise ConvergenceError("Boruvka did not converge within the phase budget")

    weight = sum(_edge_weight(graph, u, v) for u, v in mst_edges)
    return MstResult(
        edges=frozenset(mst_edges),
        weight=weight,
        rounds=total_rounds,
        phases=len(phase_rounds),
        phase_rounds=phase_rounds,
        phase_qualities=phase_qualities,
    )
