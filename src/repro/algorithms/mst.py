"""Distributed MST via Boruvka phases over low-congestion shortcuts.

This is the algorithm behind Corollary 1: Boruvka's algorithm runs for
``O(log n)`` phases; in each phase every fragment must learn its
minimum-weight outgoing edge (MWOE), which is exactly a part-wise
min-aggregation with the fragments as parts.  Theorem 1 shows that with
shortcuts of quality ``q``, each phase costs ``O~(q(D))`` rounds; here the
phase cost is *measured* by actually scheduling the aggregation messages in
the CONGEST cost model (see :mod:`repro.congest.aggregation`).

Round accounting per phase:

* 1 round for neighbours to exchange fragment identifiers (each node must
  know which incident edges are outgoing);
* the measured rounds of two part-wise aggregations (one convergecast of
  candidate MWOEs -- including the broadcast of the winner back to the
  fragment, which the aggregation primitive already performs -- and one
  aggregation for merge coordination);
* the height of the global BFS tree for announcing the end of the phase
  (standard ``O(D)`` synchronisation).

The *construction* of the shortcut itself is not charged rounds: the
distributed construction of HIZ16a takes ``O~(q)`` rounds, the same order as
one aggregation, so charging it would only change constants; DESIGN.md
records this simplification.

The per-phase aggregations are simulated at the message-schedule level
(they never instantiate node programs), so they are identical under every
simulator mode.  The *node-program* phases of the ``mst`` scenario
workload -- the BFS-tree construction before the Boruvka loop and the
result broadcast after it -- are what the simulator's execution modes
accelerate: under ``run_scenario(..., runtime=True)`` they run on the
vectorized batch programs of :mod:`repro.congest.runtime` with exactly
the same rounds, messages and telemetry (``docs/simulator.md``; the S6
benchmark gates the speedup).

Dual-path contract
------------------

:func:`boruvka_mst` has two implementations behind one signature:

* the **array-native fast path** (default): fragments live in a flat
  union-find owner array over the graph's :class:`~repro.core.GraphView`
  indices, each phase's family is handed to the shortcut machinery as an
  incremental :meth:`~repro.core.PartSet.from_member_lists` part set (no
  per-phase label-frozenset materialisation), the MWOE search is one scan
  over the CSR adjacency slices with per-edge canonical tie-break keys
  precomputed once per run, shortcuts for the default oblivious builder are
  built by driving :class:`~repro.shortcuts.engine.ConstructionEngine`
  directly (reusing the tree's cached Euler-tour index and one
  :class:`~repro.shortcuts.engine.EngineScratch` across all phases), and
  the aggregation runs through
  :func:`~repro.congest.aggregation.partwise_aggregate_indexed` on flat
  value arrays;
* the **preserved reference path**, the seed implementation verbatim
  (label-keyed dicts, per-phase frozenset families), runs inside
  :func:`repro.core.networkx_reference_paths`.

Both return *identical* results -- MST edge set, weight, total rounds,
phases, per-phase rounds and qualities -- which
``tests/test_algorithms_core.py`` pins on every registered graph family,
and ``benchmarks/bench_algorithms_speedup.py`` (S5) gates the fast path's
end-to-end speedup.  (With non-integer edge weights the two paths may sum
the identical MST edge set in different orders, so ``weight`` can differ in
the last float ulp; every generator in this package uses integer-valued
weights, where the sums are exact.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

import networkx as nx

from ..core import GraphView, PartSet, core_enabled, view_of
from ..errors import ConvergenceError
from ..graphs.weights import WEIGHT
from ..congest.aggregation import partwise_aggregate, partwise_aggregate_indexed
from ..shortcuts.congestion_capped import oblivious_shortcut, oblivious_sweep
from ..shortcuts.engine import ConstructionEngine, EngineScratch
from ..shortcuts.shortcut import Shortcut
from ..structure.spanning import RootedTree, bfs_spanning_tree
from ..utils import canonical_edge

# A shortcut builder receives (graph, tree, parts) and returns a Shortcut; the
# distributed algorithm is oblivious to how the shortcut was obtained.
ShortcutBuilder = Callable[[nx.Graph, RootedTree, Sequence[frozenset]], Shortcut]


def oblivious_builder(graph: nx.Graph, tree: RootedTree, parts: Sequence[frozenset]) -> Shortcut:
    """Default shortcut builder: the structure-oblivious congestion-capped search.

    Marked ``uses_engine``: the array-native Boruvka loop recognises this
    builder (and any other builder carrying the flag, like the scenario
    registry's ``oblivious`` constructor) and drives the construction engine
    directly on its per-phase :class:`~repro.core.PartSet` instead of
    round-tripping the fragments through label frozensets.
    """
    return oblivious_shortcut(graph, tree, parts)


# The fast path may construct this builder's result engine-side; the two are
# pinned identical by the construction-engine differential tests.
oblivious_builder.uses_engine = True


@dataclass
class MstResult:
    """Result of one distributed MST execution.

    Attributes:
        edges: the MST edges (canonical form).
        weight: their total weight.
        rounds: total simulated CONGEST rounds across all phases.
        phases: number of Boruvka phases executed.
        phase_rounds: rounds charged per phase.
        phase_qualities: measured shortcut quality per phase (for the
            quality-vs-rounds correlation the experiments report).
    """

    edges: frozenset[tuple[Hashable, Hashable]]
    weight: float
    rounds: int
    phases: int
    phase_rounds: list[int] = field(default_factory=list)
    phase_qualities: list[int] = field(default_factory=list)


def reference_mst_weight(graph: nx.Graph) -> float:
    """Return the weight of a reference (centralised) MST for validation.

    This is the centralised ``networkx`` oracle (Kruskal), used by tests and
    experiment records to check the distributed result; it is not part of
    the measured algorithm and has no fast-path twin.
    """
    tree = nx.minimum_spanning_tree(graph, weight=WEIGHT)
    return sum(graph[u][v].get(WEIGHT, 1.0) for u, v in tree.edges())


def native_mst_weight(view: GraphView) -> float:
    """Return the reference MST weight of a native instance, nx-free.

    The :class:`~repro.core.GraphView` twin of :func:`reference_mst_weight`:
    hands the CSR arrays to ``scipy.sparse.csgraph.minimum_spanning_tree``,
    so million-node instances can be validated without materialising an
    ``nx.Graph``.  Requires strictly positive weights (scipy's CSR MST
    treats explicit zeros as absent edges); every weight scheme in this
    package draws from ``[low, high]`` with ``low >= 1``.  The float sum may
    differ from the distributed result in the last ulps at large ``n``
    (different summation order), so callers compare with a relative
    tolerance rather than the exact equality the integer-weight nx oracle
    affords.
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import minimum_spanning_tree

    core = view.core
    matrix = csr_matrix(
        (core.weights, core.indices, core.indptr),
        shape=(core.num_nodes, core.num_nodes),
    )
    return float(minimum_spanning_tree(matrix).sum())


def _edge_weight(graph: nx.Graph, u: Hashable, v: Hashable) -> float:
    return graph[u][v].get(WEIGHT, 1.0)


def boruvka_mst(
    graph: nx.Graph | GraphView,
    shortcut_builder: ShortcutBuilder | None = None,
    tree: RootedTree | None = None,
    max_phases: int | None = None,
    validate_shortcuts: bool = False,
) -> MstResult:
    """Compute the MST with Boruvka phases and measured CONGEST round costs.

    Args:
        graph: connected weighted network graph (``weight`` edge attribute;
            missing weights default to 1; ties are broken by edge identity so
            the algorithm is deterministic).  Accepts a weighted
            :class:`~repro.core.GraphView` directly (the native generators'
            output): the fast path then reads weights straight from the CSR
            arrays and never materialises an ``nx.Graph`` -- the million-node
            configuration of the S7 scale gate.  A view requires an
            engine-driven builder (the default); the reference path under
            :func:`repro.core.networkx_reference_paths` materialises the
            adapter graph.
        shortcut_builder: how each phase obtains its shortcut; defaults to the
            structure-oblivious constructor.
        tree: the global spanning tree ``T`` used for T-restriction and for
            the end-of-phase synchronisation; defaults to a BFS tree.
        max_phases: optional safety cap (default ``2 + log2 n``).
        validate_shortcuts: validate every phase's shortcut (slower; the
            tests enable it).

    Returns:
        An :class:`MstResult`; ``result.weight`` always equals the reference
        MST weight (the tests assert this on every workload).

    Reference path: inside :func:`repro.core.networkx_reference_paths` the
    preserved seed implementation runs (label-keyed fragments, per-phase
    frozenset families); the array-native fast path returns identical
    results on every field -- see the module docstring for the exact
    equality guarantee.
    """
    if core_enabled():
        return _boruvka_mst_core(
            graph, shortcut_builder, tree, max_phases, validate_shortcuts
        )
    if isinstance(graph, GraphView):
        graph = graph.graph  # reference path runs on the (lazy) nx adapter
    return _boruvka_mst_reference(
        graph, shortcut_builder, tree, max_phases, validate_shortcuts
    )


def _boruvka_mst_core(
    graph: nx.Graph,
    shortcut_builder: ShortcutBuilder | None,
    tree: RootedTree | None,
    max_phases: int | None,
    validate_shortcuts: bool,
) -> MstResult:
    """The array-native Boruvka loop (see the module docstring)."""
    builder = shortcut_builder if shortcut_builder is not None else oblivious_builder
    use_engine = bool(getattr(builder, "uses_engine", False))
    view = view_of(graph)
    tree = tree if tree is not None else bfs_spanning_tree(view)
    n = len(view)
    if max_phases is None:
        max_phases = 2 + max(1, n).bit_length()

    core = view.core
    indptr, indices = core._indptr_list, core._indices_list
    node_of = view.nodes

    # Canonical per-slot tie-break keys, computed once per run: the reference
    # recomputes repr(canonical_edge(u, v)) for every directed edge in every
    # phase; the string for slot (u -> v) here is byte-identical to that repr.
    # Weights are re-read from the nx graph per run rather than taken from
    # the CSR cache: the frozen-once-viewed convention covers topology, but
    # callers legitimately reassign *weights* between runs over one graph
    # (the README quickstart does), and the reference path sees those live.
    node_repr = [repr(label) for label in node_of]
    slot_key = [""] * len(indices)
    if isinstance(graph, GraphView):
        # Native instances carry their weights in the CSR arrays themselves
        # (the view is the primary representation -- there is no nx graph to
        # re-read, and weights are baked in at generation time).
        edge_weights = core._weights_list
        for u in range(n):
            ru = node_repr[u]
            for offset in range(indptr[u], indptr[u + 1]):
                rv = node_repr[indices[offset]]
                slot_key[offset] = f"({ru}, {rv})" if ru <= rv else f"({rv}, {ru})"
    else:
        edge_weights = [1.0] * len(indices)
        for u in range(n):
            ru = node_repr[u]
            adjacency = graph.adj[node_of[u]]
            for offset in range(indptr[u], indptr[u + 1]):
                v = indices[offset]
                rv = node_repr[v]
                slot_key[offset] = f"({ru}, {rv})" if ru <= rv else f"({rv}, {ru})"
                edge_weights[offset] = adjacency[node_of[v]].get(WEIGHT, 1.0)

    # Fragment state: a flat owner array (vertex index -> fragment root) and
    # incrementally merged member lists.  Roots are the minimum vertex index
    # of their fragment (merges always point the larger root at the smaller,
    # exactly like the reference's union), so the ascending roots list is
    # also the reference's ascending-fragment-id part order.
    frag = list(range(n))
    members: list[list[int]] = [[index] for index in range(n)]
    roots = list(range(n))

    mst_edges: set[tuple[Hashable, Hashable]] = set()
    # Weight of each accepted MWOE, recorded at merge time: for GraphView
    # inputs there is no nx adjacency to re-read the final sum from.
    merge_weight: dict[tuple[Hashable, Hashable], float] = {}
    total_rounds = 0
    phase_rounds: list[int] = []
    phase_qualities: list[int] = []
    sync_cost = max(1, tree.height)
    scratch = EngineScratch(n) if use_engine else None
    infinity = (float("inf"), "", -1, -1)

    for _phase in range(max_phases):
        if len(roots) <= 1:
            break
        part_set = PartSet.from_member_lists(view, [members[root] for root in roots])
        if use_engine:
            engine = ConstructionEngine(graph, tree, part_set=part_set, scratch=scratch)
            shortcut = oblivious_sweep(engine)
        else:
            shortcut = builder(graph, tree, part_set.label_parts())
        if validate_shortcuts:
            shortcut.validate()
        quality = shortcut.chosen_quality
        phase_qualities.append(quality if quality is not None else shortcut.quality())

        # Every vertex's best outgoing edge (1 round of neighbour exchange
        # lets every node learn its neighbours' fragment ids): one scan over
        # the CSR slices against the owner array.
        candidate: list[tuple] = [infinity] * n
        for u in range(n):
            fragment_u = frag[u]
            best_w = float("inf")
            best_k = ""
            best_v = -1
            for offset in range(indptr[u], indptr[u + 1]):
                v = indices[offset]
                if frag[v] == fragment_u:
                    continue
                w = edge_weights[offset]
                if w > best_w:
                    continue
                k = slot_key[offset]
                if w < best_w or k < best_k:
                    best_w, best_k, best_v = w, k, v
            if best_v >= 0:
                candidate[u] = (best_w, best_k, u, best_v)

        aggregation = partwise_aggregate_indexed(
            shortcut,
            values=candidate,
            combine=lambda a, b: a if a[:2] <= b[:2] else b,
        )
        # Fragment leaders now know the MWOE; a second aggregation round trip
        # (merge coordination: agreeing on the merged fragment identifier) is
        # charged at the same measured cost.
        rounds_this_phase = 1 + 2 * aggregation.rounds + sync_cost
        total_rounds += rounds_this_phase
        phase_rounds.append(rounds_this_phase)

        # Apply the merges centrally (the simulation already charged the
        # communication); union-find over the pre-phase roots with the MWOEs
        # as merge edges.
        union: dict[int, int] = {root: root for root in roots}

        def find(root: int) -> int:
            while union[root] != root:
                union[root] = union[union[root]]
                root = union[root]
            return root

        merged_any = False
        for part_index, _root in enumerate(roots):
            mwoe = aggregation.values[part_index]
            if mwoe is None or mwoe[2] < 0:
                continue
            weight, _key, u, v = mwoe
            if weight == float("inf"):
                continue
            ru, rv = find(frag[u]), find(frag[v])
            if ru == rv:
                continue
            union[max(ru, rv)] = min(ru, rv)
            edge = canonical_edge(node_of[u], node_of[v])
            mst_edges.add(edge)
            merge_weight[edge] = weight
            merged_any = True
        if not merged_any:
            raise ConvergenceError("Boruvka phase made no progress; graph may be disconnected")
        surviving: list[int] = []
        for root in roots:
            winner = find(root)
            if winner == root:
                surviving.append(root)
            else:
                moved = members[root]
                for vertex in moved:
                    frag[vertex] = winner
                members[winner].extend(moved)
                members[root] = []
        roots = surviving
    else:
        if len(roots) > 1:
            raise ConvergenceError("Boruvka did not converge within the phase budget")

    if isinstance(graph, GraphView):
        weight = sum(merge_weight[edge] for edge in mst_edges)
    else:
        weight = sum(_edge_weight(graph, u, v) for u, v in mst_edges)
    return MstResult(
        edges=frozenset(mst_edges),
        weight=weight,
        rounds=total_rounds,
        phases=len(phase_rounds),
        phase_rounds=phase_rounds,
        phase_qualities=phase_qualities,
    )


def _boruvka_mst_reference(
    graph: nx.Graph,
    shortcut_builder: ShortcutBuilder | None,
    tree: RootedTree | None,
    max_phases: int | None,
    validate_shortcuts: bool,
) -> MstResult:
    """The preserved seed implementation (label-keyed networkx structures)."""
    builder = shortcut_builder if shortcut_builder is not None else oblivious_builder
    tree = tree if tree is not None else bfs_spanning_tree(graph)
    nodes = sorted(graph.nodes(), key=repr)
    if max_phases is None:
        max_phases = 2 + max(1, len(nodes)).bit_length()

    fragment: dict[Hashable, int] = {node: index for index, node in enumerate(nodes)}
    mst_edges: set[tuple[Hashable, Hashable]] = set()
    total_rounds = 0
    phase_rounds: list[int] = []
    phase_qualities: list[int] = []
    sync_cost = max(1, tree.height)

    def fragments_as_parts() -> list[frozenset]:
        groups: dict[int, set[Hashable]] = {}
        for node, frag in fragment.items():
            groups.setdefault(frag, set()).add(node)
        return [frozenset(group) for _, group in sorted(groups.items())]

    for phase in range(max_phases):
        parts = fragments_as_parts()
        if len(parts) <= 1:
            break
        shortcut = builder(graph, tree, parts)
        if validate_shortcuts:
            shortcut.validate()
        phase_qualities.append(shortcut.quality())

        # Every node's best outgoing edge (1 round of neighbour exchange lets
        # every node learn its neighbours' fragment ids).
        infinity = (float("inf"), "", None, None)
        candidate: dict[Hashable, tuple[float, str, Hashable | None, Hashable | None]] = {}
        for node in nodes:
            best = infinity
            for neighbour in graph.neighbors(node):
                if fragment[neighbour] == fragment[node]:
                    continue
                weight = _edge_weight(graph, node, neighbour)
                key = (weight, repr(canonical_edge(node, neighbour)), node, neighbour)
                if key[:2] < best[:2]:
                    best = key
            candidate[node] = best

        aggregation = partwise_aggregate(
            shortcut,
            values=candidate,
            combine=lambda a, b: a if a[:2] <= b[:2] else b,
        )
        # Fragment leaders now know the MWOE; a second aggregation round trip
        # (merge coordination: agreeing on the merged fragment identifier) is
        # charged at the same measured cost.
        rounds_this_phase = 1 + 2 * aggregation.rounds + sync_cost
        total_rounds += rounds_this_phase
        phase_rounds.append(rounds_this_phase)

        # Apply the merges centrally (the simulation already charged the
        # communication); standard union-find with the MWOEs as merge edges.
        union: dict[int, int] = {frag: frag for frag in set(fragment.values())}

        def find(frag: int) -> int:
            while union[frag] != frag:
                union[frag] = union[union[frag]]
                frag = union[frag]
            return frag

        merged_any = False
        for part_index, part in enumerate(shortcut.parts):
            mwoe = aggregation.values[part_index]
            if mwoe is None or mwoe[2] is None:
                continue
            weight, _key, u, v = mwoe
            if weight == float("inf"):
                continue
            ru, rv = find(fragment[u]), find(fragment[v])
            if ru == rv:
                continue
            union[max(ru, rv)] = min(ru, rv)
            mst_edges.add(canonical_edge(u, v))
            merged_any = True
        if not merged_any:
            raise ConvergenceError("Boruvka phase made no progress; graph may be disconnected")
        fragment = {node: find(frag) for node, frag in fragment.items()}
    else:
        if len(set(fragment.values())) > 1:
            raise ConvergenceError("Boruvka did not converge within the phase budget")

    weight = sum(_edge_weight(graph, u, v) for u, v in mst_edges)
    return MstResult(
        edges=frozenset(mst_edges),
        weight=weight,
        rounds=total_rounds,
        phases=len(phase_rounds),
        phase_rounds=phase_rounds,
        phase_qualities=phase_qualities,
    )
