"""repro: reproduction of "Minor Excluded Network Families Admit Fast Distributed Algorithms".

The package implements the PODC 2018 paper of Haeupler, Li and Zuzic end to
end: the graph substrates of the Graph Structure Theorem (planar,
bounded-genus, bounded-treewidth, apices, vortices, k-clique-sums), the
low-congestion tree-restricted shortcut framework with one constructor per
structural theorem of the paper, a synchronous CONGEST simulator, and the
distributed MST and (1+eps)-approximate min-cut algorithms whose round
counts the shortcuts accelerate.

Quickstart::

    import repro

    sample = repro.sample_lk_graph(num_bags=4, k=3, bag_size=25, seed=1)
    tree = repro.bfs_spanning_tree(sample.graph)
    parts = repro.tree_fragment_parts(sample.graph, tree, num_parts=8, seed=2)
    shortcut = repro.minor_free_shortcut(sample, tree, parts)
    print(shortcut.measure())                       # block / congestion / quality

    repro.assign_random_weights(sample.graph, seed=3)
    result = repro.boruvka_mst(sample.graph)
    print(result.weight, result.rounds)

See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for the
reproduced results.
"""

from .errors import (
    ConvergenceError,
    InvalidDecompositionError,
    InvalidGraphError,
    InvalidPartitionError,
    InvalidShortcutError,
    ReproError,
    SimulationError,
)
from .graphs import (
    AlmostEmbeddableGraph,
    Bag,
    CliqueSumDecomposition,
    GenusGraph,
    MinorFreeGraph,
    VortexWitness,
    add_apices,
    add_vortex,
    assign_adversarial_weights,
    assign_random_weights,
    assign_unit_weights,
    build_almost_embeddable,
    clique_sum_compose,
    cycle_graph,
    excludes_minor,
    genus_grid,
    grid_graph,
    has_minor,
    is_planar,
    lower_bound_graph,
    planar_plus_apex,
    random_delaunay_triangulation,
    random_ktree,
    random_outerplanar_graph,
    random_partial_ktree,
    random_series_parallel_graph,
    sample_lk_graph,
    toroidal_grid,
    wheel_graph,
)
from .structure import (
    CellAssignment,
    CellPartition,
    RootedTree,
    TreeDecomposition,
    bfs_spanning_tree,
    cells_from_tree_without_apices,
    compute_cell_assignment,
    fold_decomposition_tree,
    genus_vortex_decomposition,
    graph_diameter,
    greedy_tree_decomposition,
    heavy_light_chains,
)
from .shortcuts import (
    Shortcut,
    ShortcutQuality,
    apex_shortcut,
    best_shortcut,
    boruvka_parts,
    clique_sum_shortcut,
    congestion_capped_shortcut,
    empty_shortcut,
    genus_vortex_shortcut,
    measure_constructors,
    minor_free_shortcut,
    oblivious_shortcut,
    path_parts,
    planar_shortcut,
    random_connected_parts,
    steiner_shortcut,
    tree_fragment_parts,
    treewidth_shortcut,
    validate_parts,
    whole_tree_shortcut,
)
from .congest import (
    CongestSimulator,
    NodeContext,
    NodeProgram,
    SimulationResult,
    distributed_bfs_tree,
    flood_max_id,
    partwise_aggregate,
)
from .algorithms import (
    MinCutResult,
    MstResult,
    approximate_min_cut,
    boruvka_mst,
    exact_min_cut,
    gkp_reference_rounds,
    no_shortcut_builder,
    reference_mst_weight,
)

__version__ = "1.0.0"

__all__ = [
    "AlmostEmbeddableGraph",
    "Bag",
    "CellAssignment",
    "CellPartition",
    "CliqueSumDecomposition",
    "CongestSimulator",
    "ConvergenceError",
    "GenusGraph",
    "InvalidDecompositionError",
    "InvalidGraphError",
    "InvalidPartitionError",
    "InvalidShortcutError",
    "MinCutResult",
    "MinorFreeGraph",
    "MstResult",
    "NodeContext",
    "NodeProgram",
    "ReproError",
    "RootedTree",
    "Shortcut",
    "ShortcutQuality",
    "SimulationError",
    "SimulationResult",
    "TreeDecomposition",
    "VortexWitness",
    "add_apices",
    "add_vortex",
    "apex_shortcut",
    "approximate_min_cut",
    "assign_adversarial_weights",
    "assign_random_weights",
    "assign_unit_weights",
    "best_shortcut",
    "bfs_spanning_tree",
    "boruvka_mst",
    "boruvka_parts",
    "build_almost_embeddable",
    "cells_from_tree_without_apices",
    "clique_sum_compose",
    "clique_sum_shortcut",
    "compute_cell_assignment",
    "congestion_capped_shortcut",
    "cycle_graph",
    "distributed_bfs_tree",
    "empty_shortcut",
    "exact_min_cut",
    "excludes_minor",
    "flood_max_id",
    "fold_decomposition_tree",
    "genus_grid",
    "genus_vortex_decomposition",
    "genus_vortex_shortcut",
    "gkp_reference_rounds",
    "graph_diameter",
    "greedy_tree_decomposition",
    "grid_graph",
    "has_minor",
    "heavy_light_chains",
    "is_planar",
    "lower_bound_graph",
    "measure_constructors",
    "minor_free_shortcut",
    "no_shortcut_builder",
    "oblivious_shortcut",
    "partwise_aggregate",
    "path_parts",
    "planar_plus_apex",
    "planar_shortcut",
    "random_connected_parts",
    "random_delaunay_triangulation",
    "random_ktree",
    "random_outerplanar_graph",
    "random_partial_ktree",
    "random_series_parallel_graph",
    "reference_mst_weight",
    "sample_lk_graph",
    "steiner_shortcut",
    "toroidal_grid",
    "tree_fragment_parts",
    "treewidth_shortcut",
    "validate_parts",
    "wheel_graph",
    "whole_tree_shortcut",
]
