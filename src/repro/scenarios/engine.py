"""Scenario specs and the matrix runner.

A :class:`Scenario` is a declarative, JSON-friendly description of one run:
*family* x *constructor* x *algorithm*, plus generator parameters, a part
family and a seed.  :func:`run_scenario` executes one spec;
:func:`run_matrix` sweeps a full family-by-constructor grid through a
shared :class:`InstanceCache`; :func:`scenario_matrix` builds the default
sweep (every registered family crossed with every applicable constructor).

:func:`run_matrix` takes ``jobs=N`` to fan the sweep out over a process
pool (one :class:`InstanceCache` per worker process, results in the same
deterministic order as the serial sweep).  ``python -m repro.scenarios`` is
the command-line entry point over these functions.

Scenarios whose workload drives the CONGEST simulator (the ``mst``
algorithm's BFS build and result broadcast) accept a simulator mode:
``simulator_cls`` selects between the active-set default, the full-scan
:class:`~repro.congest.reference.ReferenceSimulator` and the vectorized
:class:`~repro.congest.runtime.RuntimeSimulator`; ``runtime=True`` on
:func:`run_scenario` / :func:`run_matrix` (and ``--simulator runtime`` on
the CLI) is shorthand for the latter.  All three modes produce identical
records -- only the wall-clock differs (see ``docs/simulator.md``).

Those same simulated phases accept seeded fault injection: ``faults`` (a
:class:`~repro.congest.faults.FaultModel` or a spec string such as
``"drop=0.05,crash=0.01:8"``) plus ``fault_seed`` on :func:`run_scenario` /
:func:`run_matrix` (``--faults`` / ``--fault-seed`` on the CLI).  Fault
decisions are pure hashes of (seed, round, edge), so a faulty sweep is as
deterministic -- and as pool-safe under ``jobs=N`` -- as a fail-free one,
and identical across all three simulator modes.  A null model (all rates
zero) is normalised away and reproduces fail-free records byte-for-byte.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..congest.faults import FaultModel, parse_fault_spec
from ..congest.runtime import RuntimeSimulator
from ..congest.simulator import CongestSimulator
from ..core import core_enabled, networkx_reference_paths
from .instances import InstanceCache, ScenarioInstance
from .registry import (
    algorithm,
    applicable_constructors,
    constructor,
    family,
    family_names,
)

__all__ = [
    "Scenario",
    "ScenarioRecord",
    "build_instance",
    "run_matrix",
    "run_scenario",
    "scenario_matrix",
]


@dataclass(frozen=True)
class Scenario:
    """A declarative spec for one runnable scenario.

    Attributes:
        name: free-form label recorded in the result.
        family: registry name of the graph family.
        constructor: registry name of the shortcut construction.
        algorithm: registry name of the workload (default: quality sweep).
        params: family generator parameters (merged over the family
            defaults).
        parts: part-family spec, e.g. ``{"kind": "tree_fragments",
            "num_parts": 6}``.
        algorithm_params: extra keyword arguments for the algorithm runner
            (e.g. ``{"epsilon": 0.5}`` for min-cut).
        seed: the seed shared by the generator and the workload.
        native: build the instance CSR-first through the family's
            ``native_build`` (see :class:`~repro.scenarios.registry.FamilySpec`);
            this admits sizes the ``nx`` generator path cannot.
    """

    name: str
    family: str
    constructor: str
    algorithm: str = "quality"
    params: Mapping[str, object] = field(default_factory=dict)
    parts: Mapping[str, object] = field(default_factory=lambda: {"kind": "tree_fragments"})
    algorithm_params: Mapping[str, object] = field(default_factory=dict)
    seed: int = 0
    native: bool = False

    def describe(self) -> dict[str, object]:
        described = {
            "scenario": self.name,
            "family": self.family,
            "constructor": self.constructor,
            "algorithm": self.algorithm,
            "params": dict(self.params),
            "parts": dict(self.parts),
            "algorithm_params": dict(self.algorithm_params),
            "seed": self.seed,
        }
        if self.native:
            # Only stamped when set, so pre-native records stay byte-identical.
            described["native"] = True
        return described


@dataclass
class ScenarioRecord:
    """The JSON-friendly outcome of one scenario run."""

    scenario: dict[str, object]
    instance: dict[str, object]
    applicable: bool
    result: dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {
            **self.scenario,
            "instance": self.instance,
            "applicable": self.applicable,
            "result": dict(self.result),
        }


def build_instance(
    name: str,
    params: Mapping[str, object] | None = None,
    seed: int = 0,
    cache: InstanceCache | None = None,
    native: bool = False,
) -> ScenarioInstance:
    """Build (or fetch from ``cache``) one instance of a registered family."""
    spec = family(name)
    merged = dict(spec.default_params)
    if params:
        merged.update(params)
    if cache is None:
        return spec.instantiate(merged, seed=seed, native=native)
    return cache.get(
        name,
        merged,
        seed,
        lambda: spec.instantiate(merged, seed=seed, native=native),
        native=native,
    )


def _resolve_faults(faults: FaultModel | str | None) -> FaultModel | None:
    """Normalise a ``faults`` argument: spec strings parse, null models drop.

    Returning None for a null model means the fail-free code path runs
    unchanged, so ``faults="drop=0"`` reproduces a no-faults sweep exactly.
    """
    if faults is None:
        return None
    model = parse_fault_spec(faults) if isinstance(faults, str) else faults
    return None if model.is_null else model


def run_scenario(
    scenario: Scenario,
    cache: InstanceCache | None = None,
    simulator_cls: type[CongestSimulator] = CongestSimulator,
    runtime: bool = False,
    faults: FaultModel | str | None = None,
    fault_seed: int = 0,
) -> ScenarioRecord:
    """Execute one scenario spec and return its record.

    A constructor that is not applicable to the instance (e.g. the planar
    construction on a torus) yields a record with ``applicable=False``
    rather than an exception, so matrix sweeps stay total.

    ``runtime=True`` runs the simulated phases under the vectorized
    :class:`~repro.congest.runtime.RuntimeSimulator` (shorthand for
    ``simulator_cls=RuntimeSimulator``); the record is identical to the
    per-node modes, only faster.

    An active ``faults`` model (or spec string) is handed to the workload
    runner together with ``fault_seed``; a null/absent model is not passed
    at all, so fail-free records are unchanged.  Fault settings already in
    ``scenario.algorithm_params`` win over the call-level arguments.
    """
    if runtime:
        simulator_cls = RuntimeSimulator
    instance = build_instance(
        scenario.family, scenario.params, scenario.seed, cache, native=scenario.native
    )
    spec = constructor(scenario.constructor)
    record = ScenarioRecord(
        scenario=scenario.describe(),
        instance=instance.describe(),
        applicable=spec.applicable(instance),
    )
    if not record.applicable:
        return record
    runner = algorithm(scenario.algorithm)
    if runner.uses_parts:
        parts_spec = dict(scenario.parts)
        kind = str(parts_spec.pop("kind", "tree_fragments"))
        parts = instance.parts(kind, **parts_spec)
    else:
        parts = ()
    algorithm_params = dict(scenario.algorithm_params)
    model = _resolve_faults(faults)
    if model is not None:
        algorithm_params.setdefault("faults", model)
        algorithm_params.setdefault("fault_seed", fault_seed)
    record.result = runner.run(
        instance,
        instance.tree,
        parts,
        spec.builder_for(instance),
        seed=scenario.seed,
        simulator_cls=simulator_cls,
        **algorithm_params,
    )
    return record


def scenario_matrix(
    families: Sequence[str] | None = None,
    constructors: Sequence[str] | None = None,
    algorithm_name: str = "quality",
    size: str = "default",
    seed: int = 0,
    parts: Mapping[str, object] | None = None,
    algorithm_params: Mapping[str, object] | None = None,
    cache: InstanceCache | None = None,
    native: bool = False,
) -> list[Scenario]:
    """Build the scenario grid: families x constructors (applicable only).

    Args:
        families: family names (default: every registered family, or --
            with ``native=True`` -- every family carrying a native builder).
        constructors: constructor names to try (default: every registered
            constructor); constructors inapplicable to a family's instance
            are skipped.
        algorithm_name: workload to run on every cell.
        size: ``"default"`` or ``"tiny"`` (the family's CI smoke sizes).
        seed: shared generator/workload seed.
        parts: part-family spec shared by all cells.
        algorithm_params: extra algorithm keyword arguments for all cells.
        cache: pass the cache later handed to :func:`run_matrix` so the
            applicability probe instances are built only once.
        native: build every cell's instance CSR-first (families without a
            ``native_build`` fail loudly when named explicitly).
    """
    if size not in ("default", "tiny"):
        raise ValueError(f"size must be 'default' or 'tiny', got {size!r}")
    if constructors is not None:
        for name in constructors:
            constructor(name)  # typo'd names fail loudly, not as an empty sweep
    if families is not None:
        chosen = list(families)
    elif native:
        chosen = [
            name for name in family_names() if family(name).native_build is not None
        ]
    else:
        chosen = family_names()
    scenarios: list[Scenario] = []
    for family_name in chosen:
        spec = family(family_name)
        params = dict(spec.tiny_params if size == "tiny" else spec.default_params)
        probe = build_instance(family_name, params, seed, cache, native=native)
        names = applicable_constructors(probe)
        if constructors is not None:
            names = [name for name in constructors if name in names]
        for constructor_name in names:
            scenarios.append(Scenario(
                name=f"{family_name}/{constructor_name}/{algorithm_name}",
                family=family_name,
                constructor=constructor_name,
                algorithm=algorithm_name,
                params=params,
                parts=dict(parts) if parts is not None else {"kind": "tree_fragments"},
                algorithm_params=dict(algorithm_params) if algorithm_params else {},
                seed=seed,
                native=native,
            ))
    return scenarios


# Per-worker-process instance cache for parallel sweeps: tasks landing on the
# same worker share generated instances (and their GraphViews) just like a
# serial sweep shares one InstanceCache.
_WORKER_CACHE: InstanceCache | None = None


def _run_scenario_job(
    payload: tuple[Scenario, type, bool, FaultModel | None, int]
) -> dict[str, object]:
    global _WORKER_CACHE
    scenario, simulator_cls, use_core, faults, fault_seed = payload
    if _WORKER_CACHE is None:
        _WORKER_CACHE = InstanceCache()
    if not use_core:
        # The parent sweep ran inside networkx_reference_paths(); mirror that
        # in the worker (the flag is a module global, not inherited by spawn).
        with networkx_reference_paths():
            return run_scenario(
                scenario,
                cache=_WORKER_CACHE,
                simulator_cls=simulator_cls,
                faults=faults,
                fault_seed=fault_seed,
            ).as_dict()
    return run_scenario(
        scenario,
        cache=_WORKER_CACHE,
        simulator_cls=simulator_cls,
        faults=faults,
        fault_seed=fault_seed,
    ).as_dict()


def run_matrix(
    scenarios: Iterable[Scenario],
    cache: InstanceCache | None = None,
    simulator_cls: type[CongestSimulator] = CongestSimulator,
    jobs: int = 1,
    runtime: bool = False,
    faults: FaultModel | str | None = None,
    fault_seed: int = 0,
) -> list[dict[str, object]]:
    """Run every scenario through a shared instance cache; return JSON records.

    With ``jobs > 1`` the scenarios are distributed over a process pool; each
    worker keeps its own :class:`InstanceCache` for the sweep, and the
    records come back in the same order as ``scenarios`` (scenario execution
    is deterministic, so the parallel sweep is record-for-record identical
    to the serial one).  ``runtime=True`` is shorthand for
    ``simulator_cls=RuntimeSimulator`` (simulator classes pickle by
    reference, so the runtime mode fans out over the pool like the others).

    ``faults``/``fault_seed`` apply one seeded fault model to every cell's
    simulated phases.  Fault decisions are stateless hashes, and the resolved
    :class:`~repro.congest.faults.FaultModel` (a frozen dataclass) pickles
    into the workers, so a faulty parallel sweep remains record-for-record
    identical to the serial one.
    """
    if runtime:
        simulator_cls = RuntimeSimulator
    model = _resolve_faults(faults)
    scenarios = list(scenarios)
    if jobs is not None and jobs > 1 and len(scenarios) > 1:
        payloads = [
            (scenario, simulator_cls, core_enabled(), model, fault_seed)
            for scenario in scenarios
        ]
        with ProcessPoolExecutor(max_workers=min(jobs, len(scenarios))) as pool:
            return list(pool.map(_run_scenario_job, payloads))
    cache = cache if cache is not None else InstanceCache()
    return [
        run_scenario(
            scenario,
            cache=cache,
            simulator_cls=simulator_cls,
            faults=model,
            fault_seed=fault_seed,
        ).as_dict()
        for scenario in scenarios
    ]
