"""Command-line entry point: run a scenario matrix and print JSON records.

The sweep is filterable along all three registry axes (``--families``,
``--constructors``, ``--algorithms``) and can fan out over a process pool
with ``--jobs N``; records are always emitted in the same deterministic
(family x constructor x algorithm) order regardless of ``--jobs``.

``--simulator`` selects the execution mode for the simulated phases of the
``mst`` workload (``active`` per-node active-set, ``reference`` full-scan
oracle, ``runtime`` vectorized batch programs); records are identical
across modes, only the wall-clock differs.

``--faults`` injects seeded faults into those simulated phases -- a spec
string such as ``drop=0.05,delay=0.02:3,dup=0.01,crash=0.01:8,shuffle``
(see :func:`repro.congest.faults.parse_fault_spec`) -- and ``--fault-seed``
picks the decision stream.  Faulty sweeps stay deterministic across
``--jobs`` and ``--simulator`` choices.

Examples::

    python -m repro.scenarios --list
    python -m repro.scenarios --size tiny
    python -m repro.scenarios --families planar --algorithms mst --simulator runtime
    python -m repro.scenarios --families planar --algorithms mst --native \
        --constructors oblivious --params side=400 --simulator runtime
    python -m repro.scenarios --families planar --algorithms mst \
        --faults drop=0.05,crash=0.01:8 --fault-seed 7
    python -m repro.scenarios --families planar apex --constructors oblivious steiner \
        --algorithms quality mst --seed 3 --jobs 4 --output records.json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from ..congest.faults import parse_fault_spec
from ..congest.reference import ReferenceSimulator
from ..congest.runtime import RuntimeSimulator
from ..congest.simulator import CongestSimulator
from .engine import run_matrix, scenario_matrix
from .instances import InstanceCache
from .registry import (
    _ALGORITHMS,
    _CONSTRUCTORS,
    _FAMILIES,
    algorithm_names,
    constructor_names,
    family_names,
)


def _print_registry() -> None:
    print("families:")
    for name in family_names():
        spec = _FAMILIES[name]
        print(f"  {name:12s} {spec.description}  (default {dict(spec.default_params)})")
    print("constructors:")
    for name in constructor_names():
        print(f"  {name:12s} {_CONSTRUCTORS[name].description}")
    print("algorithms:")
    for name in algorithm_names():
        print(f"  {name:12s} {_ALGORITHMS[name].description}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run a family x constructor x algorithm scenario matrix.",
    )
    # nargs="+" everywhere: a bare `--families` with no names is a usage
    # error instead of silently collapsing the sweep to nothing.
    parser.add_argument("--families", nargs="+", default=None, help="families to sweep")
    parser.add_argument(
        "--constructors", nargs="+", default=None, help="constructors to try per family"
    )
    parser.add_argument(
        "--algorithms",
        "--algorithm",
        dest="algorithms",
        nargs="+",
        default=("quality",),
        choices=algorithm_names(),
        help="workloads per cell (one sweep per algorithm, concatenated)",
    )
    parser.add_argument(
        "--size", default="default", choices=("default", "tiny"), help="instance sizes"
    )
    parser.add_argument(
        "--native",
        action="store_true",
        help="build instances CSR-first via the families' native builders "
        "(admits sizes the nx generator path cannot)",
    )
    parser.add_argument(
        "--params",
        nargs="+",
        default=None,
        metavar="KEY=VALUE",
        help="generator parameter overrides applied to every swept family, "
        "e.g. --params side=1000",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--num-parts", type=int, default=6, help="parts per instance")
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes for the sweep (1 = serial)"
    )
    parser.add_argument(
        "--simulator",
        default="active",
        choices=("active", "reference", "runtime"),
        help="CONGEST execution mode for simulated phases (identical records)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        help="fault spec for simulated phases, e.g. 'drop=0.05,delay=0.02:3,crash=0.01:8'",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0, help="seed for the fault decision stream"
    )
    parser.add_argument("--output", default=None, help="write records to this JSON file")
    parser.add_argument("--list", action="store_true", help="print the registries and exit")
    args = parser.parse_args(argv)

    if args.list:
        _print_registry()
        return 0
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    faults = None
    if args.faults is not None:
        try:
            faults = parse_fault_spec(args.faults)
        except ValueError as error:
            parser.error(f"--faults: {error}")

    overrides: dict[str, object] = {}
    if args.params:
        for item in args.params:
            key, sep, raw = item.partition("=")
            if not sep or not key:
                parser.error(f"--params entries must look like key=value, got {item!r}")
            try:
                value: object = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
            overrides[key] = value

    cache = InstanceCache()
    scenarios = []
    try:
        for algorithm_name in dict.fromkeys(args.algorithms):  # de-dupe, keep order
            scenarios.extend(scenario_matrix(
                families=args.families,
                constructors=args.constructors,
                algorithm_name=algorithm_name,
                size=args.size,
                seed=args.seed,
                parts={"kind": "tree_fragments", "num_parts": args.num_parts},
                cache=cache,
                native=args.native,
            ))
    except (KeyError, ValueError) as error:
        parser.error(str(error.args[0]) if error.args else str(error))
    if overrides:
        # Overrides land after the applicability probe (applicability is a
        # family-level property, invariant across sizes); pair them with
        # --families when the swept families take different parameters.
        scenarios = [
            replace(scenario, params={**scenario.params, **overrides})
            for scenario in scenarios
        ]
    simulator_cls = {
        "active": CongestSimulator,
        "reference": ReferenceSimulator,
        "runtime": RuntimeSimulator,
    }[args.simulator]
    records = run_matrix(
        scenarios,
        cache=cache,
        simulator_cls=simulator_cls,
        jobs=args.jobs,
        faults=faults,
        fault_seed=args.fault_seed,
    )
    payload = json.dumps(records, indent=2, default=str)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        ran = sum(1 for record in records if record["applicable"])
        print(
            f"wrote {len(records)} records ({ran} applicable) to {args.output}",
            file=sys.stderr,
        )
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
