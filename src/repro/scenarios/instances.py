"""Scenario instances: a generated graph plus cached derived structures.

A :class:`ScenarioInstance` bundles the output of one graph-family builder
(the graph and, where the family provides one, its construction witness)
with memoised derived objects -- the BFS spanning tree, part families and
seeded weighted copies -- so that a scenario matrix running several
constructors and algorithms over the same instance pays for each expensive
derivation exactly once.

Instances come in two flavours.  The classic path hands ``__init__`` an
``nx.Graph``; the *native* path (``FamilySpec.native_build`` /
``instantiate(native=True)``) hands it a CSR-backed
:class:`~repro.core.GraphView` straight from :mod:`repro.graphs.native`.
A native instance never builds an ``nx.Graph`` unless something explicitly
reads ``instance.graph`` -- the spanning tree, part families, weighted
copies and description all run on the arrays -- which is what lets the
scenario engine accept million-node instances.
"""

from __future__ import annotations

from typing import Hashable, Mapping

import networkx as nx

from ..core import GraphView, PartSet, core_enabled, part_set_of, view_of
from ..errors import InvalidGraphError
from ..graphs.weights import assign_random_weights
from ..shortcuts.parts import path_parts, singleton_parts, tree_fragment_parts
from ..structure.spanning import RootedTree, bfs_spanning_tree


class ScenarioInstance:
    """One concrete graph instance of a family, with memoised derivations.

    Attributes:
        family: registry name of the family that produced the instance.
        params: the generator parameters (JSON-friendly scalars).
        seed: the generator seed.
        graph: the network graph (materialised on demand for native
            instances -- reading it on a native instance converts the CSR
            arrays to an ``nx.Graph`` once).
        native: whether the instance was built CSR-first from a
            :class:`~repro.core.GraphView`.
        witness: the family's construction witness (``TreewidthWitness``,
            ``CliqueSumDecomposition``, ``AlmostEmbeddableGraph``,
            ``MinorFreeGraph``, ``LowerBoundGraph``) or ``None`` for
            families, like plain planar grids, that need none.
    """

    def __init__(
        self,
        family: str,
        params: Mapping[str, object],
        seed: int,
        graph: nx.Graph | GraphView,
        witness: object | None = None,
    ) -> None:
        if isinstance(graph, GraphView):
            self._view: GraphView | None = graph
            self._graph: nx.Graph | None = None
            self.native = True
            empty = graph.core.num_nodes == 0
        else:
            self._view = None
            self._graph = graph
            self.native = False
            empty = graph.number_of_nodes() == 0
        if empty:
            raise InvalidGraphError(f"family {family} produced an empty graph")
        self.family = family
        self.params = dict(params)
        self.seed = seed
        self.witness = witness
        self._tree: RootedTree | None = None
        self._parts: dict[tuple, list[frozenset]] = {}
        self._weighted: dict[tuple, nx.Graph | GraphView] = {}

    # -- cached derivations -------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        """The instance as an ``nx.Graph`` (materialised lazily if native)."""
        if self._graph is None:
            self._graph = self._view.graph
        return self._graph

    @property
    def view(self) -> GraphView:
        """The shared CSR :class:`GraphView` of the instance graph.

        Native instances carry their view from construction; classic
        instances convert once through the package-wide
        :func:`repro.core.view_of` memo, so every constructor and algorithm
        in a sweep shares one label-to-index conversion.
        """
        if self._view is not None:
            return self._view
        return view_of(self.graph)

    @property
    def num_nodes(self) -> int:
        if self._view is not None:
            return self._view.core.num_nodes
        return self._graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        if self._view is not None:
            return self._view.core.num_edges
        return self._graph.number_of_edges()

    @property
    def tree(self) -> RootedTree:
        """The shared BFS spanning tree ``T`` (built once per instance)."""
        if self._tree is None:
            if self.native:
                graph = self.view
            else:
                graph = self.view if core_enabled() else self.graph
            self._tree = bfs_spanning_tree(graph)
        return self._tree

    def parts(self, kind: str = "tree_fragments", **kwargs) -> list[frozenset]:
        """Return (and cache) a part family of the requested kind.

        Supported kinds: ``"tree_fragments"`` (keyword ``num_parts``/
        ``seed``), ``"path"`` and ``"singleton"``.  On native instances the
        tree-fragment and singleton kinds run nx-free on the view.
        """
        # Resolve defaults before keying the cache, so e.g. parts("x") and
        # parts("x", num_parts=6) share one entry.
        if kind == "tree_fragments":
            num_parts = int(kwargs.pop("num_parts", 6))
            seed = int(kwargs.pop("seed", self.seed))
            num_parts = max(1, min(num_parts, self.num_nodes))
            key = (kind, num_parts, seed)
        elif kind in ("path", "singleton"):
            key = (kind,)
        else:
            raise ValueError(f"unknown parts kind {kind!r}")
        if kwargs:
            raise ValueError(f"unknown parts arguments for {kind!r}: {sorted(kwargs)}")
        if key not in self._parts:
            network = self.view if self.native else self.graph
            if kind == "tree_fragments":
                self._parts[key] = tree_fragment_parts(
                    network, self.tree, num_parts=num_parts, seed=seed
                )
            elif kind == "path":
                self._parts[key] = path_parts(network, self.tree)
            else:
                self._parts[key] = singleton_parts(network)
        return self._parts[key]

    def part_set(self, kind: str = "tree_fragments", **kwargs) -> PartSet:
        """Return the int-indexed :class:`~repro.core.PartSet` of a part family.

        Memoised next to the shared :class:`~repro.core.GraphView` (through
        the package-wide :func:`repro.core.part_set_of` memo over the cached
        label parts), so the shortcut construction engine, quality
        measurement and validation all share one label-to-index conversion
        of the family per instance.
        """
        return part_set_of(self.view, self.parts(kind, **kwargs))

    def weighted_graph(
        self, seed: int, integer: bool = True, low: float = 1.0, high: float = 100.0
    ) -> nx.Graph | GraphView:
        """Return a copy of the graph with seeded random edge weights.

        The copy keeps the shared instance immutable, so scenarios with
        different weight seeds can run over the same cached instance.

        Native instances return a weighted :class:`~repro.core.GraphView`
        (sharing the CSR structure arrays, new weight array) drawn by the
        order-independent hashed scheme
        (:func:`repro.graphs.weights.hashed_edge_weight`); classic
        instances keep the sequential :func:`assign_random_weights` scheme,
        so existing records are unchanged.
        """
        key = (seed, integer, low, high)
        if key not in self._weighted:
            if self.native:
                from ..graphs.native import with_hashed_weights

                self._weighted[key] = with_hashed_weights(
                    self._view, seed, low=low, high=high, integer=integer
                )
            else:
                weighted = self.graph.copy()
                assign_random_weights(
                    weighted, low=low, high=high, seed=seed, integer=integer
                )
                self._weighted[key] = weighted
        return self._weighted[key]

    # -- description --------------------------------------------------------

    @property
    def root(self) -> Hashable:
        return self.tree.root

    def describe(self) -> dict[str, object]:
        """Return a JSON-friendly summary of the instance."""
        return {
            "family": self.family,
            "params": dict(self.params),
            "seed": self.seed,
            "n": self.num_nodes,
            "m": self.num_edges,
            "tree_height": self.tree.height,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"ScenarioInstance(family={self.family!r}, params={self.params!r}, "
            f"seed={self.seed}, n={self.num_nodes})"
        )


class InstanceCache:
    """Memoises instances across a scenario matrix run.

    Keyed by ``(family, params, seed, native)``; the cached
    :class:`ScenarioInstance` then memoises its own spanning tree and part
    families, so a sweep of ``k`` constructors over one instance performs
    one generation, one BFS tree and one partition instead of ``k`` each.
    """

    def __init__(self) -> None:
        self._instances: dict[tuple, ScenarioInstance] = {}
        self.hits = 0
        self.misses = 0

    def get(
        self,
        family: str,
        params: Mapping[str, object],
        seed: int,
        build,
        native: bool = False,
    ) -> ScenarioInstance:
        key = (family, tuple(sorted(params.items())), seed, native)
        if key not in self._instances:
            self.misses += 1
            self._instances[key] = build()
        else:
            self.hits += 1
        return self._instances[key]

    def __len__(self) -> int:
        return len(self._instances)
