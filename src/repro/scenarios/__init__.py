"""The scenario engine: declarative family x constructor x algorithm sweeps.

The ROADMAP asks for "as many scenarios as you can imagine"; this package
makes a scenario a *value* instead of a hand-wired experiment script.  Three
registries (:mod:`repro.scenarios.registry`) map names to graph families,
shortcut constructors (with applicability predicates over the structural
witness) and runnable workloads; a :class:`Scenario` spec picks one of each
plus parameters and a seed; and the engine (:mod:`repro.scenarios.engine`)
executes specs -- individually or as a cached family-by-constructor matrix
-- into JSON-friendly result records.

Quickstart::

    from repro.scenarios import Scenario, run_scenario, scenario_matrix, run_matrix

    record = run_scenario(Scenario(
        name="demo", family="planar", constructor="planar", algorithm="mst",
        params={"side": 6}, seed=1,
    ))
    print(record.as_dict()["result"]["mst_rounds"])

    # the full matrix: every family x every applicable constructor
    records = run_matrix(scenario_matrix(size="tiny"))

Command line: ``python -m repro.scenarios --size tiny`` runs the default
matrix and prints the records as JSON.
"""

from .engine import (
    Scenario,
    ScenarioRecord,
    build_instance,
    run_matrix,
    run_scenario,
    scenario_matrix,
)
from .instances import InstanceCache, ScenarioInstance
from .registry import (
    AlgorithmSpec,
    ConstructorSpec,
    FamilySpec,
    algorithm,
    algorithm_names,
    applicable_constructors,
    constructor,
    constructor_names,
    family,
    family_names,
    register_algorithm,
    register_constructor,
    register_family,
)

__all__ = [
    "AlgorithmSpec",
    "ConstructorSpec",
    "FamilySpec",
    "InstanceCache",
    "Scenario",
    "ScenarioInstance",
    "ScenarioRecord",
    "algorithm",
    "algorithm_names",
    "applicable_constructors",
    "build_instance",
    "constructor",
    "constructor_names",
    "family",
    "family_names",
    "register_algorithm",
    "register_constructor",
    "register_family",
    "run_matrix",
    "run_scenario",
    "scenario_matrix",
]
